"""Single-committee sandboxes for tests, examples and micro-benchmarks.

Building a full :class:`~repro.core.protocol.CycLedger` deployment to test
one phase is overkill; these factories wire up a minimal
:class:`~repro.core.structures.RoundContext` with one committee (plus an
optional referee committee) on a real network simulator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import ProtocolParams
from repro.core.node import CycNode
from repro.core.sortition import crypto_sort
from repro.core.structures import CommitteeSpec, RoundContext
from repro.crypto.pki import PKI
from repro.ledger.chain import Chain
from repro.ledger.state import ShardState
from repro.metrics.counters import MetricsCollector, Roles
from repro.net.params import NetworkParams
from repro.net.simulator import Network
from repro.net.topology import build_cycledger_topology
from repro.nodes.behaviors import Behavior


def build_sandbox(
    committee_size: int = 8,
    lam: int = 2,
    referee_size: int = 4,
    seed: int = 0,
    behaviors: dict[int, Behavior] | None = None,
    net_params: NetworkParams | None = None,
    capacities: Sequence[int] | None = None,
) -> RoundContext:
    """One committee (ids ``0..committee_size-1``, leader 0, partial
    ``1..lam``) plus a referee committee (the next ``referee_size`` ids).

    ``behaviors`` overrides specific nodes' strategies.
    """
    rng = np.random.default_rng(seed)
    pki = PKI()
    metrics = MetricsCollector()
    net = Network(
        net_params if net_params is not None else NetworkParams(),
        rng,
        metrics=metrics,
    )
    n_total = committee_size + referee_size
    params = _sandbox_params(committee_size, lam, referee_size, seed)
    randomness = b"sandbox-randomness"
    nodes: dict[int, CycNode] = {}
    for node_id in range(n_total):
        capacity = (
            capacities[node_id]
            if capacities is not None and node_id < len(capacities)
            else 10_000
        )
        node = CycNode(node_id, pki.generate(("sandbox", seed, node_id)), capacity)
        # m = 1, so every sortition ticket lands in committee 0.
        node.ticket = crypto_sort(node.keypair, 1, randomness, 1)
        if behaviors and node_id in behaviors:
            node.behavior = behaviors[node_id]
        nodes[node_id] = node
        net.add_node(node)

    members = list(range(committee_size))
    committee = CommitteeSpec(
        index=0, leader=0, partial=tuple(range(1, lam + 1)), members=members
    )
    referee = list(range(committee_size, n_total))
    for mid in members:
        node = nodes[mid]
        node.committee_id = 0
        node.is_leader = mid == committee.leader
        node.is_partial = mid in committee.partial
        metrics.set_role(mid, Roles.KEY if node.is_key_member else Roles.COMMON)
    for rid in referee:
        nodes[rid].is_referee = True
        metrics.set_role(rid, Roles.REFEREE)

    topology = build_cycledger_topology(
        [(members, committee.key_members)], referee
    )
    net.set_channel_classifier(topology.classify)

    shard_state = ShardState(0, 1)
    for mid in members:
        nodes[mid].shard_state = shard_state

    ctx = RoundContext(
        params=params,
        pki=pki,
        net=net,
        metrics=metrics,
        rng=rng,
        round_number=1,
        randomness=randomness,
        nodes=nodes,
        committees=[committee],
        referee=referee,
        reputation={node.pk: 0.0 for node in nodes.values()},
        mempools=[[]],
        shard_states=[shard_state],
        chain=Chain(),
    )
    return ctx


def _sandbox_params(
    committee_size: int, lam: int, referee_size: int, seed: int
) -> ProtocolParams:
    """ProtocolParams consistent with a one-committee world."""
    return ProtocolParams(
        n=committee_size + referee_size,
        m=1,
        lam=lam,
        referee_size=referee_size,
        seed=seed,
    )


def build_multi_sandbox(
    m: int = 2,
    committee_size: int = 8,
    lam: int = 2,
    referee_size: int = 4,
    seed: int = 0,
    behaviors: dict[int, Behavior] | None = None,
    net_params: NetworkParams | None = None,
) -> RoundContext:
    """Several committees for inter-committee phase tests.

    Ids: committee k occupies ``[k·c, (k+1)·c)`` with leader at the start
    and partial members right after; referee ids come last.
    """
    rng = np.random.default_rng(seed)
    pki = PKI()
    metrics = MetricsCollector()
    net = Network(
        net_params if net_params is not None else NetworkParams(),
        rng,
        metrics=metrics,
    )
    n_total = m * committee_size + referee_size
    params = ProtocolParams(
        n=n_total, m=m, lam=lam, referee_size=referee_size, seed=seed
    )
    randomness = b"multi-sandbox-randomness"
    nodes: dict[int, CycNode] = {}
    for node_id in range(n_total):
        # Rejection-sample a key pair whose sortition ticket lands in the
        # committee this sandbox places the node in (identities are
        # arbitrary, so this is just picking a consistent identity).
        wanted = min(node_id // committee_size, m - 1)
        salt = 0
        while True:
            keypair = pki.generate(("msandbox", seed, node_id, salt))
            ticket = crypto_sort(keypair, 1, randomness, m)
            if ticket.committee_id == wanted or node_id >= m * committee_size:
                break
            salt += 1
        node = CycNode(node_id, keypair)
        node.ticket = ticket
        if behaviors and node_id in behaviors:
            node.behavior = behaviors[node_id]
        nodes[node_id] = node
        net.add_node(node)

    committees: list[CommitteeSpec] = []
    shard_states: list[ShardState] = []
    for k in range(m):
        base = k * committee_size
        members = list(range(base, base + committee_size))
        spec = CommitteeSpec(
            index=k,
            leader=base,
            partial=tuple(range(base + 1, base + 1 + lam)),
            members=members,
        )
        committees.append(spec)
        state = ShardState(k, m)
        shard_states.append(state)
        for mid in members:
            node = nodes[mid]
            node.committee_id = k
            node.is_leader = mid == spec.leader
            node.is_partial = mid in spec.partial
            node.shard_state = state
            metrics.set_role(
                mid, Roles.KEY if node.is_key_member else Roles.COMMON
            )
    referee = list(range(m * committee_size, n_total))
    for rid in referee:
        nodes[rid].is_referee = True
        metrics.set_role(rid, Roles.REFEREE)

    topology = build_cycledger_topology(
        [(spec.members, spec.key_members) for spec in committees], referee
    )
    net.set_channel_classifier(topology.classify)

    return RoundContext(
        params=params,
        pki=pki,
        net=net,
        metrics=metrics,
        rng=rng,
        round_number=1,
        randomness=randomness,
        nodes=nodes,
        committees=committees,
        referee=referee,
        reputation={node.pk: 0.0 for node in nodes.values()},
        mempools=[[] for _ in range(m)],
        shard_states=shard_states,
        chain=Chain(),
    )
