"""Inside-committee consensus — Algorithm 3 (§IV-B, Fig. 3).

Three synchronous steps:

1. **PROPOSE** — the leader multicasts ``(r, sn, H(M), M)`` signed.
2. **ECHO** — each member verifies the digest, broadcasts a signed
   ``(r, sn, H(M), i)`` ECHO *and relays the leader-signed PROPOSE header*
   to all members.
3. **CONFIRM** — a member that holds the leader's PROPOSE plus identical
   ECHOes from more than half the committee sends a signed CONFIRM (with
   its EchoList) back to the leader; the leader returns the SigList once
   more than half the members confirmed.

Equivocation ("proposed different messages to different nodes") is caught in
step 2: relayed PROPOSE headers carry the leader's signature, so any member
holding two leader-signed headers with the same ``(r, sn)`` and different
digests owns a transferable witness; it broadcasts STOP with the witness and
the consensus aborts (a partial-set member then starts the recovery
procedure, see :mod:`repro.core.recovery`).

The resulting SigList is a *certificate*: anyone can verify that more than
half of a known member set signed CONFIRM over the digest
(:func:`verify_certificate`) — this is what leaders forward to C_R and to
other committees, and what the semi-commitment scheme anchors to a member
list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.crypto.hashing import H
from repro.crypto.signatures import (
    Signature,
    encode_statement,
    sign_encoded,
    signed_by,
    signed_by_encoded,
    signers_of,
    verify_encoded,
)
from repro.net.message import payload_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.structures import RoundContext
    from repro.net.message import Message


@dataclass(frozen=True)
class EquivocationWitness:
    """Two leader-signed PROPOSE headers, same (r, sn), different digests.

    Exactly the witness shape of §V-D: a pair of messages signed by the
    leader from which dishonesty can be derived.
    """

    leader_pk: str
    round_number: int
    sn: Any
    digest_a: bytes
    sig_a: Signature
    digest_b: bytes
    sig_b: Signature

    def is_valid(self, pki) -> bool:
        if self.digest_a == self.digest_b:
            return False
        header_a = ("PROPOSE", self.round_number, self.sn, self.digest_a)
        header_b = ("PROPOSE", self.round_number, self.sn, self.digest_b)
        return signed_by(pki, self.sig_a, header_a, self.leader_pk) and signed_by(
            pki, self.sig_b, header_b, self.leader_pk
        )


@dataclass
class ConsensusOutcome:
    """What one Algorithm 3 run produced."""

    success: bool = False
    payload: Any = None
    digest: bytes | None = None
    cert: list[Signature] = field(default_factory=list)
    equivocation: EquivocationWitness | None = None
    confirms: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


def consensus_digest(payload: Any) -> bytes:
    return H("ALG3", payload)


def confirm_statement(round_number: int, sn: Any, digest: bytes) -> tuple:
    return ("CONFIRM", round_number, sn, digest)


def verify_certificate(
    pki,
    member_pks: Sequence[str],
    round_number: int,
    sn: Any,
    digest: bytes,
    cert: Sequence[Signature],
    threshold: int | None = None,
) -> bool:
    """Check a SigList: > half of ``member_pks`` signed CONFIRM over digest.

    Duplicate or foreign signatures are discarded, so a malicious leader
    cannot pad a certificate (Lemma 6's "cannot fabricate a consensus
    result").
    """
    statement = confirm_statement(round_number, sn, digest)
    signers = signers_of(pki, cert, statement, members=set(member_pks))
    needed = threshold if threshold is not None else len(member_pks) // 2 + 1
    return len(signers) >= needed


class InsideConsensus:
    """One Algorithm 3 session, event-driven over the network simulator.

    Usage: construct, :meth:`start`, run the network (possibly alongside
    other sessions), then read :attr:`outcome`.  ``session`` must be unique
    per concurrent run — it namespaces the message tags so independent
    committees (and the referee committee's parallel checks) never cross
    wires.
    """

    def __init__(
        self,
        ctx: "RoundContext",
        members: Sequence[int],
        leader: int,
        sn: Any,
        payload: Any,
        session: str,
    ) -> None:
        if leader not in set(members):
            raise ValueError("leader must be one of the members")
        self.ctx = ctx
        self.members = list(members)
        self.leader = leader
        self.sn = sn
        self.payload = payload
        self.session = session
        self.r = ctx.round_number
        self.C = len(self.members)
        self.outcome = ConsensusOutcome()
        # Per-member state
        self._proposed: dict[int, tuple[bytes, Signature]] = {}
        self._seen_headers: dict[int, dict[bytes, Signature]] = {
            mid: {} for mid in self.members
        }
        self._echoes: dict[int, dict[bytes, dict[str, Signature]]] = {
            mid: {} for mid in self.members
        }
        self._confirmed: set[int] = set()
        self._stopped: set[int] = set()
        # Leader state
        self._confirm_sigs: dict[str, Signature] = {}
        self._member_pks = frozenset(ctx.pk_of(mid) for mid in self.members)
        # Payload-identity digest memo: every PROPOSE delivery used to
        # recompute the full-payload digest (O(C) canonical encodings of an
        # O(D) payload per session — the top profile hotspot at large n).
        # Digests are memoized by payload *identity*; holding the payload
        # reference keeps ids stable.  Honest sessions have exactly one
        # entry; an equivocating leader adds one per variant, capped below.
        self._digest_memo: list[tuple[Any, bytes]] = []
        # Encoded-statement memos: within one session every member signs or
        # verifies the same PROPOSE header, ECHO statement and CONFIRM
        # statement per digest — O(C²) scalar sign/verify calls would
        # re-run the canonical encoding each time.  Encoding once per
        # distinct statement and batching the MACs is this module's hot-path
        # optimization (perf case ``micro:mac_verify``).
        self._enc_header: dict[bytes, bytes] = {}
        self._enc_echo: dict[tuple[bytes, int], bytes] = {}
        self._enc_confirm: dict[bytes, bytes] = {}

    _DIGEST_MEMO_MAX = 8

    def _payload_digest(self, payload: Any) -> bytes:
        """``consensus_digest`` with an identity memo (same value, computed
        once per distinct payload object instead of once per delivery)."""
        for seen, digest in self._digest_memo:
            if seen is payload:
                return digest
        digest = consensus_digest(payload)
        if len(self._digest_memo) < self._DIGEST_MEMO_MAX:
            self._digest_memo.append((payload, digest))
        return digest

    # -- encoded-statement memos ------------------------------------------
    def _header_enc(self, digest: bytes) -> bytes:
        enc = self._enc_header.get(digest)
        if enc is None:
            enc = encode_statement(("PROPOSE", self.r, self.sn, digest))
            self._enc_header[digest] = enc
        return enc

    def _echo_enc(self, digest: bytes, sender_id: int) -> bytes:
        key = (digest, sender_id)
        enc = self._enc_echo.get(key)
        if enc is None:
            enc = encode_statement(("ECHO", self.r, self.sn, digest, sender_id))
            self._enc_echo[key] = enc
        return enc

    def _confirm_enc(self, digest: bytes) -> bytes:
        enc = self._enc_confirm.get(digest)
        if enc is None:
            enc = encode_statement(confirm_statement(self.r, self.sn, digest))
            self._enc_confirm[digest] = enc
        return enc

    # -- tags ------------------------------------------------------------
    def _tag(self, base: str) -> str:
        return f"{base}:{self.session}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.outcome.started_at = self.ctx.net.now
        for mid in self.members:
            node = self.ctx.node(mid)
            node.on(self._tag("PROPOSE"), self._make_on_propose(mid))
            node.on(self._tag("ECHO"), self._make_on_echo(mid))
            node.on(self._tag("STOP"), self._make_on_stop(mid))
        self.ctx.node(self.leader).on(self._tag("CONFIRM"), self._on_confirm)
        self._leader_propose()

    def _leader_propose(self) -> None:
        leader_node = self.ctx.node(self.leader)
        recipients = [mid for mid in self.members if mid != self.leader]
        variants = leader_node.behavior.propose_payloads(
            leader_node, recipients, self.payload
        )
        if variants is None:
            variants = {rid: self.payload for rid in recipients}
        # One signature, one packet tuple and one recursive size per
        # distinct digest, not per recipient: an honest leader proposes one
        # payload to the whole set (a single sign + size), an equivocating
        # leader pays once per variant.  Recipients sharing a digest share
        # byte-equal payloads, so reusing the first packet is stream-exact.
        sig_by_digest: dict[bytes, Signature] = {}
        packet_by_digest: dict[bytes, tuple[tuple, int]] = {}
        for rid in recipients:
            m = variants.get(rid, self.payload)
            if m is ...:
                continue  # silent toward this member
            digest = self._payload_digest(m)
            entry = packet_by_digest.get(digest)
            if entry is None:
                sig = sign_encoded(leader_node.keypair, self._header_enc(digest))
                sig_by_digest[digest] = sig
                packet = (sig, digest, m)
                entry = (packet, payload_size(packet))
                packet_by_digest[digest] = entry
            packet, size = entry
            leader_node.send(rid, self._tag("PROPOSE"), packet, size=size)
        # The leader is also a member (Alg. 3 line 11: "any member i,
        # including leader l"): it accepts its own proposal and broadcasts
        # its ECHO like everyone else.
        own_digest = self._payload_digest(self.payload)
        own_sig = sig_by_digest.get(own_digest)
        if own_sig is None:
            own_sig = sign_encoded(
                leader_node.keypair, self._header_enc(own_digest)
            )
        self._proposed[self.leader] = (own_digest, own_sig)
        self._seen_headers[self.leader][own_digest] = own_sig
        echo_sig = sign_encoded(
            leader_node.keypair, self._echo_enc(own_digest, self.leader)
        )
        echo_packet = (echo_sig, own_digest, self.leader, own_sig)
        echo_size = payload_size(echo_packet)
        for other in recipients:
            leader_node.send(
                other, self._tag("ECHO"), echo_packet, size=echo_size
            )
        self._record_echo(self.leader, own_digest, self.leader, echo_sig)

    # -- member handlers ---------------------------------------------------
    def _make_on_propose(self, mid: int):
        def handler(message: "Message") -> None:
            if mid in self._stopped:
                return
            node = self.ctx.node(mid)
            sig, digest, payload = message.payload
            leader_pk = self.ctx.pk_of(self.leader)
            if not signed_by_encoded(
                self.ctx.pki, sig, self._header_enc(digest), leader_pk
            ):
                return  # forged or mis-signed: ignore
            if self._payload_digest(payload) != digest:
                return  # digest does not match the message body
            self._note_header(mid, digest, sig)
            if mid in self._proposed:
                return  # duplicate PROPOSE; equivocation was handled above
            self._proposed[mid] = (digest, sig)
            if not node.behavior.echoes(node):
                return  # Byzantine member withholding participation
            echo_sig = sign_encoded(node.keypair, self._echo_enc(digest, mid))
            # Broadcast ECHO + relay the leader-signed header (not the body:
            # "the digest helps to mitigate the burden on the channel").
            echo_packet = (echo_sig, digest, mid, sig)
            echo_size = payload_size(echo_packet)
            for other in self.members:
                if other != mid:
                    node.send(
                        other, self._tag("ECHO"), echo_packet, size=echo_size
                    )
            self._record_echo(mid, digest, mid, echo_sig)
            self._maybe_confirm(mid)

        return handler

    def _make_on_echo(self, mid: int):
        def handler(message: "Message") -> None:
            if mid in self._stopped:
                return
            node = self.ctx.node(mid)
            echo_sig, digest, sender_id, relayed_propose_sig = message.payload
            if echo_sig.pk != self.ctx.pk_of(sender_id):
                return
            if not verify_encoded(
                self.ctx.pki, echo_sig, self._echo_enc(digest, sender_id)
            ):
                return
            # The relayed PROPOSE header lets every member audit the leader.
            leader_pk = self.ctx.pk_of(self.leader)
            if signed_by_encoded(
                self.ctx.pki, relayed_propose_sig, self._header_enc(digest), leader_pk
            ):
                self._note_header(mid, digest, relayed_propose_sig)
            if not node.behavior.echoes(node):
                return
            self._record_echo(mid, digest, sender_id, echo_sig)
            self._maybe_confirm(mid)

        return handler

    def _note_header(self, mid: int, digest: bytes, sig: Signature) -> None:
        """Track leader-signed headers; two different digests = witness."""
        seen = self._seen_headers[mid]
        if digest not in seen:
            seen[digest] = sig
        if len(seen) >= 2 and self.outcome.equivocation is None:
            (d_a, s_a), (d_b, s_b) = list(seen.items())[:2]
            witness = EquivocationWitness(
                leader_pk=self.ctx.pk_of(self.leader),
                round_number=self.r,
                sn=self.sn,
                digest_a=d_a,
                sig_a=s_a,
                digest_b=d_b,
                sig_b=s_b,
            )
            self.outcome.equivocation = witness
            node = self.ctx.node(mid)
            if node.behavior.echoes(node):
                # "he/she informs all members of the committee immediately
                # to stop the consensus process."
                for other in self.members:
                    if other != mid:
                        node.send(other, self._tag("STOP"), witness)
                self._stopped.add(mid)

    def _make_on_stop(self, mid: int):
        def handler(message: "Message") -> None:
            witness: EquivocationWitness = message.payload
            if not isinstance(witness, EquivocationWitness):
                return
            if not witness.is_valid(self.ctx.pki):
                return  # invalid alarm: ignore (Claim 4 — no framing)
            if self.outcome.equivocation is None:
                self.outcome.equivocation = witness
            self._stopped.add(mid)

        return handler

    def _record_echo(
        self, holder: int, digest: bytes, sender_id: int, echo_sig: Signature
    ) -> None:
        by_digest = self._echoes[holder].setdefault(digest, {})
        by_digest[echo_sig.pk] = echo_sig

    def _maybe_confirm(self, mid: int) -> None:
        if mid in self._confirmed or mid in self._stopped:
            return
        proposed = self._proposed.get(mid)
        if proposed is None:
            return
        digest, _ = proposed
        echoes = self._echoes[mid].get(digest, {})
        if len(echoes) <= self.C / 2:
            return
        node = self.ctx.node(mid)
        self._confirmed.add(mid)
        confirm_sig = sign_encoded(node.keypair, self._confirm_enc(digest))
        echo_list = list(echoes.values())
        if mid == self.leader:
            self._accept_confirm(confirm_sig, digest)
        else:
            node.send(
                self.leader, self._tag("CONFIRM"), (confirm_sig, digest, echo_list)
            )

    # -- leader handler ----------------------------------------------------
    def _on_confirm(self, message: "Message") -> None:
        confirm_sig, digest, _echo_list = message.payload
        self._accept_confirm(confirm_sig, digest)

    def _accept_confirm(self, confirm_sig: Signature, digest: bytes) -> None:
        expected_digest = self._payload_digest(self.payload)
        if digest != expected_digest:
            return
        if not verify_encoded(
            self.ctx.pki, confirm_sig, self._confirm_enc(digest)
        ):
            return
        if confirm_sig.pk not in self._member_pks:
            return
        self._confirm_sigs[confirm_sig.pk] = confirm_sig
        self.outcome.confirms = len(self._confirm_sigs)
        if len(self._confirm_sigs) > self.C / 2 and not self.outcome.success:
            self.outcome.success = True
            self.outcome.payload = self.payload
            self.outcome.digest = expected_digest
            self.outcome.cert = list(self._confirm_sigs.values())
            self.outcome.finished_at = self.ctx.net.now

    # -- convenience -------------------------------------------------------------
    def run(self) -> ConsensusOutcome:
        """Start and drive the network to quiescence (single-session use)."""
        self.start()
        self.ctx.net.run()
        if self.outcome.finished_at == 0.0:
            self.outcome.finished_at = self.ctx.net.now
        return self.outcome
