"""Shared vote-round machinery for Algorithm 5 and the inter-committee phase.

One *vote round* is the pattern both phases use:

1. the leader broadcasts a signed TXList;
2. every member votes each transaction Yes / No / Unknown and returns a
   signed VList (honest nodes run V up to their capacity);
3. the leader collects votes within the 6Δ window — "those nodes who fail
   to reply in the period are deemed as voting Unknown on all transactions";
4. the leader derives TXdecSET (majority Yes) and runs Algorithm 3 on
   ``(TXdecSET, VList)``;
5. the leader signs the two auditable artifacts — the decided set and the
   vote matrix — that the censorship witness of :mod:`repro.core.recovery`
   is built from.

Silent-leader detection also lives here: members that receive no TXList by
the deadline countersign a NO_PROPOSAL statement to the partial set, which
assembles the quorum evidence for a silence impeachment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.consensus import InsideConsensus
from repro.core.recovery import no_proposal_statement
from repro.core.structures import CommitteeSpec, RoundContext
from repro.crypto.signatures import (
    Signature,
    encode_statement,
    sign,
    signed_by_encoded,
    verify,
)
from repro.ledger.transaction import Transaction
from repro.net.message import payload_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message

VoteFn = Callable[["RoundContext", int, Sequence[Transaction]], np.ndarray]


def input_side_votes(
    ctx: RoundContext, member_id: int, txs: Sequence[Transaction]
) -> np.ndarray:
    """Member vote on transactions whose inputs live in its own shard."""
    node = ctx.node(member_id)
    return node.behavior.vote(node, txs, node.shard_state, ctx.rng)


def output_side_votes(
    ctx: RoundContext, member_id: int, txs: Sequence[Transaction]
) -> np.ndarray:
    """Receiving-committee vote on cross-shard transactions (output side)."""
    node = ctx.node(member_id)
    return node.behavior.vote_on_outputs(node, txs, ctx.rng)


@dataclass
class VoteRound:
    """Everything one vote round produced."""

    committee: int
    session: str
    txs: list[Transaction] = field(default_factory=list)
    txids: tuple[bytes, ...] = ()
    matrix: np.ndarray | None = None  # rows follow committee.members order
    decision: np.ndarray | None = None
    majority_txs: list[Transaction] = field(default_factory=list)
    reported_txs: list[Transaction] = field(default_factory=list)
    consensus_success: bool = False
    cert: list[Signature] = field(default_factory=list)
    sig_dec: Signature | None = None
    sig_votes: Signature | None = None
    reported_txids: tuple[bytes, ...] = ()
    timed_out: bool = False
    no_proposal_sigs: dict[int, list[Signature]] = field(default_factory=dict)
    replies: int = 0
    equivocation: object | None = None  # EquivocationWitness from Alg. 3

    @property
    def vlist_tuple(self) -> tuple:
        assert self.matrix is not None
        return tuple(tuple(int(v) for v in row) for row in self.matrix)


class VoteRoundSession:
    """Event-driven execution of one vote round."""

    def __init__(
        self,
        ctx: RoundContext,
        committee: CommitteeSpec,
        txs: Sequence[Transaction],
        session: str,
        vote_fn: VoteFn,
        phase_name: str,
        leader_proposes_override: bool | None = None,
    ) -> None:
        self.leader_proposes_override = leader_proposes_override
        self.ctx = ctx
        self.committee = committee
        self.txs = list(txs)
        self.txids = tuple(tx.txid for tx in self.txs)
        self.session = session
        self.vote_fn = vote_fn
        self.phase_name = phase_name
        self.result = VoteRound(
            committee=committee.index,
            session=session,
            txs=list(self.txs),
            txids=self.txids,
        )
        self._votes: dict[int, np.ndarray] = {}
        self._member_set = frozenset(committee.members)
        # Every member verifies the leader's signature over the SAME
        # TX_LIST statement; encode each distinct statement once per
        # session instead of once per member.
        self._enc_txlist: dict[tuple, bytes] = {}
        self._tallied = False
        self._proposal_seen: set[int] = set()
        self._alg3: InsideConsensus | None = None

    def _tag(self, base: str) -> str:
        return f"{base}:{self.session}"

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        ctx = self.ctx
        committee = self.committee
        leader_node = ctx.node(committee.leader)
        for mid in committee.members:
            node = ctx.node(mid)
            node.on(self._tag("TX_LIST"), self._make_on_txlist(mid))
            if mid in committee.partial:
                node.on(self._tag("NO_PROPOSAL"), self._make_on_no_proposal(mid))
        leader_node.on(self._tag("VOTE"), self._on_vote)
        deadline = ctx.params.vote_window
        proposes = (
            self.leader_proposes_override
            if self.leader_proposes_override is not None
            else leader_node.behavior.proposes_txlist(leader_node)
        )
        if proposes and leader_node.online:
            statement = ("TX_LIST", ctx.round_number, committee.index, self.txids)
            sig = sign(leader_node.keypair, statement)
            # One payload object and one recursive size computation for the
            # whole fan-out, not one per member (the TXList is O(D) to
            # size, so per-member sizing was an O(c·D) hidden quadratic).
            txlist_payload = (self.txs, sig)
            txlist_size = payload_size(txlist_payload)
            for mid in committee.members:
                if mid != committee.leader:
                    leader_node.send(
                        mid,
                        self._tag("TX_LIST"),
                        txlist_payload,
                        size=txlist_size,
                    )
            # The leader votes too (it is a member, Alg. 5 line 21).
            self._votes[committee.leader] = self.vote_fn(
                ctx, committee.leader, self.txs
            )
            self.result.replies += 1
            ctx.net.call_after(deadline, self._tally)
        else:
            # Members will notice the silence at the deadline.
            ctx.net.call_after(deadline, self._silence_deadline)

    # -- member side --------------------------------------------------------
    def _make_on_txlist(self, mid: int):
        def handler(message: "Message") -> None:
            txs, sig = message.payload
            leader_pk = self.ctx.pk_of(self.committee.leader)
            txids = tuple(tx.txid for tx in txs)
            enc = self._enc_txlist.get(txids)
            if enc is None:
                enc = encode_statement(
                    ("TX_LIST", self.ctx.round_number, self.committee.index, txids)
                )
                self._enc_txlist[txids] = enc
            if not signed_by_encoded(self.ctx.pki, sig, enc, leader_pk):
                return
            if mid in self._proposal_seen:
                return
            self._proposal_seen.add(mid)
            node = self.ctx.node(mid)
            votes = self.vote_fn(self.ctx, mid, txs)
            vote_statement = (
                "VOTE",
                self.ctx.round_number,
                self.committee.index,
                self.session,
                tuple(int(v) for v in votes),
            )
            vote_sig = sign(node.keypair, vote_statement)
            node.send(
                self.committee.leader,
                self._tag("VOTE"),
                (mid, tuple(int(v) for v in votes), vote_sig),
            )

        return handler

    # -- leader side --------------------------------------------------------
    def _on_vote(self, message: "Message") -> None:
        if self._tallied:
            return  # replies after the 6Δ window count as Unknown
        mid, votes, vote_sig = message.payload
        if mid not in self._member_set:
            return
        vote_statement = (
            "VOTE",
            self.ctx.round_number,
            self.committee.index,
            self.session,
            tuple(votes),
        )
        if not verify(self.ctx.pki, vote_sig, vote_statement):
            return
        if vote_sig.pk != self.ctx.pk_of(mid):
            return
        if len(votes) != len(self.txs):
            return
        self._votes[mid] = np.asarray(votes, dtype=np.int8)
        self.result.replies += 1

    def _tally(self) -> None:
        if self._tallied:
            return
        self._tallied = True
        ctx = self.ctx
        committee = self.committee
        C = committee.size
        D = len(self.txs)
        matrix = np.zeros((C, D), dtype=np.int8)
        for row, mid in enumerate(committee.members):
            votes = self._votes.get(mid)
            if votes is not None:
                matrix[row, : len(votes)] = votes
        yes_counts = (matrix == 1).sum(axis=0)
        decision = np.where(yes_counts > C / 2, 1, -1).astype(np.int8)
        majority = [tx for tx, d in zip(self.txs, decision) if d == 1]
        leader_node = ctx.node(committee.leader)
        reported = leader_node.behavior.assemble_txdec(leader_node, majority, matrix)
        self.result.matrix = matrix
        self.result.decision = decision
        self.result.majority_txs = majority
        self.result.reported_txs = list(reported)
        self.result.reported_txids = tuple(tx.txid for tx in reported)
        ctx.metrics.record_storage(committee.leader, int(matrix.size) + D)
        # Algorithm 3 on (TXdecSET, VList).
        self._alg3 = InsideConsensus(
            ctx,
            committee.members,
            leader=committee.leader,
            sn=("VOTEROUND", self.session),
            payload=(self.result.reported_txids, self.result.vlist_tuple),
            session=f"{self.session}:alg3",
        )
        self._alg3.start()
        # Sign the auditable artifacts (used by censorship witnesses).
        r, k = ctx.round_number, committee.index
        self.result.sig_dec = sign(
            leader_node.keypair, ("INTRA_DEC", r, k, self.result.reported_txids)
        )
        self.result.sig_votes = sign(
            leader_node.keypair,
            ("VLIST", r, k, self.txids, self.result.vlist_tuple),
        )
        # Broadcast the artifacts so partial members can audit.
        artifact = (
            self.result.reported_txids,
            self.result.sig_dec,
            self.txids,
            self.result.vlist_tuple,
            self.result.sig_votes,
        )
        for pid in committee.partial:
            leader_node.send(pid, self._tag("ARTIFACT"), artifact)

    # -- silence handling ---------------------------------------------------
    def _silence_deadline(self) -> None:
        """Leader sent nothing: members countersign NO_PROPOSAL statements."""
        self.result.timed_out = True
        ctx = self.ctx
        committee = self.committee
        stmt = no_proposal_statement(
            ctx.round_number, committee.index, self.phase_name
        )
        for mid in committee.members:
            node = ctx.node(mid)
            if mid in self._proposal_seen or not node.online:
                continue
            if node.behavior.is_malicious:
                continue  # colluders will not help impeach their leader
            statement_sig = sign(node.keypair, stmt)
            for pid in committee.partial:
                if pid != mid:
                    node.send(pid, self._tag("NO_PROPOSAL"), statement_sig)
                else:
                    self.result.no_proposal_sigs.setdefault(mid, []).append(
                        statement_sig
                    )

    def _make_on_no_proposal(self, pid: int):
        def handler(message: "Message") -> None:
            sig = message.payload
            stmt = no_proposal_statement(
                self.ctx.round_number, self.committee.index, self.phase_name
            )
            if not verify(self.ctx.pki, sig, stmt):
                return
            self.result.no_proposal_sigs.setdefault(pid, []).append(sig)

        return handler

    # -- completion ----------------------------------------------------------
    def finish(self) -> VoteRound:
        """Collect the Algorithm 3 outcome after the network quiesced."""
        if self._alg3 is not None:
            self.result.consensus_success = self._alg3.outcome.success
            self.result.cert = self._alg3.outcome.cert
            if self._alg3.outcome.equivocation is not None:
                self.result.consensus_success = False
                self.result.equivocation = self._alg3.outcome.equivocation
        return self.result


def run_vote_rounds(
    ctx: RoundContext,
    work: Sequence[tuple[CommitteeSpec, Sequence[Transaction], str, VoteFn, str]],
) -> list[VoteRound]:
    """Run several vote rounds concurrently on the shared network.

    With a shard executor on the context (``ProtocolParams.shard_workers``
    >= 1) and recognised vote functions, the independent per-committee
    work is fanned out to :mod:`repro.core.shards` instead and merged at
    the caller's barrier; the interleaved path below is the byte-frozen
    historical semantics (``shard_workers=0``).
    """
    if getattr(ctx, "shard_executor", None) is not None and work:
        from repro.core.shards import run_vote_rounds_sharded, shardable

        if shardable(work):
            return run_vote_rounds_sharded(ctx, work)
    sessions = [
        VoteRoundSession(ctx, committee, txs, session, vote_fn, phase)
        for committee, txs, session, vote_fn, phase in work
    ]
    for session in sessions:
        session.start()
    ctx.net.run()
    return [session.finish() for session in sessions]
