"""Witnesses, impeachment, and leader re-selection — Algorithm 6 (§V-D, Fig. 6).

"If a partial set member wants to accuse his/her leader, he/she would
broadcast his/her witness to all members in the committee and ask them to
vote on the impeachment. … If the proposal is approved by more than half of
the validators, the prosecutor will forward the voting result as well as
his/her witness to everyone in the referee committee."

A witness is a pair of messages from which dishonesty can be *derived*, with
the incriminating part signed by the leader (Claim 4's soundness hinges on
that signature).  Witness kinds implemented:

* ``equivocation`` — two leader-signed PROPOSE headers, same sequence
  number, different digests (from Algorithm 3).
* ``bad_semicommit`` — a leader-signed (commitment, member list) pair with
  ``H(list) != commitment`` (Algorithm 4, step 3).
* ``censor`` — leader-signed TXdecSET plus leader-signed VList where some
  transaction has a Yes-majority in the votes but is missing from the
  decided set (Lemma 6's "conceal").
* ``silence`` — not leader-signed (a silent leader signs nothing); instead a
  quorum of member-signed "I received no proposal" statements.  The paper
  leaves the fully-silent case to the phase timeout rules (§IV-C, Lemma 7);
  this quorum form is our concrete realization, and Claim 4 still holds
  because honest members never countersign silence of a leader that did
  propose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.consensus import EquivocationWitness, InsideConsensus
from repro.core.structures import CommitteeSpec, RecoveryEvent, RoundContext
from repro.core.tags import Tags
from repro.crypto.commitment import semi_commitment
from repro.crypto.signatures import (
    Signature,
    encode_statement,
    sign,
    signed_by,
    signers_of,
    verify_encoded,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


@dataclass(frozen=True)
class Witness:
    """A transferable accusation against a committee leader."""

    kind: str
    committee: int
    leader_pk: str
    round_number: int
    evidence: Any


def no_proposal_statement(round_number: int, committee: int, phase: str) -> tuple:
    return ("NO_PROPOSAL", round_number, committee, phase)


def validate_witness(pki, witness: Witness, committee_size: int) -> bool:
    """Objective witness validity — what every honest member checks before
    voting on an impeachment."""
    if witness.kind == "equivocation":
        ev = witness.evidence
        return (
            isinstance(ev, EquivocationWitness)
            and ev.leader_pk == witness.leader_pk
            and ev.round_number == witness.round_number
            and ev.is_valid(pki)
        )
    if witness.kind == "bad_semicommit":
        sig, commitment, member_list = witness.evidence
        statement = ("SEMI_COM", witness.round_number, commitment, member_list)
        if not signed_by(pki, sig, statement, witness.leader_pk):
            return False
        return semi_commitment(member_list) != commitment
    if witness.kind == "censor":
        sig_dec, txids_dec, sig_votes, txids_all, votes = witness.evidence
        dec_statement = ("INTRA_DEC", witness.round_number, witness.committee, txids_dec)
        votes_statement = ("VLIST", witness.round_number, witness.committee, txids_all, votes)
        if not signed_by(pki, sig_dec, dec_statement, witness.leader_pk):
            return False
        if not signed_by(pki, sig_votes, votes_statement, witness.leader_pk):
            return False
        matrix = np.asarray(votes, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(txids_all):
            return False
        yes_counts = (matrix == 1).sum(axis=0)
        decided = set(txids_dec)
        quorum = matrix.shape[0] / 2
        return any(
            yes_counts[i] > quorum and txids_all[i] not in decided
            for i in range(len(txids_all))
        )
    if witness.kind == "silence":
        phase, statements = witness.evidence
        stmt = no_proposal_statement(witness.round_number, witness.committee, phase)
        signers = signers_of(
            pki, (s for s in statements if isinstance(s, Signature)), stmt
        )
        return len(signers) > committee_size / 2
    return False


class _ImpeachmentSession:
    """Event-driven impeachment: broadcast witness, collect votes, escalate
    to C_R, run Algorithm 3 there, announce NEW leader."""

    def __init__(
        self,
        ctx: RoundContext,
        committee: CommitteeSpec,
        accuser: int,
        witness: Witness,
        session: str,
    ) -> None:
        self.ctx = ctx
        self.committee = committee
        self.accuser = accuser
        self.witness = witness
        self.session = session
        self.approvals: dict[str, Signature] = {}
        self._enc_vote: dict[bool, bytes] = {}  # encoded IMPEACH_VOTE stmts
        self.escalated = False
        self.referee_outcome = None
        self.new_leader_announcements: dict[int, set[str]] = {}
        self.final_new_leader: int | None = None

    def _tag(self, base: str) -> str:
        return f"{base}:{self.session}"

    def start(self) -> None:
        ctx = self.ctx
        committee = self.committee
        for mid in committee.members:
            ctx.node(mid).on(self._tag(Tags.IMPEACH), self._make_on_impeach(mid))
            ctx.node(mid).on(self._tag(Tags.NEW), self._make_on_new(mid))
        ctx.node(self.accuser).on(self._tag(Tags.IMPEACH_VOTE), self._on_vote)
        for rid in ctx.referee:
            ctx.node(rid).on(self._tag(Tags.ACCUSE), self._make_on_accuse(rid))
        accuser_node = ctx.node(self.accuser)
        accuser_node.multicast(
            committee.members, self._tag(Tags.IMPEACH), self.witness
        )
        # The accuser trivially approves its own accusation.
        self._register_vote(
            sign(accuser_node.keypair, self._vote_statement(True)), True
        )

    def _vote_statement(self, approve: bool) -> tuple:
        return (
            "IMPEACH_VOTE",
            self.ctx.round_number,
            self.witness.kind,
            self.witness.leader_pk,
            approve,
        )

    def _make_on_impeach(self, mid: int):
        def handler(message: "Message") -> None:
            witness = message.payload
            if not isinstance(witness, Witness):
                return
            node = self.ctx.node(mid)
            honest_verdict = validate_witness(
                self.ctx.pki, witness, self.committee.size
            )
            if node.behavior.is_malicious:
                # Colluding members protect a malicious leader and support
                # fabricated accusations against honest ones.
                leader_node = self.ctx.node_by_pk(witness.leader_pk)
                approve = not leader_node.behavior.is_malicious
            else:
                approve = honest_verdict
            if approve:
                vote_sig = sign(node.keypair, self._vote_statement(True))
                node.send(self.accuser, self._tag(Tags.IMPEACH_VOTE), vote_sig)

        return handler

    def _on_vote(self, message: "Message") -> None:
        sig = message.payload
        if not isinstance(sig, Signature):
            return
        self._register_vote(sig, True)

    def _vote_enc(self, approve: bool) -> bytes:
        enc = self._enc_vote.get(approve)
        if enc is None:
            enc = encode_statement(self._vote_statement(approve))
            self._enc_vote[approve] = enc
        return enc

    def _register_vote(self, sig: Signature, approve: bool) -> None:
        member_pks = {self.ctx.pk_of(mid) for mid in self.committee.members}
        if sig.pk not in member_pks:
            return
        if not verify_encoded(self.ctx.pki, sig, self._vote_enc(approve)):
            return
        self.approvals[sig.pk] = sig
        if len(self.approvals) > self.committee.size / 2 and not self.escalated:
            self.escalated = True
            accuser_node = self.ctx.node(self.accuser)
            cert = tuple(self.approvals.values())
            for rid in self.ctx.referee:
                accuser_node.send(
                    rid, self._tag(Tags.ACCUSE), (self.witness, cert)
                )

    def _make_on_accuse(self, rid: int):
        def handler(message: "Message") -> None:
            witness, cert = message.payload
            if self.referee_outcome is not None:
                return
            if not validate_witness(self.ctx.pki, witness, self.committee.size):
                return
            member_pks = {self.ctx.pk_of(mid) for mid in self.committee.members}
            signers = signers_of(
                self.ctx.pki, cert, self._vote_statement(True), members=member_pks
            )
            if len(signers) <= self.committee.size / 2:
                return
            # Algorithm 6: the receiving referee member leads an
            # inside-consensus within C_R on the accusation.
            consensus = InsideConsensus(
                self.ctx,
                self.ctx.referee,
                leader=rid,
                sn=("RESELECT", self.witness.committee, self.accuser),
                payload=(
                    "NEW_LEADER",
                    self.witness.committee,
                    self.ctx.pk_of(self.accuser),
                    self.witness.kind,
                ),
                session=f"{self.session}:cr",
            )
            self.referee_outcome = consensus
            consensus.start()
            self.ctx.net.call_after(0.0, lambda: self._announce_if_agreed(rid))

        return handler

    def _announce_if_agreed(self, rid: int) -> None:
        consensus = self.referee_outcome
        if consensus is None:
            return
        if not consensus.outcome.success:
            # Re-check once the CR consensus traffic drains.
            if self.ctx.net.pending:
                self.ctx.net.call_after(
                    self.ctx.params.net.gamma, lambda: self._announce_if_agreed(rid)
                )
            return
        referee_node = self.ctx.node(rid)
        payload = (self.accuser, consensus.outcome.cert)
        for mid in self.committee.members:
            referee_node.send(mid, self._tag(Tags.NEW), payload)

    def _make_on_new(self, mid: int):
        def handler(message: "Message") -> None:
            new_leader, _cert = message.payload
            acks = self.new_leader_announcements.setdefault(new_leader, set())
            sender_pk = self.ctx.pk_of(message.sender)
            if message.sender in self.ctx.referee:
                acks.add(sender_pk)
            if len(acks) >= 1 and self.final_new_leader is None:
                self.final_new_leader = new_leader

        return handler


def attempt_recovery(
    ctx: RoundContext,
    committee: CommitteeSpec,
    accuser: int,
    witness: Witness,
    session: str,
) -> RecoveryEvent:
    """Run the full impeachment + re-selection flow to quiescence.

    On success the committee's leader is replaced by the accuser (a partial
    set member — Fig. 6's ``cp``), role flags are updated, the old leader is
    recorded as expelled, and the cube-root reputation punishment (§VII-B)
    is applied.
    """
    if accuser not in committee.partial:
        raise ValueError("only partial set members may prosecute (§V-D)")
    old_leader = committee.leader
    session_obj = _ImpeachmentSession(ctx, committee, accuser, witness, session)
    session_obj.start()
    ctx.net.run()
    succeeded = session_obj.final_new_leader == accuser
    event = RecoveryEvent(
        committee=committee.index,
        old_leader=old_leader,
        new_leader=accuser if succeeded else None,
        kind=witness.kind,
        accuser=accuser,
        succeeded=succeeded,
        sim_time=ctx.net.now,
    )
    ctx.recoveries.append(event)
    if succeeded:
        _install_new_leader(ctx, committee, accuser, old_leader)
    return event


def _install_new_leader(
    ctx: RoundContext, committee: CommitteeSpec, new_leader: int, old_leader: int
) -> None:
    committee.replace_leader(new_leader)
    old_node = ctx.node(old_leader)
    old_node.is_leader = False
    new_node = ctx.node(new_leader)
    new_node.is_leader = True
    new_node.is_partial = False
    ctx.expelled_leaders.add(old_leader)
    punish_leader(ctx, old_leader)


def punish_leader(ctx: RoundContext, leader_id: int) -> None:
    """§VII-B: "his/her reputation will be decreased to the cube root."

    Defined for non-negative reputations (the paper argues leaders have
    reputation > 0); a negative reputation is clamped at 0 first, which only
    strengthens the punishment.
    """
    pk = ctx.pk_of(leader_id)
    current = max(ctx.reputation.get(pk, 0.0), 0.0)
    ctx.reputation[pk] = float(np.cbrt(current))
