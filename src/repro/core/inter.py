"""Inter-committee consensus (§IV-D, Lemmas 6–8).

For transactions whose inputs live in shard *i* and (some) outputs in shard
*j*:

1. **Sending side** — committee *i* reaches inside-consensus on the list
   ``TXList_{i,j}`` (a vote round over the input-side validity, exactly like
   Algorithm 5), producing a certificate anchored to its semi-committed
   member list.
2. **Hand-off** — leader *i* sends the certified list to leader *j* *and*
   to the partial set of committee *j* ("the leader sends the consensus on
   TXList_{i,j} as well as the member list to l_j and C_j,partial").
3. **Receiving side** — committee *j* verifies the certificate against the
   member list whose hash C_R accepted for committee *i* (a forged
   consensus "concerning the semi-commitment" fails here, Lemma 6), then
   reaches agreement on the output side and leader *j* returns the result.
4. **Lemma 7 timeout** — a partial member of *j* that received the package
   from *i* but saw no proposal from its own leader within 2Γ forwards the
   package to the leader and keeps running; a still-silent leader is then
   impeached through the silence path.

§VIII-A's pre-filter extension (``params.prefilter_cross_shard``): leader
*i* first asks leader *j* which transactions look valid and only packages
those, trading one leader-to-leader message for fewer wasted committee-wide
vote rounds under invalid-heavy (e.g. DoS) workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.consensus import consensus_digest, verify_certificate
from repro.core.intra import _audit_and_maybe_retry, first_honest_partial
from repro.core.recovery import Witness, attempt_recovery
from repro.core.structures import RecoveryEvent, RoundContext
from repro.core.tags import Tags
from repro.core.voting import (
    VoteRound,
    VoteRoundSession,
    input_side_votes,
    output_side_votes,
    run_vote_rounds,
)
from repro.ledger.transaction import Transaction, shard_of_address
from repro.ledger.utxo import ValidationResult
from repro.net.message import payload_size


@dataclass
class InterReport:
    send_rounds: dict[tuple[int, int], VoteRound] = field(default_factory=dict)
    recv_rounds: dict[tuple[int, int], VoteRound] = field(default_factory=dict)
    accepted: dict[tuple[int, int], list[Transaction]] = field(default_factory=dict)
    forged_rejected: int = 0
    lemma7_forwards: list[tuple[int, int]] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    prefilter_savings: int = 0  # txs dropped before committee-wide voting
    elapsed: float = 0.0


def dest_shard(tx: Transaction, home: int, m: int) -> int | None:
    """The receiving shard of a cross-shard tx (first non-home output)."""
    for output in tx.outputs:
        shard = shard_of_address(output.address, m)
        if shard != home:
            return shard
    return None


def run_inter_consensus(ctx: RoundContext) -> InterReport:
    ctx.metrics.set_phase("inter")
    started = ctx.net.now
    report = InterReport()
    m = ctx.params.m
    committees_by_index = {c.index: c for c in ctx.committees}

    # -- group cross-shard transactions by (home, dest) pair ----------------
    pair_txs: dict[tuple[int, int], list[Transaction]] = {}
    for k, mempool in enumerate(ctx.mempools):
        # Leader capacity caps the cross-shard list too (§VII-A).
        budget = min(
            ctx.params.tx_per_committee,
            ctx.node(ctx.committees[k].leader).capacity,
        )
        picked = 0
        for tagged in mempool:
            if not tagged.cross_shard or picked >= budget:
                continue
            dest = dest_shard(tagged.tx, tagged.home_shard, m)
            if dest is None or dest == k:
                continue
            pair_txs.setdefault((k, dest), []).append(tagged.tx)
            picked += 1

    # -- §VIII-A pre-filter -------------------------------------------------
    if ctx.params.prefilter_cross_shard:
        pair_txs = _prefilter(ctx, pair_txs, report)

    # -- stage 1: sending-side vote rounds -----------------------------------
    work = [
        (
            committees_by_index[i],
            txs,
            f"intersend:{i}:{j}",
            input_side_votes,
            "inter",
        )
        for (i, j), txs in sorted(pair_txs.items())
    ]
    rounds = run_vote_rounds(ctx, work)
    for ((i, j), _), round_result in zip(sorted(pair_txs.items()), rounds):
        committee = committees_by_index[i]
        final = _audit_and_maybe_retry(
            ctx, committee, round_result, _proxy(report), phase_name="inter"
        )
        report.send_rounds[(i, j)] = final
        if final.matrix is not None:
            ctx.vote_records.setdefault(i, []).append(
                (final.txids, final.matrix, final.decision)
            )

    # -- stage 2: hand-off to receiving committees -----------------------------
    packages: dict[tuple[int, int], tuple] = {}
    partial_received: dict[tuple[int, int], set[int]] = {}

    # Each package fans out to the receiving leader plus its partial set;
    # the certificate check (O(c) signature verifications over a
    # full-payload digest) is deterministic per package, so verify once per
    # payload object and share the verdict across recipients.  Holding the
    # payload reference keeps the identity key stable.
    valid_cache: dict[int, bool] = {}
    cache_refs: list = []

    def _package_valid(payload: tuple) -> bool:
        cached = valid_cache.get(id(payload))
        if cached is not None:
            return cached
        i, _j, txs, alg3_payload, cert, session = payload
        member_pks = [pk for pk, _ in ctx.member_lists.get(i, ())]
        digest = consensus_digest(alg3_payload)
        result = bool(
            member_pks
            and verify_certificate(
                ctx.pki,
                member_pks,
                ctx.round_number,
                ("VOTEROUND", session),
                digest,
                cert,
            )
            and tuple(tx.txid for tx in txs) == alg3_payload[0]
        )
        valid_cache[id(payload)] = result
        cache_refs.append(payload)
        return result

    def make_on_inter_send(node_id: int, is_leader: bool):
        def handler(message) -> None:
            i, j, txs, alg3_payload, cert, session = message.payload
            key = (i, j)
            if not _package_valid(message.payload):
                report.forged_rejected += 1
                return
            if is_leader:
                packages[key] = (txs, alg3_payload, cert, session)
            else:
                partial_received.setdefault(key, set()).add(node_id)

        return handler

    for committee in ctx.committees:
        leader_node = ctx.node(committee.leader)
        leader_node.on(Tags.INTER_SEND, make_on_inter_send(committee.leader, True))
        for pid in committee.partial:
            ctx.node(pid).on(Tags.INTER_SEND, make_on_inter_send(pid, False))

    for (i, j), round_result in report.send_rounds.items():
        if not round_result.consensus_success or not round_result.reported_txs:
            continue
        sender = ctx.node(committees_by_index[i].leader)
        if not sender.behavior.forwards_inter(sender):
            continue
        receiver_committee = committees_by_index[j]
        alg3_payload = (round_result.reported_txids, round_result.vlist_tuple)
        payload = (
            i,
            j,
            round_result.reported_txs,
            alg3_payload,
            tuple(round_result.cert),
            round_result.session,
        )
        size = payload_size(payload)
        sender.send(receiver_committee.leader, Tags.INTER_SEND, payload, size=size)
        for pid in receiver_committee.partial:
            sender.send(pid, Tags.INTER_SEND, payload, size=size)
    ctx.net.run()

    # -- Lemma 7: partial members saw the package, the leader "didn't" -------
    for key, partial_ids in sorted(partial_received.items()):
        i, j = key
        receiver_committee = committees_by_index[j]
        leader_node = ctx.node(receiver_committee.leader)
        if key in packages and leader_node.behavior.forwards_inter(leader_node):
            continue
        forwarder = next(
            (
                pid
                for pid in receiver_committee.partial
                if pid in partial_ids
                and not ctx.node(pid).behavior.is_malicious
                and ctx.node(pid).online
            ),
            None,
        )
        if forwarder is None:
            continue
        report.lemma7_forwards.append(key)
        # "he/she can send the transactions set to his/her leader and
        # continues running consensus protocol" — forward, then if the
        # leader still will not run it, impeach for silence and let the new
        # leader (the forwarder) run the receiving-side round itself.
        if key not in packages:
            continue  # the package never reached the leader's mailbox
        txs, alg3_payload, cert, session = packages[key]
        if not leader_node.behavior.forwards_inter(leader_node):
            # The forwarded package is ignored by the leader: the probe vote
            # round runs with no proposal, producing exactly the
            # NO_PROPOSAL quorum the silence impeachment needs.
            probe = VoteRoundSession(
                ctx,
                receiver_committee,
                txs,
                f"interrecv:{i}:{j}:probe",
                output_side_votes,
                "inter-recv",
                leader_proposes_override=False,
            )
            probe.start()
            ctx.net.run()
            witness_round = probe.finish()
            witness = None
            if witness_round.timed_out:
                for pid in receiver_committee.partial:
                    sigs = witness_round.no_proposal_sigs.get(pid, [])
                    if len(sigs) > receiver_committee.size / 2:
                        witness = Witness(
                            kind="silence",
                            committee=j,
                            leader_pk=ctx.pk_of(receiver_committee.leader),
                            round_number=ctx.round_number,
                            evidence=("inter-recv", tuple(sigs)),
                        )
                        break
            if witness is not None:
                accuser = first_honest_partial(ctx, receiver_committee)
                if accuser is not None:
                    event = attempt_recovery(
                        ctx, receiver_committee, accuser, witness,
                        session=f"interrec:{i}:{j}",
                    )
                    report.recoveries.append(event)

    # -- stage 3: receiving-side vote rounds ------------------------------------
    recv_work = []
    for key, (txs, alg3_payload, cert, session) in sorted(packages.items()):
        i, j = key
        receiver_committee = committees_by_index[j]
        leader_node = ctx.node(receiver_committee.leader)
        if not leader_node.behavior.forwards_inter(leader_node):
            continue  # only reachable if recovery failed
        recv_work.append(
            (
                receiver_committee,
                txs,
                f"interrecv:{i}:{j}",
                output_side_votes,
                "inter-recv",
            )
        )
    recv_rounds = run_vote_rounds(ctx, recv_work)
    recv_keys = [
        key
        for key in sorted(packages)
        if ctx.node(committees_by_index[key[1]].leader).behavior.forwards_inter(
            ctx.node(committees_by_index[key[1]].leader)
        )
    ]

    # -- stage 4: results back to the sending leader ------------------------------
    results_received: dict[tuple[int, int], tuple] = {}

    def make_on_result(lid: int):
        def handler(message) -> None:
            i, j, txids, alg3_payload, cert, session = message.payload
            member_pks = [pk for pk, _ in ctx.member_lists.get(j, ())]
            digest = consensus_digest(alg3_payload)
            if member_pks and verify_certificate(
                ctx.pki,
                member_pks,
                ctx.round_number,
                ("VOTEROUND", session),
                digest,
                cert,
            ):
                results_received[(i, j)] = (txids, cert)

        return handler

    for committee in ctx.committees:
        ctx.node(committee.leader).on(Tags.INTER_RESULT, make_on_result(committee.leader))

    for key, round_result in zip(recv_keys, recv_rounds):
        i, j = key
        report.recv_rounds[key] = round_result
        if round_result.matrix is not None:
            ctx.vote_records.setdefault(j, []).append(
                (round_result.txids, round_result.matrix, round_result.decision)
            )
        if not round_result.consensus_success:
            continue
        receiver_leader = ctx.node(committees_by_index[j].leader)
        alg3_payload = (round_result.reported_txids, round_result.vlist_tuple)
        receiver_leader.send(
            committees_by_index[i].leader,
            Tags.INTER_RESULT,
            (
                i,
                j,
                round_result.reported_txids,
                alg3_payload,
                tuple(round_result.cert),
                round_result.session,
            ),
        )
    ctx.net.run()

    # -- finalize: both certificates in hand => transaction goes to C_R --------
    for key, (accepted_txids, _cert) in results_received.items():
        send_round = report.send_rounds.get(key)
        if send_round is None:
            continue
        accepted_set = set(accepted_txids)
        final_txs = [
            tx for tx in send_round.reported_txs if tx.txid in accepted_set
        ]
        report.accepted[key] = final_txs
        ctx.inter_results[key] = final_txs

    report.elapsed = ctx.net.now - started
    return report


def _prefilter(
    ctx: RoundContext,
    pair_txs: dict[tuple[int, int], list[Transaction]],
    report: InterReport,
) -> dict[tuple[int, int], list[Transaction]]:
    """§VIII-A: leader i asks leader j which transactions look valid before
    packaging, so obviously-invalid ones never reach a vote round.

    The *output-side* leader can spot malformed outputs cheaply; the
    sending leader additionally drops transactions its own shard state
    already rejects.  (If either leader lies it is punished by reputation —
    modelled at the bench level; here leaders answer honestly or not based
    on their behaviour's vote hooks.)
    """
    filtered: dict[tuple[int, int], list[Transaction]] = {}
    for (i, j), txs in sorted(pair_txs.items()):
        sender_leader = ctx.node(ctx.committees[i].leader)
        state = sender_leader.shard_state
        kept = []
        for tx in txs:
            input_ok = (
                state is not None
                and state.validate(tx) is ValidationResult.VALID
            )
            output_ok = bool(tx.outputs) and all(o.amount > 0 for o in tx.outputs)
            if input_ok and output_ok:
                kept.append(tx)
            else:
                report.prefilter_savings += 1
        # One leader-to-leader enquiry per pair: O(1) extra messages.
        sender_leader.send(
            ctx.committees[j].leader,
            Tags.PREFILTER_ASK,
            tuple(tx.txid for tx in txs),
        )
        if kept:
            filtered[(i, j)] = kept
    ctx.net.run()
    return filtered


class _proxy:
    """Adapter letting the intra-phase audit helper write into InterReport."""

    def __init__(self, report: InterReport) -> None:
        self._report = report
        self.censorship_detected: list[int] = []
        self.silence_detected: list[int] = []
        self.equivocation_detected: list[int] = []
        self.retried: list[int] = []

    @property
    def recoveries(self) -> list[RecoveryEvent]:
        return self._report.recoveries
