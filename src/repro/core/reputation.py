"""Reputation updating and the reward mechanism (§IV-E, §IV-G, §VII).

Scoring (Eq. 1): a member's score is the cosine similarity between its vote
vector and the committee's decision vector over the round's transactions::

    s_i = cos(v_i, u) = (v_i · u) / (|v_i| |u|)  ∈ [-1, 1]

votes are +1 (Yes), -1 (No), 0 (Unknown); an all-Unknown vote scores 0 —
"nodes who always vote Unknown" keep reputation 0 and "could still get
little rewards" through g(0) = 1.

Reward mapping (Eq. 2)::

    g(x) = e^x          if x <= 0
           1 + ln(x+1)  if x >  0

Rewards are distributed proportionally to g(reputation); the sum of all
nodes' revenue equals the round's total transaction fees.

The leader assembles the ScoreList, runs Algorithm 3 on (ScoreList, VList)
and sends the agreement to C_R, which "updates their reputation by simply
adding the listed score".  Leaders also receive a small reputation bonus
(§VII-A: "leaders obtain some extra reputation as a bonus for their hard
work").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.core.consensus import InsideConsensus
from repro.core.structures import RoundContext
from repro.core.tags import Tags
from repro.net.message import payload_size

#: Extra reputation a leader earns for an honestly completed round (the
#: paper leaves the magnitude open; this is our reproduction constant).
LEADER_BONUS = 0.25


class ReputationStore:
    """Array-backed reputation map: one float64 row per node id.

    Implements the read/write surface protocol code uses on the previous
    plain-dict store (``[]``, ``get``, ``items`` …) so every consumer —
    selection tie-breaks, block headers, recovery punishment, reward
    distribution — is unchanged, while the per-round score application
    and the reward weighting run as single vectorized operations over the
    value array instead of per-pk dict traffic.  Values are IEEE doubles
    either way, so every stored float is bit-identical to the dict path's.
    """

    __slots__ = ("_ids", "_pks", "_values")

    def __init__(self, pks: Iterable[str] = ()) -> None:
        self._pks: list[str] = list(pks)
        self._ids: dict[str, int] = {pk: i for i, pk in enumerate(self._pks)}
        self._values: np.ndarray = np.zeros(len(self._pks))

    # -- mapping surface ---------------------------------------------------
    def __getitem__(self, pk: str) -> float:
        return float(self._values[self._ids[pk]])

    def get(self, pk: str, default: float = 0.0) -> float:
        index = self._ids.get(pk)
        return default if index is None else float(self._values[index])

    def __setitem__(self, pk: str, value: float) -> None:
        index = self._ids.get(pk)
        if index is None:
            # Growth is rare (populations are fixed per run); amortize it
            # the simple way rather than over-allocating.
            self._ids[pk] = len(self._pks)
            self._pks.append(pk)
            self._values = np.append(self._values, float(value))
        else:
            self._values[index] = value

    def __contains__(self, pk: object) -> bool:
        return pk in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._pks)

    def __len__(self) -> int:
        return len(self._pks)

    def keys(self) -> list[str]:
        return list(self._pks)

    def values(self) -> list[float]:
        return [float(v) for v in self._values]

    def items(self) -> list[tuple[str, float]]:
        return [(pk, float(v)) for pk, v in zip(self._pks, self._values)]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReputationStore):
            return self._pks == other._pks and np.array_equal(
                self._values, other._values
            )
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"ReputationStore({dict(self.items())!r})"

    # -- vectorized operations --------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The live value row vector, ordered like ``list(self)``."""
        return self._values

    def add_scores(self, items: Iterable[tuple[str, float]]) -> int:
        """Apply ``reputation[pk] += score`` for every pair, in one pass.

        Node populations are fixed per run, so every pk is already a row;
        committees are disjoint, so indices within one round's batch are
        unique and ``np.add.at`` applies exactly the per-pair additions the
        dict path performed, in the same order.
        """
        ids = self._ids
        rows = []
        scores = []
        for pk, score in items:
            rows.append(ids[pk])
            scores.append(score)
        if rows:
            np.add.at(self._values, rows, scores)
        return len(rows)


def cosine_scores(matrix: np.ndarray, decision: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 1 over a (members × transactions) vote matrix.

    Rows with zero norm (all Unknown) score 0, as does a zero decision
    vector (no transactions decided).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    decision = np.asarray(decision, dtype=np.float64)
    if matrix.ndim != 2 or decision.ndim != 1 or matrix.shape[1] != decision.size:
        raise ValueError("matrix must be (members × D) and decision length D")
    u_norm = float(np.linalg.norm(decision))
    if u_norm == 0.0 or matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0])
    row_norms = np.linalg.norm(matrix, axis=1)
    dots = matrix @ decision
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(row_norms > 0, dots / (row_norms * u_norm), 0.0)
    return np.clip(scores, -1.0, 1.0)


def g(x):
    """Eq. 2: the monotone map from reputation to positive reward weight."""
    x = np.asarray(x, dtype=np.float64)
    result = np.where(x <= 0, np.exp(np.minimum(x, 0.0)), 1.0 + np.log1p(np.maximum(x, 0.0)))
    return result if result.ndim else float(result)


def distribute_rewards(
    total_fees: float, reputations: Mapping[str, float]
) -> dict[str, float]:
    """Split ``total_fees`` proportionally to g(reputation) (§IV-G)."""
    if not reputations:
        return {}
    pks = list(reputations)
    if isinstance(reputations, ReputationStore):
        values = reputations.array  # id-indexed rows, ordered like pks
    else:
        values = np.array([reputations[pk] for pk in pks])
    weights = g(values)
    total_weight = float(np.sum(weights))
    if total_weight <= 0.0:
        return {pk: 0.0 for pk in pks}
    share = total_fees / total_weight
    return {pk: float(w) * share for pk, w in zip(pks, weights)}


@dataclass
class ReputationReport:
    scores: dict[int, dict[str, float]] = field(default_factory=dict)
    consensus_ok: dict[int, bool] = field(default_factory=dict)
    updated: int = 0
    elapsed: float = 0.0


def run_reputation_updating(ctx: RoundContext) -> ReputationReport:
    """Score every committee's members from the round's vote records, reach
    committee consensus on the ScoreList, and apply updates at C_R."""
    ctx.metrics.set_phase("reputation")
    started = ctx.net.now
    report = ReputationReport()

    # Score locally per committee (leader-side computation, O(c·D)).
    sessions: list[tuple[int, InsideConsensus]] = []
    for committee in ctx.committees:
        records = ctx.vote_records.get(committee.index, [])
        member_pks = [ctx.pk_of(mid) for mid in committee.members]
        if records:
            matrices = [rec[1] for rec in records]
            decisions = [rec[2] for rec in records]
            matrix = np.concatenate(matrices, axis=1)
            decision = np.concatenate(decisions)
            scores = cosine_scores(matrix, decision)
        else:
            scores = np.zeros(len(member_pks))
        score_list = {pk: float(s) for pk, s in zip(member_pks, scores)}
        report.scores[committee.index] = score_list
        consensus = InsideConsensus(
            ctx,
            committee.members,
            leader=committee.leader,
            sn=("SCORES", committee.index),
            payload=tuple(sorted(score_list.items())),
            session=f"scores:{committee.index}",
        )
        consensus.start()
        sessions.append((committee.index, consensus))
    ctx.net.run()

    # Leaders send the agreed ScoreList to C_R; C_R applies the updates.
    received: dict[int, tuple] = {}

    def on_scores(message) -> None:
        k, score_items, cert = message.payload
        received[k] = (score_items, cert)

    lead_referee = ctx.referee[0]
    ctx.node(lead_referee).on(Tags.SCORES_TO_CR, on_scores)
    for k, consensus in sessions:
        ok = consensus.outcome.success
        report.consensus_ok[k] = ok
        if not ok:
            continue
        committee = ctx.committees[k]
        leader_node = ctx.node(committee.leader)
        payload = (
            k,
            tuple(sorted(report.scores[k].items())),
            tuple(consensus.outcome.cert),
        )
        size = payload_size(payload)
        for rid in ctx.referee:
            leader_node.send(rid, Tags.SCORES_TO_CR, payload, size=size)
    ctx.net.run()

    store = ctx.reputation
    if isinstance(store, ReputationStore):
        # One vectorized row update per committee (the committees are
        # disjoint, so batching preserves the per-pair addition order).
        for k, (score_items, _cert) in received.items():
            report.updated += store.add_scores(score_items)
    else:
        for k, (score_items, _cert) in received.items():
            for pk, score in score_items:
                store[pk] = store.get(pk, 0.0) + float(score)
                report.updated += 1
    # Leader bonus for committees that completed their score consensus.
    for k, ok in report.consensus_ok.items():
        if ok:
            leader_pk = ctx.pk_of(ctx.committees[k].leader)
            ctx.reputation[leader_pk] = (
                ctx.reputation.get(leader_pk, 0.0) + LEADER_BONUS
            )
    report.elapsed = ctx.net.now - started
    return report


def score_summary(
    ctx: RoundContext, report: ReputationReport
) -> dict[str, list[float]]:
    """Group this round's scores by behaviour name (bench/test helper)."""
    by_behavior: dict[str, list[float]] = {}
    for k, score_list in report.scores.items():
        for mid in ctx.committees[k].members:
            pk = ctx.pk_of(mid)
            name = ctx.node(mid).behavior.name
            if pk in score_list:
                by_behavior.setdefault(name, []).append(score_list[pk])
    return by_behavior
