"""Referee committee, leaders and partial-set selection (§IV-F).

At the end of round r:

* C_R runs the SCRAPE beacon to produce the next round's randomness
  ``R^{r+1}`` (implemented in full in :mod:`repro.crypto.beacon`);
* prospective participants solve the PoW admission puzzle and submit
  solutions to C_R, which records the participant set ``P^{r+1}``;
* C_R picks the ``m`` *highest-reputation* participants as next-round
  leaders ("we directly choose nodes with the highest reputation as leaders
  … thus to enhance the performance and throughput", §VII-A);
* the next referee committee and the partial sets are drawn *uniformly*
  via the role-hash lottery (exact-size rank variant, see
  :mod:`repro.core.sortition`), keeping committee randomness intact — the
  design point RepChain trades away (§II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sortition import (
    REFEREE_ROLE,
    assign_partial_sets,
    rank_select,
    role_digests,
)
from repro.core.structures import RoundContext
from repro.core.tags import Tags
from repro.crypto.beacon import BeaconReport, run_beacon
from repro.crypto.pow import PowPuzzle, solve_pow, verify_pow


@dataclass
class SelectionReport:
    randomness: bytes = b""
    beacon: BeaconReport | None = None
    participants: list[str] = field(default_factory=list)
    next_referee: list[str] = field(default_factory=list)
    next_leaders: list[str] = field(default_factory=list)
    next_partials: list[list[str]] = field(default_factory=list)
    rejected_pow: int = 0
    #: True when PoW participation could not staff the next round's key
    #: roles (only reachable under injected faults — partitions/churn can
    #: cut PoW submissions off from the referee) and the incumbents were
    #: held over for one round instead of aborting the run.
    held_over: bool = False
    elapsed: float = 0.0


def run_selection(ctx: RoundContext) -> SelectionReport:
    ctx.metrics.set_phase("selection")
    started = ctx.net.now
    report = SelectionReport()
    params = ctx.params

    # -- 1. SCRAPE beacon within C_R ---------------------------------------
    corrupt_dealers = [
        idx
        for idx, rid in enumerate(ctx.referee)
        if ctx.node(rid).behavior.is_malicious
    ]
    withhold = [
        idx for idx, rid in enumerate(ctx.referee) if not ctx.node(rid).online
    ]
    beacon_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=int.from_bytes(ctx.randomness[:8], "big"),
            spawn_key=(ctx.round_number,),
        )
    )
    randomness, beacon_report = run_beacon(
        len(ctx.referee),
        ctx.round_number + 1,
        beacon_rng,
        corrupt_dealers=corrupt_dealers,
        withhold=withhold,
    )
    report.randomness = randomness
    report.beacon = beacon_report

    # -- 2. PoW admission ------------------------------------------------------
    puzzle = PowPuzzle(
        round_number=ctx.round_number + 1,
        randomness=ctx.randomness,
        difficulty_bits=params.pow_difficulty_bits,
    )
    solutions: dict[str, object] = {}

    def on_solution(message) -> None:
        solution = message.payload
        if verify_pow(puzzle, solution):
            solutions[solution.pk] = solution
        else:
            report.rejected_pow += 1

    # Collection must survive referee churn: submissions go to the first
    # *online* referee member (identical to referee[0] in fault-free runs,
    # so this changes nothing without fault injection).  Every referee
    # member registers the handler, so any online target tallies.
    online_referees = [rid for rid in ctx.referee if ctx.node(rid).online]
    if not online_referees:
        raise RuntimeError("entire referee committee offline during selection")
    lead_referee = online_referees[0]
    for rid in ctx.referee:
        ctx.node(rid).on(Tags.POW_SOLUTION, on_solution)
    for node in ctx.nodes.values():
        if not node.online:
            continue
        solution = solve_pow(puzzle, node.pk)
        node.send(lead_referee, Tags.POW_SOLUTION, solution)
    ctx.net.run()
    report.participants = sorted(solutions)

    # -- 3. next-round key roles ------------------------------------------------
    participants = list(report.participants)
    if len(participants) < params.referee_size + params.m * (1 + params.lam):
        # Unreachable fault-free (every online node submits and n covers
        # the key-role demand by construction), but a partition or churn
        # window can cut submissions off from the referee.  The run must
        # degrade, not die: hold the incumbents over for one round and
        # record it — the lottery resumes as soon as PoW flows again.
        report.held_over = True
        report.next_referee = [ctx.pk_of(rid) for rid in ctx.referee]
        report.next_leaders = [
            ctx.pk_of(spec.leader) for spec in ctx.committees
        ]
        report.next_partials = [
            [ctx.pk_of(pid) for pid in spec.partial] for spec in ctx.committees
        ]
        report.elapsed = ctx.net.now - started
        return report
    next_referee = rank_select(
        participants,
        ctx.round_number + 1,
        randomness,
        REFEREE_ROLE,
        params.referee_size,
    )
    referee_set = set(next_referee)
    remaining = [pk for pk in participants if pk not in referee_set]
    # Leaders: the m highest-reputation remaining participants; ties broken
    # by the role hash so the choice stays deterministic and unbiased.
    # One batched digest pass replaces the per-pk role_hash in the sort
    # key (digest byte order == role-hash integer order).
    leader_digests = role_digests(
        ctx.round_number + 1, randomness, remaining, "LEADER"
    )
    reputation = ctx.reputation
    order = sorted(
        range(len(remaining)),
        key=lambda i: (
            -reputation.get(remaining[i], 0.0),
            leader_digests[i],
        ),
    )
    next_leaders = [remaining[i] for i in order[: params.m]]
    leader_set = set(next_leaders)
    pool = [pk for pk in remaining if pk not in leader_set]
    # Partial sets: uniform rank lottery, then committee assignment by
    # H(r+1 || R^r || PK || PARTIAL_SET_MEMBER) mod m, topped up in rank
    # order so every committee gets exactly λ.
    partials = assign_partial_sets(
        pool, ctx.round_number + 1, randomness, params.m, params.lam
    )
    report.next_referee = next_referee
    report.next_leaders = next_leaders
    report.next_partials = partials
    for rid in ctx.referee:
        ctx.metrics.record_storage(rid, len(participants))
    report.elapsed = ctx.net.now - started
    return report
