"""Message tags, matching the paper's pseudocode labels."""


class Tags:
    # Committee configuration (Alg. 2)
    CONFIG = "CONFIG"
    MEM_LIST = "MEM_LIST"
    MEMBER = "MEMBER"

    # Inside-committee consensus (Alg. 3)
    PROPOSE = "PROPOSE"
    ECHO = "ECHO"
    CONFIRM = "CONFIRM"
    STOP = "STOP"  # equivocation alarm

    # Semi-commitment exchange (Alg. 4)
    SEMI_COM = "SEMI_COM"
    SEMI_COM_SET = "SEMI_COM_SET"  # CR -> key members: validated set

    # Intra-committee consensus (Alg. 5)
    TX_LIST = "TX_LIST"
    VOTE = "VOTE"
    INTRA = "INTRA"

    # Inter-committee consensus
    INTER_SEND = "INTER_SEND"  # l_i -> l_j and partial_j
    INTER_RESULT = "INTER_RESULT"  # l_j -> l_i
    INTER_FWD = "INTER_FWD"  # partial_j -> l_j after the 2Γ timeout
    PREFILTER_ASK = "PREFILTER_ASK"  # §VIII-A extension
    PREFILTER_REPLY = "PREFILTER_REPLY"

    # Reputation updating
    SCORES = "SCORES"
    SCORES_TO_CR = "SCORES_TO_CR"

    # Recovery (Alg. 6)
    IMPEACH = "IMPEACH"
    IMPEACH_VOTE = "IMPEACH_VOTE"
    ACCUSE = "ACCUSE"  # partial member -> CR with witness + cert
    NEW = "NEW"  # CR -> committee: new leader

    # Selection & block
    POW_SOLUTION = "POW_SOLUTION"
    BLOCK = "BLOCK"
    UTXO_FINAL = "UTXO_FINAL"
