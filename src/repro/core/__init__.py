"""CycLedger protocol core.

One round (§III-E) runs these phases in order, each implemented by a module
here and orchestrated by :class:`~repro.core.protocol.CycLedger`:

1. Committee configuration         — :mod:`repro.core.committee` (Alg. 2)
2. Semi-commitment exchanging      — :mod:`repro.core.semicommit` (Alg. 4)
3. Intra-committee consensus       — :mod:`repro.core.intra` (Alg. 5)
4. Inter-committee consensus       — :mod:`repro.core.inter`
5. Reputation updating             — :mod:`repro.core.reputation`
6. Referee/leader/partial selection — :mod:`repro.core.selection`
7. Block generation & propagation  — :mod:`repro.core.blockgen`

Shared machinery: :mod:`repro.core.consensus` (Alg. 3, the inside-committee
broadcast consensus), :mod:`repro.core.recovery` (witnesses, impeachment and
leader re-selection, Alg. 6), :mod:`repro.core.sortition` (Alg. 1).
"""

from repro.core.config import ProtocolParams
from repro.core.protocol import CycLedger, RoundReport
from repro.core.sortition import crypto_sort
from repro.core.consensus import InsideConsensus, ConsensusOutcome
from repro.core.reputation import cosine_scores, g, distribute_rewards

__all__ = [
    "ProtocolParams",
    "CycLedger",
    "RoundReport",
    "cosine_scores",
    "g",
    "distribute_rewards",
    "crypto_sort",
    "InsideConsensus",
    "ConsensusOutcome",
]
