"""Streaming round-report emission and RSS sampling (ISSUE 10).

Long soaks cannot afford the legacy ``ledger.reports`` list: at 10k rounds
the report objects (each holding phase reports and timings) dominate RSS.
Every backend now routes its freshly-built round report through
:func:`emit_round_report`, which

* stamps the report's ``reports_streamed`` sequence number (identical
  whether or not a sink is attached, so streamed and in-memory runs stay
  byte-identical row-for-row);
* forwards it to an optional ``ledger.report_sink`` callable (e.g.
  :class:`repro.exp.results.JsonlReportWriter`) before retention trimming;
* appends it to ``ledger.reports`` and trims that list to
  ``ledger.report_retention`` entries when a bound is set (``None`` keeps
  the legacy unbounded behaviour).

``rss_kb`` reads ``VmRSS`` from ``/proc/self/status`` — unlike
``ru_maxrss`` it is a *current* figure, so a soak can detect a plateau
rather than a high-water mark.  On platforms without procfs it returns 0;
callers treat 0 as "sampling unavailable".
"""

from __future__ import annotations

from typing import Any


def rss_kb() -> int:
    """Current resident set size in KiB, or 0 when unavailable."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux platforms
        pass
    return 0


def emit_round_report(ledger: Any, report: Any) -> None:
    """Publish one finished round report through the ledger's report path.

    Must be called exactly once per round, after the report is fully
    populated.  The sink sees the report *after* its sequence number is
    stamped, so a JSONL stream carries the same rows a legacy in-memory
    run would produce.
    """
    ledger.reports_streamed += 1
    report.reports_streamed = ledger.reports_streamed
    sink = ledger.report_sink
    if sink is not None:
        sink(report)
    ledger.reports.append(report)
    retention = ledger.report_retention
    if retention is not None and len(ledger.reports) > retention:
        del ledger.reports[: len(ledger.reports) - retention]
