"""Round-level data structures shared by the phase executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.crypto.pki import PKI
from repro.ledger.chain import Chain
from repro.ledger.state import ShardState
from repro.ledger.utxo import UTXOSet
from repro.ledger.workload import TaggedTx
from repro.metrics.counters import MetricsCollector
from repro.net.simulator import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ProtocolParams
    from repro.core.node import CycNode


@dataclass(slots=True)
class CommitteeSpec:
    """One committee C_k for one round: leader, partial set, all members."""

    index: int
    leader: int
    partial: tuple[int, ...]
    members: list[int]  # includes leader and partial members

    def __post_init__(self) -> None:
        member_set = set(self.members)
        if self.leader not in member_set:
            raise ValueError("leader must be a member")
        if not set(self.partial) <= member_set:
            raise ValueError("partial set must be members")
        if self.leader in self.partial:
            raise ValueError("leader cannot be in the partial set")

    @property
    def key_members(self) -> list[int]:
        return [self.leader, *self.partial]

    @property
    def size(self) -> int:
        return len(self.members)

    def replace_leader(self, new_leader: int) -> None:
        """Leader re-selection: promote a partial member (Alg. 6 aftermath)."""
        if new_leader not in self.partial:
            raise ValueError("new leader must come from the partial set")
        self.partial = tuple(p for p in self.partial if p != new_leader)
        self.leader = new_leader


@dataclass(slots=True)
class RecoveryEvent:
    """Record of one leader re-selection (for reports and punishment)."""

    committee: int
    old_leader: int
    new_leader: int | None
    kind: str  # witness kind that triggered it
    accuser: int
    succeeded: bool
    sim_time: float


@dataclass(slots=True)
class RoundContext:
    """Everything the seven phase executors need for one round."""

    params: "ProtocolParams"
    pki: PKI
    net: Network
    metrics: MetricsCollector
    rng: np.random.Generator
    round_number: int
    randomness: bytes
    nodes: dict[int, "CycNode"]
    committees: list[CommitteeSpec]
    referee: list[int]
    reputation: dict[str, float]
    mempools: list[list[TaggedTx]]
    shard_states: list[ShardState]
    chain: Chain
    global_utxos: UTXOSet = field(default_factory=UTXOSet)
    rewards: dict[str, float] = field(default_factory=dict)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    # Cross-phase artifacts
    phase_reports: dict[str, Any] = field(default_factory=dict)
    semi_commitments: dict[int, bytes] = field(default_factory=dict)
    member_lists: dict[int, tuple] = field(default_factory=dict)
    intra_results: dict[int, Any] = field(default_factory=dict)
    inter_results: dict[int, Any] = field(default_factory=dict)
    vote_records: dict[int, Any] = field(default_factory=dict)
    score_lists: dict[int, Any] = field(default_factory=dict)
    expelled_leaders: set[int] = field(default_factory=set)
    # Shard-parallel execution (ProtocolParams.shard_workers >= 1): the
    # executor the vote-round/semicommit fan-out dispatches through, or
    # None for the historical interleaved path.
    shard_executor: Any = None
    # Lazy pk -> node index backing :meth:`node_by_pk` (populations are
    # fixed for a context's lifetime, so one build serves every lookup).
    _pk_index: "dict[str, CycNode] | None" = field(
        default=None, repr=False, compare=False
    )

    # -- helpers ------------------------------------------------------------
    def node(self, node_id: int) -> "CycNode":
        return self.nodes[node_id]

    def pk_of(self, node_id: int) -> str:
        return self.nodes[node_id].pk

    def node_by_pk(self, pk: str) -> "CycNode":
        index = self._pk_index
        if index is None:
            self._pk_index = index = {
                node.pk: node for node in self.nodes.values()
            }
        node = index.get(pk)
        if node is None:
            raise KeyError(pk)
        return node

    def committee(self, index: int) -> CommitteeSpec:
        return self.committees[index]

    def rep_of(self, node_id: int) -> float:
        return self.reputation.get(self.pk_of(node_id), 0.0)

    def referee_threshold(self) -> int:
        """Votes needed for a referee-side majority: > |C_R| / 2."""
        return len(self.referee) // 2 + 1
