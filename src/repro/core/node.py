"""CycLedger participant node."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.crypto.pki import KeyPair
from repro.metrics.counters import Roles
from repro.net.node import ProtocolNode
from repro.nodes.behaviors import Behavior, HonestBehavior

if TYPE_CHECKING:  # pragma: no cover
    from repro.ledger.state import ShardState


class CycNode(ProtocolNode):
    """A protocol participant.

    ``capacity`` models honest computing power: the number of transactions
    the node can validate within a round's voting window (§VII-A — the
    quantity reputation is designed to reflect).  ``behavior`` is the
    strategy object consulted at every point a Byzantine node could deviate.

    Role flags are reassigned every round by the selection/configuration
    phases.

    Slotted (ISSUE 7): at n=4096 the per-node ``__dict__`` alone was the
    dominant resident cost of an idle node.  ``ticket`` is the round's
    sortition ticket, assigned by the orchestrators' ``_assign_round``.
    """

    __slots__ = (
        "capacity",
        "budget_left",
        "behavior",
        "address",
        "committee_id",
        "is_leader",
        "is_partial",
        "is_referee",
        "member_list",
        "shard_state",
        "ticket",
    )

    def __init__(
        self,
        node_id: int,
        keypair: KeyPair,
        capacity: int = 10_000,
        behavior: Behavior | None = None,
    ) -> None:
        super().__init__(node_id, keypair)
        self.capacity = capacity
        self.budget_left: int | None = None  # per-round validation budget
        self.behavior = behavior if behavior is not None else HonestBehavior()
        self.address = f"addr-{node_id:06d}"
        # Per-round role (set by the orchestrator each round)
        self.committee_id: int | None = None
        self.is_leader = False
        self.is_partial = False
        self.is_referee = False
        # Per-round protocol state
        self.member_list: set[tuple[str, str]] = set()  # <PK, address> pairs
        self.shard_state: "ShardState | None" = None
        self.ticket = None  # SortitionTicket, set by _assign_round

    @property
    def is_key_member(self) -> bool:
        return self.is_leader or self.is_partial

    @property
    def role(self) -> str:
        if self.is_referee:
            return Roles.REFEREE
        if self.is_key_member:
            return Roles.KEY
        return Roles.COMMON

    def take_budget(self, want: int) -> int:
        """Consume up to ``want`` units of this round's validation budget.

        Capacity is a *per-round* resource (§VII-A: what a node can judge
        "within a given time"), shared across all the round's vote lists —
        intra, inter sending side and inter receiving side.
        """
        if self.budget_left is None:
            self.budget_left = self.capacity
        granted = max(0, min(want, self.budget_left))
        self.budget_left -= granted
        return granted

    def reset_round_state(self) -> None:
        self.budget_left = None
        self.committee_id = None
        self.is_leader = False
        self.is_partial = False
        self.is_referee = False
        self.member_list = set()
        self.shard_state = None
        # Drop the mailbox entirely (it is lazily re-created on the first
        # handler registration), so a node idle next round carries none.
        self.handlers = None

    def identity(self) -> tuple[str, str]:
        """The ``<PK, address>`` pair used in member lists."""
        return (self.pk, self.address)
