"""Semi-commitment exchanging — Algorithm 4 (§IV-B, §V-D).

1. Each leader unites the member list ``S``, computes
   ``SEMI_COM_k = H(S)``, and sends ``(SEMI_COM, S)`` signed to every
   referee member and to its own partial set.
2. The referee committee checks that every listed member is registered and
   that the commitment is valid, reaches inside-consensus on the set of
   valid semi-commitments, transmits it to all key members, "and expel[s]
   the cheating leaders afterward".
3. Every partial-set member cross-checks the commitment accepted by C_R
   against the member list its leader claimed and its own locally
   maintained list; any mismatch is a witness and triggers the recovery
   procedure of :mod:`repro.core.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.consensus import InsideConsensus
from repro.core.recovery import Witness, attempt_recovery
from repro.core.structures import RecoveryEvent, RoundContext
from repro.core.tags import Tags
from repro.crypto.commitment import (
    canonical_member_list,
    semi_commitment,
    superset_consistent,
)
from repro.crypto.signatures import encode_statement, sign, signed_by_encoded
from repro.net.message import payload_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


@dataclass
class SemiCommitReport:
    """Outcome of the semi-commitment exchange."""

    accepted: dict[int, bytes] = field(default_factory=dict)
    cheaters_detected: list[int] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    elapsed: float = 0.0


class _SemiCommitSession:
    def __init__(self, ctx: RoundContext) -> None:
        self.ctx = ctx
        # referee-side: received claims per committee: (commitment, list, sig)
        self.claims: dict[int, dict[int, tuple]] = {}
        # partial-side: what each partial member heard from its leader
        self.partial_view: dict[int, tuple | None] = {}
        # partial-side: commitment announced by C_R
        self.cr_announced: dict[int, dict[int, bytes]] = {}
        # Every referee verifies the same leader-signed SEMI_COM statement;
        # encode each distinct claim once per session.  Keyed by the full
        # statement content, so a Byzantine leader varying the list under
        # one commitment can never alias a cache slot.
        self._enc_claims: dict[tuple, bytes] = {}
        # Shard-parallel path: claims prepared off the main network by
        # repro.core.shards, popped by _leader_send.  Pop semantics keeps
        # recovery correct — a post-impeachment resend finds the slot
        # empty and recomputes inline for the *new* leader.
        self._precomputed: dict[int, tuple] = {}

    def start(self) -> None:
        ctx = self.ctx
        for rid in ctx.referee:
            ctx.node(rid).on(Tags.SEMI_COM, self._make_on_claim_referee(rid))
        for committee in ctx.committees:
            for pid in committee.partial:
                ctx.node(pid).on(Tags.SEMI_COM, self._make_on_claim_partial(pid))
                ctx.node(pid).on(
                    Tags.SEMI_COM_SET, self._make_on_announce(pid, committee.index)
                )
            ctx.node(committee.leader).on(
                Tags.SEMI_COM_SET, lambda message: None
            )
        for committee in ctx.committees:
            self._leader_send(committee.index)

    def _leader_send(self, k: int) -> None:
        ctx = self.ctx
        committee = ctx.committees[k]
        leader = ctx.node(committee.leader)
        prepared = self._precomputed.pop(k, None)
        if prepared is not None:
            commitment, claimed_list, sig = prepared
        else:
            true_list = canonical_member_list(leader.member_list)
            true_commitment = semi_commitment(true_list)
            commitment, claimed_list = leader.behavior.semi_commitment_claim(
                leader, true_commitment, true_list
            )
            statement = ("SEMI_COM", ctx.round_number, commitment, claimed_list)
            sig = sign(leader.keypair, statement)
        payload = (k, commitment, claimed_list, sig)
        size = payload_size(payload)
        for rid in ctx.referee:
            leader.send(rid, Tags.SEMI_COM, payload, size=size)
        for pid in committee.partial:
            leader.send(pid, Tags.SEMI_COM, payload, size=size)
        # Leaders also note down all other committees' commitments once C_R
        # redistributes them — O(m) storage (Table II).

    def _make_on_claim_referee(self, rid: int):
        def handler(message: "Message") -> None:
            k, commitment, claimed_list, sig = message.payload
            committee = self.ctx.committees[k]
            leader_pk = self.ctx.pk_of(committee.leader)
            statement = ("SEMI_COM", self.ctx.round_number, commitment, claimed_list)
            try:
                enc = self._enc_claims.get(statement)
                if enc is None:
                    enc = encode_statement(statement)
                    self._enc_claims[statement] = enc
            except TypeError:  # unhashable crafted list: encode directly
                enc = encode_statement(statement)
            if not signed_by_encoded(self.ctx.pki, sig, enc, leader_pk):
                return
            self.claims.setdefault(rid, {})[k] = (commitment, claimed_list, sig)

        return handler

    def _make_on_claim_partial(self, pid: int):
        def handler(message: "Message") -> None:
            self.partial_view[pid] = message.payload

        return handler

    def _make_on_announce(self, pid: int, k: int):
        def handler(message: "Message") -> None:
            announced: dict[int, bytes] = message.payload
            self.cr_announced.setdefault(pid, {}).update(announced)

        return handler

    # -- referee-side validation after claims arrive ------------------------
    def referee_validate_and_announce(self, report: SemiCommitReport) -> None:
        """Steps 2 of Algorithm 4, run once claims have quiesced."""
        ctx = self.ctx
        lead_referee = ctx.referee[0]
        claims = self.claims.get(lead_referee, {})
        valid: dict[int, bytes] = {}
        for k, (commitment, claimed_list, _sig) in sorted(claims.items()):
            registered = all(
                ctx.pki.is_registered(pk) for pk, _addr in claimed_list
            )
            binding = semi_commitment(claimed_list) == commitment
            if registered and binding:
                valid[k] = commitment
            else:
                report.cheaters_detected.append(k)
        # Inside-consensus within C_R on the valid set (each referee node
        # would lead its own check; one session establishes the certificate).
        consensus = InsideConsensus(
            ctx,
            ctx.referee,
            leader=lead_referee,
            sn=("SEMI_COM_SET", ctx.round_number),
            payload=tuple(sorted((k, v) for k, v in valid.items())),
            session="semicommit:cr",
        )
        consensus.start()
        ctx.net.run()
        if consensus.outcome.success:
            report.accepted = dict(valid)
            ctx.semi_commitments.update(valid)
            for k, (commitment, claimed_list, _sig) in claims.items():
                if k in valid:
                    ctx.member_lists[k] = tuple(claimed_list)
            # Algorithm 4 line 17: EVERY referee member transmits the valid
            # set to every leader/key member — the O(m²) intermediary
            # traffic Table II attributes to C_R members.
            announcement = dict(valid)
            announcement_size = payload_size(announcement)
            for rid in ctx.referee:
                announcer = ctx.node(rid)
                for committee in ctx.committees:
                    for kid in committee.key_members:
                        announcer.send(
                            kid,
                            Tags.SEMI_COM_SET,
                            announcement,
                            size=announcement_size,
                        )
            ctx.net.run()

    # -- partial-set cross-check (step 3) -----------------------------------
    def partial_crosscheck(self, report: SemiCommitReport) -> None:
        ctx = self.ctx
        for committee in list(ctx.committees):
            for pid in committee.partial:
                node = ctx.node(pid)
                if node.behavior.is_malicious or not node.online:
                    continue
                view = self.partial_view.get(pid)
                if view is None:
                    continue  # silent leader: handled by phase timeout rules
                k, commitment, claimed_list, sig = view
                local = ctx.node(pid).member_list
                consistent = (
                    semi_commitment(claimed_list) == commitment
                    and superset_consistent(claimed_list, local)
                    and self.cr_announced.get(pid, {}).get(k) == commitment
                )
                if consistent:
                    continue
                witness = Witness(
                    kind="bad_semicommit",
                    committee=k,
                    leader_pk=ctx.pk_of(committee.leader),
                    round_number=ctx.round_number,
                    evidence=(sig, commitment, tuple(claimed_list)),
                )
                event = attempt_recovery(
                    ctx, committee, pid, witness, session=f"semirec:{k}:{pid}"
                )
                report.recoveries.append(event)
                if event.succeeded:
                    # The new leader "needs to make a new semi-commitment of
                    # the committee via the semi-commitment exchanging
                    # protocol".
                    self._leader_send(k)
                    ctx.net.run()
                    self.referee_validate_and_announce(report)
                break  # one recovery per committee per round


def run_semi_commitment_exchange(ctx: RoundContext) -> SemiCommitReport:
    """Execute Algorithm 4 across all committees."""
    ctx.metrics.set_phase("semicommit")
    started = ctx.net.now
    report = SemiCommitReport()
    session = _SemiCommitSession(ctx)
    if ctx.shard_executor is not None:
        from repro.core.shards import prepare_semicommit_claims

        session._precomputed = prepare_semicommit_claims(ctx)
    session.start()
    ctx.net.run()
    session.referee_validate_and_announce(report)
    session.partial_crosscheck(report)
    # Storage bookkeeping: every leader stores all m commitments (O(m));
    # every referee member stores the member lists it received (O(m·c)).
    for committee in ctx.committees:
        ctx.metrics.record_storage(committee.leader, len(report.accepted))
    for rid in ctx.referee:
        claimed = session.claims.get(rid, {})
        ctx.metrics.record_storage(
            rid, sum(len(entry[1]) for entry in claimed.values())
        )
    report.elapsed = ctx.net.now - started
    return report
