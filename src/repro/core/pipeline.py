"""Composable phase pipeline for round orchestration.

The paper fixes the phase order (§III-E: committee configuration →
semi-commitment → intra/inter consensus → reputation → selection → block
generation), but the orchestrator should not hard-code it: scenario
injection, instrumentation, and future protocol variants all want to attach
to phase boundaries without forking ``run_round``.  A :class:`Phase` wraps
one phase executor behind the uniform ``run(ctx) -> report`` interface; a
:class:`PhasePipeline` holds them in order, runs pre/post hooks around each
one, and records per-phase simulated-time spans.

Hooks come in two granularities:

* **phase hooks** — ``hook(ctx, phase_name)`` before/after one named phase;
  this is where the scenario driver installs network partitions and link
  degradations (the fabric is reset per round, so effects must be
  re-applied after the reset and before the first phase runs);
* **round hooks** — ``hook(ledger)`` before role assignment and
  ``hook(ledger, report)`` after the round report is assembled; this is
  where per-round reconfiguration (adversary ramps, crash/churn offline
  windows) happens, since those must land before committees are drawn.

Timings use the network's simulated clock, never the wall clock, so a
:class:`~repro.core.protocol.RoundReport` stays byte-identical across runs
of the same seed.

Phases additionally carry **data-dependency annotations** (``needs`` for
same-round inputs, ``needs_prev`` for previous-round inputs).  The
:class:`OverlapScheduler` composes each round's measured phase spans into a
continuous end-to-end timeline on those annotations: in ``none`` mode
rounds serialize (the historical model), while in ``semicommit`` mode a
phase whose ``needs_prev`` names specific previous-round phases may start
as soon as those finish — which lets round r+1's committee-configuration +
semi-commitment prefix run concurrently (in sim time) with round r's
block-generation suffix, the paper's signature pipelining claim (§III-E,
§V).  The scheduler only re-times what already ran; execution order, RNG
consumption and final state are identical in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import CycLedger, RoundReport
    from repro.core.structures import RoundContext

PhaseFn = Callable[["RoundContext"], Any]
PhaseHook = Callable[["RoundContext", str], None]
RoundStartHook = Callable[["CycLedger"], None]
RoundEndHook = Callable[["CycLedger", "RoundReport"], None]

PRE = "pre"
POST = "post"

#: Overlap modes understood by :class:`OverlapScheduler` (and by
#: ``ProtocolParams.overlap``).
OVERLAP_NONE = "none"
OVERLAP_SEMICOMMIT = "semicommit"
OVERLAP_MODES = (OVERLAP_NONE, OVERLAP_SEMICOMMIT)


@dataclass(frozen=True)
class Phase:
    """One protocol phase: a name, its executor, and its data dependencies.

    Executors read their inputs from the :class:`RoundContext` (including
    earlier phases' reports via ``ctx.phase_reports``) and return a report
    object, which the pipeline stores back under ``name``.

    ``needs`` names the same-round phases whose outputs this phase reads
    (``None`` means "the immediately preceding phase", the plain chain).
    ``needs_prev`` names previous-round phases whose outputs this phase
    reads; a phase with an explicit ``needs_prev`` does NOT implicitly wait
    for the previous round to finish, which is what lets the overlap
    scheduler start it early.  Annotations are static facts about data
    flow — whether they are exploited is the scheduler's mode decision.
    """

    name: str
    run: PhaseFn
    needs: tuple[str, ...] | None = None
    needs_prev: tuple[str, ...] = ()


class PhasePipeline:
    """Ordered registry of :class:`Phase` objects plus their hooks."""

    def __init__(self, phases: Iterable[Phase] = ()) -> None:
        self._phases: list[Phase] = []
        self._phase_hooks: dict[tuple[str, str], list[PhaseHook]] = {}
        self._round_hooks: dict[str, list[Callable]] = {PRE: [], POST: []}
        #: sim-time span of each phase in the most recent :meth:`execute`.
        self.last_timings: dict[str, float] = {}
        #: the scenario driver bound to this pipeline, if any — hooks are
        #: append-only, so a pipeline can serve at most one driver (and
        #: therefore one ledger with a scenario).
        self.scenario_driver: Any = None
        #: the adversary-policy driver bound to this pipeline, if any —
        #: same append-only-hooks constraint as ``scenario_driver``.
        self.policy_driver: Any = None
        #: first ledger that ran on this pipeline; scenario/policy
        #: attachment requires a pipeline nobody else has claimed, in
        #: either order.
        self.owner: Any = None
        for phase in phases:
            self.register(phase)

    # -- registry ----------------------------------------------------------
    def register(
        self,
        phase: Phase,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> None:
        """Add a phase, by default at the end; ``before``/``after`` insert
        relative to an existing phase (at most one may be given)."""
        if before is not None and after is not None:
            raise ValueError("give at most one of before/after")
        if any(p.name == phase.name for p in self._phases):
            raise ValueError(f"duplicate phase {phase.name!r}")
        if before is None and after is None:
            self._phases.append(phase)
            return
        anchor = before if before is not None else after
        index = self.index_of(anchor)  # raises on unknown anchor
        self._phases.insert(index if before is not None else index + 1, phase)

    def index_of(self, name: str) -> int:
        for index, phase in enumerate(self._phases):
            if phase.name == name:
                return index
        raise KeyError(f"unknown phase {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    # -- hooks -------------------------------------------------------------
    def add_phase_hook(self, phase_name: str, when: str, hook: PhaseHook) -> None:
        """Attach ``hook(ctx, phase_name)`` to run ``when`` ("pre"/"post")
        around the named phase."""
        if when not in (PRE, POST):
            raise ValueError(f"when must be 'pre' or 'post', got {when!r}")
        self.index_of(phase_name)  # validate the phase exists
        self._phase_hooks.setdefault((phase_name, when), []).append(hook)

    def add_round_hook(self, when: str, hook: Callable) -> None:
        """Attach a round-boundary hook: ``hook(ledger)`` at "pre" (before
        role assignment), ``hook(ledger, report)`` at "post"."""
        if when not in (PRE, POST):
            raise ValueError(f"when must be 'pre' or 'post', got {when!r}")
        self._round_hooks[when].append(hook)

    # -- execution ---------------------------------------------------------
    def begin_round(self, ledger: "CycLedger") -> None:
        for hook in self._round_hooks[PRE]:
            hook(ledger)

    def end_round(self, ledger: "CycLedger", report: "RoundReport") -> None:
        for hook in self._round_hooks[POST]:
            hook(ledger, report)

    def execute(self, ctx: "RoundContext") -> dict[str, Any]:
        """Run every registered phase in order against ``ctx``.

        Each phase's report lands in ``ctx.phase_reports[name]`` (so later
        phases can read earlier results) and the full mapping is returned.
        """
        self.last_timings = {}
        for phase in self._phases:
            for hook in self._phase_hooks.get((phase.name, PRE), ()):
                hook(ctx, phase.name)
            started = ctx.net.now
            report = phase.run(ctx)
            ctx.phase_reports[phase.name] = report
            self.last_timings[phase.name] = ctx.net.now - started
            for hook in self._phase_hooks.get((phase.name, POST), ()):
                hook(ctx, phase.name)
        return dict(ctx.phase_reports)


# -- the continuous-time overlap scheduler -----------------------------------
@dataclass(frozen=True)
class PhaseWindow:
    """One phase's span on the continuous cross-round timeline."""

    name: str
    start: float
    end: float


@dataclass(frozen=True)
class RoundWindow:
    """One round's span on the continuous cross-round timeline."""

    round_number: int
    start: float
    end: float
    phases: tuple[PhaseWindow, ...]

    @property
    def span(self) -> float:
        """Wall-to-wall sim time this round occupied on the timeline."""
        return self.end - self.start


class OverlapScheduler:
    """Composes measured per-round phase spans into an end-to-end timeline.

    The simulator executes rounds one at a time (identical state and RNG
    consumption in every mode); this scheduler re-times the measured phase
    spans on the continuous clock according to the phases' data-dependency
    annotations:

    * ``none`` — every round starts when the previous one ends; the
      timeline is the plain cumulative sum of round sim-times (and each
      round's window length equals its ``sim_time`` exactly).
    * ``semicommit`` — a phase with ``needs_prev`` starts at the latest
      end of those previous-round phases instead of waiting for the whole
      previous round; same-round ``needs`` edges still apply.  For the
      CycLedger pipeline that overlaps round r+1's config + semi-commit
      prefix with round r's block-generation suffix (§III-E, §V), so the
      makespan drops by ≈ min(block span, prefix span) per round pair.

    ``makespan`` after R observed rounds is the end-to-end sim-time
    latency the deployment would report — the quantity the paper's
    pipelining argument is about.
    """

    def __init__(self, mode: str = OVERLAP_NONE) -> None:
        if mode not in OVERLAP_MODES:
            raise ValueError(
                f"unknown overlap mode {mode!r} "
                f"(known: {', '.join(OVERLAP_MODES)})"
            )
        self.mode = mode
        self._prev_ends: dict[str, float] = {}
        self._prev_round_end = 0.0
        self._validated_names: tuple[str, ...] | None = None
        #: end of the latest-finishing scheduled phase so far (the
        #: end-to-end latency of everything observed).
        self.makespan = 0.0

    def _validate_annotations(self, phases: Sequence[Phase]) -> None:
        """Reject dependency annotations naming unknown phases.

        A typo'd ``needs_prev`` would otherwise resolve to the timeline
        origin forever and silently deflate every round window (inflating
        the reported pipelining gain); a typo'd ``needs`` would silently
        drop the same-round ordering edge.  Validated once per phase
        roster, so the per-round cost is one tuple comparison.
        """
        names = tuple(p.name for p in phases)
        if names == self._validated_names:
            return
        seen: set[str] = set()
        all_names = set(names)
        for phase in phases:
            if phase.needs is not None:
                for dep in phase.needs:
                    if dep not in seen:
                        raise ValueError(
                            f"phase {phase.name!r} needs {dep!r}, which is "
                            "not an earlier phase of this pipeline"
                        )
            for dep in phase.needs_prev:
                if dep not in all_names:
                    raise ValueError(
                        f"phase {phase.name!r} needs_prev {dep!r}, which "
                        "is not a phase of this pipeline"
                    )
            seen.add(phase.name)
        self._validated_names = names

    def observe_round(
        self,
        round_number: int,
        phases: Sequence[Phase],
        durations: Mapping[str, float],
        round_sim_time: float,
    ) -> RoundWindow:
        """Place one executed round's phases on the timeline.

        ``durations`` is the pipeline's ``last_timings`` mapping;
        ``round_sim_time`` is the round's total span on the round-local
        clock (``net.now`` at round end), which anchors the ``none``-mode
        window length exactly (no float drift against ``sim_time``).
        """
        self._validate_annotations(phases)
        base = self._prev_round_end
        ends: dict[str, float] = {}
        windows: list[PhaseWindow] = []
        for index, phase in enumerate(phases):
            candidates: list[float] = []
            if phase.needs is not None:
                candidates += [
                    ends[dep] for dep in phase.needs if dep in ends
                ]
            elif index > 0:
                candidates.append(windows[-1].end)
            if self.mode == OVERLAP_NONE:
                if index == 0:
                    candidates.append(base)
            elif phase.needs_prev:
                # Unseen deps (only possible in the very first observed
                # round) anchor at the timeline base, never before it.
                candidates += [
                    self._prev_ends.get(dep, base)
                    for dep in phase.needs_prev
                ]
            elif index == 0:
                candidates.append(base)
            start = max(candidates, default=base)
            end = start + durations.get(phase.name, 0.0)
            ends[phase.name] = end
            windows.append(PhaseWindow(phase.name, start, end))
        if self.mode == OVERLAP_NONE:
            start, end = base, base + round_sim_time
        else:
            start = min((w.start for w in windows), default=base)
            end = max((w.end for w in windows), default=base)
        self._prev_ends = ends
        self._prev_round_end = end
        self.makespan = max(self.makespan, end)
        return RoundWindow(
            round_number=round_number,
            start=start,
            end=end,
            phases=tuple(windows),
        )
