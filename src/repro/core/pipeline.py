"""Composable phase pipeline for round orchestration.

The paper fixes the phase order (§III-E: committee configuration →
semi-commitment → intra/inter consensus → reputation → selection → block
generation), but the orchestrator should not hard-code it: scenario
injection, instrumentation, and future protocol variants all want to attach
to phase boundaries without forking ``run_round``.  A :class:`Phase` wraps
one phase executor behind the uniform ``run(ctx) -> report`` interface; a
:class:`PhasePipeline` holds them in order, runs pre/post hooks around each
one, and records per-phase simulated-time spans.

Hooks come in two granularities:

* **phase hooks** — ``hook(ctx, phase_name)`` before/after one named phase;
  this is where the scenario driver installs network partitions and link
  degradations (the fabric is reset per round, so effects must be
  re-applied after the reset and before the first phase runs);
* **round hooks** — ``hook(ledger)`` before role assignment and
  ``hook(ledger, report)`` after the round report is assembled; this is
  where per-round reconfiguration (adversary ramps, crash/churn offline
  windows) happens, since those must land before committees are drawn.

Timings use the network's simulated clock, never the wall clock, so a
:class:`~repro.core.protocol.RoundReport` stays byte-identical across runs
of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import CycLedger, RoundReport
    from repro.core.structures import RoundContext

PhaseFn = Callable[["RoundContext"], Any]
PhaseHook = Callable[["RoundContext", str], None]
RoundStartHook = Callable[["CycLedger"], None]
RoundEndHook = Callable[["CycLedger", "RoundReport"], None]

PRE = "pre"
POST = "post"


@dataclass(frozen=True)
class Phase:
    """One protocol phase: a name and its executor.

    Executors read their inputs from the :class:`RoundContext` (including
    earlier phases' reports via ``ctx.phase_reports``) and return a report
    object, which the pipeline stores back under ``name``.
    """

    name: str
    run: PhaseFn


class PhasePipeline:
    """Ordered registry of :class:`Phase` objects plus their hooks."""

    def __init__(self, phases: Iterable[Phase] = ()) -> None:
        self._phases: list[Phase] = []
        self._phase_hooks: dict[tuple[str, str], list[PhaseHook]] = {}
        self._round_hooks: dict[str, list[Callable]] = {PRE: [], POST: []}
        #: sim-time span of each phase in the most recent :meth:`execute`.
        self.last_timings: dict[str, float] = {}
        #: the scenario driver bound to this pipeline, if any — hooks are
        #: append-only, so a pipeline can serve at most one driver (and
        #: therefore one ledger with a scenario).
        self.scenario_driver: Any = None
        #: first ledger that ran on this pipeline; scenario attachment
        #: requires a pipeline nobody else has claimed, in either order.
        self.owner: Any = None
        for phase in phases:
            self.register(phase)

    # -- registry ----------------------------------------------------------
    def register(
        self,
        phase: Phase,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> None:
        """Add a phase, by default at the end; ``before``/``after`` insert
        relative to an existing phase (at most one may be given)."""
        if before is not None and after is not None:
            raise ValueError("give at most one of before/after")
        if any(p.name == phase.name for p in self._phases):
            raise ValueError(f"duplicate phase {phase.name!r}")
        if before is None and after is None:
            self._phases.append(phase)
            return
        anchor = before if before is not None else after
        index = self.index_of(anchor)  # raises on unknown anchor
        self._phases.insert(index if before is not None else index + 1, phase)

    def index_of(self, name: str) -> int:
        for index, phase in enumerate(self._phases):
            if phase.name == name:
                return index
        raise KeyError(f"unknown phase {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    # -- hooks -------------------------------------------------------------
    def add_phase_hook(self, phase_name: str, when: str, hook: PhaseHook) -> None:
        """Attach ``hook(ctx, phase_name)`` to run ``when`` ("pre"/"post")
        around the named phase."""
        if when not in (PRE, POST):
            raise ValueError(f"when must be 'pre' or 'post', got {when!r}")
        self.index_of(phase_name)  # validate the phase exists
        self._phase_hooks.setdefault((phase_name, when), []).append(hook)

    def add_round_hook(self, when: str, hook: Callable) -> None:
        """Attach a round-boundary hook: ``hook(ledger)`` at "pre" (before
        role assignment), ``hook(ledger, report)`` at "post"."""
        if when not in (PRE, POST):
            raise ValueError(f"when must be 'pre' or 'post', got {when!r}")
        self._round_hooks[when].append(hook)

    # -- execution ---------------------------------------------------------
    def begin_round(self, ledger: "CycLedger") -> None:
        for hook in self._round_hooks[PRE]:
            hook(ledger)

    def end_round(self, ledger: "CycLedger", report: "RoundReport") -> None:
        for hook in self._round_hooks[POST]:
            hook(ledger, report)

    def execute(self, ctx: "RoundContext") -> dict[str, Any]:
        """Run every registered phase in order against ``ctx``.

        Each phase's report lands in ``ctx.phase_reports[name]`` (so later
        phases can read earlier results) and the full mapping is returned.
        """
        self.last_timings = {}
        for phase in self._phases:
            for hook in self._phase_hooks.get((phase.name, PRE), ()):
                hook(ctx, phase.name)
            started = ctx.net.now
            report = phase.run(ctx)
            ctx.phase_reports[phase.name] = report
            self.last_timings[phase.name] = ctx.net.now - started
            for hook in self._phase_hooks.get((phase.name, POST), ()):
                hook(ctx, phase.name)
        return dict(ctx.phase_reports)
