"""The CycLedger protocol orchestrator.

Drives full rounds over one long-lived network simulator shared across
rounds (rewound in place each round, with the elapsed span folded into the
continuous ``global_now`` clock), with persistent chain, UTXO state,
reputation, rewards, mempool, and workload across rounds.  Phase order per
§III-E:

    committee configuration → semi-commitment exchange → intra-committee
    consensus → inter-committee consensus → reputation updating →
    referee/leader/partial-set selection → block generation & propagation

The configuration + semi-commitment prefix of round r+1 depends only on
round r's selection outcome, never on its block — the data-flow fact behind
the paper's pipelining claim.  The phases below carry those dependency
annotations, and the :class:`~repro.core.pipeline.OverlapScheduler`
(``ProtocolParams.overlap="semicommit"``) uses them to report the
overlapped end-to-end timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.blockgen import BlockReport, run_block_generation
from repro.core.committee import ConfigReport, run_committee_configuration
from repro.core.config import ProtocolParams
from repro.core.inter import InterReport, run_inter_consensus
from repro.core.intra import IntraReport, run_intra_consensus
from repro.core.pipeline import Phase, PhasePipeline
from repro.core.reporting import emit_round_report, rss_kb
from repro.core.reputation import ReputationReport, run_reputation_updating
from repro.core.selection import SelectionReport, run_selection
from repro.core.semicommit import SemiCommitReport, run_semi_commitment_exchange
from repro.core.sortition import (
    REFEREE_ROLE,
    assign_partial_sets,
    crypto_sort,
    rank_select,
)
from repro.core.structures import CommitteeSpec, RoundContext
from repro.crypto.hashing import H
from repro.ledger.chain import Block
from repro.metrics.counters import MetricsCollector
from repro.net.topology import Channels, build_cycledger_topology
from repro.nodes.adversary import AdversaryConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.policies import AdversaryPolicy
    from repro.scenarios.scenario import Scenario


#: Canonical phase names (§III-E order).  They match the phase labels the
#: executors set on the metrics collector, so pipeline timings and message
#: census rows line up.
PHASE_CONFIG = "config"
PHASE_SEMICOMMIT = "semicommit"
PHASE_INTRA = "intra"
PHASE_INTER = "inter"
PHASE_REPUTATION = "reputation"
PHASE_SELECTION = "selection"
PHASE_BLOCK = "block"


def _run_block_phase(ctx) -> BlockReport:
    """Block generation needs the selection phase's outcome; under the
    pipeline it reads it from the shared context instead of a positional
    argument."""
    return run_block_generation(ctx, ctx.phase_reports[PHASE_SELECTION])


def build_default_pipeline() -> PhasePipeline:
    """The paper's seven-phase round, as a fresh (mutable) pipeline.

    The cross-round ``needs_prev`` annotations encode §III-E's data flow:
    committee configuration of round r+1 reads only round r's selection
    outcome (roles and beacon randomness), while intra-committee consensus
    must wait for round r's block (committees validate against the
    post-block UTXO view).  Under ``overlap=semicommit`` the scheduler
    therefore runs the config + semi-commit prefix of r+1 concurrently (in
    sim time) with the block-generation suffix of r.
    """
    return PhasePipeline(
        (
            Phase(
                PHASE_CONFIG,
                run_committee_configuration,
                needs_prev=(PHASE_SELECTION,),
            ),
            Phase(PHASE_SEMICOMMIT, run_semi_commitment_exchange),
            Phase(
                PHASE_INTRA,
                run_intra_consensus,
                needs=(PHASE_SEMICOMMIT,),
                needs_prev=(PHASE_BLOCK,),
            ),
            Phase(PHASE_INTER, run_inter_consensus),
            Phase(PHASE_REPUTATION, run_reputation_updating),
            Phase(PHASE_SELECTION, run_selection),
            Phase(PHASE_BLOCK, _run_block_phase),
        )
    )


@dataclass
class RoundReport:
    """Everything one round produced (per-phase reports plus headline
    numbers for benches)."""

    round_number: int
    block: Block | None
    config: ConfigReport
    semicommit: SemiCommitReport
    intra: IntraReport
    inter: InterReport
    reputation: ReputationReport
    selection: SelectionReport
    blockgen: BlockReport
    submitted: int = 0
    packed: int = 0
    cross_packed: int = 0
    recoveries: int = 0
    messages: int = 0
    bytes_sent: int = 0
    sim_time: float = 0.0
    reliable_channels: int = 0
    dropped: int = 0  # messages the fabric dropped (partitions, filters)
    # Sim-time span of each pipeline phase and completion times of leader
    # re-selections — both on the simulated clock, so reports stay
    # deterministic per seed.
    phase_sim_times: dict[str, float] = field(default_factory=dict)
    recovery_times: tuple[float, ...] = ()
    # Continuous-timeline window of this round under the active overlap
    # mode (timeline_end - timeline_start == sim_time when overlap=none),
    # plus the persistent-mempool queue health at settlement.
    timeline_start: float = 0.0
    timeline_end: float = 0.0
    queue_depth: int = 0
    tx_evicted: int = 0
    tx_age_mean: float = 0.0
    tx_age_max: float = 0.0
    # Epoch-scale observability (ISSUE 10): RSS sample (0 unless
    # ProtocolParams.sample_rss) and this report's 1-based emission
    # sequence number (stamped by repro.core.reporting.emit_round_report).
    rss_peak_kb: int = 0
    reports_streamed: int = 0

    # -- flat report contract (repro.backends.base.SimRoundReport) -----------
    # Every executable backend's reports expose these attributes, so the
    # serialization layer (repro.exp.results.round_row) never dispatches on
    # the backend type; here they derive from the per-phase reports.
    @property
    def intra_accepted(self) -> int:
        return sum(len(txs) for txs in self.intra.accepted_by_cr.values())

    @property
    def inter_accepted(self) -> int:
        return sum(len(txs) for txs in self.inter.accepted.values())

    @property
    def inter_voted(self) -> int:
        return sum(len(r.txs) for r in self.inter.send_rounds.values())

    @property
    def prefilter_savings(self) -> int:
        return self.inter.prefilter_savings

    @property
    def intra_elapsed(self) -> float:
        return self.intra.elapsed

    @property
    def inter_elapsed(self) -> float:
        return self.inter.elapsed

    @property
    def blockgen_elapsed(self) -> float:
        return self.blockgen.elapsed

    @property
    def blockgen_subblocks(self) -> int:
        return self.blockgen.parallel_subblocks

    @property
    def blockgen_width(self) -> int:
        return self.blockgen.parallel_width


class CycLedger:
    """A running CycLedger deployment.

    >>> ledger = CycLedger(ProtocolParams(n=64, m=4, lam=3, referee_size=8))
    >>> reports = ledger.run(rounds=3)
    >>> len(ledger.chain)
    3
    """

    #: registry name in :mod:`repro.backends` (the first LedgerBackend)
    backend_name = "cycledger"

    def __init__(
        self,
        params: ProtocolParams,
        adversary: AdversaryConfig | None = None,
        capacity_fn: Callable[[int, np.random.Generator], int] | None = None,
        scenario: "Scenario | None" = None,
        pipeline: PhasePipeline | None = None,
        policy: "AdversaryPolicy | None" = None,
    ) -> None:
        # Local import: repro.backends.base builds on core modules and must
        # stay importable before this one finishes loading.
        from repro.backends.base import attach_pipeline, init_shared_state
        from repro.core.shards import make_shard_executor

        self.params = params
        if params.shard_workers > 0 and scenario is not None:
            # Scenario fault injection (partitions, link degradations)
            # acts on the main network fabric; committee mini-networks
            # would silently bypass it.  Reject rather than mislead.
            raise ValueError(
                "shard_workers is incompatible with fault-injection "
                "scenarios (faults act on the shared network fabric)"
            )
        if params.shard_workers > 0 and policy is not None:
            # Same fabric argument: policy behaviour overrides and eclipse
            # partitions act on the shared network/node state.
            raise ValueError(
                "shard_workers is incompatible with adversary policies "
                "(policies act on the shared network fabric and node "
                "behaviours)"
            )
        self._shard_executor = make_shard_executor(
            params.shard_workers, self.backend_name
        )
        # All common state — node population, RNG sub-stream fan-out
        # (protocol / workload / adversary / jitter / scenario), network,
        # genesis staging — comes from the one shared constructor every
        # executable backend uses, so backend arms of a sweep point share
        # streams by construction (the seed-pairing contract).
        scenario_ss, policy_ss = init_shared_state(
            self, params, adversary, capacity_fn
        )
        self.randomness = H("GENESIS_RANDOMNESS", params.seed)
        # Round 1 key roles: uniform lotteries over all nodes (no reputation
        # yet, so the leader rule degenerates to the hash rank too).
        all_pks = [node.pk for node in self.nodes.values()]
        self._next_referee = rank_select(
            all_pks, 1, self.randomness, REFEREE_ROLE, params.referee_size
        )
        referee_set = set(self._next_referee)
        rest = [pk for pk in all_pks if pk not in referee_set]
        self._next_leaders = rank_select(rest, 1, self.randomness, "LEADER", params.m)
        leader_set = set(self._next_leaders)
        pool = [pk for pk in rest if pk not in leader_set]
        self._next_partials = assign_partial_sets(
            pool, 1, self.randomness, params.m, params.lam
        )
        self.reports: list[RoundReport] = []
        attach_pipeline(
            self,
            pipeline,
            scenario,
            scenario_ss,
            build_default_pipeline,
            policy=policy,
            policy_ss=policy_ss,
        )

    # -- helpers ------------------------------------------------------------
    def _node_id(self, pk: str) -> int:
        return self._pk_to_id[pk]

    # -- round assembly -----------------------------------------------------
    def _assign_round(self) -> tuple[list[CommitteeSpec], list[int], Channels]:
        """Committee configuration inputs: who plays which role this round."""
        params = self.params
        referee_ids = [self._node_id(pk) for pk in self._next_referee]
        leader_ids = [self._node_id(pk) for pk in self._next_leaders]
        partial_ids = [
            [self._node_id(pk) for pk in pks] for pks in self._next_partials
        ]
        key_and_referee = set(referee_ids) | set(leader_ids)
        for pks in partial_ids:
            key_and_referee |= set(pks)

        for node in self.nodes.values():
            node.reset_round_state()
            node.online = not self.adversary.is_offline(node.node_id)

        # Common members find their committee via Algorithm 1.
        committee_commons: list[list[int]] = [[] for _ in range(params.m)]
        for node in self.nodes.values():
            if node.node_id in key_and_referee:
                continue
            ticket = crypto_sort(
                node.keypair, self.round_number, self.randomness, params.m
            )
            node.ticket = ticket
            committee_commons[ticket.committee_id].append(node.node_id)

        committees: list[CommitteeSpec] = []
        for k in range(params.m):
            members = [leader_ids[k], *partial_ids[k], *committee_commons[k]]
            spec = CommitteeSpec(
                index=k,
                leader=leader_ids[k],
                partial=tuple(partial_ids[k]),
                members=members,
            )
            committees.append(spec)
            leader_node = self.nodes[leader_ids[k]]
            leader_node.is_leader = True
            leader_node.behavior = self.adversary.leader_behavior(leader_ids[k])
            for pid in partial_ids[k]:
                partial_node = self.nodes[pid]
                partial_node.is_partial = True
                partial_node.behavior = self.adversary.voter_behavior(pid)
            for mid in members:
                node = self.nodes[mid]
                node.committee_id = k
                node.shard_state = self.shard_states[k]
                if not node.is_leader and not node.is_partial:
                    node.behavior = self.adversary.voter_behavior(mid)
        for rid in referee_ids:
            node = self.nodes[rid]
            node.is_referee = True
            node.behavior = self.adversary.voter_behavior(rid)

        self._channels = build_cycledger_topology(
            [(spec.members, spec.key_members) for spec in committees],
            referee_ids,
            into=self._channels,
        )
        return committees, referee_ids, self._channels

    # -- the main loop -----------------------------------------------------
    def run_round(self) -> RoundReport:
        params = self.params
        self.pipeline.begin_round(self)
        committees, referee_ids, channels = self._assign_round()
        round_metrics = MetricsCollector()
        for node in self.nodes.values():
            round_metrics.set_role(node.node_id, node.role)
        for cls, count in channels.counts.items():
            round_metrics.record_channels(cls, count)
        net = self.net
        net.reset(metrics=round_metrics)
        net.set_channel_classifier(channels.classify)

        arrivals = self.mempool.admit(
            self.round_number,
            net.global_now,
            legacy_count=2 * params.m * params.tx_per_committee,
            cross_shard_ratio=params.cross_shard_ratio,
            invalid_ratio=params.invalid_ratio,
        )
        mempools = self.mempool.offered()

        ctx = RoundContext(
            params=params,
            pki=self.pki,
            net=net,
            metrics=round_metrics,
            rng=self.rng,
            round_number=self.round_number,
            randomness=self.randomness,
            nodes=self.nodes,
            committees=committees,
            referee=referee_ids,
            reputation=self.reputation,
            mempools=mempools,
            shard_states=self.shard_states,
            chain=self.chain,
            global_utxos=self.global_utxos,
            rewards=self.rewards,
            shard_executor=self._shard_executor,
        )

        phase_reports = self.pipeline.execute(ctx)
        selection_report: SelectionReport = phase_reports[PHASE_SELECTION]
        block_report: BlockReport = phase_reports[PHASE_BLOCK]

        # Expelled leaders already had the cube-root punishment applied by
        # the recovery module; nothing further here (§VII-B).
        packed_ids = (
            {tx.txid for tx in block_report.block.transactions}
            if block_report.block
            else set()
        )
        queue_stats = self.mempool.settle(
            packed_ids, self.round_number, net.global_now
        )
        window = self.overlap_scheduler.observe_round(
            self.round_number,
            tuple(self.pipeline),
            self.pipeline.last_timings,
            net.now,
        )

        cross_ids = {
            t.tx.txid for pool in mempools for t in pool if t.cross_shard
        }
        report = RoundReport(
            round_number=self.round_number,
            block=block_report.block,
            config=phase_reports[PHASE_CONFIG],
            semicommit=phase_reports[PHASE_SEMICOMMIT],
            intra=phase_reports[PHASE_INTRA],
            inter=phase_reports[PHASE_INTER],
            reputation=phase_reports[PHASE_REPUTATION],
            selection=selection_report,
            blockgen=block_report,
            submitted=arrivals,
            packed=block_report.packed,
            cross_packed=len(packed_ids & cross_ids),
            recoveries=len(ctx.recoveries),
            messages=round_metrics.total_messages(),
            bytes_sent=round_metrics.total_bytes(),
            sim_time=net.now,
            reliable_channels=channels.total_reliable(),
            dropped=net.dropped_messages,
            phase_sim_times=dict(self.pipeline.last_timings),
            recovery_times=tuple(e.sim_time for e in ctx.recoveries),
            timeline_start=window.start,
            timeline_end=window.end,
            queue_depth=queue_stats.depth,
            tx_evicted=queue_stats.evicted,
            tx_age_mean=queue_stats.age_mean,
            tx_age_max=queue_stats.age_max,
            rss_peak_kb=rss_kb() if self.params.sample_rss else 0,
        )
        self.metrics.merge(round_metrics)
        emit_round_report(self, report)

        # Stage the next round.
        self._next_referee = selection_report.next_referee
        self._next_leaders = selection_report.next_leaders
        self._next_partials = selection_report.next_partials
        self.randomness = selection_report.randomness
        self.round_number += 1
        self.adversary.advance_round()
        self.pipeline.end_round(self, report)
        return report

    def run(self, rounds: int) -> list[RoundReport]:
        return [self.run_round() for _ in range(rounds)]

    # -- convenience accessors ------------------------------------------------
    def total_packed(self) -> int:
        return self.chain.total_transactions()

    def reputation_by_behavior(self) -> dict[str, list[float]]:
        grouped: dict[str, list[float]] = {}
        for node in self.nodes.values():
            grouped.setdefault(node.behavior.name, []).append(
                self.reputation.get(node.pk, 0.0)
            )
        return grouped
