"""Block generation and propagation (§IV-G), plus the §VIII-B parallel
block-generation extension.

"By the end of the round, the referee committee comes to an agreement using
Algorithm 3 on the set of valid TXdecSETs and pack them up, together with
all participants of next round S^{r+1}, their reputations W^{r+1}, the
elected referee committee C_R^{r+1}, leaders and partial sets as a block
B^r."

Propagation reuses the existing channel graph — C_R sends the block to the
committee leaders (referee channels) who relay it inside their committees
(intra channels); there is no extra all-to-all broadcast layer.  After the
block lands, every committee updates its shard UTXO view, reaches consensus
on the final UTXO list and Remaining TX List, and the leader ships both to
C_R, which forwards them to the corresponding *new* partial sets.

Fees: the round's total transaction fees are distributed proportionally to
``g(reputation)`` (§IV-G) into a protocol-level reward account per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.consensus import InsideConsensus
from repro.core.reputation import ReputationStore, distribute_rewards
from repro.core.selection import SelectionReport
from repro.core.structures import RoundContext
from repro.core.tags import Tags
from repro.ledger.chain import GENESIS_PREV_HASH, Block
from repro.ledger.transaction import Transaction
from repro.ledger.utxo import ValidationResult, transaction_fee, validate_transaction


@dataclass
class BlockReport:
    block: Block | None = None
    packed: int = 0
    rejected_at_cr: int = 0
    total_fees: int = 0
    remaining_by_committee: dict[int, int] = field(default_factory=dict)
    parallel_subblocks: int = 0
    parallel_width: int = 0
    rewards: dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0


def relevant(tx_a: Transaction, tx_b: Transaction) -> bool:
    """§VIII-B: two transactions are *relevant* if they share an input
    outpoint or one spends the other's output."""
    a_in = set(tx_a.outpoints())
    b_in = set(tx_b.outpoints())
    if a_in & b_in:
        return True
    a_out = {(tx_a.txid, i) for i in range(len(tx_a.outputs))}
    b_out = {(tx_b.txid, i) for i in range(len(tx_b.outputs))}
    return bool(a_in & b_out) or bool(b_in & a_out)


def parallel_subblocks(txs: list[Transaction]) -> list[list[Transaction]]:
    """Partition transactions into groups of pairwise-irrelevant ones.

    Builds the relevance graph and greedily colours it; each colour class is
    a sub-block whose members "can be processed in parallel" (§VIII-B).
    """
    if not txs:
        return []
    graph = nx.Graph()
    graph.add_nodes_from(range(len(txs)))
    # Index by outpoint so graph construction is O(total inputs), not O(n²).
    spenders: dict[tuple[bytes, int], list[int]] = {}
    producers: dict[tuple[bytes, int], int] = {}
    for idx, tx in enumerate(txs):
        for outpoint in tx.outpoints():
            spenders.setdefault(outpoint, []).append(idx)
        for out_index in range(len(tx.outputs)):
            producers[(tx.txid, out_index)] = idx
    for outpoint, ids in spenders.items():
        for a in ids:
            for b in ids:
                if a < b:
                    graph.add_edge(a, b)  # same UTXO as input
        if outpoint in producers:
            for a in ids:
                if a != producers[outpoint]:
                    graph.add_edge(a, producers[outpoint])  # spends output
    colors = nx.coloring.greedy_color(graph, strategy="largest_first")
    n_colors = max(colors.values()) + 1 if colors else 0
    groups: list[list[Transaction]] = [[] for _ in range(n_colors)]
    for idx, color in colors.items():
        groups[color].append(txs[idx])
    return groups


def run_block_generation(
    ctx: RoundContext, selection: SelectionReport
) -> BlockReport:
    ctx.metrics.set_phase("block")
    started = ctx.net.now
    report = BlockReport()

    # -- gather certified transaction sets -----------------------------------
    candidates: list[Transaction] = []
    seen: set[bytes] = set()
    for k in sorted(ctx.intra_results):
        for tx in ctx.intra_results[k]:
            if tx.txid not in seen:
                seen.add(tx.txid)
                candidates.append(tx)
    for key in sorted(ctx.inter_results):
        for tx in ctx.inter_results[key]:
            if tx.txid not in seen:
                seen.add(tx.txid)
                candidates.append(tx)

    # C_R holds the O(n) global view (Table II) and re-checks V before
    # packing; committee certificates should make rejections rare.
    packed: list[Transaction] = []
    for tx in candidates:
        if validate_transaction(tx, ctx.global_utxos) is ValidationResult.VALID:
            report.total_fees += transaction_fee(tx, ctx.global_utxos)
            ctx.global_utxos.apply_transaction(tx)
            packed.append(tx)
        else:
            report.rejected_at_cr += 1
    report.packed = len(packed)

    if ctx.params.parallel_block_generation:
        groups = parallel_subblocks(packed)
        report.parallel_subblocks = len(groups)
        report.parallel_width = max((len(g) for g in groups), default=0)

    # -- C_R consensus on the block ------------------------------------------
    prev_hash = ctx.chain.head.hash if len(ctx.chain) else GENESIS_PREV_HASH
    block = Block(
        round_number=ctx.round_number,
        prev_hash=prev_hash,
        transactions=tuple(packed),
        randomness=selection.randomness,
        participants=tuple(selection.participants),
        reputations=tuple(sorted(ctx.reputation.items())),
        referee=tuple(selection.next_referee),
        leaders=tuple(selection.next_leaders),
        partial_sets=tuple(tuple(p) for p in selection.next_partials),
    )
    consensus = InsideConsensus(
        ctx,
        ctx.referee,
        leader=ctx.referee[0],
        sn=("BLOCK", ctx.round_number),
        payload=block.hash,
        session=f"block:{ctx.round_number}",
    )
    consensus.start()
    ctx.net.run()
    if not consensus.outcome.success:
        report.elapsed = ctx.net.now - started
        return report  # void block this round (prob. bounded by §V-B)
    ctx.chain.append(block)
    report.block = block

    # -- propagation: C_R -> leaders -> members --------------------------------
    block_size = max(1, len(packed)) * 64 + len(block.participants) * 8
    delivered: set[int] = set()

    def make_on_block_member(mid: int):
        def handler(message) -> None:
            delivered.add(mid)

        return handler

    def make_on_block_leader(k: int):
        def handler(message) -> None:
            committee = ctx.committees[k]
            delivered.add(committee.leader)
            leader_node = ctx.node(committee.leader)
            for mid in committee.members:
                if mid != committee.leader:
                    leader_node.send(mid, Tags.BLOCK, message.payload, size=block_size)

        return handler

    for committee in ctx.committees:
        ctx.node(committee.leader).on(Tags.BLOCK, make_on_block_leader(committee.index))
        for mid in committee.members:
            if mid != committee.leader:
                ctx.node(mid).on(Tags.BLOCK, make_on_block_member(mid))
    lead_referee_node = ctx.node(ctx.referee[0])
    for committee in ctx.committees:
        lead_referee_node.send(
            committee.leader, Tags.BLOCK, block.hash, size=block_size
        )
    ctx.net.run()

    # -- shard state updates + final UTXO / Remaining-TX consensus -------------
    packed_ids = {tx.txid for tx in packed}
    final_sessions: list[tuple[int, InsideConsensus]] = []
    for k, state in enumerate(ctx.shard_states):
        state.apply_block(packed)
        remaining = [
            t.tx
            for t in ctx.mempools[k]
            if t.tx.txid not in packed_ids and t.intended_valid
        ]
        report.remaining_by_committee[k] = len(remaining)
        committee = ctx.committees[k]
        for mid in committee.members:
            ctx.metrics.record_storage(mid, state.size() + len(remaining))
        consensus_k = InsideConsensus(
            ctx,
            committee.members,
            leader=committee.leader,
            sn=("UTXO_FINAL", k),
            payload=(
                state.digest_items(),
                tuple(tx.txid for tx in remaining),
            ),
            session=f"utxofinal:{k}",
        )
        consensus_k.start()
        final_sessions.append((k, consensus_k))
    ctx.net.run()

    # Leaders ship the agreed lists to C_R, which binds them to committee
    # ids and forwards them to the corresponding new partial sets.
    def on_utxo_final(message) -> None:
        k, digest, cert = message.payload
        next_partial_pks = (
            selection.next_partials[k] if k < len(selection.next_partials) else []
        )
        for pk in next_partial_pks:
            try:
                target = ctx.node_by_pk(pk)
            except KeyError:
                continue
            ctx.node(ctx.referee[0]).send(
                target.node_id, f"{Tags.UTXO_FINAL}:fwd", (k, digest)
            )

    ctx.node(ctx.referee[0]).on(Tags.UTXO_FINAL, on_utxo_final)
    for k, consensus_k in final_sessions:
        if not consensus_k.outcome.success:
            continue
        committee = ctx.committees[k]
        ctx.node(committee.leader).send(
            ctx.referee[0],
            Tags.UTXO_FINAL,
            (k, consensus_k.outcome.digest, tuple(consensus_k.outcome.cert)),
        )
    ctx.net.run()

    # -- fee distribution ----------------------------------------------------
    all_reps = ctx.reputation
    if not isinstance(all_reps, ReputationStore):
        # Plain-dict contexts (sandbox harnesses) may not cover every node.
        all_reps = {
            node.pk: ctx.reputation.get(node.pk, 0.0)
            for node in ctx.nodes.values()
        }
    round_rewards = distribute_rewards(float(report.total_fees), all_reps)
    for pk, reward in round_rewards.items():
        ctx.rewards[pk] = ctx.rewards.get(pk, 0.0) + reward
    report.rewards = round_rewards
    for rid in ctx.referee:
        ctx.metrics.record_storage(rid, len(ctx.global_utxos))
    report.elapsed = ctx.net.now - started
    return report
