"""Cryptographic sortition (Algorithm 1) and role lotteries (§IV-F).

Algorithm 1 assigns an undetermined node to a committee::

    <hash, pi> <- VRF_SK(COMMON_MEMBER || r || R_r)
    id <- hash mod m

Role selection for round r+1 uses hash thresholds::

    H(r+1 || R_r || PK_i || role) <= d_r(role)

The paper sizes committees *in expectation*; for reproducible simulation we
also provide :func:`rank_select`, the exact-size variant: sort candidates by
the same hash and take the required count.  This is the standard
derandomization (identical distribution, fixed size) and is what the round
orchestrator uses; the threshold form is kept and tested for fidelity.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto.hashing import H_int, canonical_bytes
from repro.crypto.pki import PKI, KeyPair
from repro.crypto.vrf import VRFOutput, vrf_eval, vrf_verify

COMMON_MEMBER = "COMMON_MEMBER"
REFEREE_ROLE = "REFEREE_COMMITTEE_MEMBER"
PARTIAL_ROLE = "PARTIAL_SET_MEMBER"

_HASH_SPACE = 1 << 256


@dataclass(frozen=True, slots=True)
class SortitionTicket:
    """The triple ``(id, hash, pi)`` returned by Algorithm 1."""

    committee_id: int
    vrf: VRFOutput


def sortition_input(round_number: int, randomness: bytes) -> tuple:
    """The VRF input Q = COMMON_MEMBER || r || R_r."""
    return (COMMON_MEMBER, round_number, randomness)


def crypto_sort(
    keypair: KeyPair, round_number: int, randomness: bytes, m: int
) -> SortitionTicket:
    """Algorithm 1: which committee does this node belong to this round?"""
    if m <= 0:
        raise ValueError("m must be positive")
    vrf = vrf_eval(keypair, sortition_input(round_number, randomness))
    return SortitionTicket(committee_id=vrf.value % m, vrf=vrf)


def verify_sortition(
    pki: PKI,
    ticket: SortitionTicket,
    round_number: int,
    randomness: bytes,
    m: int,
) -> bool:
    """Key-member side check of a joining node's ticket (Alg. 2 line 7)."""
    if not vrf_verify(pki, ticket.vrf, sortition_input(round_number, randomness)):
        return False
    return ticket.committee_id == ticket.vrf.value % m


# -- role lotteries (§IV-F) --------------------------------------------------


def role_hash(round_number: int, randomness: bytes, pk: str, role: str) -> int:
    """H(r+1 || R_r || PK_i || role) as a 256-bit integer.

    Scalar form, kept as the reference ("legacy") lottery; the batched
    :func:`role_digests` produces the same digests for a whole roster at
    once and is what the selection paths use at scale.  Equality of the
    two is asserted in the test suite, byte for byte.
    """
    return H_int("ROLE", round_number, randomness, pk, role)


def role_digests(
    round_number: int, randomness: bytes, pks: Sequence[str], role: str
) -> list[bytes]:
    """Batched role lottery: one 32-byte digest per roster entry.

    All draws for one (round, randomness, role) share the SHA-256 prefix
    ``enc("ROLE") || enc(r) || enc(R)``, so the prefix is absorbed once and
    only ``enc(PK) || enc(role)`` is hashed per node — the per-node cost
    drops from four encodings plus a full hash to one encoding plus a
    32-byte-state copy.  Digest bytes compare lexicographically exactly as
    the 256-bit big-endian integers :func:`role_hash` returns, so rankings
    computed on either representation are identical.
    """
    base = hashlib.sha256()
    base.update(canonical_bytes("ROLE"))
    base.update(canonical_bytes(round_number))
    base.update(canonical_bytes(randomness))
    role_enc = canonical_bytes(role)
    digests = []
    for pk in pks:
        h = base.copy()
        h.update(canonical_bytes(pk))
        h.update(role_enc)
        digests.append(h.digest())
    return digests


def passes_threshold(
    round_number: int, randomness: bytes, pk: str, role: str, difficulty: float
) -> bool:
    """Threshold form: selected iff the role hash is below d_r(role).

    ``difficulty`` is the selection *probability* (d_r(role) normalized by
    the hash space), the natural parametrization when the network size
    changes between rounds.
    """
    if not (0.0 <= difficulty <= 1.0):
        raise ValueError("difficulty is a probability")
    return role_hash(round_number, randomness, pk, role) < int(
        difficulty * _HASH_SPACE
    )


def passes_threshold_many(
    round_number: int,
    randomness: bytes,
    pks: Sequence[str],
    role: str,
    difficulty: float,
) -> np.ndarray:
    """Batched threshold draw over a whole roster (one bool per pk).

    Equivalent to ``[passes_threshold(r, R, pk, role, d) for pk in pks]``
    but hashes via :func:`role_digests` and compares all digests against
    the threshold in one vectorized lexicographic pass: selected iff the
    digest's first byte differing from the threshold's 32-byte big-endian
    form is smaller (byte order == 256-bit integer order).
    """
    if not (0.0 <= difficulty <= 1.0):
        raise ValueError("difficulty is a probability")
    count = len(pks)
    if count == 0:
        return np.zeros(0, dtype=bool)
    threshold = int(difficulty * _HASH_SPACE)
    if threshold >= _HASH_SPACE:
        return np.ones(count, dtype=bool)
    if threshold <= 0:
        return np.zeros(count, dtype=bool)
    digests = role_digests(round_number, randomness, pks, role)
    matrix = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(count, 32)
    bound = np.frombuffer(threshold.to_bytes(32, "big"), dtype=np.uint8)
    differs = matrix != bound
    first = np.where(differs.any(axis=1), differs.argmax(axis=1), 31)
    rows = np.arange(count)
    # A digest exactly equal to the threshold is *not* below it; the
    # fallback column 31 then compares equal and correctly yields False.
    return matrix[rows, first] < bound[first]


def partial_committee_of(
    round_number: int, randomness: bytes, pk: str, m: int
) -> int:
    """Which committee a selected partial member joins (§IV-F):
    ``H(r+1 || R_r || PK_i || PARTIAL_SET_MEMBER) mod m``."""
    return role_hash(round_number, randomness, pk, PARTIAL_ROLE) % m


def assign_partial_sets(
    pool: Sequence[str],
    round_number: int,
    randomness: bytes,
    m: int,
    lam: int,
) -> list[list[str]]:
    """Partial-set staffing (§IV-F): rank the pool with the partial-role
    lottery, place each pick in its hash-assigned committee up to λ, and
    top up underfull committees from the overflow in rank order.

    Shared by the bootstrap assignment (round 1) and the selection phase
    (every subsequent round) so the two can never drift.  One batched
    digest pass serves both the ranking and the mod-m committee draw —
    the per-pk :func:`partial_committee_of` recomputation is gone.
    """
    digests = role_digests(round_number, randomness, pool, PARTIAL_ROLE)
    order = sorted(range(len(pool)), key=digests.__getitem__)
    partials: list[list[str]] = [[] for _ in range(m)]
    overflow: deque[str] = deque()
    for index in order:
        k = int.from_bytes(digests[index], "big") % m
        if len(partials[k]) < lam:
            partials[k].append(pool[index])
        else:
            overflow.append(pool[index])
    for k in range(m):
        while len(partials[k]) < lam and overflow:
            partials[k].append(overflow.popleft())
    return partials


def rank_select(
    candidates: Sequence[str],
    round_number: int,
    randomness: bytes,
    role: str,
    count: int,
) -> list[str]:
    """Exact-size variant of the threshold lottery.

    Sorting by the role hash and taking the lowest ``count`` is distributed
    identically to the threshold rule conditioned on the selected-set size —
    the standard fixed-size derandomization.  Ranks on the batched digest
    vector; byte order equals the scalar integer order, and the sort is
    stable either way, so the selection is unchanged down to tie handling.
    """
    if count > len(candidates):
        raise ValueError(
            f"cannot select {count} from {len(candidates)} candidates"
        )
    digests = role_digests(round_number, randomness, candidates, role)
    order = sorted(range(len(candidates)), key=digests.__getitem__)
    return [candidates[index] for index in order[:count]]
