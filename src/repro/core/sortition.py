"""Cryptographic sortition (Algorithm 1) and role lotteries (§IV-F).

Algorithm 1 assigns an undetermined node to a committee::

    <hash, pi> <- VRF_SK(COMMON_MEMBER || r || R_r)
    id <- hash mod m

Role selection for round r+1 uses hash thresholds::

    H(r+1 || R_r || PK_i || role) <= d_r(role)

The paper sizes committees *in expectation*; for reproducible simulation we
also provide :func:`rank_select`, the exact-size variant: sort candidates by
the same hash and take the required count.  This is the standard
derandomization (identical distribution, fixed size) and is what the round
orchestrator uses; the threshold form is kept and tested for fidelity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashing import H_int
from repro.crypto.pki import PKI, KeyPair
from repro.crypto.vrf import VRFOutput, vrf_eval, vrf_verify

COMMON_MEMBER = "COMMON_MEMBER"
REFEREE_ROLE = "REFEREE_COMMITTEE_MEMBER"
PARTIAL_ROLE = "PARTIAL_SET_MEMBER"

_HASH_SPACE = 1 << 256


@dataclass(frozen=True, slots=True)
class SortitionTicket:
    """The triple ``(id, hash, pi)`` returned by Algorithm 1."""

    committee_id: int
    vrf: VRFOutput


def sortition_input(round_number: int, randomness: bytes) -> tuple:
    """The VRF input Q = COMMON_MEMBER || r || R_r."""
    return (COMMON_MEMBER, round_number, randomness)


def crypto_sort(
    keypair: KeyPair, round_number: int, randomness: bytes, m: int
) -> SortitionTicket:
    """Algorithm 1: which committee does this node belong to this round?"""
    if m <= 0:
        raise ValueError("m must be positive")
    vrf = vrf_eval(keypair, sortition_input(round_number, randomness))
    return SortitionTicket(committee_id=vrf.value % m, vrf=vrf)


def verify_sortition(
    pki: PKI,
    ticket: SortitionTicket,
    round_number: int,
    randomness: bytes,
    m: int,
) -> bool:
    """Key-member side check of a joining node's ticket (Alg. 2 line 7)."""
    if not vrf_verify(pki, ticket.vrf, sortition_input(round_number, randomness)):
        return False
    return ticket.committee_id == ticket.vrf.value % m


# -- role lotteries (§IV-F) --------------------------------------------------


def role_hash(round_number: int, randomness: bytes, pk: str, role: str) -> int:
    """H(r+1 || R_r || PK_i || role) as a 256-bit integer."""
    return H_int("ROLE", round_number, randomness, pk, role)


def passes_threshold(
    round_number: int, randomness: bytes, pk: str, role: str, difficulty: float
) -> bool:
    """Threshold form: selected iff the role hash is below d_r(role).

    ``difficulty`` is the selection *probability* (d_r(role) normalized by
    the hash space), the natural parametrization when the network size
    changes between rounds.
    """
    if not (0.0 <= difficulty <= 1.0):
        raise ValueError("difficulty is a probability")
    return role_hash(round_number, randomness, pk, role) < int(
        difficulty * _HASH_SPACE
    )


def partial_committee_of(
    round_number: int, randomness: bytes, pk: str, m: int
) -> int:
    """Which committee a selected partial member joins (§IV-F):
    ``H(r+1 || R_r || PK_i || PARTIAL_SET_MEMBER) mod m``."""
    return role_hash(round_number, randomness, pk, PARTIAL_ROLE) % m


def assign_partial_sets(
    pool: Sequence[str],
    round_number: int,
    randomness: bytes,
    m: int,
    lam: int,
) -> list[list[str]]:
    """Partial-set staffing (§IV-F): rank the pool with the partial-role
    lottery, place each pick in its hash-assigned committee up to λ, and
    top up underfull committees from the overflow in rank order.

    Shared by the bootstrap assignment (round 1) and the selection phase
    (every subsequent round) so the two can never drift.
    """
    ranked = rank_select(pool, round_number, randomness, PARTIAL_ROLE, len(pool))
    partials: list[list[str]] = [[] for _ in range(m)]
    overflow: deque[str] = deque()
    for pk in ranked:
        k = partial_committee_of(round_number, randomness, pk, m)
        if len(partials[k]) < lam:
            partials[k].append(pk)
        else:
            overflow.append(pk)
    for k in range(m):
        while len(partials[k]) < lam and overflow:
            partials[k].append(overflow.popleft())
    return partials


def rank_select(
    candidates: Sequence[str],
    round_number: int,
    randomness: bytes,
    role: str,
    count: int,
) -> list[str]:
    """Exact-size variant of the threshold lottery.

    Sorting by the role hash and taking the lowest ``count`` is distributed
    identically to the threshold rule conditioned on the selected-set size —
    the standard fixed-size derandomization.
    """
    if count > len(candidates):
        raise ValueError(
            f"cannot select {count} from {len(candidates)} candidates"
        )
    ranked = sorted(
        candidates, key=lambda pk: role_hash(round_number, randomness, pk, role)
    )
    return ranked[:count]
