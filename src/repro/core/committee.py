"""Committee configuration — Algorithm 2 (§IV-A).

Key members (leader + partial set, pre-selected in the previous round) seed
the member list with each other's ``<PK, address>`` pairs.  Every other node
finds its committee with cryptographic sortition (Algorithm 1), announces
itself to the key members (CONFIG), receives the current list (MEM_LIST),
then introduces itself to all listed members it has not met (MEMBER).  Every
announcement carries the VRF ticket, and every recipient verifies it before
admitting the sender — a node cannot join a committee the sortition did not
assign it to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.sortition import SortitionTicket, verify_sortition
from repro.core.structures import RoundContext
from repro.core.tags import Tags

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


@dataclass
class ConfigReport:
    """Outcome of the configuration phase."""

    full_agreement: dict[int, bool] = field(default_factory=dict)
    rejected_joins: int = 0
    elapsed: float = 0.0


class _ConfigSession:
    """Per-committee configuration state machine."""

    def __init__(self, ctx: RoundContext, committee_index: int) -> None:
        self.ctx = ctx
        self.k = committee_index
        self.committee = ctx.committees[committee_index]
        self.rejected = 0
        # Hoisted per-session indexes: the MEM_LIST/MEMBER handlers run
        # O(c) times each and previously rebuilt these per message (an
        # O(c³)-ish hidden quadratic at large committee sizes).
        self._id_by_pk = {
            ctx.pk_of(mid): mid for mid in self.committee.members
        }
        self._key_pks = frozenset(
            ctx.pk_of(kid) for kid in self.committee.key_members
        )
        # Ticket verification is deterministic per (identity, ticket); every
        # key member (and later every listed member) re-checks the same
        # announcement, so memoize the verdict per session.
        self._verify_cache: dict[tuple, bool] = {}

    def _tag(self, base: str) -> str:
        return f"{base}:cfg:{self.k}"

    def start(self) -> None:
        ctx = self.ctx
        committee = self.committee
        key_members = set(committee.key_members)
        # Key members seed S with all key-member identities (Alg. 2 line 3).
        seed_identities = {ctx.node(kid).identity() for kid in key_members}
        for mid in committee.members:
            node = ctx.node(mid)
            node.member_list = set(seed_identities) if mid in key_members else {
                node.identity()
            }
            if mid in key_members:
                node.on(self._tag(Tags.CONFIG), self._make_on_config(mid))
            node.on(self._tag(Tags.MEM_LIST), self._make_on_mem_list(mid))
            node.on(self._tag(Tags.MEMBER), self._make_on_member(mid))
        # Non-key members announce themselves to the key members, whose
        # addresses are "already shown in block B^{r-1}".
        for mid in committee.members:
            if mid in key_members:
                continue
            node = ctx.node(mid)
            ticket = getattr(node, "ticket", None)
            for kid in key_members:
                node.send(
                    kid, self._tag(Tags.CONFIG), (node.identity(), ticket)
                )

    def _verify(self, identity: tuple[str, str], ticket) -> bool:
        if not isinstance(ticket, SortitionTicket):
            return False
        key = (identity, ticket)
        cached = self._verify_cache.get(key)
        if cached is not None:
            return cached
        if ticket.vrf.pk != identity[0]:
            result = False
        elif ticket.committee_id != self.k:
            result = False
        else:
            result = verify_sortition(
                self.ctx.pki,
                ticket,
                self.ctx.round_number,
                self.ctx.randomness,
                self.ctx.params.m,
            )
        self._verify_cache[key] = result
        return result

    def _make_on_config(self, kid: int):
        def handler(message: "Message") -> None:
            identity, ticket = message.payload
            node = self.ctx.node(kid)
            if not self._verify(identity, ticket):
                self.rejected += 1
                return
            node.member_list.add(identity)
            # Respond with the current list (Alg. 2 line 10).
            node.send(
                message.sender, self._tag(Tags.MEM_LIST), tuple(node.member_list)
            )

        return handler

    def _make_on_mem_list(self, mid: int):
        def handler(message: "Message") -> None:
            node = self.ctx.node(mid)
            known_before = set(node.member_list)
            node.member_list |= set(message.payload)
            ticket = getattr(node, "ticket", None)
            # Introduce ourselves to newly discovered members (line 19:
            # "all unconnected committee members on the list").  Key members
            # were already contacted via CONFIG, so they are not new.
            key_pks = self._key_pks
            new_ids = {
                identity for identity in node.member_list
                if identity not in known_before
                and identity != node.identity()
                and identity[0] not in key_pks
            }
            for pk, _address in new_ids:
                target = self._node_id_by_pk(pk)
                if target is not None:
                    node.send(
                        target, self._tag(Tags.MEMBER), (node.identity(), ticket)
                    )

        return handler

    def _make_on_member(self, mid: int):
        def handler(message: "Message") -> None:
            identity, ticket = message.payload
            node = self.ctx.node(mid)
            sender_node = self.ctx.node(message.sender)
            if sender_node.is_key_member or self._verify(identity, ticket):
                node.member_list.add(identity)
            else:
                self.rejected += 1

        return handler

    def _node_id_by_pk(self, pk: str) -> int | None:
        return self._id_by_pk.get(pk)


def run_committee_configuration(ctx: RoundContext) -> ConfigReport:
    """Run Algorithm 2 for every committee in parallel."""
    ctx.metrics.set_phase("config")
    started = ctx.net.now
    sessions = [_ConfigSession(ctx, k) for k in range(len(ctx.committees))]
    for session in sessions:
        session.start()
    ctx.net.run()
    report = ConfigReport(elapsed=ctx.net.now - started)
    for session in sessions:
        report.rejected_joins += session.rejected
        committee = session.committee
        expected = {ctx.node(mid).identity() for mid in committee.members}
        honest_views = [
            ctx.node(mid).member_list == expected
            for mid in committee.members
            if not ctx.node(mid).behavior.is_malicious and ctx.node(mid).online
        ]
        report.full_agreement[committee.index] = all(honest_views)
        # Storage: every member retains the member list (O(c) common,
        # O(c²) aggregate for key members per Table II).
        for mid in committee.members:
            ctx.metrics.record_storage(mid, len(ctx.node(mid).member_list))
    return report
