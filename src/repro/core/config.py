"""Protocol parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import OVERLAP_MODES
from repro.ledger.workload import ARRIVAL_PROCESSES
from repro.net.params import NetworkParams


@dataclass(frozen=True)
class ProtocolParams:
    """All knobs of a CycLedger deployment.

    Notation follows the paper: ``n`` nodes total, ``m`` committees of
    expected size ``c`` (here exact: ``c = (n - referee_size) / m``), partial
    sets of size ``lam`` (λ, "usually no less than 40" — defaults are
    test-scale), referee committee of ``referee_size``.
    """

    n: int = 64
    m: int = 4
    lam: int = 3
    referee_size: int = 8
    seed: int = 0

    # Workload
    users_per_shard: int = 32
    tx_per_committee: int = 12
    cross_shard_ratio: float = 0.2
    invalid_ratio: float = 0.05

    # Timing rules from the paper, in units of the network's Δ:
    semi_commit_delay_deltas: float = 8.0  # "recommended delay is 8Δ" (§IV-B)
    vote_window_deltas: float = 6.0  # "within a certain time, e.g. 6Δ" (§IV-C)
    inter_forward_gammas: float = 2.0  # the 2Γ rule of Lemma 7

    # PoW admission (tiny by default so tests stay fast)
    pow_difficulty_bits: int = 4

    # Future-work extensions (§VIII), off by default
    prefilter_cross_shard: bool = False
    parallel_block_generation: bool = False

    # Continuous-time execution core (§III-E / §V pipelining):
    # ``overlap`` selects how the end-to-end timeline composes round
    # phases — "none" serializes rounds (the historical model), while
    # "semicommit" schedules round r+1's committee-configuration +
    # semi-commitment prefix concurrently (in sim time) with round r's
    # block-generation suffix.  Execution and final state are identical
    # in both modes; only the reported timeline differs.
    overlap: str = "none"
    # ``arrival_process`` selects the mempool feed: "legacy" draws one
    # fixed batch per round (byte-exact historical RNG consumption);
    # "poisson" admits Generator.poisson(arrival_rate) transactions per
    # round into a persistent FIFO mempool with TTL/capacity eviction.
    arrival_process: str = "legacy"
    arrival_rate: float = 0.0  # mean arrivals per round (poisson mode)
    mempool_capacity: int = 0  # max queued txs, 0 = unbounded
    mempool_max_age: int = 0  # rounds a tx may wait, 0 = never expire

    # Shard-parallel execution of the per-committee phase work
    # (repro.core.shards): 0 = historical interleaved path (byte-frozen),
    # 1 = sharded-serial reference semantics, >= 2 = process pool.  Paths
    # 1 and >= 2 are byte-identical by construction; 0 consumes the shared
    # RNG streams differently and stays the default.
    shard_workers: int = 0

    # Epoch-scale memory bounds (ISSUE 10).  ``chain_retention`` keeps only
    # the last N block bodies in RAM (0 = keep everything); hash linkage
    # survives pruning via the chain's stored predecessor hash, so head /
    # verify / length semantics are unchanged.  ``spent_retention`` bounds
    # the workload generator's spent-output history to the last N entries
    # (0 = unbounded legacy history).  Bounding it changes which historical
    # outputs the double-spend injector picks, so it is opt-in and runs
    # using it are not byte-comparable to unbounded runs.  ``sample_rss``
    # stamps each round report with the process RSS (rss_peak_kb); it is
    # off by default because RSS is host-dependent and would break the
    # byte-identity gates on sweep artifacts.
    chain_retention: int = 0
    spent_retention: int = 0
    sample_rss: bool = False

    net: NetworkParams = field(default_factory=NetworkParams)

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError("n and m must be positive")
        if self.overlap not in OVERLAP_MODES:
            raise ValueError(
                f"unknown overlap mode {self.overlap!r} "
                f"(known: {', '.join(OVERLAP_MODES)})"
            )
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival_process!r} "
                f"(known: {', '.join(ARRIVAL_PROCESSES)})"
            )
        if self.arrival_process == "poisson" and self.arrival_rate <= 0.0:
            raise ValueError("poisson arrivals need a positive arrival_rate")
        if self.mempool_capacity < 0 or self.mempool_max_age < 0:
            raise ValueError(
                "mempool_capacity and mempool_max_age must be >= 0"
            )
        if self.arrival_process == "legacy" and (
            self.mempool_capacity or self.mempool_max_age or self.arrival_rate
        ):
            # Legacy settlement clears the queue every round, so these
            # knobs would be silent no-ops — reject rather than mislead.
            raise ValueError(
                "arrival_rate/mempool_capacity/mempool_max_age require "
                "arrival_process='poisson' (legacy mode clears the queue "
                "every round)"
            )
        if self.referee_size < 3:
            raise ValueError("referee committee needs at least 3 members")
        if (self.n - self.referee_size) % self.m != 0:
            raise ValueError(
                "n - referee_size must be divisible by m so committees have "
                "a well-defined exact size"
            )
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if self.chain_retention < 0 or self.spent_retention < 0:
            raise ValueError(
                "chain_retention and spent_retention must be >= 0 "
                "(0 = unbounded)"
            )
        if self.committee_size < self.lam + 2:
            raise ValueError(
                f"committee size {self.committee_size} cannot host a leader, "
                f"{self.lam} partial members and at least one common member"
            )

    @property
    def committee_size(self) -> int:
        """c: exact committee size (paper: expectation O(log² n))."""
        return (self.n - self.referee_size) // self.m

    @property
    def vote_window(self) -> float:
        return self.vote_window_deltas * self.net.delta

    @property
    def semi_commit_delay(self) -> float:
        return self.semi_commit_delay_deltas * self.net.delta

    @property
    def inter_forward_timeout(self) -> float:
        return self.inter_forward_gammas * self.net.gamma
