"""Protocol parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.params import NetworkParams


@dataclass(frozen=True)
class ProtocolParams:
    """All knobs of a CycLedger deployment.

    Notation follows the paper: ``n`` nodes total, ``m`` committees of
    expected size ``c`` (here exact: ``c = (n - referee_size) / m``), partial
    sets of size ``lam`` (λ, "usually no less than 40" — defaults are
    test-scale), referee committee of ``referee_size``.
    """

    n: int = 64
    m: int = 4
    lam: int = 3
    referee_size: int = 8
    seed: int = 0

    # Workload
    users_per_shard: int = 32
    tx_per_committee: int = 12
    cross_shard_ratio: float = 0.2
    invalid_ratio: float = 0.05

    # Timing rules from the paper, in units of the network's Δ:
    semi_commit_delay_deltas: float = 8.0  # "recommended delay is 8Δ" (§IV-B)
    vote_window_deltas: float = 6.0  # "within a certain time, e.g. 6Δ" (§IV-C)
    inter_forward_gammas: float = 2.0  # the 2Γ rule of Lemma 7

    # PoW admission (tiny by default so tests stay fast)
    pow_difficulty_bits: int = 4

    # Future-work extensions (§VIII), off by default
    prefilter_cross_shard: bool = False
    parallel_block_generation: bool = False

    net: NetworkParams = field(default_factory=NetworkParams)

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError("n and m must be positive")
        if self.referee_size < 3:
            raise ValueError("referee committee needs at least 3 members")
        if (self.n - self.referee_size) % self.m != 0:
            raise ValueError(
                "n - referee_size must be divisible by m so committees have "
                "a well-defined exact size"
            )
        if self.committee_size < self.lam + 2:
            raise ValueError(
                f"committee size {self.committee_size} cannot host a leader, "
                f"{self.lam} partial members and at least one common member"
            )

    @property
    def committee_size(self) -> int:
        """c: exact committee size (paper: expectation O(log² n))."""
        return (self.n - self.referee_size) // self.m

    @property
    def vote_window(self) -> float:
        return self.vote_window_deltas * self.net.delta

    @property
    def semi_commit_delay(self) -> float:
        return self.semi_commit_delay_deltas * self.net.delta

    @property
    def inter_forward_timeout(self) -> float:
        return self.inter_forward_gammas * self.net.gamma
