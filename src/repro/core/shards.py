"""Shard-parallel execution of per-committee phase work.

The paper's central structural claim is that committees operate
independently *within* a round: semi-commitment claim preparation and the
vote rounds of the intra/inter phases touch only one committee's members
and shard state, and synchronize with the rest of the protocol solely at
the cross-shard barrier in :meth:`repro.core.protocol.CycLedger.run_round`.
This module exploits that independence: a :class:`ShardExecutor` fans the
per-committee work out (in-process, or across a process pool) and merges
the results back at the barrier.

Three execution paths, selected by ``ProtocolParams.shard_workers``:

* ``0`` (default) — the historical interleaved path: every committee's
  sessions share one network/RNG and their events interleave.  Byte-frozen
  (pinned by the pre-overlap fixtures); this module is never imported.
* ``1`` — :class:`SerialShardExecutor`: committee tasks run one after
  another in-process, each on its own mini-network with pre-split RNG
  sub-streams.  This is the *sharded-serial* reference semantics.
* ``>= 2`` — :class:`ProcessShardExecutor`: the same tasks on a process
  pool.  Workers execute literally the same task function on pickled
  copies of the same task objects, so the pool path is byte-identical to
  the sharded-serial path by construction — the property the shard-smoke
  CI job ``cmp``-checks on sweep artifacts.

Determinism discipline (mirrors the jitter-block and batching notes in
docs/perf.md): every task's RNG streams are derived *at fan-out* from the
protocol seed, the round number, the committee index and the session names
— never from the shared per-round generators — so neither worker count nor
scheduling order can perturb a single draw.

What is shipped to a worker and what comes back:

* out: frozen per-node snapshots (capacity, behavior, online flag,
  remaining validation budget, role flags), the committee spec fields, the
  committee's (read-only) shard state, and the session list.  Capacity is
  snapshotted, never re-derived: ``init_shared_state`` draws it from the
  ledger RNG, which workers do not hold.
* back: the :class:`~repro.core.voting.VoteRound` results in submission
  order, the mini-net's elapsed sim-time, a metrics collector to fold into
  the round's, per-node budget remainders, and delivery counters.

Workers rebuild nodes from scratch against a fresh :class:`PKI`; key
derivation is deterministic in ``(backend, seed, node_id)``, so worker-made
signatures and certificates verify against the main registry when the
referee audits them later in the round.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.node import CycNode
from repro.core.structures import CommitteeSpec, RoundContext
from repro.core.voting import (
    VoteRound,
    VoteRoundSession,
    input_side_votes,
    output_side_votes,
)
from repro.crypto.hashing import H
from repro.crypto.pki import PKI
from repro.crypto.signatures import sign
from repro.ledger.chain import Chain
from repro.metrics.counters import MetricsCollector
from repro.net.params import ChannelClass
from repro.net.simulator import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ProtocolParams
    from repro.crypto.pki import KeyPair
    from repro.ledger.state import ShardState
    from repro.nodes.behaviors import Behavior

#: Vote functions a task may name.  Work items carry the function object;
#: tasks ship a marker so the pool never pickles callables.  Anything not
#: in this table (there is nothing else today) falls back to the
#: interleaved path.
_VOTE_FNS = {
    "input": input_side_votes,
    "output": output_side_votes,
}
_VOTE_FN_NAMES = {fn: name for name, fn in _VOTE_FNS.items()}


def shardable(work: Sequence[tuple]) -> bool:
    """Whether every work item's vote function has a shard marker."""
    return all(item[3] in _VOTE_FN_NAMES for item in work)


def _committee_channel(src: int, dst: int) -> str:
    """Inside one committee every pair is an INTRA channel (topology.py
    classifies same-committee pairs before any key-member special case)."""
    return ChannelClass.LOCAL if src == dst else ChannelClass.INTRA


def _noop() -> None:
    pass


# ---------------------------------------------------------------------------
# Task / outcome payloads (everything here must pickle cleanly)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeSnapshot:
    """One committee member, as a worker needs to rebuild it."""

    node_id: int
    capacity: int
    behavior: "Behavior"
    online: bool
    budget_left: int | None
    is_leader: bool
    is_partial: bool


@dataclass(frozen=True)
class ShardVoteTask:
    """All of one committee's vote-round sessions for one dispatch."""

    backend_name: str
    params: "ProtocolParams"
    round_number: int
    committee_index: int
    leader: int
    partial: tuple[int, ...]
    members: tuple[int, ...]
    #: ``(txs, session_name, vote_fn_marker, phase_name)`` per session, in
    #: the caller's submission order for this committee.
    sessions: tuple[tuple[tuple, str, str, str], ...]
    snapshots: tuple[NodeSnapshot, ...]
    shard_state: "ShardState | None"
    metrics_phase: str
    vote_seed: int
    jitter_seed: int


@dataclass
class ShardVoteOutcome:
    """What one committee task sends back across the barrier."""

    committee_index: int
    rounds: list[VoteRound]
    elapsed: float
    metrics: MetricsCollector
    budgets: dict[int, int | None]
    delivered: int
    dropped: int


@dataclass(frozen=True)
class SemiCommitTask:
    """One leader's semi-commitment claim preparation (pure compute)."""

    committee_index: int
    round_number: int
    keypair: "KeyPair"
    behavior: "Behavior"
    member_list: tuple


# ---------------------------------------------------------------------------
# Worker functions
# ---------------------------------------------------------------------------


def execute_vote_task(task: ShardVoteTask) -> ShardVoteOutcome:
    """Run one committee's sessions on a private mini-network.

    Identical code runs under both executors; the pool merely moves this
    call to another process, which is why worker count cannot change a
    byte of output.
    """
    pki = PKI()
    nodes: dict[int, CycNode] = {}
    for snap in task.snapshots:
        keypair = pki.generate(
            (task.backend_name, task.params.seed, snap.node_id)
        )
        node = CycNode(
            snap.node_id,
            keypair,
            capacity=snap.capacity,
            behavior=snap.behavior,
        )
        node.online = snap.online
        node.budget_left = snap.budget_left
        node.committee_id = task.committee_index
        node.is_leader = snap.is_leader
        node.is_partial = snap.is_partial
        node.shard_state = task.shard_state
        nodes[snap.node_id] = node
    metrics = MetricsCollector()
    metrics.set_phase(task.metrics_phase)
    for node in nodes.values():
        metrics.set_role(node.node_id, node.role)
    net = Network(
        task.params.net,
        np.random.default_rng(task.jitter_seed),
        metrics=metrics,
    )
    for node in nodes.values():
        net.add_node(node)
    net.set_channel_classifier(_committee_channel)
    spec = CommitteeSpec(
        index=task.committee_index,
        leader=task.leader,
        partial=task.partial,
        members=list(task.members),
    )
    ctx = RoundContext(
        params=task.params,
        pki=pki,
        net=net,
        metrics=metrics,
        rng=np.random.default_rng(task.vote_seed),
        round_number=task.round_number,
        randomness=b"",
        nodes=nodes,
        committees=[spec],
        referee=[],
        reputation={},
        mempools=[],
        shard_states=[],
        chain=Chain(),
    )
    sessions = [
        VoteRoundSession(
            ctx, spec, list(txs), name, _VOTE_FNS[marker], phase
        )
        for txs, name, marker, phase in task.sessions
    ]
    for session in sessions:
        session.start()
    net.run()
    return ShardVoteOutcome(
        committee_index=task.committee_index,
        rounds=[session.finish() for session in sessions],
        elapsed=net.now,
        metrics=metrics,
        budgets={nid: node.budget_left for nid, node in nodes.items()},
        delivered=net.delivered_messages,
        dropped=net.dropped_messages,
    )


def execute_semicommit_task(task: SemiCommitTask) -> tuple[int, tuple]:
    """Prepare one leader's signed semi-commitment claim.

    No RNG is involved, so the result is value-identical to the inline
    computation in ``_SemiCommitSession._leader_send``.
    """
    from repro.crypto.commitment import canonical_member_list, semi_commitment

    true_list = canonical_member_list(task.member_list)
    true_commitment = semi_commitment(true_list)
    commitment, claimed_list = task.behavior.semi_commitment_claim(
        None, true_commitment, true_list
    )
    statement = ("SEMI_COM", task.round_number, commitment, claimed_list)
    sig = sign(task.keypair, statement)
    return task.committee_index, (commitment, claimed_list, sig)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class SerialShardExecutor:
    """Sharded execution, one committee task at a time, in-process.

    The reference semantics of the sharded path: the pool executor runs the
    exact same tasks through the exact same worker functions.
    """

    workers = 1

    def __init__(self, backend_name: str) -> None:
        self.backend_name = backend_name

    def run_vote_tasks(
        self, tasks: Sequence[ShardVoteTask]
    ) -> list[ShardVoteOutcome]:
        return [execute_vote_task(task) for task in tasks]

    def run_semicommit_tasks(
        self, tasks: Sequence[SemiCommitTask]
    ) -> list[tuple[int, tuple]]:
        return [execute_semicommit_task(task) for task in tasks]


#: Module-level pool singleton: fork start-up is the dominant fixed cost,
#: so one pool is reused across rounds, runs, and perf repeats.  Rebuilt
#: only when the requested worker count changes.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS: int | None = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS != workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _shutdown_pool() -> None:
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False)
        _POOL = None
        _POOL_WORKERS = None


atexit.register(_shutdown_pool)


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class ProcessShardExecutor(SerialShardExecutor):
    """Sharded execution across a process pool, with the dispatching
    process participating as a worker.

    Instead of blocking in ``map()`` while every result crosses IPC, the
    parent offloads only the share the workers can genuinely overlap and
    executes the remainder in-process.  The split adapts to the host: on
    a single-CPU machine extra processes cannot overlap at all, so the
    parent keeps every task (the pool degenerates to the serial path —
    results are identical either way, this is purely a scheduling
    choice); with ``k`` usable CPUs the parent keeps ``ceil(T /
    (lanes + 1))`` of ``T`` tasks, where ``lanes = min(workers, k - 1)``.

    ``concurrent.futures`` workers are non-daemonic, so a shard pool can
    legally live *inside* a sweep-runner pool worker — though in practice
    the sweep layer clamps nested shard workers to the serial executor
    (see ``SweepPoint.descriptor``), precisely because the artifacts are
    identical either way.
    """

    def __init__(self, workers: int, backend_name: str) -> None:
        super().__init__(backend_name)
        self.workers = workers

    def _parent_share(self, count: int) -> int:
        """How many of ``count`` tasks the dispatching process runs."""
        lanes = min(self.workers, _effective_cpus() - 1)
        if lanes <= 0:
            return count
        return -(-count // (lanes + 1))  # ceil division

    def run_vote_tasks(
        self, tasks: Sequence[ShardVoteTask]
    ) -> list[ShardVoteOutcome]:
        keep = self._parent_share(len(tasks))
        if keep >= len(tasks):
            return super().run_vote_tasks(tasks)
        pool = _get_pool(self.workers)
        split = len(tasks) - keep
        # Submit the offloaded share first so workers start while the
        # parent computes its own; task order is preserved positionally.
        futures = [pool.submit(execute_vote_task, t) for t in tasks[:split]]
        local = [execute_vote_task(t) for t in tasks[split:]]
        return [future.result() for future in futures] + local

    # Semi-commitment claims are two hashes and one MAC per committee —
    # far below the grain size where pool dispatch pays for itself, so the
    # pool executor keeps them in-process (the inherited serial path).
    # execute_semicommit_task is a pure function of its task, so the result
    # is identical either way.


def make_shard_executor(
    workers: int, backend_name: str
) -> SerialShardExecutor | None:
    """``0`` -> legacy interleaved path, ``1`` -> serial, ``>=2`` -> pool."""
    if workers <= 0:
        return None
    if workers == 1:
        return SerialShardExecutor(backend_name)
    return ProcessShardExecutor(workers, backend_name)


# ---------------------------------------------------------------------------
# Fan-out / merge
# ---------------------------------------------------------------------------


def _task_seeds(
    executor: SerialShardExecutor,
    params: "ProtocolParams",
    round_number: int,
    committee_index: int,
    session_names: tuple[str, ...],
) -> tuple[int, int]:
    """Pre-split RNG sub-streams for one committee task.

    Derived from protocol identity only — seed, round, committee, session
    names — so retries (distinct session names) get fresh streams and the
    worker count can never influence a draw.
    """
    vote = int.from_bytes(
        H(
            "SHARD_VOTE",
            executor.backend_name,
            params.seed,
            round_number,
            committee_index,
            session_names,
        ),
        "big",
    )
    jitter = int.from_bytes(
        H(
            "SHARD_JITTER",
            executor.backend_name,
            params.seed,
            round_number,
            committee_index,
            session_names,
        ),
        "big",
    )
    return vote, jitter


def _snapshot(ctx: RoundContext, committee: CommitteeSpec) -> tuple:
    partial = set(committee.partial)
    return tuple(
        NodeSnapshot(
            node_id=mid,
            capacity=ctx.node(mid).capacity,
            behavior=ctx.node(mid).behavior,
            online=ctx.node(mid).online,
            budget_left=ctx.node(mid).budget_left,
            is_leader=mid == committee.leader,
            is_partial=mid in partial,
        )
        for mid in committee.members
    )


def run_vote_rounds_sharded(
    ctx: RoundContext, work: Sequence[tuple]
) -> list[VoteRound]:
    """Fan per-committee vote rounds out through ``ctx.shard_executor``.

    Work items are grouped by committee — one task runs *all* of a
    committee's sessions sequentially against one snapshot, because
    sessions of the same committee share the per-round validation budget
    and (on the inter send side) arrive as several lists for one leader.
    Committees' node sets are disjoint, so budget write-back and metrics
    merge at the barrier are conflict-free.
    """
    executor = ctx.shard_executor
    groups: dict[int, list[tuple[int, tuple]]] = {}
    for position, item in enumerate(work):
        groups.setdefault(item[0].index, []).append((position, item))
    tasks: list[ShardVoteTask] = []
    for k in sorted(groups):
        entries = groups[k]
        committee: CommitteeSpec = entries[0][1][0]
        session_names = tuple(item[2] for _, item in entries)
        vote_seed, jitter_seed = _task_seeds(
            executor, ctx.params, ctx.round_number, k, session_names
        )
        tasks.append(
            ShardVoteTask(
                backend_name=executor.backend_name,
                params=ctx.params,
                round_number=ctx.round_number,
                committee_index=k,
                leader=committee.leader,
                partial=tuple(committee.partial),
                members=tuple(committee.members),
                sessions=tuple(
                    (tuple(item[1]), item[2], _VOTE_FN_NAMES[item[3]], item[4])
                    for _, item in entries
                ),
                snapshots=_snapshot(ctx, committee),
                shard_state=ctx.node(committee.leader).shard_state,
                metrics_phase=ctx.metrics.phase,
                vote_seed=vote_seed,
                jitter_seed=jitter_seed,
            )
        )
    results: list[VoteRound | None] = [None] * len(work)
    max_elapsed = 0.0
    for outcome in executor.run_vote_tasks(tasks):
        entries = groups[outcome.committee_index]
        for (position, _), vote_round in zip(entries, outcome.rounds):
            results[position] = vote_round
        ctx.metrics.merge(outcome.metrics)
        for nid, budget in outcome.budgets.items():
            ctx.nodes[nid].budget_left = budget
        ctx.net.delivered_messages += outcome.delivered
        ctx.net.dropped_messages += outcome.dropped
        max_elapsed = max(max_elapsed, outcome.elapsed)
    # Committees ran in parallel sim-time: the barrier costs the slowest
    # committee's span on the shared clock, same as the interleaved model.
    if max_elapsed > 0.0:
        ctx.net.call_after(max_elapsed, _noop)
        ctx.net.run()
    return results  # fully populated: every position got exactly one round


def prepare_semicommit_claims(ctx: RoundContext) -> dict[int, tuple]:
    """Fan the leaders' claim preparation out; keyed by committee index.

    Claim preparation — canonicalize the member list, hash it, sign the
    claim — is the per-committee compute of Algorithm 4 step 1; the actual
    referee exchange stays on the main network.
    """
    tasks = [
        SemiCommitTask(
            committee_index=committee.index,
            round_number=ctx.round_number,
            keypair=ctx.node(committee.leader).keypair,
            behavior=ctx.node(committee.leader).behavior,
            member_list=tuple(sorted(ctx.node(committee.leader).member_list)),
        )
        for committee in ctx.committees
    ]
    return dict(ctx.shard_executor.run_semicommit_tasks(tasks))
