"""Intra-committee consensus — Algorithm 5 (§IV-C), with auditing.

Each committee runs a vote round (:mod:`repro.core.voting`) over the
transactions whose inputs and outputs all live in its shard, then the leader
sends the certified TXdecSET to the referee committee.

Partial-set auditing (§V-E: "a faulty leader can always be detected,
meanwhile, malicious members can never calumniate a non-faulty leader"):

* **Censorship** — the leader-signed VList shows a Yes-majority transaction
  missing from the leader-signed TXdecSET → censor witness → impeachment →
  the phase re-runs for that committee under the new leader.
* **Silence** — no TXList by the 6Δ deadline → quorum of NO_PROPOSAL
  countersignatures → silence witness → impeachment → re-run.

One retry per committee per round suffices: the replacement leader is the
(honest, by the partial-set security argument §V-C) accusing partial member.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.consensus import consensus_digest, verify_certificate
from repro.core.recovery import Witness, attempt_recovery
from repro.core.structures import CommitteeSpec, RecoveryEvent, RoundContext
from repro.core.tags import Tags
from repro.core.voting import VoteRound, input_side_votes, run_vote_rounds
from repro.ledger.transaction import Transaction


@dataclass
class IntraReport:
    rounds: dict[int, VoteRound] = field(default_factory=dict)
    accepted_by_cr: dict[int, list[Transaction]] = field(default_factory=dict)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    censorship_detected: list[int] = field(default_factory=list)
    silence_detected: list[int] = field(default_factory=list)
    equivocation_detected: list[int] = field(default_factory=list)
    retried: list[int] = field(default_factory=list)
    elapsed: float = 0.0


def audit_vote_round(
    ctx: RoundContext,
    committee: CommitteeSpec,
    round_result: VoteRound,
    phase_name: str,
) -> Witness | None:
    """What an honest partial-set member concludes from the artifacts."""
    honest_partials = [
        pid
        for pid in committee.partial
        if not ctx.node(pid).behavior.is_malicious and ctx.node(pid).online
    ]
    if not honest_partials:
        return None  # insecure partial set (prob. (1/3)^λ, §V-C)
    if round_result.timed_out:
        for pid in honest_partials:
            sigs = round_result.no_proposal_sigs.get(pid, [])
            if len(sigs) > committee.size / 2:
                return Witness(
                    kind="silence",
                    committee=committee.index,
                    leader_pk=ctx.pk_of(committee.leader),
                    round_number=ctx.round_number,
                    evidence=(phase_name, tuple(sigs)),
                )
        return None
    if round_result.equivocation is not None:
        return Witness(
            kind="equivocation",
            committee=committee.index,
            leader_pk=ctx.pk_of(committee.leader),
            round_number=ctx.round_number,
            evidence=round_result.equivocation,
        )
    if round_result.matrix is None or round_result.sig_dec is None:
        return None
    yes_counts = (round_result.matrix == 1).sum(axis=0)
    quorum = committee.size / 2
    reported = set(round_result.reported_txids)
    censored = any(
        yes_counts[i] > quorum and round_result.txids[i] not in reported
        for i in range(len(round_result.txids))
    )
    if censored:
        return Witness(
            kind="censor",
            committee=committee.index,
            leader_pk=ctx.pk_of(committee.leader),
            round_number=ctx.round_number,
            evidence=(
                round_result.sig_dec,
                round_result.reported_txids,
                round_result.sig_votes,
                round_result.txids,
                round_result.vlist_tuple,
            ),
        )
    return None


def first_honest_partial(ctx: RoundContext, committee: CommitteeSpec) -> int | None:
    for pid in committee.partial:
        node = ctx.node(pid)
        if not node.behavior.is_malicious and node.online:
            return pid
    return None


def run_intra_consensus(ctx: RoundContext) -> IntraReport:
    """Execute Algorithm 5 for all committees, audit, recover, report to C_R."""
    ctx.metrics.set_phase("intra")
    started = ctx.net.now
    report = IntraReport()

    def committee_txs(k: int) -> list[Transaction]:
        # §VII-A: "nodes with the best reputation are selected as leaders,
        # hoping they can use their abundant computational resources to
        # bring more transactions into a block" — the TXList a leader can
        # assemble within the round is capped by its own capacity.
        leader = ctx.node(ctx.committees[k].leader)
        budget = min(ctx.params.tx_per_committee, leader.capacity)
        return [
            t.tx for t in ctx.mempools[k] if not t.cross_shard
        ][:budget]

    work = [
        (
            committee,
            committee_txs(committee.index),
            f"intra:{committee.index}",
            input_side_votes,
            "intra",
        )
        for committee in ctx.committees
    ]
    rounds = run_vote_rounds(ctx, work)
    for committee, round_result in zip(list(ctx.committees), rounds):
        final = _audit_and_maybe_retry(ctx, committee, round_result, report)
        report.rounds[committee.index] = final
        _record_votes(ctx, committee.index, final)
    _send_to_referee(ctx, report)
    report.elapsed = ctx.net.now - started
    return report


def _audit_and_maybe_retry(
    ctx: RoundContext,
    committee: CommitteeSpec,
    round_result: VoteRound,
    report: IntraReport,
    phase_name: str = "intra",
) -> VoteRound:
    witness = audit_vote_round(ctx, committee, round_result, phase_name)
    if witness is None:
        return round_result
    if witness.kind == "censor":
        report.censorship_detected.append(committee.index)
    elif witness.kind == "equivocation":
        report.equivocation_detected.append(committee.index)
    else:
        report.silence_detected.append(committee.index)
    accuser = first_honest_partial(ctx, committee)
    if accuser is None:
        return round_result
    event = attempt_recovery(
        ctx,
        committee,
        accuser,
        witness,
        session=f"{phase_name}rec:{committee.index}",
    )
    report.recoveries.append(event)
    if not event.succeeded:
        return round_result
    report.retried.append(committee.index)
    retry = run_vote_rounds(
        ctx,
        [
            (
                committee,
                round_result.txs,
                f"{phase_name}:{committee.index}:retry",
                input_side_votes,
                phase_name,
            )
        ],
    )[0]
    return retry


def _record_votes(ctx: RoundContext, k: int, round_result: VoteRound) -> None:
    """Stash (txids, matrix, decision) for the reputation phase."""
    if round_result.matrix is not None:
        ctx.vote_records.setdefault(k, []).append(
            (round_result.txids, round_result.matrix, round_result.decision)
        )


def _send_to_referee(ctx: RoundContext, report: IntraReport) -> None:
    """Leaders send certified TXdecSETs to C_R; C_R verifies certificates
    against the semi-committed member lists (Lemma 6)."""
    received: dict[int, dict[int, tuple]] = {}

    def make_on_intra(rid: int):
        def handler(message) -> None:
            k, txs, payload, cert = message.payload
            received.setdefault(rid, {})[k] = (txs, payload, cert)

        return handler

    for rid in ctx.referee:
        ctx.node(rid).on(Tags.INTRA, make_on_intra(rid))
    for committee in ctx.committees:
        round_result = report.rounds.get(committee.index)
        if round_result is None or not round_result.consensus_success:
            continue
        leader_node = ctx.node(committee.leader)
        alg3_payload = (round_result.reported_txids, round_result.vlist_tuple)
        for rid in ctx.referee:
            leader_node.send(
                rid,
                Tags.INTRA,
                (
                    committee.index,
                    round_result.reported_txs,
                    alg3_payload,
                    tuple(round_result.cert),
                ),
            )
    ctx.net.run()
    lead = ctx.referee[0]
    for k, (txs, payload, cert) in received.get(lead, {}).items():
        member_pks = [pk for pk, _addr in ctx.member_lists.get(k, ())]
        if not member_pks:
            continue
        digest = consensus_digest(payload)
        session = report.rounds[k].session
        ok = verify_certificate(
            ctx.pki,
            member_pks,
            ctx.round_number,
            ("VOTEROUND", session),
            digest,
            cert,
        )
        if ok and tuple(tx.txid for tx in txs) == payload[0]:
            report.accepted_by_cr[k] = list(txs)
            ctx.intra_results[k] = list(txs)
    for rid in ctx.referee:
        total = sum(len(v[0]) for v in received.get(rid, {}).values())
        ctx.metrics.record_storage(rid, total)
