"""RapidChain model [Zamani et al., CCS'18] — Table I column 3.

Resiliency t < n/3; O(n) complexity; O(c) storage; failure
``m·e^{-c/12} + (1/2)^27`` (the additive term from its reference-committee
bootstrap).  "The protocol guarantees high efficiency only when leaders of
each committee are honest … in expectation, there is a proportion of 1/3
leaders that are malicious in a round.  Under this condition, cross-shard
transactions may hardly be included in a block." (§II-A)
"""

from __future__ import annotations

from repro.analysis.security import round_failure_rapidchain
from repro.baselines.common import ProtocolModel, as_float


class RapidChainModel(ProtocolModel):
    name = "RapidChain"
    resiliency = 1.0 / 3.0
    decentralization = "an honest reference committee"
    leader_robust = False
    has_incentives = False
    connection_burden = "heavy"

    def complexity_messages(self, n, m, c):
        return as_float(n)

    def storage(self, n, m, c):
        return as_float(c)

    def fail_probability(self, m, c, lam):
        return as_float(round_failure_rapidchain(m, c))
