"""CycLedger's own analytical profile — Table I column 4.

Resiliency t < n/3; O(n) complexity; O(m²/n + c) storage; failure
``m·(e^{-c/12} + (1/3)^λ)``; no always-honest party; recovers from
dishonest leaders (partial sets + Algorithm 6); explicit incentives; light
connection burden (committee cliques + key-member clique + key→C_R links,
not an all-honest-pairs clique).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.security import partial_set_failure, round_failure_cycledger
from repro.baselines.common import ProtocolModel, as_float
from repro.net.topology import cycledger_channel_count


class CycLedgerModel(ProtocolModel):
    name = "CycLedger"
    resiliency = 1.0 / 3.0
    decentralization = "no always-honest party"
    leader_robust = True
    has_incentives = True
    connection_burden = "light"

    def complexity_messages(self, n, m, c):
        return as_float(n)

    def storage(self, n, m, c):
        return as_float(
            m * m / np.maximum(np.asarray(n, dtype=float), 1.0)
            + np.asarray(c, dtype=float)
        )

    def fail_probability(self, m, c, lam):
        return as_float(round_failure_cycledger(m, c, lam))

    def connection_channels(
        self, n: int, m: int, c: int, lam: int, cr: int
    ) -> int:
        return cycledger_channel_count(n, m, lam, cr)

    def cross_shard_commit_probability(
        self, leader_honest_i: bool, leader_honest_j: bool, lam: int
    ) -> float:
        """A dishonest leader is detected and replaced within the round as
        long as its partial set has one honest member — the package commits
        unless *both* recovery chances fail."""
        p_recover = 1.0 - partial_set_failure(lam)
        p_i = 1.0 if leader_honest_i else p_recover
        p_j = 1.0 if leader_honest_j else p_recover
        return p_i * p_j
