"""OmniLedger model [Kokoris-Kogias et al., S&P'18] — Table I column 2.

Resiliency t < n/4; O(n) complexity; O(c + log m) storage (state blocks +
epoch chain); failure O(m·e^{-c/40}); depends on "a never-absent trusty
client to schedule the leaders' interaction when handling cross-shard
transactions" (§II-A) — the Atomix client — so cross-shard progress under a
faulty coordinating client/leader stalls.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.security import round_failure_omniledger
from repro.baselines.common import ProtocolModel


class OmniLedgerModel(ProtocolModel):
    name = "OmniLedger"
    resiliency = 1.0 / 4.0
    decentralization = "an honest client"
    leader_robust = False
    has_incentives = False
    connection_burden = "heavy"

    def complexity_messages(self, n: int, m: int, c: int) -> float:
        return float(n)

    def storage(self, n: int, m: int, c: int) -> float:
        return float(c + np.log(max(m, 2)))

    def fail_probability(self, m: int, c: int, lam: int) -> float:
        return float(round_failure_omniledger(m, c))
