"""OmniLedger model [Kokoris-Kogias et al., S&P'18] — Table I column 2.

Resiliency t < n/4; O(n) complexity; O(c + log m) storage (state blocks +
epoch chain); failure O(m·e^{-c/40}); depends on "a never-absent trusty
client to schedule the leaders' interaction when handling cross-shard
transactions" (§II-A) — the Atomix client — so cross-shard progress under a
faulty coordinating client/leader stalls.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.security import round_failure_omniledger
from repro.baselines.common import ProtocolModel, as_float


class OmniLedgerModel(ProtocolModel):
    name = "OmniLedger"
    resiliency = 1.0 / 4.0
    decentralization = "an honest client"
    leader_robust = False
    has_incentives = False
    connection_burden = "heavy"

    def complexity_messages(self, n, m, c):
        return as_float(n)

    def storage(self, n, m, c):
        return as_float(np.asarray(c, dtype=float) + np.log(max(m, 2)))

    def fail_probability(self, m, c, lam):
        return as_float(round_failure_omniledger(m, c))
