"""Shared interface and the leader-stall simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def as_float(value):
    """Scalar-in/scalar-out, array-in/array-out normalization.

    The quantitative Table I rows are numpy expressions, so the same model
    method serves both the single-configuration table (floats) and the
    vectorized n-grid scaling curves (arrays) without per-point loops.
    """
    arr = np.asarray(value, dtype=float)
    return arr if arr.ndim else float(arr)


class ProtocolModel:
    """Analytical profile of one sharding protocol (one Table I column).

    The quantitative methods accept scalars or numpy arrays for ``n``/``c``
    and return a matching float or array (see :func:`as_float`)."""

    name: str = "abstract"
    #: Max tolerated malicious fraction (Table I "Resiliency" row).
    resiliency: float = 0.0
    #: "Decentralization" row.
    decentralization: str = ""
    #: "High Efficiency w.r.t Dishonest Leaders" row.
    leader_robust: bool = False
    #: "Incentives" row.
    has_incentives: bool = False
    #: "Burden on Connection" row.
    connection_burden: str = "heavy"

    # -- quantitative rows ---------------------------------------------------
    def complexity_messages(self, n: int, m: int, c: int) -> float:
        """Per-node communication/computation class, evaluated numerically
        ("Complexity" row; all four protocols are O(n) there)."""
        raise NotImplementedError

    def storage(self, n: int, m: int, c: int) -> float:
        """Per-node storage class, evaluated numerically ("Storage" row)."""
        raise NotImplementedError

    def fail_probability(self, m: int, c: int, lam: int) -> float:
        """Per-round failure probability ("Fail Probability" row)."""
        raise NotImplementedError

    def connection_channels(
        self, n: int, m: int, c: int, lam: int, cr: int
    ) -> int:
        """Reliable channels required (quantifying the "Burden" row).

        Default: prior protocols assume "a good connection between any pair
        of truthful nodes" — a full clique over the ~2/3 honest nodes.
        """
        honest = int(n * (1 - self.resiliency))
        return honest * (honest - 1) // 2

    # -- leader-stall behaviour ------------------------------------------------
    def cross_shard_commit_probability(
        self, leader_honest_i: bool, leader_honest_j: bool, lam: int
    ) -> float:
        """Probability a cross-shard tx between committees with the given
        leader honesty commits this round.  Baselines without a recovery
        procedure stall whenever either leader misbehaves."""
        return 1.0 if (leader_honest_i and leader_honest_j) else 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass
class LeaderStallResult:
    protocol: str
    malicious_leader_fraction: float
    committed_fraction: float
    stalled_rounds: int
    total_rounds: int


def simulate_leader_stalls(
    model: ProtocolModel,
    malicious_leader_fraction: float,
    rounds: int,
    pairs_per_round: int,
    rng: np.random.Generator,
    lam: int = 40,
) -> LeaderStallResult:
    """Monte-Carlo of cross-shard commits under dishonest leaders.

    Each round draws leader honesty per committee pair i.i.d. with the given
    malicious fraction (the paper: "in expectation, there is a proportion of
    1/3 leaders that are malicious in a round"), then asks the model whether
    each cross-shard package commits.
    """
    if not (0.0 <= malicious_leader_fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    committed = 0
    stalled_rounds = 0
    total = rounds * pairs_per_round
    for _ in range(rounds):
        honest_i = rng.random(pairs_per_round) >= malicious_leader_fraction
        honest_j = rng.random(pairs_per_round) >= malicious_leader_fraction
        probs = np.array(
            [
                model.cross_shard_commit_probability(bool(a), bool(b), lam)
                for a, b in zip(honest_i, honest_j)
            ]
        )
        commits = rng.random(pairs_per_round) < probs
        committed += int(np.sum(commits))
        if not np.all(commits):
            stalled_rounds += 1
    return LeaderStallResult(
        protocol=model.name,
        malicious_leader_fraction=malicious_leader_fraction,
        committed_fraction=committed / total if total else 0.0,
        stalled_rounds=stalled_rounds,
        total_rounds=rounds,
    )
