"""Baseline sharding-protocol models for the Table I comparison.

Elastico, OmniLedger and RapidChain are closed-source testbed systems; what
Table I compares is their *analytical* profiles (resiliency, complexity,
storage, per-round failure probability, decentralization assumptions,
dishonest-leader behaviour, incentives, connection burden).  Each baseline
is therefore an executable model exposing those quantities, plus a common
cross-shard *leader-stall* simulator that reproduces the row CycLedger
highlights: what happens to cross-shard throughput when a fraction of
committee leaders is malicious.
"""

from repro.baselines.common import (
    ProtocolModel,
    LeaderStallResult,
    simulate_leader_stalls,
)
from repro.baselines.elastico import ElasticoModel
from repro.baselines.omniledger import OmniLedgerModel
from repro.baselines.rapidchain import RapidChainModel
from repro.baselines.cycledger_model import CycLedgerModel

ALL_MODELS = [
    ElasticoModel(),
    OmniLedgerModel(),
    RapidChainModel(),
    CycLedgerModel(),
]

__all__ = [
    "ProtocolModel",
    "LeaderStallResult",
    "simulate_leader_stalls",
    "ElasticoModel",
    "OmniLedgerModel",
    "RapidChainModel",
    "CycLedgerModel",
    "ALL_MODELS",
]
