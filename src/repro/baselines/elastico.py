"""Elastico model [Luu et al., CCS'16] — Table I column 1.

Resiliency t < n/4; Ω(n) complexity; O(n) storage (every node keeps the full
ledger); failure probability Ω(m·e^{-c/40}) with notoriously small
committees (c ≈ 100), which is why "when there are 16 shards, the failure
probability is 97% over only 6 epochs" (§II-A).
"""

from __future__ import annotations

from repro.analysis.security import round_failure_elastico
from repro.baselines.common import ProtocolModel, as_float


class ElasticoModel(ProtocolModel):
    name = "Elastico"
    resiliency = 1.0 / 4.0
    decentralization = "no always-honest party"
    leader_robust = False
    has_incentives = False
    connection_burden = "heavy"

    #: The committee size Elastico actually ran with.
    TYPICAL_COMMITTEE = 100

    def complexity_messages(self, n, m, c):
        return as_float(n)  # Ω(n)

    def storage(self, n, m, c):
        return as_float(n)  # full replication

    def fail_probability(self, m, c, lam):
        return as_float(round_failure_elastico(m, c))

    def epoch_failure(self, m: int, c: int, epochs: int) -> float:
        """Failure probability over several epochs (the 97%/6-epochs claim)."""
        per_epoch = self.fail_probability(m, c, 0)
        return 1.0 - (1.0 - per_epoch) ** epochs
