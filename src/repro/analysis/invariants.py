"""Machine-checked consensus invariants (TLA+-style conformance layer).

The paper argues safety and liveness in prose (Theorems 1–3, Claims 1–5);
this module turns the arguments into executable checks evaluated on every
round boundary, in the spirit of consensus implementations written against
an explicit TLA+/PlusCal spec.  An :class:`InvariantChecker` installs a
round post-hook on any executable backend's pipeline and asserts, after
every :class:`~repro.core.protocol.RoundReport`:

Safety
    * ``chain-linkage`` — committed blocks form one hash-linked chain with
      strictly increasing round numbers: at most one commit per round, so
      no two conflicting blocks for the same (round, shard) slot.
    * ``no-double-spend`` — no outpoint is spent twice, within a block or
      across the whole committed history.
    * ``utxo-conservation`` — committed transactions never create value:
      the UTXO set's total value is non-increasing (fees are destroyed and
      redistributed off-ledger by the reward mechanism).
    * ``reputation-monotone-honest`` — in clean rounds (no corrupted,
      offline or policy/scenario-disturbed nodes) no node's reputation
      decreases: honest participation can only be rewarded (§IV-E).
    * ``mempool-conservation`` — with the persistent mempool, every
      admitted transaction is accounted for exactly once:
      ``admitted == packed + queued + evicted``.

Liveness
    * ``recovery-terminates`` — every leader re-selection (Alg. 6)
      completes within the round that started it, with a finite sim-time.
    * ``honest-majority-commit`` — a clean round with work available
      commits a non-empty block (the paper's "rounds with honest majority
      make progress").

Checks read only the public run surface (chain, UTXO set, reputation,
mempool counters, round reports), so one checker works across CycLedger
and the rival backends unchanged.  The invariant registry
(:data:`INVARIANTS`) carries each invariant's prose statement; the docs
catalogue (``docs/scenarios.md``) and the parametrised conformance tests
are generated against it, so adding a checker without prose (or prose
without a checker) fails a test.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.pipeline import POST

#: Tolerance for float comparisons on reputation/sim-time values: IEEE
#: accumulation order may differ between a fresh sum and incremental
#: updates, never by more than a few ulps at these magnitudes.
_EPS = 1e-9


@dataclass(frozen=True)
class Invariant:
    """Registry entry: one named invariant and its prose statement."""

    name: str
    kind: str  # "safety" | "liveness"
    description: str


#: Every machine-checked invariant, keyed by name.  The prose here is the
#: normative statement; checker methods implement it.
INVARIANTS: dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        Invariant(
            "chain-linkage",
            "safety",
            "Committed blocks form one hash-linked chain with strictly "
            "increasing round numbers — at most one commit per round, so "
            "there are no conflicting blocks for any (round, shard) slot.",
        ),
        Invariant(
            "no-double-spend",
            "safety",
            "No outpoint is spent by two committed transactions, whether "
            "they share a block or sit anywhere in the committed history.",
        ),
        Invariant(
            "utxo-conservation",
            "safety",
            "Committed transactions never create value: the UTXO set's "
            "total value is non-increasing round over round (transaction "
            "fees are destroyed on-ledger and redistributed off-ledger).",
        ),
        Invariant(
            "reputation-monotone-honest",
            "safety",
            "In a clean round — no corrupted nodes, nobody offline, no "
            "scenario or policy active — no node's reputation decreases: "
            "honest participation is never punished.",
        ),
        Invariant(
            "mempool-conservation",
            "safety",
            "With the persistent mempool, every admitted transaction is "
            "accounted for exactly once: total admitted equals cumulative "
            "packed plus still-queued plus evicted.",
        ),
        Invariant(
            "recovery-terminates",
            "liveness",
            "Every leader re-selection (Alg. 6) that starts in a round "
            "finishes in that round at a finite sim-time no later than "
            "the round's end.",
        ),
        Invariant(
            "honest-majority-commit",
            "liveness",
            "A clean round with work available commits a non-empty "
            "block: honest-majority rounds make progress.",
        ),
    )
}


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation: which invariant, when, and what happened."""

    invariant: str
    round_number: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[r{self.round_number}] {self.invariant}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by a checker in ``raise_on_violation`` mode.

    Subclasses :class:`AssertionError` so hypothesis shrinks stateful
    failures instead of treating them as test-harness errors.
    """

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        super().__init__(
            "; ".join(str(v) for v in violations) or "invariant violation"
        )


@dataclass
class _RoundSnapshot:
    """Carry-over state between round checks."""

    utxo_total: int = 0
    reputation: dict[str, float] = field(default_factory=dict)
    packed_cumulative: int = 0
    blocks_seen: int = 0
    last_round: int = 0
    queue_depth: int = 0
    # Hash of the newest block already checked: the expected prev_hash of
    # the next commit.  Carried explicitly (rather than re-read from the
    # blocks list) so linkage checking survives chain body pruning.
    last_hash: bytes = b"\x00" * 32


class InvariantChecker:
    """Evaluates the invariant set on every round of one ledger.

    Install on any executable backend before running::

        ledger = create_backend("cycledger", params)
        checker = InvariantChecker()
        checker.install(ledger)
        ledger.run(rounds=5)        # raises on the first violated round
        checker.assert_clean()

    With ``raise_on_violation=False`` violations accumulate in
    :attr:`violations` instead (useful to census a deliberately faulty
    run).

    ``spent_retention`` bounds the incremental spent-outpoint set to the
    last N rounds' spends (a *compacted frontier*), keeping double-spend
    detection O(window) in memory for epoch-scale soaks.  Double-spends of
    outpoints older than the window escape detection — acceptable because
    the workload's double-spend injector draws from a similarly bounded
    history (``ProtocolParams.spent_retention``); 0 keeps the full history.
    """

    def __init__(
        self, raise_on_violation: bool = True, spent_retention: int = 0
    ) -> None:
        self.raise_on_violation = raise_on_violation
        self.spent_retention = spent_retention
        self.violations: list[InvariantViolation] = []
        self.rounds_checked = 0
        self._ledger: Any = None
        self._snap = _RoundSnapshot()
        self._spent: set[tuple[bytes, int]] = set()
        # (round_number, outpoints spent that round) — the compaction
        # frontier when spent_retention > 0.
        self._spent_window: deque[tuple[int, set[tuple[bytes, int]]]] = deque()

    # -- wiring ------------------------------------------------------------
    def install(self, ledger: Any) -> None:
        """Subscribe to ``ledger``'s round post-hook and snapshot genesis
        state (a checker watches exactly one ledger)."""
        if self._ledger is not None:
            raise ValueError(
                "checker is already installed; build one checker per ledger"
            )
        self._ledger = ledger
        self._snap.utxo_total = ledger.global_utxos.total_value()
        self._snap.reputation = dict(ledger.reputation.items())
        ledger.pipeline.add_round_hook(POST, self._on_round_end)

    # -- helpers -----------------------------------------------------------
    def _clean_round(self, ledger: Any, round_number: int) -> bool:
        """Whether this round ran with no adversarial or injected
        disturbance — the precondition of the honest-behaviour invariants.

        Conservative by design: any round inside a scenario or policy
        window counts as disturbed even if the event did not fire, because
        a partition's message loss (for example) can depress commits and
        reputations without any corrupted node existing.
        """
        adversary = ledger.adversary
        if adversary.count or adversary.offline or adversary.forced_offline:
            return False
        scenario = getattr(ledger, "scenario", None)
        if scenario is not None and round_number <= scenario.last_event_round:
            return False
        policy = getattr(ledger, "policy", None)
        if policy is not None and round_number <= policy.last_active_round:
            return False
        return True

    def _record(self, name: str, round_number: int, detail: str) -> None:
        self.violations.append(InvariantViolation(name, round_number, detail))

    # -- the hook ----------------------------------------------------------
    def _on_round_end(self, ledger: Any, report: Any) -> None:
        before = len(self.violations)
        round_number = report.round_number
        self._check_chain(ledger, round_number)
        self._check_utxo_conservation(ledger, round_number)
        self._check_reputation(ledger, round_number)
        self._check_mempool(ledger, report)
        self._check_recovery(report)
        self._check_commit(ledger, report)
        self._snap.queue_depth = report.queue_depth
        self.rounds_checked += 1
        if self.raise_on_violation and len(self.violations) > before:
            raise InvariantViolationError(self.violations[before:])

    # -- safety checks -----------------------------------------------------
    def _check_chain(self, ledger: Any, round_number: int) -> None:
        """chain-linkage + no-double-spend over this round's new blocks.

        ``blocks_seen`` counts every block ever checked; under chain body
        pruning the retained list is indexed with the pruned-prefix offset,
        and the expected predecessor hash is carried in the snapshot (so
        the boundary block of the retained suffix still links correctly).
        """
        chain = ledger.chain
        blocks = chain.blocks
        start = max(0, self._snap.blocks_seen - getattr(chain, "pruned_blocks", 0))
        round_spent: set[tuple[bytes, int]] = set()
        for block in blocks[start:]:
            if block.prev_hash != self._snap.last_hash:
                self._record(
                    "chain-linkage",
                    round_number,
                    f"block r={block.round_number} does not link to the "
                    f"previous head",
                )
            if block.round_number <= self._snap.last_round:
                self._record(
                    "chain-linkage",
                    round_number,
                    f"block round {block.round_number} not strictly after "
                    f"{self._snap.last_round} (conflicting commit for one "
                    f"round slot)",
                )
            self._snap.last_round = block.round_number
            self._snap.last_hash = block.hash
            self._snap.blocks_seen += 1
            in_block: set[tuple[bytes, int]] = set()
            for tx in block.transactions:
                for outpoint in tx.outpoints():
                    if outpoint in in_block or outpoint in self._spent:
                        self._record(
                            "no-double-spend",
                            round_number,
                            f"outpoint {outpoint[0].hex()[:8]}:{outpoint[1]} "
                            f"spent twice (block r={block.round_number})",
                        )
                    in_block.add(outpoint)
            self._spent |= in_block
            round_spent |= in_block
        if self.spent_retention:
            self._spent_window.append((round_number, round_spent))
            cutoff = round_number - self.spent_retention
            while self._spent_window and self._spent_window[0][0] <= cutoff:
                _, expired = self._spent_window.popleft()
                self._spent -= expired

    def _check_utxo_conservation(self, ledger: Any, round_number: int) -> None:
        total = ledger.global_utxos.total_value()
        if total > self._snap.utxo_total:
            self._record(
                "utxo-conservation",
                round_number,
                f"UTXO total value grew {self._snap.utxo_total} -> {total}",
            )
        self._snap.utxo_total = total

    def _check_reputation(self, ledger: Any, round_number: int) -> None:
        current = dict(ledger.reputation.items())
        if self._clean_round(ledger, round_number):
            for pk, previous in self._snap.reputation.items():
                now = current.get(pk, 0.0)
                if now < previous - _EPS:
                    self._record(
                        "reputation-monotone-honest",
                        round_number,
                        f"clean round decreased reputation of {pk[:12]}… "
                        f"{previous:.6f} -> {now:.6f}",
                    )
        self._snap.reputation = current

    def _check_mempool(self, ledger: Any, report: Any) -> None:
        self._snap.packed_cumulative += report.packed
        mempool = getattr(ledger, "mempool", None)
        if mempool is None or not mempool.persistent:
            # Legacy settlement clears the queue every round and reports
            # no evictions, so the identity is undefined there.
            return
        accounted = (
            self._snap.packed_cumulative + mempool.depth + mempool.total_evicted
        )
        if mempool.total_admitted != accounted:
            self._record(
                "mempool-conservation",
                report.round_number,
                f"admitted {mempool.total_admitted} != packed "
                f"{self._snap.packed_cumulative} + queued {mempool.depth} "
                f"+ evicted {mempool.total_evicted}",
            )

    # -- liveness checks ---------------------------------------------------
    def _check_recovery(self, report: Any) -> None:
        times = getattr(report, "recovery_times", ())
        if len(times) != report.recoveries:
            self._record(
                "recovery-terminates",
                report.round_number,
                f"{report.recoveries} recoveries but {len(times)} "
                f"completion times",
            )
        for when in times:
            if not math.isfinite(when) or when < 0.0:
                self._record(
                    "recovery-terminates",
                    report.round_number,
                    f"non-terminating recovery (sim time {when!r})",
                )
            elif when > report.sim_time + _EPS:
                self._record(
                    "recovery-terminates",
                    report.round_number,
                    f"recovery at t={when:.3f} after the round's end "
                    f"t={report.sim_time:.3f}",
                )

    def _check_commit(self, ledger: Any, report: Any) -> None:
        """honest-majority-commit.

        Guarded on a clean round with work available and a workload whose
        invalid fraction cannot plausibly consume every submitted
        transaction (at ``invalid_ratio <= 0.2`` a fully-invalid round has
        probability <= 0.2^submitted — negligible against the suite's
        example counts).
        """
        if not self._clean_round(ledger, report.round_number):
            return
        available = report.submitted + self._snap.queue_depth
        if available == 0 or ledger.params.invalid_ratio > 0.2:
            return
        if report.packed <= 0:
            self._record(
                "honest-majority-commit",
                report.round_number,
                f"clean round with {available} transactions available "
                f"committed nothing",
            )

    # -- final sweep -------------------------------------------------------
    def check_final(self, ledger: Any) -> list[InvariantViolation]:
        """End-of-run sweep: full chain verification (and the accumulated
        violations list, for censusing runs)."""
        if not ledger.chain.verify():
            violation = InvariantViolation(
                "chain-linkage",
                getattr(ledger, "round_number", 0),
                "Chain.verify() failed on the final chain",
            )
            self.violations.append(violation)
            if self.raise_on_violation:
                raise InvariantViolationError([violation])
        return self.violations

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (census mode helper)."""
        if self.violations:
            raise InvariantViolationError(self.violations)
