"""Incentive analysis (§VII, Fig. 4, Eq. 1–2)."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.reputation import g  # canonical Eq. 2 implementation

__all__ = ["g", "reward_shares", "expected_score", "leader_punishment"]


def reward_shares(reputations: Mapping[str, float]) -> dict[str, float]:
    """Normalized reward share per node: g(w_i) / Σ g(w_j)."""
    if not reputations:
        return {}
    pks = list(reputations)
    weights = g(np.array([reputations[pk] for pk in pks]))
    total = float(np.sum(weights))
    return {pk: float(w) / total for pk, w in zip(pks, weights)}


def expected_score(
    capacity: int, total_txs: int, accuracy: float = 1.0
) -> float:
    """Expected per-round cosine score of an honest node (Eq. 1 model).

    A node that correctly judges ``min(capacity, D)`` of ``D`` transactions
    and votes Unknown on the rest has vote vector matching the decision on
    the judged coordinates and 0 elsewhere; against a ±1 decision vector the
    cosine is ``sqrt(judged / D) · accuracy``.  This is the concrete sense
    in which "reputation reflects honest computational resources" (§VII-A):
    the score grows monotonically with capacity.
    """
    if total_txs <= 0:
        return 0.0
    judged = min(max(capacity, 0), total_txs)
    return float(np.sqrt(judged / total_txs) * accuracy)


def leader_punishment(reputation: float) -> float:
    """§VII-B: a faulty leader's reputation drops to its cube root."""
    return float(np.cbrt(max(reputation, 0.0)))
