"""Terminal plotting for the reproduction's figures.

Matplotlib is deliberately not a dependency; the figures the paper plots
(Fig. 4's g(x) curve, Fig. 5's failure-probability decay) render fine as
ASCII, which also keeps benchmark output self-contained in CI logs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render one or more series as an ASCII scatter/line chart.

    Each series gets a marker; points are bucketed onto a width×height
    character grid.  ``logy`` plots log10 of the values (zeros/negatives are
    dropped), which is how Fig. 5 is drawn in the paper.
    """
    xs = np.asarray(xs, dtype=float)
    if xs.ndim != 1 or xs.size < 2:
        raise ValueError("need at least two x points")
    markers = "*o+x#@%&"
    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    y_all = []
    for index, (name, ys) in enumerate(series.items()):
        ys_arr = np.asarray(ys, dtype=float)
        if ys_arr.shape != xs.shape:
            raise ValueError(f"series {name!r} length mismatch")
        if logy:
            mask = ys_arr > 0
            cleaned[name] = (xs[mask], np.log10(ys_arr[mask]))
        else:
            cleaned[name] = (xs, ys_arr)
        y_all.append(cleaned[name][1])
    y_concat = np.concatenate([y for y in y_all if y.size])
    if y_concat.size == 0:
        raise ValueError("nothing to plot")
    y_min, y_max = float(np.min(y_concat)), float(np.max(y_concat))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (sx, sy)) in enumerate(cleaned.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(sx, sy):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_label_top = f"{y_max:.3g}" + (" (log10)" if logy else "")
    y_label_bot = f"{y_min:.3g}"
    lines.append(y_label_top)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{y_label_bot}  x: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart (used for reward-share comparisons)."""
    values = np.asarray(values, dtype=float)
    if len(labels) != values.size:
        raise ValueError("labels/values length mismatch")
    if values.size == 0:
        raise ValueError("nothing to plot")
    top = float(values.max())
    if top <= 0:
        top = 1.0
    lines = [title] if title else []
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * int(round(max(value, 0.0) / top * width))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)
