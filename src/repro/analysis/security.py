"""Security analysis (§V, Eq. 3–4, Fig. 5, Table I failure column).

The committee-sampling failure model: drawing ``c`` of ``n`` nodes without
replacement from a population containing ``t`` malicious ones, a committee
*fails* when at least half its members are malicious::

    Pr[X >= c/2] = Σ_{x=⌈c/2⌉}^{c}  C(t,x)·C(n-t,c-x) / C(n,c)   (Eq. 3)

bounded by the hypergeometric Chernoff bound ``exp(-D(1/2 ‖ f)·c)`` with
``f = t/n (+1/c correction)``, which for ``t < n/3`` is at most
``exp(-c/12)`` (Eq. 4).  Partial sets fail when *all* λ members are
malicious: ``(1/3)^λ``.  A round fails if any committee or any partial set
fails: ``m·(e^{-c/12} + (1/3)^λ)`` (Table I).
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def committee_failure_exact(n: int, t: int, c) -> np.ndarray | float:
    """Exact hypergeometric tail ``Pr[X >= c/2]`` (vectorized over ``c``).

    This is the quantity Fig. 5 plots for n=2000, t=666.
    """
    c_arr = np.atleast_1d(np.asarray(c, dtype=np.int64))
    if np.any(c_arr < 1) or np.any(c_arr > n):
        raise ValueError("committee size out of range")
    if not (0 <= t <= n):
        raise ValueError("t out of range")
    # Pr[X >= ceil(c/2)] = sf(ceil(c/2) - 1)
    thresholds = np.ceil(c_arr / 2.0) - 1.0
    out = np.empty(c_arr.shape, dtype=float)
    for i, (ci, ki) in enumerate(zip(c_arr, thresholds)):
        out[i] = float(stats.hypergeom.sf(ki, n, t, int(ci)))
    return out if np.asarray(c).ndim else float(out[0])


def kl_divergence_bernoulli(a, f) -> np.ndarray | float:
    """D(a ‖ f) between Bernoulli(a) and Bernoulli(f), in nats."""
    a = np.asarray(a, dtype=float)
    f = np.asarray(f, dtype=float)
    if np.any((f <= 0) | (f >= 1)):
        raise ValueError("f must be in (0, 1)")
    with np.errstate(divide="ignore", invalid="ignore"):
        term1 = np.where(a > 0, a * np.log(a / f), 0.0)
        term2 = np.where(a < 1, (1 - a) * np.log((1 - a) / (1 - f)), 0.0)
    result = term1 + term2
    return result if result.ndim else float(result)


def committee_failure_kl_bound(n: int, t: int, c) -> np.ndarray | float:
    """Eq. 3's right side: ``exp(-D(1/2 ‖ f)·c)`` with ``f = t/n + 1/c``."""
    c_arr = np.asarray(c, dtype=float)
    f = np.minimum(t / n + 1.0 / c_arr, 1.0 - 1e-12)
    bound = np.exp(-kl_divergence_bernoulli(0.5, f) * c_arr)
    return bound if c_arr.ndim else float(bound)


def committee_failure_simple_bound(c) -> np.ndarray | float:
    """Eq. 4: ``e^{-c/12}``, valid whenever ``t < n/3`` and ``f < 1/3+1/c``."""
    c_arr = np.asarray(c, dtype=float)
    bound = np.exp(-c_arr / 12.0)
    return bound if c_arr.ndim else float(bound)


def partial_set_failure(lam, malicious_fraction: float = 1.0 / 3.0):
    """§V-C: a partial set is insecure when all λ draws are malicious."""
    lam_arr = np.asarray(lam, dtype=float)
    result = np.power(malicious_fraction, lam_arr)
    return result if lam_arr.ndim else float(result)


def union_bound(per_event, count):
    """Pr[any of ``count`` events] <= count · per_event (clipped at 1)."""
    return np.minimum(np.asarray(per_event, dtype=float) * count, 1.0)


def round_failure_cycledger(m: int, c, lam) -> np.ndarray | float:
    """Table I: ``m · (e^{-c/12} + (1/3)^λ)``."""
    result = union_bound(
        committee_failure_simple_bound(c) + partial_set_failure(lam), m
    )
    return result


# -- Table I failure formulas for the baselines ------------------------------


def round_failure_elastico(m: int, c) -> np.ndarray | float:
    """Ω(m·e^{-c/40}) — lower-order constant per Table I's comparison row."""
    return union_bound(np.exp(-np.asarray(c, dtype=float) / 40.0), m)


def round_failure_omniledger(m: int, c) -> np.ndarray | float:
    """O(m·e^{-c/40})."""
    return union_bound(np.exp(-np.asarray(c, dtype=float) / 40.0), m)


def round_failure_rapidchain(m: int, c) -> np.ndarray | float:
    """m·e^{-c/12} + (1/2)^27 (Table I)."""
    return np.minimum(
        union_bound(np.exp(-np.asarray(c, dtype=float) / 12.0), m) + 0.5**27,
        1.0,
    )


def monte_carlo_committee_failure(
    n: int,
    t: int,
    c: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Empirical committee-failure rate by direct sampling (cross-check for
    the exact tail; vectorized — ``trials`` hypergeometric draws at once)."""
    draws = rng.hypergeometric(ngood=t, nbad=n - t, nsample=c, size=trials)
    return float(np.mean(draws >= np.ceil(c / 2.0)))


def minimum_committee_size(n: int, t: int, target: float) -> int:
    """Smallest c whose exact failure probability is below ``target``
    (used to size committees for a desired security level)."""
    if not (0.0 < target < 1.0):
        raise ValueError("target must be in (0, 1)")
    for c in range(1, n + 1):
        if committee_failure_exact(n, t, c) < target:
            return c
    raise ValueError("no committee size achieves the target")
