"""Table II: claimed per-phase complexity classes, as machine-checkable data.

Each claim maps a ``(phase, role)`` cell to the *exponent vector* of the
claimed complexity in the basis ``(n, m, c)`` — e.g. O(c²) is ``(0, 0, 2)``
and O(mn) is ``(1, 1, 0)``.  The complexity benchmark measures counters at
several network sizes, fits an empirical exponent in the swept variable, and
compares against the claim evaluated in that variable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.counters import Roles


@dataclass(frozen=True)
class ComplexityClaim:
    """O(n^a · m^b · c^d) for communication, and the same for storage."""

    phase: str
    role: str
    comm: tuple[float, float, float] | None  # None = "-" in the table
    storage: tuple[float, float, float] | None


#: Table II, row by row.  Basis order: (n, m, c); n = m·c.
TABLE2_CLAIMS: list[ComplexityClaim] = [
    ComplexityClaim("config", Roles.COMMON, (0, 0, 1), (0, 0, 1)),
    ComplexityClaim("config", Roles.KEY, (0, 0, 2), (0, 0, 2)),
    ComplexityClaim("config", Roles.REFEREE, None, None),
    ComplexityClaim("semicommit", Roles.COMMON, None, None),
    ComplexityClaim("semicommit", Roles.KEY, (0, 0, 1), (0, 1, 0)),
    ComplexityClaim("semicommit", Roles.REFEREE, (0, 2, 0), (0, 1, 0)),
    ComplexityClaim("intra", Roles.COMMON, (0, 0, 1), (0, 0, 0)),
    ComplexityClaim("intra", Roles.KEY, (0, 0, 1), (0, 0, 1)),
    ComplexityClaim("intra", Roles.REFEREE, (1, 0, 0), (1, 0, 0)),
    ComplexityClaim("inter", Roles.COMMON, (0, 1, 0), (0, 0, 0)),
    ComplexityClaim("inter", Roles.KEY, (1, 0, 0), (0, 0, 0)),
    ComplexityClaim("inter", Roles.REFEREE, (1, 0, 0), (1, 0, 0)),
    ComplexityClaim("reputation", Roles.COMMON, (0, 0, 1), (0, 0, 0)),
    ComplexityClaim("reputation", Roles.KEY, (0, 0, 1), (0, 0, 1)),
    ComplexityClaim("reputation", Roles.REFEREE, (1, 0, 0), (1, 0, 0)),
    ComplexityClaim("selection", Roles.REFEREE, (1, 0, 0), (1, 0, 0)),
    ComplexityClaim("block", Roles.COMMON, (0, 1, 0), (0, 0, 1)),
    ComplexityClaim("block", Roles.KEY, (1, 0, 0), (0, 0, 1)),
    ComplexityClaim("block", Roles.REFEREE, (1, 1, 0), (1, 0, 0)),
]


def claimed_exponent(
    claim: tuple[float, float, float],
    n_values: np.ndarray,
    m_values: np.ndarray,
    c_values: np.ndarray,
) -> float:
    """Effective exponent of the claimed class along a sweep.

    Given the claim O(n^a m^b c^d) and the actual (n, m, c) points of a
    sweep, the predicted counter is ``y = n^a m^b c^d``; fitting log y
    against log n gives the exponent an experiment should observe when
    sweeping that configuration family.
    """
    a, b, d = claim
    n_values = np.asarray(n_values, dtype=float)
    y = (
        n_values**a
        * np.asarray(m_values, dtype=float) ** b
        * np.asarray(c_values, dtype=float) ** d
    )
    slope, _ = np.polyfit(np.log(n_values), np.log(y), 1)
    return float(slope)


def table2_rows() -> list[tuple[str, str, str, str]]:
    """Human-readable Table II (phase, role, comm class, storage class)."""

    def render(claim: tuple[float, float, float] | None) -> str:
        if claim is None:
            return "-"
        names = ("n", "m", "c")
        parts = []
        for name, power in zip(names, claim):
            if power == 0:
                continue
            parts.append(name if power == 1 else f"{name}^{power:g}")
        return "O(" + ("1" if not parts else "·".join(parts)) + ")"

    return [
        (claim.phase, claim.role, render(claim.comm), render(claim.storage))
        for claim in TABLE2_CLAIMS
    ]
