"""Analytical models behind the paper's evaluation (Tables I & II, Figs 4 & 5).

Everything here is closed-form / vectorized NumPy+SciPy so benchmark sweeps
over thousands of parameter points are instant, per the HPC guide's
vectorize-the-hot-path advice.
"""

from repro.analysis.security import (
    committee_failure_exact,
    committee_failure_kl_bound,
    committee_failure_simple_bound,
    kl_divergence_bernoulli,
    partial_set_failure,
    round_failure_cycledger,
    union_bound,
    monte_carlo_committee_failure,
)
from repro.analysis.complexity import (
    TABLE2_CLAIMS,
    claimed_exponent,
    table2_rows,
)
from repro.analysis.incentive import g, reward_shares, expected_score
from repro.analysis.invariants import (
    INVARIANTS,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    InvariantViolationError,
)

__all__ = [
    "INVARIANTS",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "InvariantViolationError",
    "committee_failure_exact",
    "committee_failure_kl_bound",
    "committee_failure_simple_bound",
    "kl_divergence_bernoulli",
    "partial_set_failure",
    "round_failure_cycledger",
    "union_bound",
    "monte_carlo_committee_failure",
    "TABLE2_CLAIMS",
    "claimed_exponent",
    "table2_rows",
    "g",
    "reward_shares",
    "expected_score",
]
