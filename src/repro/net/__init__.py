"""Discrete-event network substrate.

The paper's network model (§III-B):

* good connection *within* a committee, synchronous with delay ≤ Δ;
* all leaders and partial-set members (key members) synchronously linked
  with a larger delay ≤ Γ, and each key member linked to the whole referee
  committee;
* all other connections only partially synchronous.

The simulator delivers messages along *declared channels only* — sending on
a channel the topology does not provide raises, so the implementation cannot
quietly assume the full honest-clique connectivity the paper criticises in
prior work.  Channel counts per class are recorded for the "burden on
connection" row of Table I.
"""

from repro.net.params import NetworkParams
from repro.net.message import Message, payload_size
from repro.net.simulator import Network, SimulationError
from repro.net.node import ProtocolNode
from repro.net.topology import (
    Channels,
    build_cycledger_topology,
    full_clique_channels,
    cycledger_channel_count,
)

__all__ = [
    "NetworkParams",
    "Message",
    "payload_size",
    "Network",
    "SimulationError",
    "ProtocolNode",
    "Channels",
    "build_cycledger_topology",
    "full_clique_channels",
    "cycledger_channel_count",
]
