"""Event-driven network simulator.

A single ``heapq`` of ``(deliver_time, seq, message)`` drives the run.  The
simulator is deliberately allocation-light (slotted messages, one heap, no
per-message objects beyond the envelope) so complexity benchmarks with tens
of thousands of messages stay fast, per the HPC guide's advice to keep the
inner loop simple and measured.

Adversarial power (§III-C): "The adversary can change the order of messages
sent by non-faulty nodes for the restriction given in our network model."
We model this with an optional reorder hook that may stretch *partially
synchronous* channels up to ``partial_max_stretch``× and permute delivery
within the synchrony bound on Δ/Γ channels — the adversary can never violate
the synchrony assumption itself.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.metrics.counters import MetricsCollector
from repro.net.message import Message, payload_size
from repro.net.params import ChannelClass, NetworkParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import ProtocolNode


class SimulationError(RuntimeError):
    """Raised for protocol-level misuse of the network (e.g. sending on a
    channel the topology does not provide)."""


class Network:
    """The message fabric plus the event loop.

    ``channel_classifier(src, dst) -> str`` assigns each ordered pair a
    latency class; in strict mode a classifier returning ``None`` (no
    channel) makes :meth:`send` raise, enforcing the paper's light
    connection graph.
    """

    def __init__(
        self,
        params: NetworkParams,
        rng: np.random.Generator,
        metrics: MetricsCollector | None = None,
        strict_channels: bool = True,
        pool_envelopes: bool = False,
    ) -> None:
        self.params = params
        self.rng = rng
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.strict_channels = strict_channels
        self.nodes: dict[int, "ProtocolNode"] = {}
        self.now: float = 0.0
        # Sim-time consumed by completed rounds: :meth:`reset` folds the
        # outgoing round's ``now`` into this accumulator, so
        # :attr:`global_now` is a monotonic clock that never rewinds even
        # though per-round event math runs on the (byte-exact) round-local
        # ``now``.  The round-overlap engine composes its end-to-end
        # timeline on this clock.
        self.epoch: float = 0.0
        self._queue: list[tuple[float, int, Message | None, Callable | None]] = []
        self._seq = itertools.count()
        # Jitter draws are served from a pre-drawn block: one vectorized
        # ``rng.random(n)`` call replaces n scalar Generator calls on the
        # per-message hot path.  numpy guarantees a batched draw consumes
        # the bit stream exactly like sequential scalar draws, so the
        # served sequence — and therefore every artifact — is unchanged
        # (asserted by tests/test_perf_harness.py).
        self._jitter_block: np.ndarray | None = None
        self._jitter_idx = 0
        # Recycled Message envelopes (opt-in): the protocol allocates one
        # envelope per send and drops it right after the delivery callback;
        # pooling removes that allocate/GC churn.  Pooling is only enabled
        # on the orchestrated protocol path (init_shared_state), whose
        # handlers are audited to retain payloads, never envelopes; ad-hoc
        # Network users (tests, notebooks) keep allocation semantics and
        # may hold on to delivered messages freely.
        self.pool_envelopes = pool_envelopes
        self._pool: list[Message] = []
        self.channel_classifier: Callable[[int, int], str | None] = (
            lambda src, dst: ChannelClass.PARTIAL
        )
        self.adversarial_scheduler: Callable[[Message], float] | None = None
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.drop_filter: Callable[[Message], bool] | None = None
        # Fault-injection state (scenario layer): a node -> group map where
        # crossing groups means the link is cut, plus time-windowed delay
        # multipliers.  Both compose with drop_filter/adversarial_scheduler.
        self._partition: dict[int, int] | None = None
        self.partition_dropped = 0
        # Degradation windows, kept sorted by start time.  Delivery time is
        # monotone within a round, so lookups keep a cursor into the sorted
        # list and an active set instead of scanning every window per send
        # (see :meth:`_degradation_factor`).
        self._degradations: list[tuple[float, float, float, frozenset[str] | None]] = []
        self._deg_cursor = 0
        self._deg_active: list[tuple[float, float, float, frozenset[str] | None]] = []
        # Round-local activation ledger: node ids that allocated a mailbox
        # (registered their first handler) this round, in activation order.
        # Idle nodes never appear here — at large n that is most of them —
        # so per-round bookkeeping can touch |active| nodes, not n.
        self._activated: list[int] = []
        # Per-class base delays resolved once (params is frozen): a dict
        # probe per message instead of the string-compare chain in
        # NetworkParams.base_delay.
        self._base_delays: dict[str, float] = {
            ChannelClass.INTRA: params.delta,
            ChannelClass.KEY: params.gamma,
            ChannelClass.REFEREE: params.gamma,
            ChannelClass.PARTIAL: params.partial_base,
            ChannelClass.LOCAL: 0.0,
        }

    # -- wiring ------------------------------------------------------------
    def reset(self, metrics: MetricsCollector | None = None) -> None:
        """Rewind the fabric for a fresh round without re-registering nodes.

        The CycLedger orchestrator runs many rounds against one long-lived
        network; rebuilding the simulator (and re-attaching every node) per
        round dominated the small-scale hot path.  ``reset`` drops all
        pending events, rewinds the round-local clock, and swaps in a fresh
        metrics sink while keeping the node registry and RNG stream intact.

        The outgoing round's elapsed time is folded into :attr:`epoch`
        first, so the cross-round :attr:`global_now` clock stays monotonic:
        per-round phase timings compose into one continuous end-to-end
        timeline while every in-round delivery time remains byte-identical
        to the historical fresh-clock behaviour.
        """
        if metrics is not None:
            self.metrics = metrics
        self.epoch += self.now
        self.now = 0.0
        self._queue.clear()
        self._seq = itertools.count()
        self.channel_classifier = lambda src, dst: ChannelClass.PARTIAL
        self.adversarial_scheduler = None
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.drop_filter = None
        self._partition = None
        self.partition_dropped = 0
        self._degradations.clear()
        self._deg_cursor = 0
        self._deg_active.clear()
        self._activated.clear()

    def note_activation(self, node_id: int) -> None:
        """Record that a node allocated its mailbox this round (called by
        ``ProtocolNode.on`` exactly once per node per round)."""
        self._activated.append(node_id)

    @property
    def activated(self) -> list[int]:
        """Node ids that registered at least one handler since the last
        :meth:`reset`, in first-activation order."""
        return self._activated

    def add_node(self, node: "ProtocolNode") -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        node.attach(self)

    def set_channel_classifier(
        self, classifier: Callable[[int, int], str | None]
    ) -> None:
        self.channel_classifier = classifier

    # -- fault injection ---------------------------------------------------
    def set_partitions(self, groups: "Iterable[Iterable[int]]") -> None:
        """Cut the fabric into disjoint node groups.

        Messages whose endpoints fall in different groups are silently
        dropped (counted in ``dropped_messages``/``partition_dropped``);
        nodes listed in no group form one implicit remainder group that can
        still talk among itself.  Partitions sit *below* the topology: the
        channel still exists, the packets just never arrive — which is
        exactly how a WAN cut looks to the protocol.
        """
        mapping: dict[int, int] = {}
        for group_id, group in enumerate(groups):
            for node_id in group:
                if node_id in mapping:
                    raise ValueError(f"node {node_id} in two partition groups")
                mapping[int(node_id)] = group_id
        self._partition = mapping or None

    def clear_partitions(self) -> None:
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def _crosses_partition(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src, -1) != self._partition.get(dst, -1)

    def add_link_degradation(
        self,
        factor: float,
        start: float = 0.0,
        end: float = float("inf"),
        channels: "Iterable[str] | None" = None,
    ) -> None:
        """Multiply sampled delays by ``factor`` for sends in the sim-time
        window ``[start, end)``, optionally restricted to channel classes.

        Unlike the adversarial scheduler this deliberately may violate the
        paper's synchrony bounds (it models infrastructure faults, not the
        in-model adversary), and it applies to every channel class given.
        Degradations stack multiplicatively and are cleared by
        :meth:`reset`.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self._degradations.append(
            (start, end, float(factor), frozenset(channels) if channels else None)
        )
        # Re-sort and rebuild the cursor state; registration is rare (a
        # handful of scenario events per run) while lookups run per send.
        self._degradations.sort(key=lambda window: window[0])
        self._deg_cursor = 0
        self._deg_active.clear()

    def _degradation_factor(self, channel_class: str) -> float:
        """Composite delay multiplier for sends at the current sim time.

        Windowed lookup over the start-sorted registry: the cursor admits
        windows whose start has passed, expired windows are dropped from
        the active set as they are seen, and the common case — no window
        currently active — costs one length check.  Callers already
        short-circuit entirely when no degradations are registered.
        """
        degradations = self._degradations
        cursor = self._deg_cursor
        now = self.now
        if cursor < len(degradations):
            while cursor < len(degradations) and degradations[cursor][0] <= now:
                self._deg_active.append(degradations[cursor])
                cursor += 1
            self._deg_cursor = cursor
        active = self._deg_active
        if not active:
            return 1.0
        factor = 1.0
        expired = False
        for start, end, multiplier, channels in active:
            if now >= end:
                expired = True
                continue
            if channels is None or channel_class in channels:
                factor *= multiplier
        if expired:
            self._deg_active = [w for w in active if now < w[1]]
        return factor

    # -- latency model ----------------------------------------------------
    _JITTER_BLOCK = 1024
    _POOL_MAX = 1024

    def _next_jitter(self) -> float:
        """The next uniform jitter draw, served from the pre-drawn block.

        Byte-for-byte identical to ``float(self.rng.random())`` per call —
        a batched ``Generator.random(n)`` consumes the underlying bit
        stream exactly like n scalar calls — but the Generator dispatch
        overhead is paid once per block instead of once per message.
        """
        block = self._jitter_block
        idx = self._jitter_idx
        if block is None or idx >= len(block):
            self._jitter_block = block = self.rng.random(self._JITTER_BLOCK)
            idx = 0
        self._jitter_idx = idx + 1
        return float(block[idx])

    def _sample_delay(self, channel_class: str, message: Message | None = None) -> float:
        base = self._base_delays.get(channel_class)
        if base is None:
            base = self.params.base_delay(channel_class)  # raises for unknown
        if base == 0.0:
            return 0.0
        jitter = self.params.jitter
        delay = base * (1.0 - jitter * self._next_jitter())
        if self._degradations:
            delay *= self._degradation_factor(channel_class)
        if (
            channel_class == ChannelClass.PARTIAL
            and self.adversarial_scheduler is not None
            and message is not None
        ):
            stretch = self.adversarial_scheduler(message)
            stretch = min(max(stretch, 1.0), self.params.partial_max_stretch)
            delay *= stretch
        return delay

    # -- sending ---------------------------------------------------------------
    def send(
        self,
        sender: int,
        recipient: int,
        tag: str,
        payload: Any,
        size: int | None = None,
    ) -> None:
        if recipient not in self.nodes:
            raise SimulationError(f"unknown recipient {recipient}")
        channel = self.channel_classifier(sender, recipient)
        if channel is None:
            if self.strict_channels:
                raise SimulationError(
                    f"no channel from {sender} to {recipient}: the topology "
                    "does not provide this link (see §III-B)"
                )
            channel = ChannelClass.PARTIAL
        if self._crosses_partition(sender, recipient):
            self.dropped_messages += 1
            self.partition_dropped += 1
            return
        nbytes = size if size is not None else payload_size(payload)
        if self._pool:
            # Reuse a retired envelope instead of allocating a fresh one.
            message = self._pool.pop()
            message.sender = sender
            message.recipient = recipient
            message.tag = tag
            message.payload = payload
            message.size = nbytes
            message.channel = channel
            message.send_time = self.now
            message.deliver_time = 0.0
        else:
            message = Message(
                sender=sender,
                recipient=recipient,
                tag=tag,
                payload=payload,
                size=nbytes,
                channel=channel,
                send_time=self.now,
                deliver_time=0.0,
            )
        if self.drop_filter is not None and self.drop_filter(message):
            self.dropped_messages += 1
            self._release(message)
            return
        message.deliver_time = self.now + self._sample_delay(channel, message)
        self.metrics.record_send(sender, nbytes)
        heapq.heappush(
            self._queue, (message.deliver_time, next(self._seq), message, None)
        )

    def _release(self, message: Message) -> None:
        """Retire an envelope back to the pool.

        The payload reference is cleared (pooling must never extend a
        payload's lifetime) and the tag is poisoned, so a handler that
        violated the no-retention contract reads an obviously-invalid
        envelope instead of another send's fields masquerading as its own.
        """
        if self.pool_envelopes and len(self._pool) < self._POOL_MAX:
            message.payload = None
            message.tag = "<pooled>"
            self._pool.append(message)

    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a timer (used for the paper's timeout rules, e.g. the 2Γ
        wait in Lemma 7 and the 6Δ vote-collection window)."""
        if time < self.now:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._seq), None, callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self.now + delay, callback)

    # -- event loop -----------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the simulation time after the last processed event.
        """
        processed = 0
        while self._queue:
            deliver_time, _, message, callback = self._queue[0]
            if until is not None and deliver_time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = deliver_time
            if message is not None:
                node = self.nodes.get(message.recipient)
                if node is not None:
                    node.receive(message)
                    self.delivered_messages += 1
                self._release(message)
            elif callback is not None:
                callback()
            processed += 1
            if processed > self.params.max_events:
                raise SimulationError(
                    f"event budget exceeded ({self.params.max_events}); "
                    "likely a message loop"
                )
        return self.now

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def global_now(self) -> float:
        """The continuous cross-round simulation clock.

        Monotonic over the whole run: :meth:`reset` accumulates each
        finished round's span into :attr:`epoch` instead of discarding it,
        so this clock never rewinds between rounds.  Mempool arrival
        stamps, transaction-age metrics and the sequential end-to-end
        timeline all read this clock.
        """
        return self.epoch + self.now
