"""Message envelopes and wire-size estimation."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

_SIG_SIZE = 64  # public key reference + MAC tag, like an Ed25519 signature
_HASH_SIZE = 32
_INT_SIZE = 8

#: dataclass type -> field-name tuple, resolved once per type instead of
#: re-running ``dataclasses.fields`` introspection on every sized payload
#: (the profile showed that introspection dominating ``payload_size`` for
#: transaction-heavy payloads).
_FIELDS_BY_TYPE: dict[type, tuple[str, ...]] = {}

_NP_SCALAR_TYPES: tuple[type, ...] | None = None


def _np_scalar_types() -> tuple[type, ...]:
    global _NP_SCALAR_TYPES
    if _NP_SCALAR_TYPES is None:
        import numpy as np

        _NP_SCALAR_TYPES = (np.integer, np.floating)
    return _NP_SCALAR_TYPES


def _size_container(obj: Any) -> int:
    return 2 + sum(payload_size(x) for x in obj)


def _size_dict(obj: dict) -> int:
    return 2 + sum(payload_size(k) + payload_size(v) for k, v in obj.items())


def _size_slow(obj: Any) -> int:
    """Uncommon payload types: named crypto objects, dataclasses, numpy
    scalars, and subclasses of the fast-dispatched builtins."""
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return _INT_SIZE
    if isinstance(obj, (bytes, str)):
        return len(obj)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return _size_container(obj)
    if isinstance(obj, dict):
        return _size_dict(obj)
    # Signatures and VRF outputs get their conventional fixed sizes.
    cls = type(obj)
    type_name = cls.__name__
    if type_name == "Signature":
        return _SIG_SIZE
    if type_name == "VRFOutput":
        return _SIG_SIZE + _HASH_SIZE
    if dataclasses.is_dataclass(obj):
        names = _FIELDS_BY_TYPE.get(cls)
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(obj))
            _FIELDS_BY_TYPE[cls] = names
        return 2 + sum(payload_size(getattr(obj, name)) for name in names)
    if isinstance(obj, _np_scalar_types()):
        return _INT_SIZE
    raise TypeError(f"payload_size cannot size {type_name}")


#: Exact-type fast dispatch for the builtins that dominate real payloads.
#: ``bool``/``int`` must be distinct entries (bool is an int subclass, but
#: ``type(obj)`` lookups never confuse them), and subclasses fall through
#: to :func:`_size_slow`, preserving the old isinstance semantics.
_SIZERS: dict[type, Callable[[Any], int]] = {
    bool: lambda obj: 1,
    int: lambda obj: _INT_SIZE,
    float: lambda obj: _INT_SIZE,
    bytes: len,
    str: len,
    tuple: _size_container,
    list: _size_container,
    set: _size_container,
    frozenset: _size_container,
    dict: _size_dict,
    type(None): lambda obj: 1,
}


def payload_size(obj: Any) -> int:
    """Estimate the wire size of a payload in bytes.

    This drives the byte counters behind Table II; it is a *model* of
    serialized size (ints 8 B, hashes 32 B, signatures 64 B, strings/bytes
    their length, containers the sum of elements plus small framing), not an
    actual codec.  Consistency across protocols is what matters for the
    complexity comparison.

    The implementation dispatches on exact type first (one dict probe for
    the builtins that make up virtually every real payload) and falls back
    to the isinstance chain for subclasses, dataclasses and numpy scalars —
    ``payload_size`` runs once per simulated send, so it is one of the
    hottest functions in the repository (perf case ``micro:message_pump``).
    """
    sizer = _SIZERS.get(type(obj))
    if sizer is not None:
        return sizer(obj)
    return _size_slow(obj)


def np_integer_types() -> tuple[type, ...]:
    """Numpy scalar types sized like fixed-width ints (kept for backward
    compatibility; resolved lazily so importing this module never pulls in
    numpy)."""
    return _np_scalar_types()


@dataclass(slots=True)
class Message:
    """One in-flight message.

    ``tag`` selects the handler on the receiving node (the paper's message
    tags: PROPOSE, ECHO, CONFIRM, CONFIG, MEM_LIST, SEMI_COM, TX_LIST, VOTE,
    INTRA, NEW, …).  ``channel`` is the latency class the topology assigned
    to the (sender, recipient) pair.

    Envelopes are pooled by :class:`~repro.net.simulator.Network`: after a
    delivery callback returns, the envelope may be reused for a later send.
    Handlers must therefore never retain the envelope itself beyond the
    callback — retaining the *payload* is fine (payloads are never pooled).
    """

    sender: int
    recipient: int
    tag: str
    payload: Any
    size: int
    channel: str
    send_time: float
    deliver_time: float

    def __repr__(self) -> str:
        return (
            f"Message({self.sender}->{self.recipient} {self.tag} "
            f"{self.size}B @{self.deliver_time:.2f})"
        )
