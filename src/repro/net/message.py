"""Message envelopes and wire-size estimation."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

_SIG_SIZE = 64  # public key reference + MAC tag, like an Ed25519 signature
_HASH_SIZE = 32
_INT_SIZE = 8


def payload_size(obj: Any) -> int:
    """Estimate the wire size of a payload in bytes.

    This drives the byte counters behind Table II; it is a *model* of
    serialized size (ints 8 B, hashes 32 B, signatures 64 B, strings/bytes
    their length, containers the sum of elements plus small framing), not an
    actual codec.  Consistency across protocols is what matters for the
    complexity comparison.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return _INT_SIZE
    if isinstance(obj, float):
        return _INT_SIZE
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 2 + sum(payload_size(x) for x in obj)
    if isinstance(obj, dict):
        return 2 + sum(payload_size(k) + payload_size(v) for k, v in obj.items())
    # Signatures and VRF outputs get their conventional fixed sizes.
    type_name = type(obj).__name__
    if type_name == "Signature":
        return _SIG_SIZE
    if type_name == "VRFOutput":
        return _SIG_SIZE + _HASH_SIZE
    if dataclasses.is_dataclass(obj):
        return 2 + sum(
            payload_size(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, np_integer_types()):
        return _INT_SIZE
    raise TypeError(f"payload_size cannot size {type_name}")


def np_integer_types() -> tuple[type, ...]:
    import numpy as np

    return (np.integer, np.floating)


@dataclass(slots=True)
class Message:
    """One in-flight message.

    ``tag`` selects the handler on the receiving node (the paper's message
    tags: PROPOSE, ECHO, CONFIRM, CONFIG, MEM_LIST, SEMI_COM, TX_LIST, VOTE,
    INTRA, NEW, …).  ``channel`` is the latency class the topology assigned
    to the (sender, recipient) pair.
    """

    sender: int
    recipient: int
    tag: str
    payload: Any
    size: int
    channel: str
    send_time: float
    deliver_time: float

    def __repr__(self) -> str:
        return (
            f"Message({self.sender}->{self.recipient} {self.tag} "
            f"{self.size}B @{self.deliver_time:.2f})"
        )
