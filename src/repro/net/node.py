"""Base class for protocol participants."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.crypto.pki import KeyPair

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.message import Message
    from repro.net.simulator import Network


class ProtocolNode:
    """A participant: identity, key pair, and a tag-dispatched inbox.

    Subclasses register handlers with :meth:`on`; unhandled tags go to
    :meth:`on_default` (a no-op for honest nodes — unknown messages from
    Byzantine peers are simply ignored, as in classical BFT practice).

    The class is slotted and the handler mailbox is allocated lazily on
    the first :meth:`on` call: at large n most nodes are idle in any given
    phase, and an idle node must cost a few pointers, not a dict.  The
    first registration in a round also reports the node to its network's
    activation ledger (see ``Network.activated``), which is what the
    round orchestrators use to reset only the nodes that did anything.
    """

    __slots__ = ("node_id", "keypair", "network", "handlers", "online")

    def __init__(self, node_id: int, keypair: KeyPair) -> None:
        self.node_id = node_id
        self.keypair = keypair
        self.network: "Network | None" = None
        self.handlers: dict[str, Callable[["Message"], None]] | None = None
        self.online = True

    # -- wiring ------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self.network = network

    def on(self, tag: str, handler: Callable[["Message"], None]) -> None:
        handlers = self.handlers
        if handlers is None:
            self.handlers = handlers = {}
            if self.network is not None:
                self.network.note_activation(self.node_id)
        handlers[tag] = handler

    # -- I/O ------------------------------------------------------------------
    def send(self, recipient: int, tag: str, payload: Any, size: int | None = None) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        if not self.online:
            return  # offline nodes transmit nothing
        self.network.send(self.node_id, recipient, tag, payload, size=size)

    def multicast(
        self, recipients: Any, tag: str, payload: Any, size: int | None = None
    ) -> None:
        """Paper's BROADCAST: multicast to all known members of a group."""
        for recipient in recipients:
            if recipient != self.node_id:
                self.send(recipient, tag, payload, size=size)

    def receive(self, message: "Message") -> None:
        if not self.online:
            return  # offline nodes hear nothing
        handlers = self.handlers
        handler = handlers.get(message.tag) if handlers is not None else None
        if handler is not None:
            handler(message)
        else:
            self.on_default(message)

    def on_default(self, message: "Message") -> None:
        """Unknown tags are ignored (Byzantine noise tolerance)."""

    @property
    def pk(self) -> str:
        return self.keypair.pk

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id}, pk={self.pk[:8]}…)"
