"""Network model parameters."""

from __future__ import annotations

from dataclasses import dataclass


class ChannelClass:
    """Latency classes from §III-B."""

    INTRA = "intra"  # within a committee: synchronous, delay <= delta
    KEY = "key"  # key member <-> key member: synchronous, delay <= gamma
    REFEREE = "referee"  # key member <-> referee member: delay <= gamma
    PARTIAL = "partial"  # everything else: partially synchronous
    LOCAL = "local"  # node to itself (zero-cost bookkeeping)

    ALL = (INTRA, KEY, REFEREE, PARTIAL, LOCAL)


@dataclass(frozen=True)
class NetworkParams:
    """Delay bounds and adversarial-scheduling knobs.

    ``delta`` and ``gamma`` are the paper's Δ and Γ.  ``partial_base`` is the
    base delay of partially-synchronous channels; the adversary may stretch
    those (and only those) up to ``partial_max_stretch``×.  ``jitter`` is the
    honest random variation applied to every channel (delays are sampled in
    ``[base·(1-jitter), base]`` so the synchrony bounds are never exceeded).
    """

    delta: float = 1.0
    gamma: float = 4.0
    partial_base: float = 10.0
    partial_max_stretch: float = 4.0
    jitter: float = 0.25
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.delta <= 0 or self.gamma <= 0 or self.partial_base <= 0:
            raise ValueError("delays must be positive")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.partial_max_stretch < 1.0:
            raise ValueError("partial_max_stretch must be >= 1")

    def base_delay(self, channel_class: str) -> float:
        if channel_class == ChannelClass.INTRA:
            return self.delta
        if channel_class in (ChannelClass.KEY, ChannelClass.REFEREE):
            return self.gamma
        if channel_class == ChannelClass.PARTIAL:
            return self.partial_base
        if channel_class == ChannelClass.LOCAL:
            return 0.0
        raise ValueError(f"unknown channel class {channel_class!r}")
