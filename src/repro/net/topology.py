"""Connection topology and channel accounting.

Table I's last row contrasts the "burden on connection": prior protocols
need reliable channels between *all* pairs of honest nodes, CycLedger only

* inside each committee (clique of expected size c),
* among all key members (leaders + partial sets, clique of m·(λ+1)),
* from each key member to the whole referee committee,
* inside the referee committee itself,

plus best-effort partially-synchronous links for PoW submission and block
propagation.  :func:`build_cycledger_topology` realises exactly this graph;
the simulator (strict mode) refuses to carry protocol messages on any other
pair, so the implementation cannot silently depend on a richer network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.params import ChannelClass


@dataclass
class Channels:
    """Channel classifier plus reliable-channel census."""

    committee_of: dict[int, int]
    is_key: set[int]
    referee: set[int]
    counts: dict[str, int]

    def classify(self, src: int, dst: int) -> str | None:
        """Latency class for the ordered pair, or ``None`` if no channel."""
        if src == dst:
            return ChannelClass.LOCAL
        src_ref = src in self.referee
        dst_ref = dst in self.referee
        if src_ref and dst_ref:
            return ChannelClass.INTRA  # referee committee is itself a committee
        same_committee = (
            not src_ref
            and not dst_ref
            and self.committee_of.get(src) is not None
            and self.committee_of.get(src) == self.committee_of.get(dst)
        )
        if same_committee:
            return ChannelClass.INTRA
        src_key = src in self.is_key
        dst_key = dst in self.is_key
        if src_key and dst_key:
            return ChannelClass.KEY
        if (src_key and dst_ref) or (src_ref and dst_key):
            return ChannelClass.REFEREE
        # PoW submission (common -> referee) and block propagation
        # (referee -> anyone) only need partial synchrony (§III-B).
        if src_ref or dst_ref:
            return ChannelClass.PARTIAL
        return None

    def total_reliable(self) -> int:
        """Number of reliable (synchronous) channels: intra + key + referee."""
        return (
            self.counts.get(ChannelClass.INTRA, 0)
            + self.counts.get(ChannelClass.KEY, 0)
            + self.counts.get(ChannelClass.REFEREE, 0)
        )


def build_cycledger_topology(
    committees: Sequence[tuple[Iterable[int], Iterable[int]]],
    referee: Iterable[int],
    into: Channels | None = None,
) -> Channels:
    """Build the CycLedger channel graph.

    ``committees`` is a sequence of ``(members, key_members)`` id
    collections (key members included in members); ``referee`` is the
    referee-committee id set.  Passing ``into`` refills an existing
    :class:`Channels` in place (the orchestrator reuses one instance
    across rounds instead of reallocating the maps every round).
    """
    if into is not None:
        committee_of = into.committee_of
        committee_of.clear()
        is_key = into.is_key
        is_key.clear()
        referee_set = into.referee
        referee_set.clear()
        referee_set |= set(referee)
    else:
        committee_of = {}
        is_key = set()
        referee_set = set(referee)
    sizes: list[int] = []
    for index, (members, keys) in enumerate(committees):
        members = list(members)
        keys = set(keys)
        if not keys <= set(members):
            raise ValueError(f"committee {index}: key members must be members")
        for node in members:
            if node in referee_set:
                raise ValueError(f"node {node} cannot be both referee and member")
            if node in committee_of:
                raise ValueError(f"node {node} in two committees")
            committee_of[node] = index
        is_key |= keys
        sizes.append(len(members))

    key_total = len(is_key)
    cr = len(referee_set)
    intra = sum(c * (c - 1) // 2 for c in sizes) + cr * (cr - 1) // 2
    # Key-member clique minus pairs already inside one committee.
    keys_per_committee = [
        sum(1 for node in is_key if committee_of[node] == i)
        for i in range(len(committees))
    ]
    key_cross = key_total * (key_total - 1) // 2 - sum(
        k * (k - 1) // 2 for k in keys_per_committee
    )
    counts = {
        ChannelClass.INTRA: intra,
        ChannelClass.KEY: key_cross,
        ChannelClass.REFEREE: key_total * cr,
    }
    if into is not None:
        into.counts.clear()
        into.counts.update(counts)
        return into
    return Channels(
        committee_of=committee_of,
        is_key=is_key,
        referee=referee_set,
        counts=counts,
    )


def cycledger_channel_count(n: int, m: int, lam: int, cr_size: int) -> int:
    """Closed-form reliable-channel count for an idealized configuration.

    ``n`` ordinary nodes split into ``m`` committees of ``c = n/m`` (leader +
    λ partial members among them), referee committee of ``cr_size``.
    """
    c = n // m
    key_total = m * (lam + 1)
    intra = m * (c * (c - 1) // 2) + cr_size * (cr_size - 1) // 2
    key_cross = key_total * (key_total - 1) // 2 - m * ((lam + 1) * lam // 2)
    return intra + key_cross + key_total * cr_size


def full_clique_channels(n: int) -> int:
    """Prior work's requirement: a reliable channel between every node pair."""
    return n * (n - 1) // 2
