"""Phase- and role-tagged counters for messages, bytes, and storage."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


class Roles:
    """Role labels matching Table II's columns."""

    COMMON = "common"
    KEY = "key"  # leaders & partial set members
    REFEREE = "referee"

    ALL = (COMMON, KEY, REFEREE)


@dataclass
class PhaseStats:
    """Aggregated traffic for one ``(phase, role)`` cell."""

    messages: int = 0
    bytes: int = 0
    storage: int = 0  # high-water mark of items retained


class MetricsCollector:
    """Central sink for simulator and protocol instrumentation.

    * ``phase`` is a mutable context set by the round orchestrator; all
      traffic recorded while a phase is active lands in that phase's row.
    * ``node_roles`` maps node id → role so per-role *averages* (what the
      complexity table is about) can be computed from totals.
    """

    def __init__(self) -> None:
        self.phase: str = "setup"
        self.cells: dict[tuple[str, str], PhaseStats] = defaultdict(PhaseStats)
        self.per_node_messages: dict[int, int] = defaultdict(int)
        self.per_node_bytes: dict[int, int] = defaultdict(int)
        self.per_node_storage: dict[int, int] = defaultdict(int)
        self.node_roles: dict[int, str] = {}
        self.channel_counts: dict[str, int] = defaultdict(int)
        self.events: int = 0

    # -- context -----------------------------------------------------------
    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def set_role(self, node_id: int, role: str) -> None:
        if role not in Roles.ALL:
            raise ValueError(f"unknown role {role!r}")
        self.node_roles[node_id] = role

    def role_of(self, node_id: int) -> str:
        return self.node_roles.get(node_id, Roles.COMMON)

    # -- recording -----------------------------------------------------------
    def record_send(self, sender: int, nbytes: int) -> None:
        role = self.role_of(sender)
        cell = self.cells[(self.phase, role)]
        cell.messages += 1
        cell.bytes += nbytes
        self.per_node_messages[sender] += 1
        self.per_node_bytes[sender] += nbytes
        self.events += 1

    def record_storage(self, node_id: int, items: int) -> None:
        """Report a storage high-water mark (items retained) for a node in
        the current phase; cells keep the max over nodes of that role."""
        role = self.role_of(node_id)
        cell = self.cells[(self.phase, role)]
        cell.storage = max(cell.storage, items)
        self.per_node_storage[node_id] = max(
            self.per_node_storage[node_id], items
        )

    def record_channels(self, channel_class: str, count: int = 1) -> None:
        self.channel_counts[channel_class] += count

    # -- queries ---------------------------------------------------------------
    def messages_in(self, phase: str, role: str) -> int:
        return self.cells[(phase, role)].messages

    def bytes_in(self, phase: str, role: str) -> int:
        return self.cells[(phase, role)].bytes

    def storage_in(self, phase: str, role: str) -> int:
        return self.cells[(phase, role)].storage

    def per_role_average_messages(self, phase: str, role: str, role_count: int) -> float:
        """Average messages sent per node of ``role`` during ``phase``."""
        if role_count <= 0:
            return 0.0
        return self.cells[(phase, role)].messages / role_count

    def total_messages(self) -> int:
        return sum(cell.messages for cell in self.cells.values())

    def total_bytes(self) -> int:
        return sum(cell.bytes for cell in self.cells.values())

    def total_channels(self) -> int:
        return sum(self.channel_counts.values())

    def phases(self) -> list[str]:
        seen: list[str] = []
        for phase, _ in self.cells:
            if phase not in seen:
                seen.append(phase)
        return seen

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counts into this one (multi-round runs)."""
        for key, cell in other.cells.items():
            mine = self.cells[key]
            mine.messages += cell.messages
            mine.bytes += cell.bytes
            mine.storage = max(mine.storage, cell.storage)
        for node, count in other.per_node_messages.items():
            self.per_node_messages[node] += count
        for node, count in other.per_node_bytes.items():
            self.per_node_bytes[node] += count
        for node, hw in other.per_node_storage.items():
            self.per_node_storage[node] = max(self.per_node_storage[node], hw)
        for cls, count in other.channel_counts.items():
            self.channel_counts[cls] += count
        self.events += other.events

    def summary_rows(self) -> list[tuple[str, str, int, int, int]]:
        """(phase, role, messages, bytes, storage) rows for reports."""
        return [
            (phase, role, cell.messages, cell.bytes, cell.storage)
            for (phase, role), cell in sorted(self.cells.items())
        ]
