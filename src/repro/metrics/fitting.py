"""Power-law fitting for empirical complexity validation.

Table II claims per-phase complexities like O(c), O(c²), O(m²), O(n).  The
complexity benchmark measures counters at several network sizes and fits
``y = a·x^b`` in log-log space; the fitted exponent ``b`` is then compared
to the claimed one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = a·x^b``; returns ``(a, b)``.

    Zero or negative samples are rejected — counters are positive by
    construction, so a zero usually signals a mis-tagged phase.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or x.size < 2:
        raise ValueError("need two equal-length 1-D samples, length >= 2")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    slope, intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(np.exp(intercept)), float(slope)


def scaling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Just the exponent ``b`` of the power-law fit."""
    return fit_power_law(xs, ys)[1]


def r_squared_loglog(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Goodness of fit of the log-log regression (1.0 = perfect power law)."""
    x = np.log(np.asarray(xs, dtype=float))
    y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
