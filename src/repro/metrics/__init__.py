"""Instrumentation: phase/role-tagged traffic and storage counters.

Table II of the paper states per-phase, per-role communication and storage
complexities.  Every message the network simulator delivers and every
storage high-water mark protocol code reports is recorded here, keyed by
``(phase, role)``, so benchmarks can measure the *actual* scaling and fit
exponents against the claimed O(·) classes.
"""

from repro.metrics.counters import MetricsCollector, PhaseStats, Roles
from repro.metrics.fitting import fit_power_law, scaling_exponent

__all__ = [
    "MetricsCollector",
    "PhaseStats",
    "Roles",
    "fit_power_law",
    "scaling_exponent",
]
