"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate CycLedger rounds and print per-round results
scenario   run a fault-injection scenario preset (or list presets)
sweep      run a parameter sweep on the parallel experiment engine
backends   list the executable protocol backends (or run one directly)
bench      run perf cases and write the BENCH_perf.json artifact
failure    print the Fig. 5 failure-probability table/plot
table1     print the Table I protocol comparison
gx         print the Fig. 4 g(x) curve
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import AdversaryConfig, CycLedger, ProtocolParams

    if args.resume_from:
        # The checkpoint pins ProtocolParams/AdversaryConfig; sizing and
        # adversary flags are ignored so the resumed run is byte-identical
        # to the uninterrupted one.
        from repro.ledger.checkpoint import load_checkpoint

        try:
            ledger = load_checkpoint(args.resume_from)
        except (OSError, ValueError) as error:
            raise SystemExit(f"error: {error}")
        params = ledger.params
        print(f"resumed '{args.resume_from}' at round "
              f"{ledger.round_number} (sizing flags ignored; the "
              f"checkpoint pins the parameters)")
    else:
        try:
            params = ProtocolParams(
                n=args.n, m=args.m, lam=args.lam, referee_size=args.referee,
                seed=args.seed, users_per_shard=args.users,
                tx_per_committee=args.txs, cross_shard_ratio=args.cross,
                invalid_ratio=args.invalid, overlap=args.overlap,
                arrival_process=(
                    "poisson" if args.arrival_rate is not None else "legacy"
                ),
                arrival_rate=args.arrival_rate or 0.0,
                mempool_capacity=args.mempool_cap,
                mempool_max_age=args.mempool_age,
                shard_workers=args.shard_workers,
                chain_retention=args.chain_retention,
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}")
        adversary = AdversaryConfig(
            fraction=args.adversary, leader_strategy=args.leader_strategy,
            voter_strategy=args.voter_strategy,
        )
        ledger = CycLedger(params, adversary=adversary)
    checkpoint_every = args.checkpoint_every
    if checkpoint_every:
        import os

        from repro.ledger.checkpoint import save_checkpoint

        os.makedirs(args.checkpoint_dir, exist_ok=True)
    print(f"{'round':>5} {'packed':>6} {'cross':>5} {'recov':>5} "
          f"{'msgs':>8} {'time':>7} {'queue':>5} {'evict':>5}")
    reports = []
    for _ in range(args.rounds):
        report = ledger.run_round()
        reports.append(report)
        if checkpoint_every and report.round_number % checkpoint_every == 0:
            path = os.path.join(
                args.checkpoint_dir,
                f"checkpoint-r{report.round_number:06d}.pkl",
            )
            save_checkpoint(ledger, path)
            print(f"checkpoint -> {path}")
    for report in reports:
        print(f"{report.round_number:>5} {report.packed:>6} "
              f"{report.cross_packed:>5} {report.recoveries:>5} "
              f"{report.messages:>8} {report.sim_time:>7.1f} "
              f"{report.queue_depth:>5} {report.tx_evicted:>5}")
    print(f"chain {len(ledger.chain)} blocks, valid={ledger.chain.verify()}, "
          f"{ledger.total_packed()} transactions")
    sequential = sum(r.sim_time for r in reports)
    e2e = max((r.timeline_end for r in reports), default=0.0)
    gain = (1.0 - e2e / sequential) if sequential else 0.0
    print(f"end-to-end sim latency {e2e:.1f} "
          f"(overlap={params.overlap}, sequential {sequential:.1f}, "
          f"pipelining gain {gain:.1%})")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro import AdversaryConfig, CycLedger, ProtocolParams
    from repro.scenarios import POLICY_PRESETS, SCENARIO_PRESETS

    if args.list:
        for name, scenario in sorted(SCENARIO_PRESETS.items()):
            kinds = ", ".join(type(e).kind for e in scenario.events)
            print(f"{name:<18} last event round {scenario.last_event_round}: "
                  f"{kinds}")
        print("adversary policies:")
        for name, policy in sorted(POLICY_PRESETS.items()):
            print(f"{name:<18} last active round {policy.last_active_round}: "
                  f"{policy.kind}")
        return 0
    if args.preset is None and args.policy is None:
        raise SystemExit("error: give --preset NAME, --policy NAME or --list")
    scenario = None
    if args.preset is not None:
        scenario = SCENARIO_PRESETS.get(args.preset)
        if scenario is None:
            known = ", ".join(sorted(SCENARIO_PRESETS))
            raise SystemExit(
                f"error: unknown preset {args.preset!r} (known: {known})"
            )
    policy = None
    if args.policy is not None:
        policy = POLICY_PRESETS.get(args.policy)
        if policy is None:
            known = ", ".join(sorted(POLICY_PRESETS))
            raise SystemExit(
                f"error: unknown policy {args.policy!r} (known: {known})"
            )

    params = ProtocolParams(
        n=args.n, m=args.m, lam=args.lam, referee_size=args.referee,
        seed=args.seed, users_per_shard=args.users,
        tx_per_committee=args.txs, cross_shard_ratio=args.cross,
        invalid_ratio=args.invalid,
    )
    adversary = AdversaryConfig(fraction=args.adversary)
    rounds = args.rounds
    if rounds is None:
        # Default: run one clean round past the last fault so the output
        # shows both degradation and recovery.
        rounds = max(
            scenario.last_event_round if scenario is not None else 0,
            policy.last_active_round if policy is not None else 0,
        ) + 1
    ledger = CycLedger(
        params, adversary=adversary, scenario=scenario, policy=policy
    )
    label = " + ".join(
        part
        for part in (
            f"scenario '{scenario.name}'" if scenario is not None else None,
            f"policy '{args.policy}'" if policy is not None else None,
        )
        if part
    )
    print(f"{label}, {rounds} rounds, seed {args.seed}")
    print(f"{'round':>5} {'packed':>6} {'cross':>5} {'dropped':>7} "
          f"{'recov':>5} {'msgs':>8} {'time':>7}")
    reports = ledger.run(rounds)
    for report in reports:
        print(f"{report.round_number:>5} {report.packed:>6} "
              f"{report.cross_packed:>5} {report.dropped:>7} "
              f"{report.recoveries:>5} {report.messages:>8} "
              f"{report.sim_time:>7.1f}")
    if args.verbose:
        for driver in (ledger.scenario_driver, ledger.policy_driver):
            if driver is not None:
                for line in driver.log:
                    print(f"  · {line}")
    print(f"chain {len(ledger.chain)} blocks, valid={ledger.chain.verify()}, "
          f"{ledger.total_packed()} transactions")
    if args.json:
        _write_scenario_json(
            args.json, scenario, params, rounds, reports, policy=policy
        )
        print(f"rows -> {args.json}")
    return 0


def _write_scenario_json(
    path: str, scenario, params, rounds: int, reports, policy=None
) -> None:
    """Canonical, deterministic run record (the CI byte-identity gate
    compares two of these from identical seeds)."""
    import dataclasses

    from repro.exp.results import atomic_write_bytes, round_row
    from repro.exp.spec import canonical_json
    from repro.scenarios import policy_to_dict

    params_dict = dataclasses.asdict(params)  # recurses into nested net
    payload = {
        "scenario": scenario.to_dict() if scenario is not None else None,
        "policy": policy_to_dict(policy) if policy is not None else None,
        "params": params_dict,
        "rounds": rounds,
        "rows": [round_row(r) for r in reports],
    }
    atomic_write_bytes(path, (canonical_json(payload) + "\n").encode())


def _parse_grid_value(raw: str):
    """Parse one grid literal: bool, then int, then float, then bare string.

    Booleans must be recognised explicitly — falling through to the bare
    string would make both arms of ``--grid some_flag=false,true`` truthy.
    """
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_grid_args(grid_args: list[str]) -> tuple[dict, dict]:
    """Split ``key=v1,v2`` specs into ProtocolParams and AdversaryConfig
    axes (``adversary.`` prefix selects the latter)."""
    grid: dict[str, tuple] = {}
    adversary_grid: dict[str, tuple] = {}
    for spec in grid_args:
        key, sep, values = spec.partition("=")
        if not sep or not values:
            raise SystemExit(f"--grid expects key=v1,v2,...  (got {spec!r})")
        parsed = tuple(_parse_grid_value(v) for v in values.split(","))
        if key.startswith("adversary."):
            adversary_grid[key[len("adversary."):]] = parsed
        else:
            grid[key] = parsed
    return grid, adversary_grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.exp import Runner

    try:
        spec = _build_sweep_spec(args)
    except ValueError as error:
        raise SystemExit(f"error: {error}")

    workers = 1 if args.serial else args.workers
    runner = Runner(spec, workers=workers, cache_dir=args.cache_dir)

    def progress(done: int, total: int, result) -> None:
        point = result.point
        print(
            f"[{done:>3}/{total}] {result.key[:12]}  "
            f"backend={point.get('backend', 'cycledger'):<14} "
            f"packed={result.totals['packed']:<5} "
            f"recoveries={result.totals['recoveries']:<3} "
            f"params={point['params']} adversary={point['adversary']}",
            flush=True,
        )

    try:
        outcome = runner.run(progress=progress)
    except ValueError as error:
        # Per-point construction errors (e.g. an n/m combination with no
        # well-defined committee size) are user input, not crashes.
        raise SystemExit(f"error: {error}")
    print(
        f"sweep '{spec.name}' ({outcome.spec_hash}): "
        f"{len(outcome.results)} points, {outcome.executed} executed, "
        f"{outcome.from_cache} from cache, "
        f"{outcome.wall_time:.2f}s wall on {outcome.workers} workers"
    )
    if args.out:
        outcome.write_json(args.out)
        print(f"results -> {args.out}")
    if args.csv:
        outcome.write_csv(args.csv)
        print(f"csv     -> {args.csv}")
    if args.bench_out:
        outcome.write_bench(args.bench_out)
        print(f"perf    -> {args.bench_out}")
    return 0


def _build_sweep_spec(args: argparse.Namespace):
    from repro.exp import ExperimentSpec, smoke_spec

    if args.smoke:
        spec = smoke_spec()
    else:
        grid, adversary_grid = _parse_grid_args(args.grid or [])
        base = {
            "n": args.n,
            "m": args.m,
            "lam": args.lam,
            "referee_size": args.referee,
            "users_per_shard": args.users,
            "tx_per_committee": args.txs,
            "cross_shard_ratio": args.cross,
            "invalid_ratio": args.invalid,
        }
        if args.overlaps and args.overlap is not None:
            raise ValueError("give --overlap or --overlaps, not both")
        if "overlap" in grid and (args.overlaps or args.overlap is not None):
            raise ValueError(
                "overlap is already a --grid axis; drop "
                "--overlap/--overlaps"
            )
        if args.overlaps:
            grid["overlap"] = tuple(args.overlaps.split(","))
        elif args.overlap is not None:
            base["overlap"] = args.overlap
        if args.arrival_rate is not None:
            base["arrival_process"] = "poisson"
            base["arrival_rate"] = args.arrival_rate
        if args.mempool_age:
            base["mempool_max_age"] = args.mempool_age
        if args.mempool_cap:
            base["mempool_capacity"] = args.mempool_cap
        if args.shard_workers:
            base["shard_workers"] = args.shard_workers
        base = {k: v for k, v in base.items() if k not in grid}
        scenario_grid: tuple = ()
        if args.scenarios:
            scenario_grid = tuple(
                None if s in ("none", "") else s
                for s in args.scenarios.split(",")
            )
        policy_grid: tuple = ()
        if args.policies:
            policy_grid = tuple(
                None if p in ("none", "") else p
                for p in args.policies.split(",")
            )
        backend_grid: tuple = ()
        if args.backends:
            backend_grid = tuple(args.backends.split(","))
        spec = ExperimentSpec(
            name=args.name,
            rounds=args.rounds,
            seeds=tuple(int(s) for s in args.seeds.split(",")),
            base=base,
            grid=grid,
            adversary_grid=adversary_grid,
            capacity_preset=args.capacity_preset,
            scenario=args.scenario,
            scenario_grid=scenario_grid,
            policy=args.policy,
            policy_grid=policy_grid,
            backend=args.backend,
            backend_grid=backend_grid,
        )
    # Construct every point's ProtocolParams/AdversaryConfig up front so bad
    # combinations (e.g. n - referee_size not divisible by m, or an
    # out-of-range adversary fraction) fail before any work runs.
    from repro.core.config import ProtocolParams
    from repro.nodes.adversary import AdversaryConfig

    for point in spec.expand():
        ProtocolParams(**dict(point.params), seed=point.derived_seed)
        if point.adversary is not None:
            AdversaryConfig(**dict(point.adversary))
    return spec


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends import BACKEND_REGISTRY, create_backend

    if args.run is None:
        for name, info in sorted(BACKEND_REGISTRY.items()):
            print(f"{name:<16} {info.description}")
        return 0
    from repro.core.config import ProtocolParams

    try:
        params = ProtocolParams(
            n=args.n, m=args.m, lam=args.lam, referee_size=args.referee,
            seed=args.seed, users_per_shard=args.users,
            tx_per_committee=args.txs, cross_shard_ratio=args.cross,
            invalid_ratio=args.invalid,
        )
        ledger = create_backend(args.run, params)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    print(f"backend '{args.run}', {args.rounds} rounds, seed {args.seed}")
    print(f"{'round':>5} {'packed':>6} {'cross':>5} {'msgs':>8} {'time':>7}")
    for report in ledger.run(args.rounds):
        print(f"{report.round_number:>5} {report.packed:>6} "
              f"{report.cross_packed:>5} {report.messages:>8} "
              f"{report.sim_time:>7.1f}")
    print(f"chain {len(ledger.chain)} blocks, valid={ledger.chain.verify()}, "
          f"{ledger.total_packed()} transactions")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import PERF_REGISTRY, PerfSettings, run_cases, write_bench

    if args.list:
        for name in sorted(PERF_REGISTRY):
            case = PERF_REGISTRY[name]
            ab = " [A/B]" if case.baseline is not None else ""
            print(f"{name:<22}{ab:<7} {case.description}")
        return 0

    if args.cases and args.backends:
        # Mirrors sweep's backend/backend_grid exclusivity: --cases pins an
        # explicit roster, so a --backends filter alongside it would be
        # silently dead — reject the combination instead.
        raise SystemExit("error: give --cases or --backends, not both")
    if args.cases:
        names = args.cases.split(",")
    else:
        backends = (
            set(args.backends.split(",")) if args.backends else None
        )
        if backends is not None:
            # Fail fast on typos, matching the sweep path's spec-time
            # backend validation — a silently missing round:* row is worse
            # than an error.
            known = {
                case.backend
                for case in PERF_REGISTRY.values()
                if case.backend is not None
            }
            unknown = backends - known
            if unknown:
                raise SystemExit(
                    f"error: unknown backend(s) {sorted(unknown)} "
                    f"(known: {sorted(known)})"
                )
        # Soak cases are thousands of rounds each; they never run by
        # default — name them via --cases (the baseline-refresh tool and
        # the soak-smoke CI job do).
        names = [
            name
            for name, case in sorted(PERF_REGISTRY.items())
            if case.category != "soak"
            and (
                case.category == "micro"
                or backends is None
                or case.backend in backends
            )
        ]
    scales = [int(s) for s in args.scales.split(",")] if args.scales else []
    if args.smoke:
        # The CI preset: tiny sizes, minimal repeats.  Explicit sizing
        # flags are intentionally superseded (the preset IS the contract).
        warmup, repeats = 1, 2
        scales = scales or [24]
        settings = PerfSettings(
            seed=args.seed, m=2, lam=2, referee_size=6, users_per_shard=12,
            tx_per_committee=4, committee=24, batch=200, messages=1000,
        )
    else:
        warmup, repeats = args.warmup, args.repeats
        settings = PerfSettings(seed=args.seed, m=args.m, lam=args.lam)

    def progress(result) -> None:
        speedup = result.speedup
        tail = f"  speedup {speedup:.2f}x" if speedup is not None else ""
        print(
            f"{result.case.name:<22} n={result.settings.n:<4} "
            f"median {result.wall.median * 1e3:8.2f} ms  "
            f"p95 {result.wall.p95 * 1e3:8.2f} ms  "
            f"{result.ops_per_sec:10.0f} ops/s{tail}",
            flush=True,
        )

    try:
        payload = run_cases(
            names,
            settings,
            scales=scales,
            warmup=warmup,
            repeats=repeats,
            profile=args.profile,
            top=args.top,
            progress=progress,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    calibration = payload["calibration"]
    print(
        f"calibration: sha256(1KiB) {calibration['hash_1kib_ops_per_sec']:,.0f}/s, "
        f"python loop {calibration['pyloop_ops_per_sec']:,.0f}/s"
    )
    if args.out:
        write_bench(args.out, payload)
        print(f"perf -> {args.out}")
    return 0


def _cmd_failure(args: argparse.Namespace) -> int:
    from repro.analysis.plotting import ascii_plot
    from repro.analysis.security import (
        committee_failure_exact,
        committee_failure_kl_bound,
        committee_failure_simple_bound,
    )

    cs = np.arange(args.cmin, args.cmax + 1, args.step)
    exact = committee_failure_exact(args.n, args.t, cs)
    kl = committee_failure_kl_bound(args.n, args.t, cs)
    simple = committee_failure_simple_bound(cs)
    print(ascii_plot(
        cs,
        {"exact": exact, "KL bound": kl, "e^{-c/12}": simple},
        logy=True,
        title=f"Fig. 5: committee failure probability, n={args.n}, t={args.t}",
    ))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.baselines import ALL_MODELS, simulate_leader_stalls

    rng = np.random.default_rng(0)
    print(f"{'protocol':<12} {'resil':>6} {'storage':>9} {'fail/round':>11} "
          f"{'x-shard@1/3':>12} {'incentives':>10}")
    for model in ALL_MODELS:
        stall = simulate_leader_stalls(model, 1 / 3, 200, 20, rng)
        print(f"{model.name:<12} {model.resiliency:>6.2f} "
              f"{model.storage(args.n, args.m, args.c):>9.1f} "
              f"{model.fail_probability(args.m, args.c, args.lam):>11.2e} "
              f"{stall.committed_fraction:>12.2f} "
              f"{'yes' if model.has_incentives else 'no':>10}")
    return 0


def _cmd_gx(args: argparse.Namespace) -> int:
    from repro.analysis.plotting import ascii_plot
    from repro.core.reputation import g

    xs = np.linspace(args.xmin, args.xmax, 81)
    print(ascii_plot(xs, {"g(x)": g(xs)}, title="Fig. 4: g(x)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CycLedger reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate CycLedger rounds")
    run.add_argument("--n", type=int, default=64)
    run.add_argument("--m", type=int, default=4)
    run.add_argument("--lam", type=int, default=3)
    run.add_argument("--referee", type=int, default=8)
    run.add_argument("--rounds", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--users", type=int, default=32)
    run.add_argument("--txs", type=int, default=10)
    run.add_argument("--cross", type=float, default=0.25)
    run.add_argument("--invalid", type=float, default=0.1)
    run.add_argument("--adversary", type=float, default=0.0)
    run.add_argument("--leader-strategy", default="equivocating_leader")
    run.add_argument("--voter-strategy", default="contrary_voter")
    run.add_argument("--overlap", default="none",
                     choices=("none", "semicommit"),
                     help="timeline composition: serialize rounds, or "
                          "overlap round r+1's config+semicommit prefix "
                          "with round r's block suffix")
    run.add_argument("--arrival-rate", type=float, default=None,
                     help="mean tx arrivals per round; enables the "
                          "persistent poisson mempool (default: legacy "
                          "one-batch-per-round workload)")
    run.add_argument("--mempool-age", type=int, default=0,
                     help="rounds a queued tx may wait before TTL "
                          "eviction (0 = never)")
    run.add_argument("--mempool-cap", type=int, default=0,
                     help="max queued txs before capacity backpressure "
                          "evicts the oldest (0 = unbounded)")
    run.add_argument("--shard-workers", type=int, default=0,
                     help="shard-parallel committee execution: 0 = legacy "
                          "interleaved path, 1 = sharded-serial, >= 2 = "
                          "process pool (byte-identical to 1)")
    run.add_argument("--chain-retention", type=int, default=0,
                     help="retain only the last N block bodies, pruning "
                          "older ones behind the hash-linked frontier "
                          "(0 = keep everything)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="save a resumable checkpoint every N rounds "
                          "(0 = off)")
    run.add_argument("--checkpoint-dir", default="checkpoints",
                     help="directory for --checkpoint-every snapshots")
    run.add_argument("--resume-from", default=None, metavar="PATH",
                     help="resume from a saved checkpoint; runs --rounds "
                          "further rounds, byte-identical to the "
                          "uninterrupted run (sizing/adversary flags are "
                          "ignored — the checkpoint pins them)")
    run.set_defaults(func=_cmd_run)

    scenario = sub.add_parser(
        "scenario", help="run a fault-injection scenario preset"
    )
    scenario.add_argument("--list", action="store_true",
                          help="list available scenario presets")
    scenario.add_argument("--preset", default=None,
                          help="scenario preset name (see --list)")
    scenario.add_argument("--policy", default=None,
                          help="adaptive adversary policy name (see --list); "
                               "composes with --preset")
    scenario.add_argument("--rounds", type=int, default=None,
                          help="rounds to run (default: one past the last "
                               "fault, so recovery is visible)")
    scenario.add_argument("--n", type=int, default=48)
    scenario.add_argument("--m", type=int, default=4)
    scenario.add_argument("--lam", type=int, default=2)
    scenario.add_argument("--referee", type=int, default=8)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--users", type=int, default=24)
    scenario.add_argument("--txs", type=int, default=6)
    scenario.add_argument("--cross", type=float, default=0.3)
    scenario.add_argument("--invalid", type=float, default=0.1)
    scenario.add_argument("--adversary", type=float, default=0.0)
    scenario.add_argument("--verbose", action="store_true",
                          help="print the applied fault timeline")
    scenario.add_argument("--json", default=None,
                          help="write the canonical per-round record here")
    scenario.set_defaults(func=_cmd_scenario)

    sweep = sub.add_parser(
        "sweep", help="parameter sweep on the parallel experiment engine"
    )
    sweep.add_argument("--name", default="cli-sweep")
    sweep.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2",
        help="sweep axis; repeatable; 'adversary.' prefix for adversary "
             "fields (e.g. --grid m=2,4 --grid adversary.fraction=0.0,0.2)",
    )
    sweep.add_argument("--rounds", type=int, default=2)
    sweep.add_argument("--seeds", default="0", help="comma-separated seed axis")
    sweep.add_argument("--n", type=int, default=48)
    sweep.add_argument("--m", type=int, default=2)
    sweep.add_argument("--lam", type=int, default=2)
    sweep.add_argument("--referee", type=int, default=6)
    sweep.add_argument("--users", type=int, default=16)
    sweep.add_argument("--txs", type=int, default=6)
    sweep.add_argument("--cross", type=float, default=0.25)
    sweep.add_argument("--invalid", type=float, default=0.1)
    sweep.add_argument("--overlap", default=None,
                       choices=("none", "semicommit"),
                       help="timeline composition for every point "
                            "(default: the ProtocolParams default, none)")
    sweep.add_argument("--overlaps", default=None,
                       help="comma-separated overlap axis for the paired "
                            "sequential-vs-pipelined latency comparison "
                            "(e.g. none,semicommit)")
    sweep.add_argument("--arrival-rate", type=float, default=None,
                       help="mean tx arrivals per round; switches every "
                            "point to the persistent poisson mempool")
    sweep.add_argument("--mempool-age", type=int, default=0,
                       help="mempool TTL in rounds (0 = never evict)")
    sweep.add_argument("--mempool-cap", type=int, default=0,
                       help="mempool capacity before backpressure "
                            "eviction (0 = unbounded)")
    sweep.add_argument("--capacity-preset", default=None,
                       help="named capacity function (uniform/tiered/weak_heavy)")
    sweep.add_argument("--scenario", default=None,
                       help="fault-injection preset applied to every point "
                            "(see 'repro scenario --list')")
    sweep.add_argument("--scenarios", default=None,
                       help="comma-separated scenario axis; 'none' for the "
                            "fault-free arm (e.g. none,partition-halves,churn)")
    sweep.add_argument("--policy", default=None,
                       help="adaptive adversary policy applied to every "
                            "point (see 'repro scenario --list')")
    sweep.add_argument("--policies", default=None,
                       help="comma-separated policy axis; 'none' for the "
                            "policy-free arm (e.g. none,adaptive-corruption)")
    sweep.add_argument("--backend", default="cycledger",
                       help="executable protocol backend for every point "
                            "(see 'repro backends')")
    sweep.add_argument("--backends", default=None,
                       help="comma-separated backend axis for head-to-head "
                            "protocol comparison (e.g. "
                            "cycledger,rapidchain,omniledger_sim)")
    sweep.add_argument("--shard-workers", type=int, default=0,
                       help="per-point shard-parallel committee execution "
                            "(applies to every point's base params; 0 = "
                            "legacy interleaved path)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cpu count)")
    sweep.add_argument("--serial", action="store_true",
                       help="force in-process serial execution")
    sweep.add_argument("--cache-dir", default=None,
                       help="resume-from-partial-results cache directory")
    sweep.add_argument("--out", default=None, help="aggregated JSON path")
    sweep.add_argument("--csv", default=None, help="flat CSV path")
    sweep.add_argument("--bench-out", default=None,
                       help="perf trajectory sidecar (BENCH_sweep.json)")
    sweep.add_argument("--smoke", action="store_true",
                       help="run the canned CI smoke spec (ignores grid args)")
    sweep.set_defaults(func=_cmd_sweep)

    backends = sub.add_parser(
        "backends", help="list executable protocol backends (or run one)"
    )
    backends.add_argument("--run", default=None, metavar="NAME",
                          help="run this backend instead of listing")
    backends.add_argument("--rounds", type=int, default=3)
    backends.add_argument("--n", type=int, default=48)
    backends.add_argument("--m", type=int, default=4)
    backends.add_argument("--lam", type=int, default=2)
    backends.add_argument("--referee", type=int, default=8)
    backends.add_argument("--seed", type=int, default=0)
    backends.add_argument("--users", type=int, default=24)
    backends.add_argument("--txs", type=int, default=6)
    backends.add_argument("--cross", type=float, default=0.3)
    backends.add_argument("--invalid", type=float, default=0.1)
    backends.set_defaults(func=_cmd_backends)

    bench = sub.add_parser(
        "bench", help="run perf cases, write BENCH_perf.json"
    )
    bench.add_argument("--list", action="store_true",
                       help="list registered perf cases")
    bench.add_argument("--cases", default=None,
                       help="comma-separated case names (default: every "
                            "registered case except soak:*, with round/"
                            "scale cases filtered by --backends)")
    bench.add_argument("--backends", default=None,
                       help="comma-separated backends for round cases "
                            "(default: all registered)")
    bench.add_argument("--scales", default=None,
                       help="comma-separated node counts for round cases "
                            "(e.g. 24,48,96)")
    bench.add_argument("--repeats", type=int, default=5,
                       help="measured repetitions per case (median/p95)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="unmeasured warmup runs per case")
    bench.add_argument("--profile", action="store_true",
                       help="attach cProfile and record top hotspots")
    bench.add_argument("--top", type=int, default=10,
                       help="hotspot rows to keep with --profile")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--m", type=int, default=4)
    bench.add_argument("--lam", type=int, default=2)
    bench.add_argument("--out", default=None,
                       help="write the BENCH_perf.json artifact here")
    bench.add_argument("--smoke", action="store_true",
                       help="CI preset: tiny sizes, 2 repeats, scale 24")
    bench.set_defaults(func=_cmd_bench)

    failure = sub.add_parser("failure", help="Fig. 5 failure probabilities")
    failure.add_argument("--n", type=int, default=2000)
    failure.add_argument("--t", type=int, default=666)
    failure.add_argument("--cmin", type=int, default=20)
    failure.add_argument("--cmax", type=int, default=300)
    failure.add_argument("--step", type=int, default=10)
    failure.set_defaults(func=_cmd_failure)

    table1 = sub.add_parser("table1", help="Table I comparison")
    table1.add_argument("--n", type=int, default=2000)
    table1.add_argument("--m", type=int, default=10)
    table1.add_argument("--c", type=int, default=200)
    table1.add_argument("--lam", type=int, default=40)
    table1.set_defaults(func=_cmd_table1)

    gx = sub.add_parser("gx", help="Fig. 4 g(x) curve")
    gx.add_argument("--xmin", type=float, default=-5.0)
    gx.add_argument("--xmax", type=float, default=5.0)
    gx.set_defaults(func=_cmd_gx)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
