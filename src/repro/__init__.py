"""CycLedger reproduction.

A full executable reproduction of *CycLedger: A Scalable and Secure Parallel
Protocol for Distributed Ledger via Sharding* (Zhang, Li, Chen, Chen, Deng —
IPDPS 2020, arXiv:2001.06778), including every substrate the paper assumes:

* :mod:`repro.crypto` — PKI, signatures, VRF, semi-commitments, a real
  SCRAPE-style PVSS random beacon, PoW admission puzzles;
* :mod:`repro.net` — discrete-event network simulator with the paper's
  Δ/Γ/partial-synchrony channel classes and strict topology enforcement;
* :mod:`repro.ledger` — UTXO transactions, the authentication function V,
  shard states, blocks/chain (with an optional body-pruning retention
  window), a synthetic workload generator, and deterministic
  checkpoint/resume of whole running ledgers;
* :mod:`repro.core` — the protocol itself: sortition, committee
  configuration, inside-committee consensus (Alg. 3), semi-commitment
  exchange, intra-/inter-committee consensus, reputation + rewards, leader
  re-selection (Alg. 6), selection, block generation;
* :mod:`repro.nodes` — honest and Byzantine behaviour strategies plus the
  mildly-adaptive adversary controller;
* :mod:`repro.baselines` — Elastico/OmniLedger/RapidChain analytic models
  for the Table I comparison;
* :mod:`repro.backends` — the executable multi-protocol layer: CycLedger
  plus simplified RapidChain/OmniLedger backends behind one
  ``LedgerBackend`` registry, so sweeps, scenarios and benchmarks run any
  protocol head-to-head;
* :mod:`repro.analysis` — the closed-form security/complexity/incentive
  math (Eq. 1–4, Fig. 4–5, Tables I–II);
* :mod:`repro.exp` — the parallel experiment engine: declarative
  parameter sweeps fanned out over worker processes with deterministic
  per-point seeding and resume-from-cache;
* :mod:`repro.scenarios` — declarative, seed-deterministic fault
  injection (partitions, latency spikes, leader crashes, adversary
  ramps, churn) attached to the round's phase pipeline, plus adaptive
  adversary policies that retarget corruption from observed round state;
* :mod:`repro.perf` — the perf-regression harness: named timing cases
  (micro A/B optimizations vs frozen baselines, end-to-end backend
  rounds), warmup/repeat protocol, cProfile hotspots, host calibration,
  and the canonical ``BENCH_perf.json`` artifact.

``docs/architecture.md`` maps the packages and the data flow of one
round through the phase pipeline.

Quickstart::

    from repro import CycLedger, ProtocolParams
    ledger = CycLedger(ProtocolParams(n=64, m=4, lam=3, referee_size=8))
    reports = ledger.run(rounds=5)
    print(len(ledger.chain), "blocks,", ledger.total_packed(), "transactions")
"""

from repro.core.config import ProtocolParams
from repro.core.pipeline import OverlapScheduler, Phase, PhasePipeline
from repro.backends import BACKEND_REGISTRY, LedgerBackend, create_backend
from repro.core.protocol import CycLedger, RoundReport, build_default_pipeline
from repro.ledger.checkpoint import (
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.ledger.workload import TxMempool
from repro.nodes.adversary import AdversaryConfig, AdversaryController
from repro.scenarios import POLICY_PRESETS, SCENARIO_PRESETS, Scenario

__version__ = "1.9.0"

__all__ = [
    "BACKEND_REGISTRY",
    "CycLedger",
    "LedgerBackend",
    "create_backend",
    "load_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
    "OverlapScheduler",
    "Phase",
    "PhasePipeline",
    "ProtocolParams",
    "POLICY_PRESETS",
    "RoundReport",
    "SCENARIO_PRESETS",
    "Scenario",
    "TxMempool",
    "AdversaryConfig",
    "AdversaryController",
    "build_default_pipeline",
    "__version__",
]
