"""The parallel sweep runner.

Fans :class:`~repro.exp.spec.ExperimentSpec` points out over a
``ProcessPoolExecutor`` (sweep points are embarrassingly parallel — each
owns its ledger, network and RNG streams), caches finished points on disk
keyed by spec hash, and aggregates records deterministically so a
parallel run is byte-identical to a serial run of the same spec.

Workers exchange JSON strings rather than live objects: a point crosses
the pool as its descriptor and comes back as a ``SweepResult`` dict plus a
timing sidecar, keeping the pickling surface trivial and the results
cacheable as-is.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.exp.results import (
    SweepResult,
    aggregate_json,
    atomic_write_bytes,
    atomic_write_json,
    collect_result,
    write_csv,
)
from repro.exp.spec import ExperimentSpec, SweepPoint


@dataclass(frozen=True)
class PointTiming:
    """Wall-clock measurements for one executed point (perf sidecar only;
    never part of the deterministic results artifact)."""

    key: str
    wall_time: float
    rounds: int

    @property
    def rounds_per_sec(self) -> float:
        """Throughput of this point's execution (0.0 for a zero wall time)."""
        return self.rounds / self.wall_time if self.wall_time > 0 else 0.0


@dataclass(frozen=True)
class SweepOutcome:
    """Everything one :meth:`Runner.run` produced."""

    spec: ExperimentSpec
    spec_hash: str
    results: tuple[SweepResult, ...]  # sorted by point key
    timings: tuple[PointTiming, ...]  # executed points only
    executed: int
    from_cache: int
    wall_time: float
    workers: int

    # -- lookup helpers ----------------------------------------------------
    def by_point(self) -> dict[str, SweepResult]:
        """Results indexed by their stable point key."""
        return {r.key: r for r in self.results}

    def find(self, **filters: Any) -> list[SweepResult]:
        """Results whose point matches every filter.

        Filter names resolve against the params overrides, then the
        adversary overrides, then the point-level fields (``seed``,
        ``rounds``); e.g. ``find(m=4, fraction=0.2, seed=1)``.
        """
        out = []
        for result in self.results:
            point = result.point
            merged: dict[str, Any] = dict(point["params"])
            merged.update(point["adversary"] or {})
            merged["seed"] = point["seed"]
            merged["rounds"] = point["rounds"]
            merged["scenario"] = point.get("scenario")
            merged["policy"] = point.get("policy")
            merged["backend"] = point.get("backend", "cycledger")
            if all(merged.get(k) == v for k, v in filters.items()):
                out.append(result)
        return out

    def one(self, **filters: Any) -> SweepResult:
        """The unique result matching ``filters``; raises otherwise."""
        matches = self.find(**filters)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one point for {filters}, got {len(matches)}"
            )
        return matches[0]

    # -- artifacts ---------------------------------------------------------
    def json_bytes(self) -> bytes:
        """The canonical results artifact (byte-identical serial/parallel)."""
        return aggregate_json(self.spec.to_dict(), self.spec_hash, self.results)

    def write_json(self, path: str) -> None:
        """Atomically write :meth:`json_bytes` to ``path``."""
        atomic_write_bytes(path, self.json_bytes())

    def write_csv(self, path: str) -> None:
        """Write the flat one-row-per-point CSV to ``path``."""
        write_csv(path, self.results)

    def bench_payload(self) -> dict[str, Any]:
        """The perf-trajectory sidecar (``BENCH_sweep.json``): rounds/sec
        and wall time per executed point plus sweep-level throughput, so
        future PRs can diff engine performance."""
        executed_rounds = sum(t.rounds for t in self.timings)
        return {
            "name": self.spec.name,
            "spec_hash": self.spec_hash,
            "workers": self.workers,
            "points": len(self.results),
            "executed": self.executed,
            "from_cache": self.from_cache,
            "wall_time": self.wall_time,
            "rounds_executed": executed_rounds,
            "rounds_per_sec": (
                executed_rounds / self.wall_time if self.wall_time > 0 else 0.0
            ),
            "trajectory": [
                {
                    "key": t.key,
                    "wall_time": t.wall_time,
                    "rounds": t.rounds,
                    "rounds_per_sec": t.rounds_per_sec,
                }
                for t in self.timings
            ],
        }

    def write_bench(self, path: str) -> None:
        """Write the ``BENCH_sweep.json`` perf sidecar to ``path``."""
        atomic_write_json(path, self.bench_payload())


# -- the worker --------------------------------------------------------------
def run_point(point: SweepPoint) -> SweepResult:
    """Execute one sweep point in-process and distil its result.

    The ledger is resolved by name through the backend registry — workers
    never construct a protocol class directly, so every registered backend
    (CycLedger and the executable rivals) runs through the same engine.
    """
    from repro.backends import create_backend
    from repro.core.config import ProtocolParams
    from repro.exp.presets import CAPACITY_PRESETS
    from repro.nodes.adversary import AdversaryConfig
    from repro.scenarios import SCENARIO_PRESETS
    from repro.scenarios.policies import POLICY_PRESETS

    params = ProtocolParams(**dict(point.params), seed=point.derived_seed)
    adversary = (
        AdversaryConfig(**dict(point.adversary))
        if point.adversary is not None
        else None
    )
    capacity_fn = (
        CAPACITY_PRESETS[point.capacity_preset]
        if point.capacity_preset is not None
        else None
    )
    scenario = (
        SCENARIO_PRESETS[point.scenario] if point.scenario is not None else None
    )
    policy = (
        POLICY_PRESETS[point.policy] if point.policy is not None else None
    )
    ledger = create_backend(
        point.backend,
        params,
        adversary=adversary,
        capacity_fn=capacity_fn,
        scenario=scenario,
        policy=policy,
    )
    reports = ledger.run(point.rounds)
    return collect_result(ledger, reports, point.descriptor(), point.key)


def _pool_worker(payload: str) -> str:
    """Top-level (picklable) pool entry: descriptor JSON in, record +
    timing JSON out."""
    desc = json.loads(payload)
    point = SweepPoint(
        params=desc["params"],
        adversary=desc["adversary"],
        seed=desc["seed"],
        rounds=desc["rounds"],
        capacity_preset=desc["capacity_preset"],
        scenario=desc["scenario"],
        backend=desc["backend"],
        derived_seed=desc["derived_seed"],
        policy=desc.get("policy"),
    )
    start = time.perf_counter()
    result = run_point(point)
    wall = time.perf_counter() - start
    return json.dumps({"record": result.to_dict(), "wall_time": wall})


class Runner:
    """Run an :class:`ExperimentSpec`, in parallel, resumably.

    ``workers``: process count (``None`` → ``os.cpu_count()``, capped by
    the number of points; ``0``/``1`` → serial in-process execution).
    ``cache_dir``: when set, finished points are written to
    ``<cache_dir>/<spec_hash>/<point_key>.json`` and found there again on
    the next run — a killed 1000-point sweep resumes where it stopped, and
    an unchanged re-run costs nothing.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int | None = None,
        cache_dir: str | None = None,
    ) -> None:
        self.spec = spec
        self.workers = workers
        self.cache_dir = cache_dir

    # -- cache -------------------------------------------------------------
    def _cache_path(self, spec_hash: str, key: str) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, spec_hash, f"{key}.json")

    def _load_cached(self, spec_hash: str, key: str) -> SweepResult | None:
        path = self._cache_path(spec_hash, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                data = json.loads(fh.read())
        except (OSError, ValueError):
            return None  # unreadable/corrupt cache entry: just re-run it
        if data.get("key") != key:
            return None
        return SweepResult.from_dict(data)

    def _store(self, spec_hash: str, result: SweepResult) -> None:
        path = self._cache_path(spec_hash, result.key)
        if path is not None:
            atomic_write_bytes(
                path,
                (json.dumps(result.to_dict(), sort_keys=True) + "\n").encode(),
            )

    # -- execution ---------------------------------------------------------
    def run(
        self, progress: Callable[[int, int, SweepResult], None] | None = None
    ) -> SweepOutcome:
        """Execute every pending point (cache hits are skipped) and return
        the aggregated :class:`SweepOutcome`.

        ``progress(done, total, result)`` is invoked after each executed
        point, in completion order.
        """
        spec_hash = self.spec.spec_hash()
        points = self.spec.expand()
        started = time.perf_counter()

        results: dict[str, SweepResult] = {}
        pending: list[SweepPoint] = []
        for point in points:
            cached = self._load_cached(spec_hash, point.key)
            if cached is not None:
                results[point.key] = cached
            else:
                pending.append(point)
        from_cache = len(results)

        timings: list[PointTiming] = []
        done = from_cache

        def _absorb(point: SweepPoint, record: Mapping[str, Any], wall: float) -> None:
            nonlocal done
            result = SweepResult.from_dict(record)
            results[point.key] = result
            timings.append(
                PointTiming(key=point.key, wall_time=wall, rounds=point.rounds)
            )
            self._store(spec_hash, result)
            done += 1
            if progress is not None:
                progress(done, len(points), result)

        max_workers = self.workers
        if max_workers is None:
            max_workers = min(len(pending), os.cpu_count() or 1)
        if pending and max_workers > 1:
            payloads = [json.dumps(p.descriptor()) for p in pending]
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for point, reply in zip(pending, pool.map(_pool_worker, payloads)):
                    data = json.loads(reply)
                    _absorb(point, data["record"], data["wall_time"])
        else:
            for point in pending:
                start = time.perf_counter()
                result = run_point(point)
                _absorb(point, result.to_dict(), time.perf_counter() - start)

        ordered = tuple(
            results[key] for key in sorted(results)
        )
        return SweepOutcome(
            spec=self.spec,
            spec_hash=spec_hash,
            results=ordered,
            timings=tuple(sorted(timings, key=lambda t: t.key)),
            executed=len(pending),
            from_cache=from_cache,
            wall_time=time.perf_counter() - started,
            workers=max_workers if pending else 0,
        )


def run_sweep(
    spec: ExperimentSpec,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> SweepOutcome:
    """One-call convenience: ``Runner(spec, ...).run()``."""
    return Runner(spec, workers=workers, cache_dir=cache_dir).run()
