"""Parallel experiment engine.

Declarative parameter sweeps over CycLedger deployments: an
:class:`ExperimentSpec` (ProtocolParams grid × AdversaryConfig grid ×
seeds), a process-pool :class:`Runner` with deterministic per-point seed
derivation and resume-from-cache, and typed :class:`SweepResult` records
with canonical JSON/CSV serialization.

    from repro.exp import ExperimentSpec, run_sweep

    spec = ExperimentSpec(
        name="shards-vs-adversary",
        base={"n": 48, "lam": 2, "referee_size": 6},
        grid={"m": (2, 3)},
        adversary_grid={"fraction": (0.0, 0.2)},
        seeds=(0, 1),
        rounds=3,
    )
    outcome = run_sweep(spec, workers=4, cache_dir=".sweep-cache")
    outcome.write_json("results.json")   # byte-identical serial or parallel
    outcome.write_bench("BENCH_sweep.json")
"""

from repro.exp.presets import (
    CAPACITY_PRESETS,
    backend_compare_spec,
    overlap_compare_spec,
    policy_compare_spec,
    scenario_compare_spec,
    smoke_spec,
)
from repro.exp.results import SweepResult
from repro.exp.runner import PointTiming, Runner, SweepOutcome, run_point, run_sweep
from repro.exp.spec import ExperimentSpec, SweepPoint, derive_point_seed

__all__ = [
    "CAPACITY_PRESETS",
    "backend_compare_spec",
    "ExperimentSpec",
    "PointTiming",
    "Runner",
    "SweepOutcome",
    "SweepPoint",
    "SweepResult",
    "derive_point_seed",
    "overlap_compare_spec",
    "policy_compare_spec",
    "run_point",
    "run_sweep",
    "scenario_compare_spec",
    "smoke_spec",
]
