"""Named capacity presets and canned sweep specs.

Capacity functions cannot travel through a JSON spec (workers re-resolve
them by name), so heterogeneous-capacity experiments register a preset
here and reference it via ``ExperimentSpec.capacity_preset``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exp.spec import ExperimentSpec

CapacityFn = Callable[[int, np.random.Generator], int]


def tiered_capacity(node_id: int, rng: np.random.Generator) -> int:
    """§VII-A's heterogeneous population: a strong majority (which keeps the
    committee decision vector reliable), plus mid and weak minorities."""
    tier = node_id % 10
    if tier < 6:
        return 10_000
    if tier < 8:
        return 5
    return 2


def weak_heavy_capacity(node_id: int, rng: np.random.Generator) -> int:
    """Strong majority with a very weak tail — uniform leader lotteries
    often land on a weak node whose capacity caps the TXList."""
    return 10_000 if node_id % 10 < 6 else 3


CAPACITY_PRESETS: dict[str, CapacityFn] = {
    "uniform": lambda node_id, rng: 10_000,
    "tiered": tiered_capacity,
    "weak_heavy": weak_heavy_capacity,
}


def scenario_compare_spec() -> ExperimentSpec:
    """Fault-free vs partition vs churn vs adversary ramp at small scale:
    the canned sweep for "how does the protocol degrade under faults" —
    five rounds so every preset's fault window closes with at least one
    clean recovery round."""
    return ExperimentSpec(
        name="scenario-compare",
        rounds=5,
        seeds=(0,),
        base={
            "n": 48,
            "m": 4,
            "lam": 2,
            "referee_size": 8,
            "users_per_shard": 24,
            "tx_per_committee": 6,
            "cross_shard_ratio": 0.3,
        },
        scenario_grid=(None, "partition-halves", "churn", "adversary-ramp"),
    )


def backend_compare_spec() -> ExperimentSpec:
    """CycLedger vs the executable rivals, head-to-head and seed-paired:
    every backend runs the same workload, adversary lottery and network
    jitter streams, with a 1/3 adversary arm so the dishonest-leader
    contrast (Table I) shows up in executable numbers."""
    return ExperimentSpec(
        name="backend-compare",
        rounds=4,
        seeds=(0,),
        base={
            "n": 48,
            "m": 4,
            "lam": 2,
            "referee_size": 8,
            "users_per_shard": 24,
            "tx_per_committee": 6,
            "cross_shard_ratio": 0.3,
        },
        adversary_grid={"fraction": (0.0, 0.33)},
        backend_grid=("cycledger", "rapidchain", "omniledger_sim"),
    )


def policy_compare_spec() -> ExperimentSpec:
    """Adaptive-adversary behaviour, seed-paired across backends: every
    backend runs its policy-free arm and a leaderboard-targeting
    corruption arm on the same protocol seed, so the per-backend packed
    ratio (policy ÷ policy-free) isolates how much damage the *same*
    adaptive adversary does to each protocol.  CycLedger's leader
    recovery (Alg. 6) keeps committing through corrupted leaders; the
    rivals model no recovery, so their ratios fall well below
    CycLedger's — the executable version of the paper's robustness
    claim."""
    return ExperimentSpec(
        name="policy-compare",
        rounds=5,
        seeds=(0,),
        base={
            "n": 48,
            "m": 4,
            "lam": 2,
            "referee_size": 8,
            "users_per_shard": 24,
            "tx_per_committee": 6,
            "cross_shard_ratio": 0.3,
        },
        policy_grid=(None, "adaptive-corruption"),
        backend_grid=("cycledger", "rapidchain", "omniledger_sim"),
    )


def overlap_compare_spec() -> ExperimentSpec:
    """Sequential vs pipelined execution, seed-paired: both arms run the
    identical protocol (byte-identical final chain/UTXO/reputation state)
    and differ only in how the end-to-end timeline composes — the
    ``semicommit`` arm overlaps round r+1's config + semi-commit prefix
    with round r's block suffix (§III-E/§V), so its ``e2e_sim_time``
    total lands ≥ 10% below the ``none`` arm's.  Eight rounds amortize
    the un-overlappable first round; the poisson mempool keeps a standing
    queue so the latency story includes sustained load."""
    return ExperimentSpec(
        name="overlap-compare",
        rounds=8,
        seeds=(0,),
        base={
            "n": 48,
            "m": 4,
            "lam": 2,
            "referee_size": 8,
            "users_per_shard": 24,
            "tx_per_committee": 6,
            "cross_shard_ratio": 0.3,
            "arrival_process": "poisson",
            "arrival_rate": 50.0,
            "mempool_max_age": 4,
        },
        grid={"overlap": ("none", "semicommit")},
    )


def smoke_spec() -> ExperimentSpec:
    """The CI smoke sweep: a tiny 2×2 grid (shard count × adversary
    fraction) that exercises the full protocol, the process pool, and the
    deterministic aggregation in a few seconds."""
    return ExperimentSpec(
        name="ci-smoke",
        rounds=2,
        seeds=(0,),
        base={
            "n": 24,
            "lam": 2,
            "referee_size": 6,
            "users_per_shard": 12,
            "tx_per_committee": 4,
            "cross_shard_ratio": 0.25,
            "invalid_ratio": 0.1,
        },
        grid={"m": (2, 3)},
        adversary_grid={"fraction": (0.0, 0.2)},
    )
