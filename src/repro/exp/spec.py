"""Declarative experiment specifications.

Sharded-consensus evaluation is a parameter-sweep workload: shard count ×
adversary fraction × failure rate × seed.  An :class:`ExperimentSpec`
describes such a sweep declaratively — a base :class:`ProtocolParams`
override dict, a product grid of parameter axes, a product grid of
:class:`AdversaryConfig` axes, optional explicit (paired) points for
non-product sweeps like the scalability ``(n, m)`` ladder, and a seed
list — and expands it into concrete :class:`SweepPoint`\\ s.

Two derived identifiers make sweeps resumable and reproducible:

* ``spec_hash`` — a SHA-256 over the canonical JSON encoding of the whole
  spec.  The result cache is keyed by it, so editing any knob invalidates
  exactly the affected sweep.
* per-point ``derived_seed`` — a seed hashed from the point's own content
  (overrides + seed + rounds), so every grid cell runs an independent,
  reproducible random stream regardless of enumeration order or how many
  sibling points the sweep contains.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Mapping, Sequence

from repro.core.config import ProtocolParams
from repro.nodes.adversary import AdversaryConfig

#: ProtocolParams fields a sweep may override.  ``net`` is a nested
#: dataclass; sweeps over network parameters go through ``net.<field>``
#: style keys in ``base``/``grid`` are not supported yet (YAGNI until a
#: latency sweep needs it).
PARAM_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ProtocolParams) if f.name != "net"
)

#: AdversaryConfig fields a sweep may override.
ADVERSARY_FIELDS = frozenset(f.name for f in dataclasses.fields(AdversaryConfig))


def _jsonable(value: Any) -> Any:
    """Normalise a value into canonical plain-JSON types.

    NumPy scalars, tuples and sets all appear naturally in hand-written
    specs; hashing must not distinguish ``(2, 4)`` from ``[2, 4]``.
    """
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    raise TypeError(f"spec values must be JSON-encodable, got {type(value).__name__}")


def canonical_json(obj: Any) -> str:
    """The one true JSON rendering used for hashing and byte-level
    comparison: sorted keys, fixed separators, no trailing whitespace."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepPoint:
    """One concrete cell of a sweep: a full override description plus the
    derived seed its protocol run will use."""

    params: Mapping[str, Any]  # ProtocolParams overrides (without seed)
    adversary: Mapping[str, Any] | None  # AdversaryConfig overrides, or honest
    seed: int  # the spec-level seed axis value
    rounds: int
    capacity_preset: str | None
    scenario: str | None  # named fault-injection scenario, or fault-free
    backend: str  # executable backend registry name
    derived_seed: int
    policy: str | None = None  # named adversary policy, or policy-free

    def descriptor(self) -> dict[str, Any]:
        """The point's canonical identity (excludes nothing that affects
        the run; used both as cache key material and in result records)."""
        params = _jsonable(dict(self.params))
        if "shard_workers" in params:
            # Sharded-serial (1) and pool (>= 2) execution are
            # byte-identical by construction, so they share one identity:
            # result records, cache keys and artifacts must compare equal
            # (the shard-smoke ``cmp`` gate), and a shard pool nested
            # inside a sweep-pool worker — which rebuilds its point from
            # this descriptor — collapses to the serial executor.  The
            # legacy interleaved path (0) is a genuinely different stream
            # and keeps its own identity.
            params["shard_workers"] = min(1, params["shard_workers"])
        return {
            "params": params,
            "adversary": None
            if self.adversary is None
            else _jsonable(dict(self.adversary)),
            "seed": self.seed,
            "rounds": self.rounds,
            "capacity_preset": self.capacity_preset,
            "scenario": self.scenario,
            "policy": self.policy,
            "backend": self.backend,
            "derived_seed": self.derived_seed,
        }

    @property
    def key(self) -> str:
        """Stable cache key: hash of the descriptor."""
        return _sha256_hex(canonical_json(self.descriptor()))[:24]


def derive_point_seed(
    params: Mapping[str, Any],
    adversary: Mapping[str, Any] | None,
    seed: int,
    rounds: int,
) -> int:
    """Hash a point's content into its protocol seed.

    Content-addressed (not index-addressed): reordering grid axes or adding
    sibling points never changes the seed an existing cell runs with, so
    cached results stay valid across spec growth.  The scenario name is
    deliberately *excluded*: fault-injected and fault-free arms of one
    point run on the same protocol seed, so a scenario sweep is a paired
    comparison (the delta is the fault, not seed noise); the scenario
    still distinguishes the arms' cache keys via the descriptor.  The
    adversary-policy name is excluded with the same pairing intent: the
    policy-free and policy-bearing arms of one point share a protocol
    seed, so a behavioural sweep measures the policy's damage, not seed
    noise (and shipped policies draw from their own reserved sub-stream —
    currently nothing at all — so the shared streams stay aligned).  The
    backend name is excluded for the same reason: all protocols at one
    point share a root seed (workload, adversary lottery and network
    jitter sub-streams line up), so a backend sweep compares protocols,
    not seed noise.  The ``overlap`` param is excluded too, even though it
    travels inside ``params``: it only re-times the reported timeline and
    never touches execution, so both arms of an overlap sweep must run the
    identical protocol stream — that is what makes the sequential-vs-
    pipelined latency comparison paired (and lets CI assert byte-identical
    final ledger state across arms).  ``shard_workers`` is excluded for
    the same pairing reason: worker count is an execution-engine knob
    whose >= 1 settings produce byte-identical runs, so it must never
    perturb the protocol seed.
    """
    material = canonical_json(
        {
            "adversary": adversary,
            "params": {
                k: v
                for k, v in params.items()
                if k not in ("overlap", "shard_workers")
            },
            "rounds": rounds,
            "seed": seed,
        }
    )
    digest = hashlib.sha256(b"sweep-point-seed\x1f" + material.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep over CycLedger deployments.

    ``grid`` and ``adversary_grid`` are product axes; ``points`` lists
    explicit ProtocolParams override dicts for paired axes (each is merged
    over ``base`` and crossed with both grids and ``seeds``).  With
    ``derive_seeds=False`` the spec-level seed is used verbatim as
    ``ProtocolParams.seed`` (the historical benchmark behaviour); with the
    default ``True`` each point gets a content-derived seed.

    ``scenario`` names one fault-injection preset applied to every point;
    ``scenario_grid`` is a product axis of preset names (``None`` entries
    mean fault-free) for comparing behaviour across fault timelines.

    ``policy`` names one adaptive adversary policy
    (:data:`repro.scenarios.policies.POLICY_PRESETS`) applied to every
    point; ``policy_grid`` is a product axis of policy names (``None``
    entries mean policy-free).  Policy arms share the point's protocol
    seed, so behavioural sweeps are seed-paired like scenario sweeps.

    ``backend`` names the executable protocol every point runs on
    (:data:`repro.backends.BACKEND_REGISTRY`); ``backend_grid`` is a
    product axis of backend names for head-to-head protocol comparisons.
    Unknown names fail here, at spec-validation time — never inside a
    worker.

    The round-overlap engine's knobs are ordinary ``ProtocolParams``
    fields, so they sweep through ``base``/``grid`` like any other axis:
    ``grid={"overlap": ("none", "semicommit")}`` is the paired
    sequential-vs-pipelined latency comparison (both arms share seeds and
    streams and finish in byte-identical ledger state — only the reported
    timeline differs), and ``base={"arrival_process": "poisson",
    "arrival_rate": 60.0}`` switches every point to the persistent
    mempool's rate-process feed.
    """

    name: str
    rounds: int = 2
    seeds: Sequence[int] = (0,)
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    adversary: Mapping[str, Any] = field(default_factory=dict)
    adversary_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    points: Sequence[Mapping[str, Any]] = ()
    capacity_preset: str | None = None
    scenario: str | None = None
    scenario_grid: Sequence[str | None] = ()
    policy: str | None = None
    policy_grid: Sequence[str | None] = ()
    backend: str = "cycledger"
    backend_grid: Sequence[str] = ()
    derive_seeds: bool = True

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not self.seeds:
            raise ValueError("at least one seed is required")
        for key in (*self.base, *self.grid):
            if key not in PARAM_FIELDS:
                raise ValueError(f"unknown ProtocolParams field {key!r}")
        if "seed" in self.base or "seed" in self.grid:
            raise ValueError("sweep seeds via the 'seeds' axis, not the grid")
        if "shard_workers" in self.grid:
            raise ValueError(
                "shard_workers is an execution-engine knob, not a sweep "
                "axis: every setting >= 1 produces byte-identical results "
                "(set it in 'base')"
            )
        for key in (*self.adversary, *self.adversary_grid):
            if key not in ADVERSARY_FIELDS:
                raise ValueError(f"unknown AdversaryConfig field {key!r}")
        for explicit in self.points:
            for key in explicit:
                if key == "seed":
                    raise ValueError(
                        "sweep seeds via the 'seeds' axis, not the grid"
                    )
                if key not in PARAM_FIELDS:
                    raise ValueError(f"unknown ProtocolParams field {key!r}")
                if key == "shard_workers":
                    raise ValueError(
                        "shard_workers is an execution-engine knob, not a "
                        "sweep axis: set it in 'base'"
                    )
        if self.capacity_preset is not None:
            from repro.exp.presets import CAPACITY_PRESETS

            if self.capacity_preset not in CAPACITY_PRESETS:
                raise ValueError(
                    f"unknown capacity preset {self.capacity_preset!r}"
                )
        if self.scenario is not None and self.scenario_grid:
            raise ValueError("give scenario or scenario_grid, not both")
        named_scenarios = [
            s for s in (*self.scenario_grid, self.scenario) if s is not None
        ]
        if named_scenarios:
            from repro.scenarios import SCENARIO_PRESETS

            for name in named_scenarios:
                if name not in SCENARIO_PRESETS:
                    raise ValueError(f"unknown scenario preset {name!r}")
        if self.policy is not None and self.policy_grid:
            raise ValueError("give policy or policy_grid, not both")
        named_policies = [
            p for p in (*self.policy_grid, self.policy) if p is not None
        ]
        if named_policies:
            from repro.scenarios.policies import POLICY_PRESETS

            for name in named_policies:
                if name not in POLICY_PRESETS:
                    raise ValueError(f"unknown policy preset {name!r}")
        if self.backend != "cycledger" and self.backend_grid:
            raise ValueError("give backend or backend_grid, not both")
        from repro.backends import BACKEND_REGISTRY

        for name in (*self.backend_grid, self.backend):
            if name not in BACKEND_REGISTRY:
                known = ", ".join(sorted(BACKEND_REGISTRY))
                raise ValueError(
                    f"unknown backend {name!r} (known: {known})"
                )

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-JSON form (the input to :meth:`spec_hash`)."""
        base = _jsonable(dict(self.base))
        if "shard_workers" in base:
            # Same normalization as SweepPoint.descriptor: worker count
            # >= 1 never changes a byte of output, and the spec dict is
            # embedded in sweep artifacts (and hashed into the cache
            # namespace), so 1 and 2 workers must hash and serialize
            # identically.
            base["shard_workers"] = min(1, base["shard_workers"])
        return {
            "name": self.name,
            "rounds": self.rounds,
            "seeds": _jsonable(list(self.seeds)),
            "base": base,
            "grid": _jsonable({k: list(v) for k, v in self.grid.items()}),
            "adversary": _jsonable(dict(self.adversary)),
            "adversary_grid": _jsonable(
                {k: list(v) for k, v in self.adversary_grid.items()}
            ),
            "points": _jsonable([dict(p) for p in self.points]),
            "capacity_preset": self.capacity_preset,
            "scenario": self.scenario,
            "scenario_grid": _jsonable(list(self.scenario_grid)),
            "policy": self.policy,
            "policy_grid": _jsonable(list(self.policy_grid)),
            "backend": self.backend,
            "backend_grid": _jsonable(list(self.backend_grid)),
            "derive_seeds": self.derive_seeds,
        }

    def spec_hash(self) -> str:
        """Content hash of the spec; the cache namespace.

        The package version is mixed in so cached results can never
        survive a code upgrade that changes simulation behaviour — a
        stale cache in a reproduction harness is silently wrong science.
        """
        import repro

        return _sha256_hex(
            repro.__version__ + "\x1f" + canonical_json(self.to_dict())
        )[:24]

    # -- expansion ---------------------------------------------------------
    def expand(self) -> list[SweepPoint]:
        """Enumerate every concrete sweep point, in deterministic order."""
        param_axes = sorted(self.grid.items())
        adv_axes = sorted(self.adversary_grid.items())
        explicit = [dict(p) for p in self.points] or [{}]
        param_combos = [
            dict(zip([k for k, _ in param_axes], values))
            for values in product(*(vs for _, vs in param_axes))
        ]
        adv_combos = [
            dict(zip([k for k, _ in adv_axes], values))
            for values in product(*(vs for _, vs in adv_axes))
        ]
        scenarios = list(self.scenario_grid) or [self.scenario]
        policies = list(self.policy_grid) or [self.policy]
        backends = list(self.backend_grid) or [self.backend]
        out: list[SweepPoint] = []
        for point_overrides in explicit:
            for combo in param_combos:
                params = {**self.base, **point_overrides, **combo}
                for adv_combo in adv_combos:
                    adversary: dict[str, Any] | None = {
                        **self.adversary,
                        **adv_combo,
                    }
                    if not adversary:
                        adversary = None
                    for scenario in scenarios:
                        for policy in policies:
                            for backend in backends:
                                for seed in self.seeds:
                                    derived = (
                                        derive_point_seed(
                                            _jsonable(params),
                                            None
                                            if adversary is None
                                            else _jsonable(adversary),
                                            int(seed),
                                            self.rounds,
                                        )
                                        if self.derive_seeds
                                        else int(seed)
                                    )
                                    out.append(
                                        SweepPoint(
                                            params=params,
                                            adversary=adversary,
                                            seed=int(seed),
                                            rounds=self.rounds,
                                            capacity_preset=(
                                                self.capacity_preset
                                            ),
                                            scenario=scenario,
                                            policy=policy,
                                            backend=backend,
                                            derived_seed=derived,
                                        )
                                    )
        return out
