"""Typed sweep results and their serialization.

A :class:`SweepResult` is the complete, process-portable outcome of one
sweep point: the point descriptor, per-round headline rows, totals, the
phase/role message-census cells, a per-node summary (capacity, behaviour,
reputation, reward) and chain facts.  Everything inside it is a plain JSON
type, so records cross process boundaries as strings, cache cleanly on
disk, and aggregate into byte-identical files regardless of execution
order or worker count.

Wall-clock timings deliberately live *outside* the result (see
``runner.PointTiming``): two runs of the same spec must produce identical
``results.json`` bytes whether they ran serially, on eight workers, or
half-from-cache.  Perf numbers go to the ``BENCH_sweep.json`` sidecar.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.exp.spec import canonical_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import CycLedger, RoundReport


@dataclass(frozen=True)
class SweepResult:
    """One sweep point's outcome (deterministic content only)."""

    point: Mapping[str, Any]  # SweepPoint.descriptor()
    key: str
    totals: Mapping[str, Any]
    per_round: tuple[Mapping[str, Any], ...]
    cells: Mapping[str, Mapping[str, int]]  # "phase/role" -> messages/bytes
    nodes: tuple[Mapping[str, Any], ...]
    chain: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON rendering (inverse of :meth:`from_dict`)."""
        return {
            "point": dict(self.point),
            "key": self.key,
            "totals": dict(self.totals),
            "per_round": [dict(r) for r in self.per_round],
            "cells": {k: dict(v) for k, v in self.cells.items()},
            "nodes": [dict(n) for n in self.nodes],
            "chain": dict(self.chain),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Rehydrate a record produced by :meth:`to_dict` (e.g. from the
        on-disk point cache or a worker's JSON reply)."""
        return cls(
            point=data["point"],
            key=data["key"],
            totals=data["totals"],
            per_round=tuple(data["per_round"]),
            cells=data["cells"],
            nodes=tuple(data["nodes"]),
            chain=data["chain"],
        )


#: totals summed over rounds (everything headline a bench might plot)
_SUMMED_ROUND_FIELDS = (
    "submitted",
    "packed",
    "cross_packed",
    "recoveries",
    "messages",
    "bytes",
    "dropped",
    "tx_evicted",
    "intra_accepted",
    "inter_accepted",
    "inter_voted",
    "prefilter_savings",
)


def round_row(report: "RoundReport") -> dict[str, Any]:
    """Flatten one round report into a JSON-ready row.

    Reads only the *flat* report contract (see
    :class:`repro.backends.base.SimRoundReport`), which every executable
    backend's reports satisfy — CycLedger's :class:`RoundReport` derives
    the detail counters from its per-phase reports, the rival backends
    fill them directly — so serialization never dispatches on the backend.
    """
    return {
        "round": report.round_number,
        "submitted": report.submitted,
        "packed": report.packed,
        "cross_packed": report.cross_packed,
        "recoveries": report.recoveries,
        "messages": report.messages,
        "bytes": report.bytes_sent,
        "dropped": report.dropped,
        "sim_time": report.sim_time,
        "reliable_channels": report.reliable_channels,
        "block": report.block.hash.hex() if report.block else None,
        "intra_accepted": report.intra_accepted,
        "inter_accepted": report.inter_accepted,
        "inter_voted": report.inter_voted,
        "prefilter_savings": report.prefilter_savings,
        "intra_elapsed": report.intra_elapsed,
        "inter_elapsed": report.inter_elapsed,
        "blockgen_elapsed": report.blockgen_elapsed,
        "blockgen_subblocks": report.blockgen_subblocks,
        "blockgen_width": report.blockgen_width,
        # Continuous-timeline window + mempool queue health (round-overlap
        # engine; timeline_end - timeline_start == sim_time at overlap=none).
        "timeline_start": report.timeline_start,
        "timeline_end": report.timeline_end,
        "queue_depth": report.queue_depth,
        "tx_evicted": report.tx_evicted,
        "tx_age_mean": report.tx_age_mean,
        "tx_age_max": report.tx_age_max,
        # Epoch-scale observability: RSS sample (0 unless sample_rss — it
        # is host-dependent and must stay out of byte-compared artifacts)
        # and the report's emission sequence number.
        "rss_peak_kb": report.rss_peak_kb,
        "reports_streamed": report.reports_streamed,
    }


class RoundAggregator:
    """Single-pass totals accumulation over round rows.

    The legacy aggregation path materialized every row and re-scanned the
    list once per totals field; this accumulator folds each row as it
    arrives, so a streaming soak computes totals in O(1) memory
    (``keep_rows=False``) and :func:`collect_result` computes identical
    totals in one pass.
    """

    def __init__(self, keep_rows: bool = True) -> None:
        self._sums = {name: 0 for name in _SUMMED_ROUND_FIELDS}
        self._sim_time = 0.0
        self.rounds = 0
        self.blocks = 0
        self._last_row: Mapping[str, Any] | None = None
        self._tx_age_max = 0.0
        self._rss_peak = 0
        self.rows: list[dict[str, Any]] | None = [] if keep_rows else None

    def add(self, report: "RoundReport") -> dict[str, Any]:
        """Fold one report; returns its flattened row."""
        row = round_row(report)
        self.add_row(row)
        return row

    def add_row(self, row: dict[str, Any]) -> None:
        for name in _SUMMED_ROUND_FIELDS:
            self._sums[name] += row[name]
        self._sim_time += row["sim_time"]
        self.rounds += 1
        if row["block"] is not None:
            self.blocks += 1
        self._tx_age_max = max(self._tx_age_max, row["tx_age_max"])
        self._rss_peak = max(self._rss_peak, row["rss_peak_kb"])
        self._last_row = row
        if self.rows is not None:
            self.rows.append(row)

    def totals(self) -> dict[str, Any]:
        last = self._last_row
        totals: dict[str, Any] = dict(self._sums)
        totals["sim_time"] = self._sim_time
        totals["rounds"] = self.rounds
        totals["blocks"] = self.blocks
        totals["reliable_channels"] = last["reliable_channels"] if last else 0
        # End-to-end latency on the overlap-scheduled continuous timeline:
        # at overlap=none this equals the summed sim_time exactly; at
        # overlap=semicommit it is strictly lower (the pipelining gain).
        totals["e2e_sim_time"] = last["timeline_end"] if last else 0.0
        totals["queue_depth_final"] = last["queue_depth"] if last else 0
        totals["tx_age_max"] = self._tx_age_max
        totals["rss_peak_kb"] = self._rss_peak
        totals["reports_streamed"] = last["reports_streamed"] if last else 0
        return totals


class JsonlReportWriter:
    """Round-report sink writing one canonical JSON row per line.

    Attach as ``ledger.report_sink`` (see
    :func:`repro.core.reporting.emit_round_report`); the emitted stream is
    row-for-row identical to what a legacy in-memory run would flatten,
    so ``[json.loads(line) for line in file]`` equals
    ``[round_row(r) for r in ledger.reports]`` of an unstreamed run.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.rows_written = 0
        self._fh = open(path, "w", encoding="utf-8")

    def __call__(self, report: "RoundReport") -> None:
        self._fh.write(canonical_json(round_row(report)) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlReportWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def collect_result(
    ledger: "CycLedger",
    reports: Iterable["RoundReport"],
    point_descriptor: Mapping[str, Any],
    key: str,
) -> SweepResult:
    """Distil a finished run into a :class:`SweepResult`."""
    aggregator = RoundAggregator(keep_rows=True)
    for report in reports:
        aggregator.add(report)
    rows = tuple(aggregator.rows or ())
    totals = aggregator.totals()
    cells = {
        f"{phase}/{role}": {
            "messages": cell.messages,
            "bytes": cell.bytes,
            "storage": cell.storage,
        }
        for (phase, role), cell in sorted(ledger.metrics.cells.items())
    }
    nodes = tuple(
        {
            "id": node.node_id,
            "capacity": node.capacity,
            "behavior": node.behavior.name,
            "corrupted": ledger.adversary.is_corrupted(node.node_id),
            "reputation": ledger.reputation.get(node.pk, 0.0),
            "reward": ledger.rewards.get(node.pk, 0.0),
            "key_member": node.is_key_member,
            "referee": node.is_referee,
        }
        for node in ledger.nodes.values()
    )
    chain = {
        "length": len(ledger.chain),
        "valid": ledger.chain.verify(),
        "total_transactions": ledger.total_packed(),
        # Head hash pins the whole chain content: two sweep arms with equal
        # heads finished in byte-identical ledger states (the overlap-smoke
        # CI gate compares this across overlap modes).
        "head": ledger.chain.head.hash.hex() if len(ledger.chain) else None,
    }
    return SweepResult(
        point=dict(point_descriptor),
        key=key,
        totals=totals,
        per_round=rows,
        cells=cells,
        nodes=nodes,
        chain=chain,
    )


# -- aggregation & files ----------------------------------------------------
def aggregate_json(
    spec_dict: Mapping[str, Any],
    spec_hash: str,
    results: Iterable[SweepResult],
) -> bytes:
    """The deterministic sweep artifact.

    Records are ordered by point key, the encoding is canonical, and no
    wall-clock data is included — serial and parallel runs of the same
    spec produce byte-identical output.
    """
    payload = {
        "spec": dict(spec_dict),
        "spec_hash": spec_hash,
        "results": [
            r.to_dict() for r in sorted(results, key=lambda r: r.key)
        ],
    }
    return (canonical_json(payload) + "\n").encode("utf-8")


_CSV_TOTAL_COLUMNS = (
    "rounds",
    "submitted",
    "packed",
    "cross_packed",
    "recoveries",
    "messages",
    "bytes",
    "dropped",
    "sim_time",
    "e2e_sim_time",
    "queue_depth_final",
    "tx_evicted",
    "tx_age_max",
    "blocks",
    "reliable_channels",
    "rss_peak_kb",
    "reports_streamed",
)


def write_csv(path: str, results: Iterable[SweepResult]) -> None:
    """Flat one-row-per-point CSV (params as ``p_*``, adversary as ``a_*``;
    the backend/scenario/policy/capacity axes ride along so arms stay
    distinguishable)."""
    results = sorted(results, key=lambda r: r.key)
    param_keys = sorted({k for r in results for k in r.point["params"]})
    adv_keys = sorted(
        {k for r in results for k in (r.point["adversary"] or {})}
    )
    header = (
        [
            "key",
            "seed",
            "derived_seed",
            "backend",
            "scenario",
            "policy",
            "capacity_preset",
        ]
        + [f"p_{k}" for k in param_keys]
        + [f"a_{k}" for k in adv_keys]
        + list(_CSV_TOTAL_COLUMNS)
    )
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(header)
    for r in results:
        adversary = r.point["adversary"] or {}
        writer.writerow(
            [
                r.key,
                r.point["seed"],
                r.point["derived_seed"],
                r.point.get("backend", "cycledger"),
                r.point.get("scenario") or "",
                r.point.get("policy") or "",
                r.point.get("capacity_preset") or "",
            ]
            + [r.point["params"].get(k, "") for k in param_keys]
            + [adversary.get(k, "") for k in adv_keys]
            + [r.totals.get(col, "") for col in _CSV_TOTAL_COLUMNS]
        )
    atomic_write_bytes(path, buffer.getvalue().encode("utf-8"))


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Crash-safe write: the cache and artifacts are either complete or
    absent, never truncated (a killed sweep must be resumable)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, obj: Any) -> None:
    """Crash-safe, key-sorted, human-readable JSON write (sidecars)."""
    atomic_write_bytes(path, (json.dumps(obj, sort_keys=True, indent=2) + "\n").encode())
