"""Semi-commitment scheme (§IV-B, §V-D).

"We only require the computational-binding property of a commitment scheme
here.  That is where the name 'semi-commitment' comes from."

The committee's semi-commitment is the CRHF digest of its member list:
``SEMI_COM_k = H(S)``.  Binding follows from collision resistance (Lemma 1);
hiding is explicitly *not* required (§V-D), so a plain hash is exactly the
paper's construction, not a simplification of it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.hashing import H


def canonical_member_list(members: Iterable[tuple[str, str]]) -> tuple[tuple[str, str], ...]:
    """Sort a ``<PK, address>`` list into the canonical order used for hashing.

    Honest parties may learn members in different orders during committee
    configuration; committing to the sorted list makes the commitment a
    function of the *set*, which is what Algorithm 4 compares.
    """
    return tuple(sorted(members))


def semi_commitment(members: Iterable[tuple[str, str]]) -> bytes:
    """``SEMI_COM = H(S)`` over the canonical member list."""
    return H("SEMI_COM", canonical_member_list(members))


def verify_semi_commitment(
    commitment: bytes, members: Iterable[tuple[str, str]]
) -> bool:
    """Check a claimed commitment against a claimed member list.

    This is the test a partial-set member (or referee) runs in step 3 of the
    semi-commitment exchange; a mismatch is a valid witness against the
    leader.
    """
    return commitment == semi_commitment(members)


def superset_consistent(
    claimed: Sequence[tuple[str, str]], local: Iterable[tuple[str, str]]
) -> bool:
    """Paper: "The list S should be no smaller than the set he/she locally
    maintains."

    A partial-set member accepts the leader's list only if it contains every
    member the partial-set member saw register locally.
    """
    claimed_set = set(claimed)
    return all(entry in claimed_set for entry in local)
