"""SCRAPE-style distributed randomness beacon (§IV-F, §V-A).

"Participants in C_R distributedly generate next round's seed R^{r+1} via a
random beacon generator.  Here, the SCRAPE scheme is preferred as it
guarantees the pseudorandomness and unbiasedness of the seed even when the
adversary takes control of almost half nodes. … no leader is required."

Protocol per round, run among the ``n`` referee members with reconstruction
threshold ``t = ⌊n/2⌋ + 1``:

1. **Deal** — every member deals a PVSS of a fresh random secret.
2. **Verify** — every member publicly verifies every dealing (SCRAPE
   dual-code check).  Dealings that fail are disqualified; the *qualified
   set* is fixed before any secret is revealed, which is what removes
   adversarial bias: a malicious dealer must commit before seeing others'
   secrets, and withholding after qualification cannot help because honest
   members jointly hold enough shares to reconstruct anyway.
3. **Reveal & reconstruct** — shares of qualified dealings are published,
   checked against their commitments, and the secrets reconstructed.
4. **Output** — the beacon is ``H(r, sorted qualified secrets)``.

Adversarial dealers/withholders are modelled explicitly so tests can show
unbiasability: the output is unchanged whether or not malicious members
reveal, provided honest members are a majority.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable

import numpy as np

from repro.crypto.field import FIELD, PrimeField
from repro.crypto.hashing import H
from repro.crypto.pvss import (
    PVSSDealing,
    PVSSSecrets,
    deal,
    reconstruct,
    verify_dealing,
    verify_revealed_share,
)


@dataclass
class BeaconReport:
    """What happened during one beacon run (for metrics and tests)."""

    n: int
    threshold: int
    qualified: list[int] = dc_field(default_factory=list)
    disqualified: list[int] = dc_field(default_factory=list)
    withheld_shares: int = 0
    invalid_revealed_shares: int = 0
    reconstructed_secrets: dict[int, int] = dc_field(default_factory=dict)


class ScrapeBeacon:
    """One beacon instance for a committee of ``n`` members.

    ``malicious`` members can deal corrupt dealings (``corrupt_dealers``) and
    withhold or corrupt their reveal-phase shares (``withhold``); the class
    demonstrates that neither affects the output when honest members form a
    majority.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        threshold: int | None = None,
        field: PrimeField = FIELD,
    ) -> None:
        if n < 1:
            raise ValueError("beacon needs at least one member")
        self.n = n
        self.threshold = threshold if threshold is not None else n // 2 + 1
        if not (1 <= self.threshold <= n):
            raise ValueError("threshold out of range")
        self.rng = rng
        self.field = field
        self._dealings: dict[int, PVSSDealing] = {}
        self._secrets: dict[int, PVSSSecrets] = {}

    # -- phase 1: dealing -------------------------------------------------
    def deal_all(
        self, corrupt_dealers: Iterable[int] = ()
    ) -> dict[int, PVSSDealing]:
        """Every member deals; ``corrupt_dealers`` produce inconsistent
        dealings (share vector off the degree-(t-1) polynomial)."""
        corrupt = set(corrupt_dealers)
        for member in range(self.n):
            secret = int(self.rng.integers(1, self.field.p))
            dealing, secrets = deal(secret, self.n, self.threshold, self.rng)
            if member in corrupt and self.n > 1:
                # Perturb one share commitment so the vector is no longer a
                # codeword — the classic "inconsistent dealing" attack.
                bad = list(dealing.share_commitments)
                bad[0] = bad[0] * dealing.coeff_commitments[0] % _group_q()
                dealing = PVSSDealing(
                    n=dealing.n,
                    threshold=dealing.threshold,
                    coeff_commitments=dealing.coeff_commitments,
                    share_commitments=tuple(bad),
                )
            self._dealings[member] = dealing
            self._secrets[member] = secrets
        return dict(self._dealings)

    # -- phase 2: public verification -------------------------------------
    def qualify(self, report: BeaconReport) -> list[int]:
        """Run SCRAPE verification on every dealing; fix the qualified set."""
        for member, dealing in sorted(self._dealings.items()):
            if verify_dealing(dealing, self.rng, field=self.field):
                report.qualified.append(member)
            else:
                report.disqualified.append(member)
        return report.qualified

    # -- phase 3: reveal & reconstruct -------------------------------------
    def reveal_and_reconstruct(
        self,
        qualified: list[int],
        report: BeaconReport,
        withhold: Iterable[int] = (),
    ) -> dict[int, int]:
        """Members publish shares of qualified dealings; ``withhold`` members
        publish nothing (or garbage — treated identically after the
        commitment check)."""
        withheld = set(withhold)
        if self.n - len(withheld) < self.threshold:
            raise RuntimeError(
                "honest members below reconstruction threshold — beacon "
                "liveness requires an honest majority in C_R"
            )
        for dealer in qualified:
            dealing = self._dealings[dealer]
            shares = self._secrets[dealer].shares
            points: list[tuple[int, int]] = []
            for holder in range(self.n):
                idx = holder + 1
                if holder in withheld:
                    report.withheld_shares += 1
                    continue
                share = shares[idx - 1]
                if not verify_revealed_share(dealing, idx, share):
                    report.invalid_revealed_shares += 1
                    continue
                points.append((idx, share))
            secret = reconstruct(points, self.threshold, self.field)
            report.reconstructed_secrets[dealer] = secret
        return report.reconstructed_secrets

    # -- phase 4: output ----------------------------------------------------
    @staticmethod
    def output(round_number: int, secrets: dict[int, int]) -> bytes:
        """Beacon value: hash of the round number and all qualified secrets."""
        items = tuple(sorted(secrets.items()))
        return H("BEACON", round_number, items)


def _group_q() -> int:
    from repro.crypto.field import GROUP

    return GROUP.q


def run_beacon(
    n: int,
    round_number: int,
    rng: np.random.Generator,
    corrupt_dealers: Iterable[int] = (),
    withhold: Iterable[int] = (),
    threshold: int | None = None,
) -> tuple[bytes, BeaconReport]:
    """Run a complete beacon round and return ``(R^{r+1}, report)``."""
    beacon = ScrapeBeacon(n, rng, threshold=threshold)
    report = BeaconReport(n=n, threshold=beacon.threshold)
    beacon.deal_all(corrupt_dealers=corrupt_dealers)
    qualified = beacon.qualify(report)
    secrets = beacon.reveal_and_reconstruct(qualified, report, withhold=withhold)
    return ScrapeBeacon.output(round_number, secrets), report
