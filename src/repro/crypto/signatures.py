"""Simulated EUF-CMA digital signatures.

"It is by default that all messages are sent authentically via the digital
signature scheme throughout the protocol."  (§IV-A)

A signature is a keyed MAC over the canonical encoding of the message,
verified through the :class:`~repro.crypto.pki.PKI`.  Within the simulation
this is existentially unforgeable: producing a valid ``Signature`` for a
public key requires either that key's secret (held only by its owner) or the
registry (held only by verification code).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import canonical_bytes
from repro.crypto.pki import PKI, KeyPair


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature: the signer's public key plus the MAC tag.

    Carrying ``pk`` inside the object mirrors the paper's ``SIG_i < ... >``
    notation where the signer identity is always recoverable.
    """

    pk: str
    tag: bytes

    def __repr__(self) -> str:
        return f"Signature(pk={self.pk!r}, tag={self.tag[:6].hex()}…)"


def _encode(message: Any) -> bytes:
    return b"sig" + canonical_bytes(message)


def sign(keypair: KeyPair, message: Any) -> Signature:
    """Sign ``message`` (any canonically-encodable structure)."""
    tag = hmac.new(keypair.sk, _encode(message), hashlib.sha256).digest()
    return Signature(pk=keypair.pk, tag=tag)


def verify(pki: PKI, signature: Signature, message: Any) -> bool:
    """Check ``signature`` over ``message`` against its embedded public key.

    Returns ``False`` (never raises) for unregistered keys or wrong tags so
    protocol code can treat bad signatures uniformly as Byzantine noise.
    """
    if not pki.is_registered(signature.pk):
        return False
    expected = pki.mac(signature.pk, _encode(message))
    return hmac.compare_digest(expected, signature.tag)


def signed_by(pki: PKI, signature: Signature, message: Any, pk: str) -> bool:
    """Verify and additionally pin the signer identity to ``pk``.

    Used where the protocol requires a message "signed by the leader": a
    valid signature from the *wrong* party must not count.
    """
    return signature.pk == pk and verify(pki, signature, message)
