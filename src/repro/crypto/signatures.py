"""Simulated EUF-CMA digital signatures.

"It is by default that all messages are sent authentically via the digital
signature scheme throughout the protocol."  (§IV-A)

A signature is a keyed MAC over the canonical encoding of the message,
verified through the :class:`~repro.crypto.pki.PKI`.  Within the simulation
this is existentially unforgeable: producing a valid ``Signature`` for a
public key requires either that key's secret (held only by its owner) or the
registry (held only by verification code).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.crypto.hashing import canonical_bytes
from repro.crypto.pki import PKI, KeyPair


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature: the signer's public key plus the MAC tag.

    Carrying ``pk`` inside the object mirrors the paper's ``SIG_i < ... >``
    notation where the signer identity is always recoverable.
    """

    pk: str
    tag: bytes

    def __repr__(self) -> str:
        return f"Signature(pk={self.pk!r}, tag={self.tag[:6].hex()}…)"


def _encode(message: Any) -> bytes:
    return b"sig" + canonical_bytes(message)


def sign(keypair: KeyPair, message: Any) -> Signature:
    """Sign ``message`` (any canonically-encodable structure)."""
    tag = hmac.new(keypair.sk, _encode(message), hashlib.sha256).digest()
    return Signature(pk=keypair.pk, tag=tag)


def verify(pki: PKI, signature: Signature, message: Any) -> bool:
    """Check ``signature`` over ``message`` against its embedded public key.

    Returns ``False`` (never raises) for unregistered keys or wrong tags so
    protocol code can treat bad signatures uniformly as Byzantine noise.
    """
    if not pki.is_registered(signature.pk):
        return False
    expected = pki.mac(signature.pk, _encode(message))
    return hmac.compare_digest(expected, signature.tag)


def signed_by(pki: PKI, signature: Signature, message: Any, pk: str) -> bool:
    """Verify and additionally pin the signer identity to ``pk``.

    Used where the protocol requires a message "signed by the leader": a
    valid signature from the *wrong* party must not count.
    """
    return signature.pk == pk and verify(pki, signature, message)


# -- batched forms -----------------------------------------------------------
# Consensus is dominated by one pattern: a single statement checked against
# (or produced for) an entire recipient set — a certificate's signer list, a
# committee's worth of CONFIRMs, every member auditing the same relayed
# PROPOSE header.  The scalar helpers above re-run the canonical encoding of
# the statement on every call, which the profile shows costs more than the
# HMAC itself for realistic statements.  The helpers below encode ONCE per
# statement and reuse the bytes across the whole batch; they are
# semantically identical to looping the scalar forms (a property the test
# suite asserts), just cheaper.


def encode_statement(message: Any) -> bytes:
    """Canonical signing encoding of ``message``.

    Exposed so statement-heavy sessions can encode once and feed the bytes
    to :func:`sign_encoded` / :func:`verify_encoded` for every signer or
    verifier that touches the same statement.
    """
    return _encode(message)


def sign_encoded(keypair: KeyPair, encoded: bytes) -> Signature:
    """:func:`sign` over a pre-encoded statement (see
    :func:`encode_statement`)."""
    tag = hmac.new(keypair.sk, encoded, hashlib.sha256).digest()
    return Signature(pk=keypair.pk, tag=tag)


def verify_encoded(pki: PKI, signature: Signature, encoded: bytes) -> bool:
    """:func:`verify` over a pre-encoded statement."""
    if not pki.is_registered(signature.pk):
        return False
    expected = pki.mac(signature.pk, encoded)
    return hmac.compare_digest(expected, signature.tag)


def signed_by_encoded(
    pki: PKI, signature: Signature, encoded: bytes, pk: str
) -> bool:
    """:func:`signed_by` over a pre-encoded statement."""
    return signature.pk == pk and verify_encoded(pki, signature, encoded)


def sign_many(keypairs: Iterable[KeyPair], message: Any) -> list[Signature]:
    """Sign one ``message`` with many keys — one encoding for the whole
    recipient set instead of one per signer."""
    encoded = _encode(message)
    return [
        Signature(
            pk=kp.pk, tag=hmac.new(kp.sk, encoded, hashlib.sha256).digest()
        )
        for kp in keypairs
    ]


def verify_many(
    pki: PKI, signatures: Sequence[Signature], message: Any
) -> list[bool]:
    """Verify many signatures over one ``message``, encoding it once.

    Element ``i`` equals ``verify(pki, signatures[i], message)`` exactly.
    """
    encoded = _encode(message)
    return [verify_encoded(pki, sig, encoded) for sig in signatures]


def signers_of(
    pki: PKI,
    signatures: Iterable[Signature],
    message: Any,
    members: "set[str] | None" = None,
) -> set[str]:
    """Public keys with a valid signature over ``message``.

    The certificate-checking primitive: encodes the statement once,
    discards signatures from outside ``members`` (when given) and from
    unregistered keys *before* paying for a MAC, then batches the MAC
    recomputation through :meth:`~repro.crypto.pki.PKI.mac_many`.  The
    result set deduplicates signers, so a padded or duplicated
    certificate can never count higher than the honest one.
    """
    encoded = _encode(message)
    candidates = [
        sig
        for sig in signatures
        if (members is None or sig.pk in members) and pki.is_registered(sig.pk)
    ]
    tags = pki.mac_many((sig.pk for sig in candidates), encoded)
    return {
        sig.pk
        for sig, tag in zip(candidates, tags)
        if hmac.compare_digest(tag, sig.tag)
    }
