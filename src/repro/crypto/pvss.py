"""Publicly Verifiable Secret Sharing with SCRAPE's dual-code check.

This implements the algebraic core of SCRAPE [Cascudo & David, ACNS'17],
which the paper uses inside the referee committee to generate each round's
randomness (§IV-F, §V-A):

* Shamir sharing of a secret ``s`` in Z_p with reconstruction threshold
  ``t`` (polynomial degree ``t-1``), participants at evaluation points
  ``1..n``;
* Feldman coefficient commitments ``C_j = g^{a_j}`` plus per-share
  commitments ``v_i = g^{σ_i}`` so *anyone* can verify a dealing;
* SCRAPE's information-theoretic batch verification: the share vector
  ``(σ_1, …, σ_n)`` is a Reed–Solomon codeword iff it is orthogonal to every
  word of the dual code, whose words are ``c_i = m(i)·λ_i`` for polynomials
  ``m`` of degree ≤ n-t-1 and ``λ_i = Π_{j≠i}(i-j)^{-1}``.  Checking one
  random dual word catches an inconsistent dealing with probability
  ``1 - 1/p``.

In real SCRAPE the shares travel encrypted under participants' keys with
DLEQ proofs; in this reproduction the private delivery is provided by the
network simulator's point-to-point channels, which is the property the
encryption exists to provide.  The *verification algebra* — the part the
unbiasability proof leans on — is implemented in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto.field import FIELD, GROUP, PrimeField, SchnorrGroup


@dataclass(frozen=True)
class PVSSDealing:
    """A public dealing: coefficient and share commitments (no secrets)."""

    n: int
    threshold: int
    coeff_commitments: tuple[int, ...]
    share_commitments: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.coeff_commitments) != self.threshold:
            raise ValueError("need exactly `threshold` coefficient commitments")
        if len(self.share_commitments) != self.n:
            raise ValueError("need exactly n share commitments")


@dataclass(frozen=True)
class PVSSSecrets:
    """The dealer-private side: the secret and all raw shares."""

    secret: int
    shares: tuple[int, ...]  # shares[i] belongs to participant i+1


def deal(
    secret: int,
    n: int,
    threshold: int,
    rng: np.random.Generator,
    field: PrimeField = FIELD,
    group: SchnorrGroup = GROUP,
) -> tuple[PVSSDealing, PVSSSecrets]:
    """Share ``secret`` among ``n`` participants, ``threshold`` to recover."""
    if not (1 <= threshold <= n):
        raise ValueError(f"threshold {threshold} out of range for n={n}")
    coeffs = field.random_poly(threshold - 1, secret, rng)
    shares = tuple(field.poly_eval(coeffs, i) for i in range(1, n + 1))
    dealing = PVSSDealing(
        n=n,
        threshold=threshold,
        coeff_commitments=tuple(group.commit(a) for a in coeffs),
        share_commitments=tuple(group.commit(s) for s in shares),
    )
    return dealing, PVSSSecrets(secret=secret % field.p, shares=shares)


def feldman_check(
    dealing: PVSSDealing,
    index: int,
    share: int,
    group: SchnorrGroup = GROUP,
) -> bool:
    """Participant ``index`` (1-based) verifies its private share:
    ``g^{σ_i} == Π_j C_j^{i^j}``."""
    if not (1 <= index <= dealing.n):
        return False
    expected = 1
    power = 1  # i^j mod p
    for c_j in dealing.coeff_commitments:
        expected = group.mul(expected, group.exp(c_j, power))
        power = (power * index) % group.p
    return group.commit(share) == expected


def _dual_code_word(
    n: int, threshold: int, rng: np.random.Generator, field: PrimeField
) -> list[int]:
    """A random word ``c_i = m(i)·λ_i`` of the dual Reed–Solomon code."""
    m_coeffs = field.random_poly(n - threshold - 1, int(rng.integers(1, 1 << 61)), rng)
    word = []
    for i in range(1, n + 1):
        lam = 1
        for j in range(1, n + 1):
            if j != i:
                lam = lam * (i - j) % field.p
        word.append(field.poly_eval(m_coeffs, i) * field.inv(lam) % field.p)
    return word


def scrape_check(
    dealing: PVSSDealing,
    rng: np.random.Generator,
    field: PrimeField = FIELD,
    group: SchnorrGroup = GROUP,
    repetitions: int = 1,
) -> bool:
    """SCRAPE public verification of a dealing.

    Checks ``Π_i v_i^{c_i} == 1`` for ``repetitions`` random dual-code words,
    plus consistency of the claimed share commitments with the Feldman
    coefficient commitments for share 1 (cheap anchor tying the two vectors
    together).  A dealing whose share vector is not a degree-(t-1) codeword
    fails each repetition except with probability 1/p.
    """
    if dealing.n == dealing.threshold:
        # Dual code is trivial; fall back to checking every share commitment
        # against the Feldman commitments.
        return all(
            _share_commitment_consistent(dealing, i, group)
            for i in range(1, dealing.n + 1)
        )
    for _ in range(repetitions):
        word = _dual_code_word(dealing.n, dealing.threshold, rng, field)
        acc = 1
        for v_i, c_i in zip(dealing.share_commitments, word):
            acc = group.mul(acc, group.exp(v_i, c_i))
        if acc != group.identity:
            return False
    # The dual-code test proves v_i = g^{f(i)} for SOME degree-(t-1) f; anchor
    # it to the committed polynomial so the dealer cannot swap polynomials.
    return _share_commitment_consistent(dealing, 1, group) and (
        dealing.n < 2 or _share_commitment_consistent(dealing, 2, group)
    )


def _share_commitment_consistent(
    dealing: PVSSDealing, index: int, group: SchnorrGroup
) -> bool:
    expected = 1
    power = 1
    for c_j in dealing.coeff_commitments:
        expected = group.mul(expected, group.exp(c_j, power))
        power = (power * index) % group.p
    return dealing.share_commitments[index - 1] == expected


def verify_dealing(
    dealing: PVSSDealing,
    rng: np.random.Generator,
    field: PrimeField = FIELD,
    group: SchnorrGroup = GROUP,
) -> bool:
    """Full public verification as run by every honest referee member."""
    return scrape_check(dealing, rng, field=field, group=group)


def verify_revealed_share(
    dealing: PVSSDealing, index: int, share: int, group: SchnorrGroup = GROUP
) -> bool:
    """Check a share revealed during reconstruction against its commitment."""
    if not (1 <= index <= dealing.n):
        return False
    return group.commit(share) == dealing.share_commitments[index - 1]


def reconstruct(
    points: Sequence[tuple[int, int]],
    threshold: int,
    field: PrimeField = FIELD,
) -> int:
    """Recover the secret from ≥ ``threshold`` verified ``(index, share)``
    points via Lagrange interpolation at zero."""
    if len(points) < threshold:
        raise ValueError(
            f"need at least {threshold} shares to reconstruct, got {len(points)}"
        )
    return field.interpolate_at_zero(points[:threshold])
