"""Collision-resistant hash function wrapper.

The paper assumes access to an external random oracle ``H`` which is
collision resistant.  We use SHA-256 with a canonical, injective encoding of
structured inputs so that ``H(a, b) != H(ab)``-style ambiguities cannot
produce accidental collisions.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any

_SEP = b"\x1f"


def _frame(tag: bytes, payload: bytes) -> bytes:
    # b"%d" formats in C; measurably faster than str(len).encode() + concat
    # on this sub-microsecond path.
    return tag + b"%d:" % len(payload) + payload


def _enc_bytes(obj: bytes) -> bytes:
    return _frame(b"b", obj)


def _enc_str(obj: str) -> bytes:
    return _frame(b"s", obj.encode("utf-8"))


def _enc_bool(obj: bool) -> bytes:
    return b"o1:1" if obj else b"o1:0"


def _enc_int(obj: int) -> bytes:
    return _frame(b"i", str(obj).encode("ascii"))


def _enc_float(obj: float) -> bytes:
    return _frame(b"f", repr(obj).encode("ascii"))


def _enc_seq(obj: "tuple | list") -> bytes:
    return _frame(b"t", _SEP.join([canonical_bytes(x) for x in obj]))


def _enc_set(obj: "set | frozenset") -> bytes:
    return _frame(b"e", _SEP.join(sorted([canonical_bytes(x) for x in obj])))


def _enc_dict(obj: dict) -> bytes:
    items = sorted(
        (canonical_bytes(k), canonical_bytes(v)) for k, v in obj.items()
    )
    return _frame(b"d", _SEP.join(k + b"=" + v for k, v in items))


#: Exact-type fast dispatch: one dict probe replaces the isinstance chain
#: for the builtins that make up virtually every hashed structure.  The
#: encoding (and therefore every digest, txid and signature) is unchanged;
#: subclasses and numpy scalars fall through to :func:`_canonical_slow`,
#: which preserves the original isinstance semantics exactly.
_ENCODERS = {
    bytes: _enc_bytes,
    str: _enc_str,
    bool: _enc_bool,  # must shadow int (bool is an int subclass)
    int: _enc_int,
    float: _enc_float,
    tuple: _enc_seq,
    list: _enc_seq,
    set: _enc_set,
    frozenset: _enc_set,
    dict: _enc_dict,
    type(None): lambda obj: b"n0:",
}


def _canonical_slow(obj: Any) -> bytes:
    """Subclasses of the fast-dispatched builtins plus numpy scalars."""
    if isinstance(obj, bytes):
        return _enc_bytes(obj)
    if isinstance(obj, str):
        return _enc_str(obj)
    if isinstance(obj, bool):  # must precede int check
        return _enc_bool(obj)
    if isinstance(obj, int):
        return _enc_int(obj)
    if obj is None:
        return b"n0:"
    if isinstance(obj, float):
        return _enc_float(obj)
    if isinstance(obj, (tuple, list)):
        return _enc_seq(obj)
    if isinstance(obj, (set, frozenset)):
        return _enc_set(obj)
    if isinstance(obj, dict):
        return _enc_dict(obj)
    # NumPy scalars appear wherever protocol code hashes vote vectors;
    # encode them exactly as their Python equivalents.
    import numpy as np

    if isinstance(obj, np.integer):
        return _enc_int(int(obj))
    if isinstance(obj, np.floating):
        return _enc_float(float(obj))
    if isinstance(obj, np.bool_):
        return _enc_bool(bool(obj))
    raise TypeError(f"canonical_bytes cannot encode {type(obj).__name__}")


def canonical_bytes(obj: Any) -> bytes:
    """Injectively encode ``obj`` (nested tuples/lists/ints/str/bytes/None/bool)
    into bytes.

    The encoding is prefix-free per element: each element is rendered as
    ``<typetag><length>:<payload>`` so distinct structures never collide.
    This function sits under every digest, txid and signature in the
    repository, so it dispatches on exact type first (see ``_ENCODERS``).
    """
    enc = _ENCODERS.get(type(obj))
    if enc is not None:
        return enc(obj)
    return _canonical_slow(obj)


# The hot protocol paths (sortition rank hashes, beacon mixing, txids)
# call H with small flat tuples of primitives, and many nodes hash the
# same inputs within one round.  Those calls are memoised.  The cache key
# carries an explicit per-element type tag so values that compare equal
# across types (True == 1) — which canonical_bytes encodes differently —
# can never alias a cache slot.  Floats stay on the uncached path: 0.0
# and -0.0 compare (and hash) equal yet encode differently via repr, so
# they would alias a slot within one type tag.
_FLAT_TYPES = {bytes: "b", str: "s", bool: "o", int: "i"}


def _flat_key(parts: tuple) -> tuple | None:
    key = []
    for part in parts:
        tag = _FLAT_TYPES.get(type(part))
        if tag is None:
            if part is None:
                tag = "n"
            else:
                return None  # nested / numpy / unhashable: uncached path
        key.append((tag, part))
    return tuple(key)


@lru_cache(maxsize=1 << 16)
def _H_flat(key: tuple) -> bytes:
    h = hashlib.sha256()
    for _, part in key:
        h.update(canonical_bytes(part))
    return h.digest()


def H(*parts: Any) -> bytes:
    """The protocol's collision-resistant hash function.

    Accepts any number of canonically-encodable parts and returns a 32-byte
    digest.  ``H(a, b)`` is the paper's ``H(a || b)`` with an injective
    pairing.
    """
    key = _flat_key(parts)
    if key is not None:
        return _H_flat(key)
    h = hashlib.sha256()
    for part in parts:
        h.update(canonical_bytes(part))
    return h.digest()


def H_int(*parts: Any) -> int:
    """``H`` interpreted as a 256-bit unsigned integer (for mod-m sortition
    and difficulty comparisons)."""
    return int.from_bytes(H(*parts), "big")


def hexdigest(*parts: Any) -> str:
    """Hex rendering of :func:`H`, convenient for logs and block ids."""
    return H(*parts).hex()
