"""Collision-resistant hash function wrapper.

The paper assumes access to an external random oracle ``H`` which is
collision resistant.  We use SHA-256 with a canonical, injective encoding of
structured inputs so that ``H(a, b) != H(ab)``-style ambiguities cannot
produce accidental collisions.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any

_SEP = b"\x1f"


def canonical_bytes(obj: Any) -> bytes:
    """Injectively encode ``obj`` (nested tuples/lists/ints/str/bytes/None/bool)
    into bytes.

    The encoding is prefix-free per element: each element is rendered as
    ``<typetag><length>:<payload>`` so distinct structures never collide.
    """
    if isinstance(obj, bytes):
        payload = obj
        tag = b"b"
    elif isinstance(obj, str):
        payload = obj.encode("utf-8")
        tag = b"s"
    elif isinstance(obj, bool):  # must precede int check
        payload = b"1" if obj else b"0"
        tag = b"o"
    elif isinstance(obj, int):
        payload = str(obj).encode("ascii")
        tag = b"i"
    elif obj is None:
        payload = b""
        tag = b"n"
    elif isinstance(obj, float):
        payload = repr(obj).encode("ascii")
        tag = b"f"
    elif isinstance(obj, (tuple, list)):
        inner = _SEP.join(canonical_bytes(x) for x in obj)
        payload = inner
        tag = b"t"
    elif isinstance(obj, (set, frozenset)):
        inner = _SEP.join(sorted(canonical_bytes(x) for x in obj))
        payload = inner
        tag = b"e"
    elif isinstance(obj, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in obj.items()
        )
        payload = _SEP.join(k + b"=" + v for k, v in items)
        tag = b"d"
    else:
        # NumPy scalars appear wherever protocol code hashes vote vectors;
        # encode them exactly as their Python equivalents.
        import numpy as np

        if isinstance(obj, np.integer):
            return canonical_bytes(int(obj))
        if isinstance(obj, np.floating):
            return canonical_bytes(float(obj))
        if isinstance(obj, np.bool_):
            return canonical_bytes(bool(obj))
        raise TypeError(f"canonical_bytes cannot encode {type(obj).__name__}")
    return tag + str(len(payload)).encode("ascii") + b":" + payload


# The hot protocol paths (sortition rank hashes, beacon mixing, txids)
# call H with small flat tuples of primitives, and many nodes hash the
# same inputs within one round.  Those calls are memoised.  The cache key
# carries an explicit per-element type tag so values that compare equal
# across types (True == 1) — which canonical_bytes encodes differently —
# can never alias a cache slot.  Floats stay on the uncached path: 0.0
# and -0.0 compare (and hash) equal yet encode differently via repr, so
# they would alias a slot within one type tag.
_FLAT_TYPES = {bytes: "b", str: "s", bool: "o", int: "i"}


def _flat_key(parts: tuple) -> tuple | None:
    key = []
    for part in parts:
        tag = _FLAT_TYPES.get(type(part))
        if tag is None:
            if part is None:
                tag = "n"
            else:
                return None  # nested / numpy / unhashable: uncached path
        key.append((tag, part))
    return tuple(key)


@lru_cache(maxsize=1 << 16)
def _H_flat(key: tuple) -> bytes:
    h = hashlib.sha256()
    for _, part in key:
        h.update(canonical_bytes(part))
    return h.digest()


def H(*parts: Any) -> bytes:
    """The protocol's collision-resistant hash function.

    Accepts any number of canonically-encodable parts and returns a 32-byte
    digest.  ``H(a, b)`` is the paper's ``H(a || b)`` with an injective
    pairing.
    """
    key = _flat_key(parts)
    if key is not None:
        return _H_flat(key)
    h = hashlib.sha256()
    for part in parts:
        h.update(canonical_bytes(part))
    return h.digest()


def H_int(*parts: Any) -> int:
    """``H`` interpreted as a 256-bit unsigned integer (for mod-m sortition
    and difficulty comparisons)."""
    return int.from_bytes(H(*parts), "big")


def hexdigest(*parts: Any) -> str:
    """Hex rendering of :func:`H`, convenient for logs and block ids."""
    return H(*parts).hex()
