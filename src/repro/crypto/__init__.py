"""Simulated cryptographic substrate for the CycLedger reproduction.

The paper assumes a PKI, EUF-CMA digital signatures, a collision-resistant
hash function (CRHF), a Verifiable Random Function (VRF), the SCRAPE
publicly-verifiable secret sharing (PVSS) beacon and a proof-of-work
admission puzzle.  Every one of those is implemented here.

Two of them (signatures and the VRF) are *simulation-grade*: they are keyed
MACs whose verification goes through the :class:`~repro.crypto.pki.PKI`
registry instead of real asymmetric primitives.  Within the simulation the
adversary has no API that exposes another party's secret key, so
unforgeability — the only property the paper's proofs rely on — holds
unconditionally.  The PVSS beacon, by contrast, is a *real* implementation of
Shamir sharing with Feldman commitments and SCRAPE's dual-code share check
over an explicit prime-order group.
"""

from repro.crypto.hashing import H, H_int, canonical_bytes
from repro.crypto.pki import PKI, KeyPair
from repro.crypto.signatures import Signature, sign, verify
from repro.crypto.vrf import VRFOutput, vrf_eval, vrf_verify
from repro.crypto.commitment import semi_commitment, verify_semi_commitment
from repro.crypto.field import PrimeField, FIELD, GROUP, SchnorrGroup
from repro.crypto.pvss import PVSSDealing, deal, verify_dealing, reconstruct
from repro.crypto.beacon import ScrapeBeacon, run_beacon
from repro.crypto.pow import PowPuzzle, solve_pow, verify_pow

__all__ = [
    "H",
    "H_int",
    "canonical_bytes",
    "PKI",
    "KeyPair",
    "Signature",
    "sign",
    "verify",
    "VRFOutput",
    "vrf_eval",
    "vrf_verify",
    "semi_commitment",
    "verify_semi_commitment",
    "PrimeField",
    "FIELD",
    "GROUP",
    "SchnorrGroup",
    "PVSSDealing",
    "deal",
    "verify_dealing",
    "reconstruct",
    "ScrapeBeacon",
    "run_beacon",
    "PowPuzzle",
    "solve_pow",
    "verify_pow",
]
