"""Public-Key Infrastructure (PKI) registry.

The paper: "We use a Public-Key Infrastructure (PKI) to give each node a
public/secret key pair (PK, SK)."

Key pairs here are simulation-grade: the secret key is 32 random bytes and
the public key is a hash-derived identifier.  Verification of signatures and
VRF proofs is mediated by the registry, which plays the role of the
asymmetric trapdoor: it can check that a MAC was produced under the secret
key registered for a public key, without protocol code ever reading foreign
secret keys.  Honest *and* adversarial node implementations only ever hold
their own :class:`KeyPair`; nothing in the protocol hands out the registry's
private table.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable

from repro.crypto.hashing import H, canonical_bytes


@dataclass(frozen=True)
class KeyPair:
    """A node's public/secret key pair.

    ``pk`` is a short printable identifier (hex) so it can be embedded in
    member lists and hashed; ``sk`` never leaves the owning node except via
    the PKI registration call.
    """

    pk: str
    sk: bytes

    def __repr__(self) -> str:  # avoid leaking sk in logs/tracebacks
        return f"KeyPair(pk={self.pk!r}, sk=<hidden>)"


class PKI:
    """Registry mapping public keys to verification capability.

    The registry keeps ``pk -> sk`` privately.  :meth:`mac` recomputes the
    keyed MAC a signer with that ``pk`` would have produced; signature and
    VRF verification are built on it.  This models, inside the simulation,
    exactly the two properties the paper's security proofs use:

    * **unforgeability** — only the holder of ``sk`` (or the verifier via the
      registry) can produce a valid MAC;
    * **public verifiability** — anyone holding the registry handle can check
      a claimed signature/proof against a public key.
    """

    _MAC_CACHE_MAX = 1 << 16

    def __init__(self) -> None:
        self._secrets: dict[str, bytes] = {}
        # Consensus is verification-heavy: every committee member re-checks
        # the same (pk, message) signatures during the all-to-all echo
        # phases.  A bounded FIFO memo of recomputed MACs turns those
        # repeats into a dict hit.  Entries can never go stale: generate()
        # and register() both reject re-registration of a pk with a
        # different sk, so a pk's MAC function is immutable for the
        # registry's lifetime.
        self._mac_cache: dict[tuple[str, bytes], bytes] = {}

    def generate(self, seed: bytes | str | int) -> KeyPair:
        """Deterministically derive and register a key pair from ``seed``.

        Determinism keeps whole-protocol runs reproducible from one integer
        seed, per the repository's determinism convention.
        """
        sk = hashlib.sha256(b"sk" + canonical_bytes(seed)).digest()
        pk = hashlib.sha256(b"pk" + sk).hexdigest()[:40]
        if pk in self._secrets and self._secrets[pk] != sk:
            raise ValueError(f"public key collision for {pk}")
        self._secrets[pk] = sk
        return KeyPair(pk=pk, sk=sk)

    def register(self, keypair: KeyPair) -> None:
        """Register an externally created key pair."""
        existing = self._secrets.get(keypair.pk)
        if existing is not None and existing != keypair.sk:
            raise ValueError(f"public key {keypair.pk} already registered")
        self._secrets[keypair.pk] = keypair.sk

    def is_registered(self, pk: str) -> bool:
        return pk in self._secrets

    def mac(self, pk: str, message: bytes) -> bytes:
        """MAC of ``message`` under the secret key registered for ``pk``.

        Raises ``KeyError`` for unregistered keys — an unregistered identity
        can never verify, matching the paper's requirement that the referee
        committee checks "all members in any list are registered".
        """
        key = (pk, message)
        cached = self._mac_cache.get(key)
        if cached is not None:
            return cached
        sk = self._secrets[pk]
        tag = hmac.new(sk, message, hashlib.sha256).digest()
        if len(self._mac_cache) >= self._MAC_CACHE_MAX:
            self._mac_cache.pop(next(iter(self._mac_cache)))
        self._mac_cache[key] = tag
        return tag

    def mac_many(self, pks: "Iterable[str]", message: bytes) -> list[bytes]:
        """MACs of one ``message`` under many registered public keys.

        The batched form of :meth:`mac` for the consensus fan-out pattern
        (one statement checked against a whole recipient set, e.g. a
        certificate's signer list): the per-call dispatch, cache probe and
        eviction bookkeeping run once per key with all loop-invariant state
        hoisted, instead of once per ``(pk, message)`` method call.  Raises
        ``KeyError`` on the first unregistered ``pk``, like :meth:`mac`.
        """
        cache = self._mac_cache
        secrets = self._secrets
        tags: list[bytes] = []
        for pk in pks:
            key = (pk, message)
            tag = cache.get(key)
            if tag is None:
                tag = hmac.new(secrets[pk], message, hashlib.sha256).digest()
                if len(cache) >= self._MAC_CACHE_MAX:
                    cache.pop(next(iter(cache)))
                cache[key] = tag
            tags.append(tag)
        return tags

    def __len__(self) -> int:
        return len(self._secrets)

    def fingerprint(self) -> bytes:
        """Commitment to the full registry contents (for genesis blocks)."""
        return H(sorted(self._secrets))
