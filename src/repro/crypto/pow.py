"""Proof-of-Work admission puzzle (§IV-F).

"The nodes who want to participate in the next round need to solve a PoW
puzzle in advance.  The difficulty of the puzzle is appropriate and equal to
everyone."

The puzzle is a SHA-256 partial-preimage search: find ``nonce`` such that
``H(pk, round, randomness, nonce) < 2^{256-difficulty_bits}``.  Difficulty is
a parameter so tests run at a few bits while benchmarks can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import H_int

HASH_BITS = 256


@dataclass(frozen=True, slots=True)
class PowPuzzle:
    """Puzzle statement for one round: everyone shares the same target."""

    round_number: int
    randomness: bytes
    difficulty_bits: int

    @property
    def target(self) -> int:
        if not (0 <= self.difficulty_bits < HASH_BITS):
            raise ValueError("difficulty_bits out of range")
        return 1 << (HASH_BITS - self.difficulty_bits)


@dataclass(frozen=True, slots=True)
class PowSolution:
    pk: str
    nonce: int


def solve_pow(puzzle: PowPuzzle, pk: str, max_iters: int = 10_000_000) -> PowSolution:
    """Brute-force the puzzle; deterministic scan so runs are reproducible.

    The paper only uses PoW as a Sybil-resistant admission ticket, so the
    scan order is irrelevant to protocol behaviour.
    """
    target = puzzle.target
    for nonce in range(max_iters):
        if H_int("POW", pk, puzzle.round_number, puzzle.randomness, nonce) < target:
            return PowSolution(pk=pk, nonce=nonce)
    raise RuntimeError(
        f"no PoW solution within {max_iters} iterations at "
        f"{puzzle.difficulty_bits} bits"
    )


def verify_pow(puzzle: PowPuzzle, solution: PowSolution) -> bool:
    """Referee-side check when recording a participant for round r+1."""
    return (
        H_int("POW", solution.pk, puzzle.round_number, puzzle.randomness, solution.nonce)
        < puzzle.target
    )


def expected_attempts(difficulty_bits: int) -> float:
    """Mean number of hash evaluations to solve at this difficulty."""
    return float(2**difficulty_bits)
