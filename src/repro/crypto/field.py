"""Prime-field and Schnorr-group arithmetic for the SCRAPE beacon.

SCRAPE [Cascudo & David, ACNS'17] shares secrets with Shamir polynomials over
a prime field Z_p and publishes Feldman-style commitments in a group of order
p.  We instantiate:

* the share field with the Mersenne prime ``p = 2^61 - 1``;
* the commitment group as the order-``p`` subgroup of ``Z_q^*`` where
  ``q = k·p + 1`` is prime (found once at import by deterministic
  Miller-Rabin, which is exact for 64-bit-scale inputs with the standard
  witness set).

Everything here is genuine number theory — no simulation shortcuts — because
the beacon's unbiasability argument (§V-A) rests on the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

# Deterministic Miller-Rabin witness set: correct for all n < 3.317e24
# (Sorenson & Webster), far beyond the ~2^67 moduli used here.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class PrimeField:
    """Arithmetic in Z_p with polynomial helpers used by Shamir sharing."""

    def __init__(self, p: int) -> None:
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        a %= self.p
        if a == 0:
            raise ZeroDivisionError("no inverse of 0 in a field")
        return pow(a, self.p - 2, self.p)

    def poly_eval(self, coeffs: Sequence[int], x: int) -> int:
        """Evaluate ``coeffs[0] + coeffs[1]·x + …`` by Horner's rule."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc

    def random_poly(self, degree: int, secret: int, rng) -> list[int]:
        """Degree-``degree`` polynomial with constant term ``secret``.

        ``rng`` is a ``numpy.random.Generator``; coefficients are drawn
        uniformly from Z_p (rejection-free because we draw 64-bit ints and
        reduce — bias is < 2^-3 of a ulp for p = 2^61-1, irrelevant here, but
        we still draw two words and reduce to keep bias < 2^-60).
        """
        coeffs = [secret % self.p]
        for _ in range(degree):
            hi = int(rng.integers(0, 1 << 62))
            lo = int(rng.integers(0, 1 << 62))
            coeffs.append(((hi << 62) | lo) % self.p)
        return coeffs

    def lagrange_coeffs_at_zero(self, xs: Sequence[int]) -> list[int]:
        """Lagrange basis coefficients L_i(0) for interpolation at x = 0."""
        coeffs = []
        for i, xi in enumerate(xs):
            num, den = 1, 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                num = num * (-xj) % self.p
                den = den * (xi - xj) % self.p
            coeffs.append(num * self.inv(den) % self.p)
        return coeffs

    def interpolate_at_zero(self, points: Iterable[tuple[int, int]]) -> int:
        """Reconstruct f(0) from ``(x, f(x))`` points (Shamir recovery)."""
        pts = list(points)
        xs = [x for x, _ in pts]
        if len(set(xs)) != len(xs):
            raise ValueError("duplicate x coordinates")
        lag = self.lagrange_coeffs_at_zero(xs)
        return sum(l * y for l, (_, y) in zip(lag, pts)) % self.p


@dataclass(frozen=True)
class SchnorrGroup:
    """Order-``p`` subgroup of Z_q^* with generator ``g`` (q = k·p + 1)."""

    q: int
    p: int
    g: int

    def exp(self, base: int, e: int) -> int:
        return pow(base, e % self.p, self.q)

    def commit(self, e: int) -> int:
        """Pedersen-free Feldman commitment g^e mod q."""
        return pow(self.g, e % self.p, self.q)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.q

    @property
    def identity(self) -> int:
        return 1


def _find_group(p: int) -> SchnorrGroup:
    """Find the smallest even k with q = k·p+1 prime, and a generator of the
    order-p subgroup."""
    k = 2
    while True:
        q = k * p + 1
        if is_prime(q):
            # g = h^k has order p unless it collapses to 1.
            for h in range(2, 200):
                g = pow(h, k, q)
                if g != 1:
                    # order divides p (prime), and g != 1 => order == p
                    return SchnorrGroup(q=q, p=p, g=g)
        k += 2


#: Share field: Mersenne prime 2^61 - 1.
FIELD = PrimeField((1 << 61) - 1)

#: Commitment group of order FIELD.p (computed once at import; k is tiny).
GROUP = _find_group(FIELD.p)
