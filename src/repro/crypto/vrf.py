"""Simulated Verifiable Random Function (VRF).

The paper's cryptographic sortition (Algorithm 1) computes::

    <hash, pi> <- VRF_SK(COMMON_MEMBER || r || R_r)

and any party can verify ``(hash, pi)`` against the caller's public key.

Our simulation-grade VRF provides the three properties sortition needs:

* **uniqueness** — for a fixed ``(sk, alpha)`` there is exactly one output;
* **pseudorandomness** — the output is a hash of a secret-keyed MAC, so it is
  uniform and unpredictable to parties not holding ``sk``;
* **public verifiability** — ``vrf_verify`` recomputes the proof through the
  PKI registry (the simulated trapdoor).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import canonical_bytes
from repro.crypto.pki import PKI, KeyPair

VRF_OUTPUT_BITS = 256
VRF_OUTPUT_SPACE = 1 << VRF_OUTPUT_BITS


@dataclass(frozen=True, slots=True)
class VRFOutput:
    """The pair ``<hash, pi>`` from Algorithm 1.

    ``value`` is the 256-bit pseudorandom integer (the paper's ``hash``);
    ``proof`` is the certifying tag (the paper's ``pi``).
    """

    pk: str
    value: int
    proof: bytes

    def __repr__(self) -> str:
        return f"VRFOutput(pk={self.pk!r}, value={self.value:#066x})"


def _encode(alpha: Any) -> bytes:
    return b"vrf" + canonical_bytes(alpha)


def vrf_eval(keypair: KeyPair, alpha: Any) -> VRFOutput:
    """Evaluate the VRF on input ``alpha`` under ``keypair``.

    The proof is the MAC itself; the value is a hash of the proof so the
    value is a deterministic public function of the proof (verifiers check
    both links).
    """
    proof = hmac.new(keypair.sk, _encode(alpha), hashlib.sha256).digest()
    value = int.from_bytes(hashlib.sha256(b"vrfout" + proof).digest(), "big")
    return VRFOutput(pk=keypair.pk, value=value, proof=proof)


def vrf_verify(pki: PKI, output: VRFOutput, alpha: Any) -> bool:
    """Paper's ``VRF_VERIFY_PK(Q, hash, pi)``: check proof and value."""
    if not pki.is_registered(output.pk):
        return False
    expected_proof = pki.mac(output.pk, _encode(alpha))
    if not hmac.compare_digest(expected_proof, output.proof):
        return False
    expected_value = int.from_bytes(
        hashlib.sha256(b"vrfout" + output.proof).digest(), "big"
    )
    return expected_value == output.value
