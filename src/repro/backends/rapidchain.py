"""Executable RapidChain-style backend [Zamani et al., CCS'18].

A deliberately simplified but genuinely executable sibling of the analytic
:class:`~repro.baselines.rapidchain.RapidChainModel`: per-shard committees
drawn by sortition, IDA-gossip-approximated block dissemination (the
leader's TXList travels as equal chunks to every member), 1/2-resilient
synchronous intra-committee consensus (accept needs a strict majority of
Yes votes), leader-to-leader cross-shard routing, and a reference
committee (the staged ``referee`` group) that packs the round's block and
gossips it out.

The Table I behaviours fall out of the mechanics rather than being
asserted: a malicious or crashed leader withholds its proposal and there
is no recovery procedure, so that shard contributes nothing this round;
a cross-shard transaction commits only when the home *and* every output
shard leader are honest, online, and mutually reachable — under 1/3
malicious leaders, cross-shard throughput collapses exactly as §II-A
describes.  See ``docs/backends.md`` for the fidelity caveats.
"""

from __future__ import annotations

from repro.backends.base import (
    CONTROL_WIRE_BYTES,
    TX_WIRE_BYTES,
    CommitteeSimBackend,
    PackReport,
    SimRoundReport,
)
from repro.core.pipeline import Phase, PhasePipeline
from repro.core.structures import RoundContext
from repro.ledger.workload import TaggedTx

PHASE_DISSEMINATION = "dissemination"
PHASE_CONSENSUS = "consensus"
PHASE_ROUTING = "routing"
PHASE_BLOCK = "block"


class RapidChainBackend(CommitteeSimBackend):
    """Simplified executable RapidChain (backend name ``rapidchain``)."""

    backend_name = "rapidchain"
    pack_phase = PHASE_BLOCK
    #: IDA-gossip approximation: proposals travel as this many chunks.
    dissemination_chunks = 4

    def build_pipeline(self) -> PhasePipeline:
        """The four RapidChain phases: disseminate, vote, route, pack."""
        return PhasePipeline(
            (
                Phase(PHASE_DISSEMINATION, self._phase_dissemination),
                Phase(PHASE_CONSENSUS, self._phase_consensus),
                Phase(PHASE_ROUTING, self._phase_routing),
                Phase(PHASE_BLOCK, self._phase_block),
            )
        )

    # -- phases --------------------------------------------------------------
    def _phase_dissemination(self, ctx: RoundContext) -> dict[int, list[TaggedTx]]:
        """Leaders IDA-disseminate their validated TXLists to their shards."""
        ctx.metrics.set_phase(PHASE_DISSEMINATION)
        return self._disseminate_proposals(ctx, "rc/ida")

    def _phase_consensus(self, ctx: RoundContext) -> dict[int, list[TaggedTx]]:
        """1/2-resilient intra-shard consensus: a proposal is accepted when
        Yes votes (leader included) exceed half the committee."""
        ctx.metrics.set_phase(PHASE_CONSENSUS)
        proposals = ctx.phase_reports[PHASE_DISSEMINATION]
        yes = self._collect_committee_votes(ctx, proposals, "rc/vote")
        accepted: dict[int, list[TaggedTx]] = {}
        for spec in ctx.committees:
            txlist = proposals.get(spec.index)
            if txlist is None:
                continue
            if 2 * yes.get(spec.index, 0) > spec.size:
                accepted[spec.index] = txlist
        ctx.intra_results = accepted
        return accepted

    def _phase_routing(self, ctx: RoundContext) -> dict[int, list[TaggedTx]]:
        """Cross-shard routing: the home leader forwards each cross-shard
        transaction to every output shard's leader, who acknowledges iff
        honest and online.  A transaction stays in the final list only when
        every output shard acknowledged — dropped links (partitions) and
        dishonest leaders both starve it."""
        ctx.metrics.set_phase(PHASE_ROUTING)
        accepted = ctx.phase_reports[PHASE_CONSENSUS]
        acks: dict[tuple[int, bytes], int] = {}

        def on_ack(msg) -> None:
            """Count one output-shard acknowledgement for a routed tx."""
            acks[msg.payload] = acks.get(msg.payload, 0) + 1

        def make_on_request(leader_id: int):
            """Handler factory: the output-shard leader's ack-or-ignore."""

            def on_request(msg) -> None:
                """Honest online leaders acknowledge the routed txid."""
                node = ctx.nodes[leader_id]
                if node.online and not node.behavior.is_malicious:
                    node.send(
                        msg.sender, "rc/xsack", msg.payload,
                        size=CONTROL_WIRE_BYTES,
                    )
            return on_request

        for spec in ctx.committees:
            node = ctx.nodes[spec.leader]
            node.on("rc/xs", make_on_request(spec.leader))
            node.on("rc/xsack", on_ack)

        final, self._routed = self._route_cross_shard(ctx, accepted, "rc/xs", acks)
        ctx.inter_results = final
        return final

    def _phase_block(self, ctx: RoundContext) -> PackReport:
        """The reference committee packs the block: each shard leader sends
        its final list to every referee member; the reference leader (first
        staged referee) assembles whatever actually reached it and gossips
        the block to all nodes in chunks."""
        ctx.metrics.set_phase(PHASE_BLOCK)
        final = ctx.phase_reports[PHASE_ROUTING]
        ref_leader = ctx.referee[0]
        landed: dict[int, list[TaggedTx]] = {}

        def on_final(msg) -> None:
            """Record a shard's final list as it lands at the ref leader."""
            if msg.recipient != ref_leader:
                return
            index, txlist = msg.payload
            landed[index] = txlist

        for rid in ctx.referee:
            ctx.nodes[rid].on("rc/final", on_final)
        for spec in ctx.committees:
            txlist = final.get(spec.index)
            if txlist is None:
                continue
            leader = ctx.nodes[spec.leader]
            payload = (spec.index, txlist)
            size = max(1, len(txlist)) * TX_WIRE_BYTES
            for rid in ctx.referee:
                leader.send(rid, "rc/final", payload, size=size)
        ctx.net.run()

        pack = self._build_block(ctx, landed)
        if pack.block is not None:
            ref_node = ctx.nodes[ref_leader]
            self._chunked_multicast(
                ref_node,
                (nid for nid in ctx.nodes if nid != ref_leader),
                "rc/block",
                ctx.round_number,
                total_bytes=max(1, pack.packed) * TX_WIRE_BYTES,
            )
            ctx.net.run()
        return pack

    # -- report decoration ---------------------------------------------------
    def _decorate_report(self, report: SimRoundReport, ctx, phase_reports) -> None:
        timings = report.phase_sim_times
        report.intra_accepted = sum(
            len(txs) for txs in phase_reports[PHASE_CONSENSUS].values()
        )
        report.inter_voted = self._routed
        report.inter_accepted = sum(
            sum(1 for t in txs if t.cross_shard)
            for txs in phase_reports[PHASE_ROUTING].values()
        )
        report.intra_elapsed = timings.get(PHASE_CONSENSUS, 0.0)
        report.inter_elapsed = timings.get(PHASE_ROUTING, 0.0)
        report.blockgen_elapsed = timings.get(PHASE_BLOCK, 0.0)
        report.blockgen_subblocks = len(phase_reports[self.pack_phase].per_committee)
