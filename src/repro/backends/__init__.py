"""Executable multi-protocol backend layer.

Table I compares CycLedger against Elastico, OmniLedger and RapidChain;
:mod:`repro.baselines` evaluates those rivals analytically.  This package
makes the comparison *executable*: every protocol that can run a round is a
:class:`~repro.backends.base.LedgerBackend` registered here by name, so the
experiment engine, scenarios, CLI and benchmarks drive any of them through
one interface — the same fault timelines, sweeps and determinism gates
apply to all.

Workers resolve backends by name (factories cannot travel through a JSON
spec), exactly like capacity and scenario presets::

    from repro.backends import create_backend
    ledger = create_backend("rapidchain", ProtocolParams(n=48, m=4, lam=2,
                                                         referee_size=8))
    reports = ledger.run(rounds=3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.backends.base import (
    CommitteeSimBackend,
    LedgerBackend,
    PackReport,
    SimRoundReport,
)
from repro.backends.omniledger import OmniLedgerBackend
from repro.backends.rapidchain import RapidChainBackend
from repro.core.protocol import CycLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ProtocolParams


@dataclass(frozen=True)
class BackendInfo:
    """Registry entry: the factory plus a one-line description for CLIs."""

    name: str
    factory: Callable[..., Any]
    description: str


#: name -> registered backend.  Keys are the names sweeps and CLIs use.
BACKEND_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str, factory: Callable[..., Any], description: str
) -> None:
    """Register an executable backend under ``name``.

    ``factory(params, adversary=..., capacity_fn=..., scenario=...,
    policy=...)`` must return a
    :class:`~repro.backends.base.LedgerBackend`.
    """
    if name in BACKEND_REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    BACKEND_REGISTRY[name] = BackendInfo(
        name=name, factory=factory, description=description
    )


def backend_names() -> list[str]:
    """Sorted names of every registered executable backend."""
    return sorted(BACKEND_REGISTRY)


def create_backend(
    name: str,
    params: "ProtocolParams",
    adversary: Any = None,
    capacity_fn: Any = None,
    scenario: Any = None,
    policy: Any = None,
) -> Any:
    """Instantiate the named backend; unknown names fail with the roster."""
    info = BACKEND_REGISTRY.get(name)
    if info is None:
        known = ", ".join(backend_names())
        raise ValueError(f"unknown backend {name!r} (known: {known})")
    return info.factory(
        params,
        adversary=adversary,
        capacity_fn=capacity_fn,
        scenario=scenario,
        policy=policy,
    )


register_backend(
    "cycledger",
    CycLedger,
    "the paper's protocol: 7-phase pipeline, reputation, leader recovery",
)
register_backend(
    "rapidchain",
    RapidChainBackend,
    "RapidChain-style: IDA-gossip dissemination, 1/2-resilient shards, "
    "reference-committee packing, no recovery",
)
register_backend(
    "omniledger_sim",
    OmniLedgerBackend,
    "OmniLedger-style: 2/3 shard BFT, client-driven Atomix lock/unlock "
    "cross-shard commit, no recovery",
)

__all__ = [
    "BACKEND_REGISTRY",
    "BackendInfo",
    "CommitteeSimBackend",
    "CycLedger",
    "LedgerBackend",
    "OmniLedgerBackend",
    "PackReport",
    "RapidChainBackend",
    "SimRoundReport",
    "backend_names",
    "create_backend",
    "register_backend",
]
