"""The executable-backend contract and shared committee-sim scaffolding.

Every executable protocol — CycLedger and the simplified rival backends —
satisfies the same :class:`LedgerBackend` contract: construct from
``(ProtocolParams, AdversaryConfig, capacity_fn, scenario)``, expose
``run_round() -> report`` / ``run(rounds)``, and surface the accessors the
experiment engine's :func:`repro.exp.results.collect_result` distils
(``nodes``, ``adversary``, ``reputation``, ``rewards``, ``chain``,
``metrics``, ``total_packed``).  Round reports follow a *flat* attribute
contract (see :class:`SimRoundReport`); CycLedger's richer
:class:`~repro.core.protocol.RoundReport` exposes the same attributes as
derived properties, so the serialization layer never dispatches on the
backend type.

:class:`CommitteeSimBackend` factors the machinery the rival backends share
with CycLedger — spawned RNG sub-streams, :class:`~repro.core.node.CycNode`
population, the long-lived :class:`~repro.net.simulator.Network`,
sortition-driven committee assignment, workload generation/reconciliation,
chain maintenance, and the :class:`~repro.core.pipeline.PhasePipeline`
round loop — so scenarios inject faults into every backend through the
same pre/post phase hooks and the per-backend code is only the consensus
semantics that actually differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.core.config import ProtocolParams
from repro.core.node import CycNode
from repro.core.pipeline import OverlapScheduler, PhasePipeline
from repro.core.reporting import emit_round_report, rss_kb
from repro.core.reputation import ReputationStore
from repro.core.sortition import REFEREE_ROLE, crypto_sort, rank_select
from repro.core.structures import CommitteeSpec, RoundContext
from repro.crypto.hashing import H
from repro.crypto.pki import PKI
from repro.ledger.chain import GENESIS_PREV_HASH, Block, Chain
from repro.ledger.state import ShardState
from repro.ledger.transaction import shard_of_address
from repro.ledger.utxo import ValidationResult, validate_batch, validate_transaction
from repro.ledger.workload import MempoolStats, TaggedTx, TxMempool, WorkloadGenerator
from repro.metrics.counters import MetricsCollector
from repro.net.simulator import Network
from repro.net.topology import Channels, build_cycledger_topology
from repro.nodes.adversary import AdversaryConfig, AdversaryController

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.policies import AdversaryPolicy
    from repro.scenarios.scenario import Scenario

#: Wire size charged per transaction in a list payload (bytes).
TX_WIRE_BYTES = 96
#: Wire size of a vote / ack / beacon control message (bytes).
CONTROL_WIRE_BYTES = 40


@runtime_checkable
class LedgerBackend(Protocol):
    """What the experiment engine requires of an executable protocol.

    The attributes mirror what :func:`repro.exp.results.collect_result`
    reads; ``run_round`` must return an object satisfying the flat
    round-report contract of :class:`SimRoundReport`.
    """

    params: ProtocolParams
    nodes: dict[int, CycNode]
    adversary: AdversaryController
    reputation: dict[str, float]
    rewards: dict[str, float]
    chain: Chain
    metrics: MetricsCollector
    mempool: TxMempool
    overlap_scheduler: OverlapScheduler

    def run_round(self) -> Any:
        """Execute one protocol round and return its round report."""
        ...

    def run(self, rounds: int) -> list[Any]:
        """Execute ``rounds`` consecutive rounds; returns their reports."""
        ...

    def total_packed(self) -> int:
        """Transactions packed into the chain across all rounds so far."""
        ...


@dataclass
class SimRoundReport:
    """Backend-neutral round report: the flat attribute contract.

    :func:`repro.exp.results.round_row` reads exactly these attributes, so
    any backend whose reports provide them serializes identically.
    CycLedger's :class:`~repro.core.protocol.RoundReport` derives them from
    its per-phase reports; the rival backends fill them directly (fields
    their simplified protocols lack stay at their zero defaults — e.g.
    ``recoveries`` is always 0 for protocols without leader re-selection,
    which is precisely the Table I contrast).
    """

    round_number: int
    block: Block | None
    submitted: int = 0
    packed: int = 0
    cross_packed: int = 0
    recoveries: int = 0
    messages: int = 0
    bytes_sent: int = 0
    sim_time: float = 0.0
    reliable_channels: int = 0
    dropped: int = 0
    phase_sim_times: dict[str, float] = field(default_factory=dict)
    recovery_times: tuple[float, ...] = ()
    intra_accepted: int = 0
    inter_accepted: int = 0
    inter_voted: int = 0
    prefilter_savings: int = 0
    intra_elapsed: float = 0.0
    inter_elapsed: float = 0.0
    blockgen_elapsed: float = 0.0
    blockgen_subblocks: int = 0
    blockgen_width: int = 0
    # Continuous-timeline window of this round under the active overlap
    # mode (timeline_end - timeline_start == sim_time when overlap=none),
    # plus the persistent-mempool queue health at settlement.
    timeline_start: float = 0.0
    timeline_end: float = 0.0
    queue_depth: int = 0
    tx_evicted: int = 0
    tx_age_mean: float = 0.0
    tx_age_max: float = 0.0
    # Epoch-scale observability (ISSUE 10): process RSS sampled at report
    # time (0 unless ProtocolParams.sample_rss — RSS is host-dependent and
    # must not leak into byte-compared artifacts), and this report's 1-based
    # sequence number in the run's emission stream (identical with or
    # without a report sink attached).
    rss_peak_kb: int = 0
    reports_streamed: int = 0


@dataclass
class PackReport:
    """What a backend's packing phase produced (the last pipeline phase)."""

    block: Block | None
    packed: int
    cross_packed: int
    #: committee index -> transactions that made it into the block
    per_committee: dict[int, int] = field(default_factory=dict)


def init_shared_state(
    ledger: Any,
    params: ProtocolParams,
    adversary: AdversaryConfig | None,
    capacity_fn: Callable[[int, np.random.Generator], int] | None,
) -> np.random.SeedSequence:
    """Construct the state every executable backend shares, in one place.

    One root seed fans out into independent, order-insensitive sub-streams:
    protocol-phase draws, the workload generator, the adversary's
    corruption lottery, network jitter, and scenario event draws each own a
    spawned child.  Identical seeds therefore give identical round reports
    even when one component changes how many draws it makes — and because
    CycLedger and every :class:`CommitteeSimBackend` build through this
    single function, backend arms of one sweep point are guaranteed to
    share workload/adversary/jitter streams (the seed-pairing contract) by
    construction, not by keeping two constructors in sync.

    Returns the scenario and policy sub-streams for :func:`attach_pipeline`.
    SeedSequence children depend only on their spawn index, so growing the
    fan-out (the policy stream is child 5) leaves every earlier stream
    byte-identical.
    """
    root_ss = np.random.SeedSequence(params.seed)
    (
        proto_ss,
        workload_ss,
        adversary_ss,
        net_ss,
        scenario_ss,
        policy_ss,
    ) = root_ss.spawn(6)
    ledger.rng = np.random.default_rng(proto_ss)
    ledger.net_rng = np.random.default_rng(net_ss)
    ledger.pki = PKI()
    ledger.metrics = MetricsCollector()  # cumulative across rounds
    ledger.nodes = {}
    for node_id in range(params.n):
        capacity = (
            capacity_fn(node_id, ledger.rng) if capacity_fn is not None else 10_000
        )
        ledger.nodes[node_id] = CycNode(
            node_id,
            ledger.pki.generate((ledger.backend_name, params.seed, node_id)),
            capacity=capacity,
        )
    # pk -> node id, built once: _node_id is called inside per-round
    # role-assignment loops, where a linear scan over all nodes is O(n²).
    ledger._pk_to_id = {node.pk: node.node_id for node in ledger.nodes.values()}
    ledger.adversary = AdversaryController(
        adversary if adversary is not None else AdversaryConfig(),
        list(ledger.nodes),
        np.random.default_rng(adversary_ss),
    )
    ledger.workload = WorkloadGenerator(
        m=params.m,
        users_per_shard=params.users_per_shard,
        rng=np.random.default_rng(workload_ss),
        spent_retention=params.spent_retention,
    )
    # The persistent transaction queue between the generator and the round
    # loop.  In the default legacy mode it is a byte-exact pass-through of
    # the historical draw-a-batch-per-round model; with a poisson arrival
    # process transactions survive unpacked rounds and age on the
    # continuous clock.
    ledger.mempool = TxMempool(
        ledger.workload,
        process=params.arrival_process,
        rate=params.arrival_rate,
        capacity=params.mempool_capacity,
        max_age_rounds=params.mempool_max_age,
    )
    # The network fabric and channel maps are built once and rewound per
    # round (reset / in-place topology refill) instead of reallocated.
    # Envelope pooling is safe here: every handler on the orchestrated
    # path retains message *payloads* only, never the envelope itself.
    ledger.net = Network(params.net, ledger.net_rng, pool_envelopes=True)
    for node in ledger.nodes.values():
        ledger.net.add_node(node)
    ledger._channels = None
    ledger.global_utxos = ledger.workload.genesis_utxos()
    ledger.shard_states = [ShardState(k, params.m) for k in range(params.m)]
    for state in ledger.shard_states:
        state.add_genesis(ledger.workload.genesis_tx)
    ledger.chain = Chain(retention=params.chain_retention)
    ledger.reputation = ReputationStore(
        node.pk for node in ledger.nodes.values()
    )
    ledger.rewards = {}
    ledger.round_number = 1
    # Streaming report path (repro.core.reporting.emit_round_report): an
    # optional per-report sink, an optional bound on the in-memory reports
    # list (None = legacy unbounded), and the emission counter.
    ledger.report_sink = None
    ledger.report_retention = None
    ledger.reports_streamed = 0
    return scenario_ss, policy_ss


def attach_pipeline(
    ledger: Any,
    pipeline: PhasePipeline | None,
    scenario: "Scenario | None",
    scenario_ss: np.random.SeedSequence,
    default_factory: Callable[[], PhasePipeline],
    policy: "AdversaryPolicy | None" = None,
    policy_ss: np.random.SeedSequence | None = None,
) -> None:
    """Bind a pipeline (given or freshly built) plus optional scenario and
    adversary policy to a ledger, enforcing the sharing rules every backend
    must obey."""
    if pipeline is not None:
        # Scenario/policy hooks fire on *every* ledger that runs the
        # pipeline, so a pipeline may never be shared between a
        # scenario- or policy-bearing ledger and any other — in either
        # construction order.
        if pipeline.scenario_driver is not None:
            raise ValueError(
                "pipeline is already bound to a scenario-bearing "
                "ledger; build a fresh pipeline per ledger"
            )
        if pipeline.policy_driver is not None:
            raise ValueError(
                "pipeline is already bound to a policy-bearing "
                "ledger; build a fresh pipeline per ledger"
            )
        if scenario is not None and pipeline.owner is not None:
            raise ValueError(
                "pipeline is already in use by another ledger; a "
                "scenario needs a dedicated pipeline"
            )
        if policy is not None and pipeline.owner is not None:
            raise ValueError(
                "pipeline is already in use by another ledger; an "
                "adversary policy needs a dedicated pipeline"
            )
    ledger.pipeline = pipeline if pipeline is not None else default_factory()
    if ledger.pipeline.owner is None:
        ledger.pipeline.owner = ledger
    # Every backend owns an overlap scheduler: it composes the measured
    # per-round phase spans into the continuous end-to-end timeline.  In
    # "semicommit" mode phases annotated with needs_prev (only CycLedger's
    # config/semicommit prefix carries such annotations) start before the
    # previous round finishes; pipelines without annotations serialize
    # regardless of mode.
    ledger.overlap_scheduler = OverlapScheduler(ledger.params.overlap)
    ledger.scenario = scenario
    ledger.scenario_driver = None
    if scenario is not None:
        # Local import: repro.scenarios builds on the pipeline and net
        # layers and must stay importable without the orchestrators.
        from repro.scenarios.scenario import ScenarioDriver

        ledger.scenario_driver = ScenarioDriver(
            scenario, np.random.default_rng(scenario_ss)
        )
        ledger.scenario_driver.install(ledger)
    ledger.policy = policy
    ledger.policy_driver = None
    if policy is not None:
        # Local import, same layering rule as the scenario driver above.
        from repro.scenarios.policies import PolicyDriver

        ledger.policy_driver = PolicyDriver(
            policy, np.random.default_rng(policy_ss)
        )
        ledger.policy_driver.install(ledger)


class CommitteeSimBackend:
    """Shared scaffolding for simplified executable rival backends.

    Subclasses define ``backend_name``, build their phase pipeline in
    :meth:`build_pipeline` (the last phase must store a :class:`PackReport`
    under :attr:`pack_phase`), and may override :meth:`_decorate_report` to
    fill protocol-specific headline counters.

    The RNG fan-out, genesis staging, and per-round loop deliberately
    mirror :class:`~repro.core.protocol.CycLedger` so the scenario driver's
    assumptions hold unchanged: ``_next_leaders``/``_node_id`` exist for
    leader-crash targeting, ``adversary`` supports ramps and forced-offline
    windows, and the round context carries ``net``/``committees``/
    ``referee`` for partition resolution.
    """

    backend_name = "abstract"
    #: name of the pipeline phase whose report is the round's PackReport
    pack_phase = "block"
    #: chunk count for approximated erasure-coded (IDA-style) dissemination
    dissemination_chunks = 2

    def __init__(
        self,
        params: ProtocolParams,
        adversary: AdversaryConfig | None = None,
        capacity_fn: Callable[[int, np.random.Generator], int] | None = None,
        scenario: "Scenario | None" = None,
        pipeline: PhasePipeline | None = None,
        policy: "AdversaryPolicy | None" = None,
    ) -> None:
        self.params = params
        scenario_ss, policy_ss = init_shared_state(
            self, params, adversary, capacity_fn
        )
        # Rival protocols in Table I ship without incentives: reputation and
        # rewards exist (the result schema expects them) but never move.
        self.randomness = H("GENESIS_RANDOMNESS", self.backend_name, params.seed)
        self._stage_roles()
        self.reports: list[SimRoundReport] = []
        attach_pipeline(
            self,
            pipeline,
            scenario,
            scenario_ss,
            self.build_pipeline,
            policy=policy,
            policy_ss=policy_ss,
        )

    # -- subclass hooks ------------------------------------------------------
    def build_pipeline(self) -> PhasePipeline:
        """Construct this protocol's phase pipeline (subclass hook); the
        last phase must store a :class:`PackReport` under
        :attr:`pack_phase`."""
        raise NotImplementedError

    def _decorate_report(
        self,
        report: SimRoundReport,
        ctx: RoundContext,
        phase_reports: dict[str, Any],
    ) -> None:
        """Fill backend-specific headline counters (default: leave zeros)."""

    # -- helpers -------------------------------------------------------------
    def _node_id(self, pk: str) -> int:
        return self._pk_to_id[pk]

    def _stage_roles(self) -> None:
        """Draw next-round key roles from the current randomness (uniform
        hash lotteries; rivals have no reputation-weighted selection)."""
        all_pks = [node.pk for node in self.nodes.values()]
        self._next_referee = rank_select(
            all_pks,
            self.round_number,
            self.randomness,
            REFEREE_ROLE,
            self.params.referee_size,
        )
        referee_set = set(self._next_referee)
        rest = [pk for pk in all_pks if pk not in referee_set]
        self._next_leaders = rank_select(
            rest, self.round_number, self.randomness, "LEADER", self.params.m
        )

    def _assign_round(self) -> tuple[list[CommitteeSpec], list[int], Channels]:
        """Per-shard committees: staged leaders plus sortition-assigned
        common members (Algorithm 1's VRF bucketing, shared with CycLedger).
        """
        params = self.params
        referee_ids = [self._node_id(pk) for pk in self._next_referee]
        leader_ids = [self._node_id(pk) for pk in self._next_leaders]
        key_and_referee = set(referee_ids) | set(leader_ids)

        for node in self.nodes.values():
            node.reset_round_state()
            node.online = not self.adversary.is_offline(node.node_id)

        committee_commons: list[list[int]] = [[] for _ in range(params.m)]
        for node in self.nodes.values():
            if node.node_id in key_and_referee:
                continue
            ticket = crypto_sort(
                node.keypair, self.round_number, self.randomness, params.m
            )
            node.ticket = ticket
            committee_commons[ticket.committee_id].append(node.node_id)

        committees: list[CommitteeSpec] = []
        for k in range(params.m):
            members = [leader_ids[k], *committee_commons[k]]
            committees.append(
                CommitteeSpec(
                    index=k, leader=leader_ids[k], partial=(), members=members
                )
            )
            leader_node = self.nodes[leader_ids[k]]
            leader_node.is_leader = True
            leader_node.behavior = self.adversary.leader_behavior(leader_ids[k])
            for mid in members:
                node = self.nodes[mid]
                node.committee_id = k
                node.shard_state = self.shard_states[k]
                if not node.is_leader:
                    node.behavior = self.adversary.voter_behavior(mid)
        for rid in referee_ids:
            node = self.nodes[rid]
            node.is_referee = True
            node.behavior = self.adversary.voter_behavior(rid)

        self._channels = build_cycledger_topology(
            [(spec.members, spec.key_members) for spec in committees],
            referee_ids,
            into=self._channels,
        )
        return committees, referee_ids, self._channels

    # -- the main loop -------------------------------------------------------
    def run_round(self) -> SimRoundReport:
        """Execute one round: assign roles, generate workload, drive the
        phase pipeline, reconcile the chain, and stage the next round."""
        params = self.params
        self.pipeline.begin_round(self)
        committees, referee_ids, channels = self._assign_round()
        round_metrics = MetricsCollector()
        for node in self.nodes.values():
            round_metrics.set_role(node.node_id, node.role)
        for cls, count in channels.counts.items():
            round_metrics.record_channels(cls, count)
        net = self.net
        net.reset(metrics=round_metrics)
        net.set_channel_classifier(channels.classify)

        arrivals = self.mempool.admit(
            self.round_number,
            net.global_now,
            legacy_count=2 * params.m * params.tx_per_committee,
            cross_shard_ratio=params.cross_shard_ratio,
            invalid_ratio=params.invalid_ratio,
        )
        mempools = self.mempool.offered()

        ctx = RoundContext(
            params=params,
            pki=self.pki,
            net=net,
            metrics=round_metrics,
            rng=self.rng,
            round_number=self.round_number,
            randomness=self.randomness,
            nodes=self.nodes,
            committees=committees,
            referee=referee_ids,
            reputation=self.reputation,
            mempools=mempools,
            shard_states=self.shard_states,
            chain=self.chain,
            global_utxos=self.global_utxos,
            rewards=self.rewards,
        )

        phase_reports = self.pipeline.execute(ctx)
        pack: PackReport = phase_reports[self.pack_phase]
        packed_ids = (
            {tx.txid for tx in pack.block.transactions} if pack.block else set()
        )
        queue_stats: MempoolStats = self.mempool.settle(
            packed_ids, self.round_number, net.global_now
        )
        window = self.overlap_scheduler.observe_round(
            self.round_number,
            tuple(self.pipeline),
            self.pipeline.last_timings,
            net.now,
        )

        report = SimRoundReport(
            round_number=self.round_number,
            block=pack.block,
            submitted=arrivals,
            packed=pack.packed,
            cross_packed=pack.cross_packed,
            messages=round_metrics.total_messages(),
            bytes_sent=round_metrics.total_bytes(),
            sim_time=net.now,
            reliable_channels=channels.total_reliable(),
            dropped=net.dropped_messages,
            phase_sim_times=dict(self.pipeline.last_timings),
            timeline_start=window.start,
            timeline_end=window.end,
            queue_depth=queue_stats.depth,
            tx_evicted=queue_stats.evicted,
            tx_age_mean=queue_stats.age_mean,
            tx_age_max=queue_stats.age_max,
            rss_peak_kb=rss_kb() if params.sample_rss else 0,
        )
        self._decorate_report(report, ctx, phase_reports)
        self.metrics.merge(round_metrics)
        emit_round_report(self, report)

        # Stage the next round: hash-chain randomness, fresh role lotteries.
        self.randomness = H(
            self.backend_name, "NEXT_RANDOMNESS", self.round_number, self.randomness
        )
        self.round_number += 1
        self._stage_roles()
        self.adversary.advance_round()
        self.pipeline.end_round(self, report)
        return report

    def run(self, rounds: int) -> list[SimRoundReport]:
        """Run ``rounds`` consecutive rounds; returns their reports."""
        return [self.run_round() for _ in range(rounds)]

    # -- convenience accessors ----------------------------------------------
    def total_packed(self) -> int:
        """Transactions packed into the chain across all rounds so far."""
        return self.chain.total_transactions()

    def reputation_by_behavior(self) -> dict[str, list[float]]:
        """Reputation values grouped by node behaviour name (always flat
        zeros for rival backends — they ship without incentives)."""
        grouped: dict[str, list[float]] = {}
        for node in self.nodes.values():
            grouped.setdefault(node.behavior.name, []).append(
                self.reputation.get(node.pk, 0.0)
            )
        return grouped

    # -- shared phase machinery ----------------------------------------------
    def _leader_proposes(self, leader: CycNode) -> bool:
        """Rival protocols guarantee progress only under honest leaders
        (Table I's dishonest-leader row): a malicious or offline leader
        simply withholds, and there is no recovery procedure."""
        return (
            leader.online
            and not leader.behavior.is_malicious
            and leader.behavior.proposes_txlist(leader)
        )

    def _leader_txlist(
        self, ctx: RoundContext, spec: CommitteeSpec
    ) -> list[TaggedTx]:
        """The leader's validated TXList proposal for its shard.

        Validation runs V against the shard's round-start UTXO view inside
        the leader's per-round capacity budget, so heterogeneous-capacity
        presets cap rival TXLists exactly as they cap CycLedger's.
        """
        leader = ctx.nodes[spec.leader]
        pool = ctx.mempools[spec.index]
        budget = leader.take_budget(len(pool))
        candidates = pool[:budget]
        verdicts = validate_batch(
            [t.tx for t in candidates], ctx.shard_states[spec.index].utxos
        )
        return [
            tagged
            for tagged, verdict in zip(candidates, verdicts)
            if verdict is ValidationResult.VALID
        ]

    def _chunked_multicast(
        self,
        sender: CycNode,
        recipients: Iterable[int],
        tag: str,
        payload: Any,
        total_bytes: int,
        chunks: int | None = None,
    ) -> None:
        """Approximate erasure-coded dissemination: the payload travels as
        ``chunks`` equal fragments per recipient (IDA-gossip's traffic
        shape without modelling the coding itself)."""
        chunks = chunks if chunks is not None else self.dissemination_chunks
        chunk_bytes = max(1, total_bytes // max(1, chunks))
        for recipient in recipients:
            if recipient == sender.node_id:
                continue
            for index in range(chunks):
                sender.send(recipient, tag, (index, payload), size=chunk_bytes)

    def _collect_committee_votes(
        self, ctx: RoundContext, proposals: dict[int, list[TaggedTx]], tag: str
    ) -> dict[int, int]:
        """Members vote on their leader's disseminated proposal.

        A member votes Yes iff it is online, honest, and actually received
        every proposal chunk (so partitions and crashes shrink the Yes
        count through real message loss, not bookkeeping).  Returns
        committee index -> Yes votes, leader's own vote included.
        """
        full = self.dissemination_chunks
        yes_by_committee: dict[int, int] = {}
        votes: dict[int, int] = {}

        def on_vote(msg) -> None:
            """Tally one Yes vote for the committee named in the payload."""
            votes[msg.payload] = votes.get(msg.payload, 0) + 1

        for spec in ctx.committees:
            if spec.index not in proposals:
                continue
            leader = ctx.nodes[spec.leader]
            leader.on(tag, on_vote)
        for spec in ctx.committees:
            if spec.index not in proposals:
                continue
            for mid in spec.members:
                if mid == spec.leader:
                    continue
                node = ctx.nodes[mid]
                if (
                    node.online
                    and not node.behavior.is_malicious
                    and self._chunks_received.get(mid, 0) >= full
                ):
                    node.send(
                        spec.leader, tag, spec.index, size=CONTROL_WIRE_BYTES
                    )
        ctx.net.run()
        for spec in ctx.committees:
            if spec.index not in proposals:
                continue
            leader_vote = 1 if ctx.nodes[spec.leader].online else 0
            yes_by_committee[spec.index] = votes.get(spec.index, 0) + leader_vote
        return yes_by_committee

    def _disseminate_proposals(
        self, ctx: RoundContext, tag: str
    ) -> dict[int, list[TaggedTx]]:
        """Each honest online leader IDA-disseminates its TXList to its
        committee; returns committee index -> proposal.  Also records how
        many chunks each member received (consumed by the vote step)."""
        self._chunks_received: dict[int, int] = {}
        received = self._chunks_received

        def on_chunk(msg) -> None:
            """Count one received proposal chunk for the recipient."""
            received[msg.recipient] = received.get(msg.recipient, 0) + 1

        for spec in ctx.committees:
            for mid in spec.members:
                ctx.nodes[mid].on(tag, on_chunk)
        proposals: dict[int, list[TaggedTx]] = {}
        for spec in ctx.committees:
            leader = ctx.nodes[spec.leader]
            if not self._leader_proposes(leader):
                continue
            txlist = self._leader_txlist(ctx, spec)
            proposals[spec.index] = txlist
            self._chunked_multicast(
                leader,
                spec.members,
                tag,
                spec.index,
                total_bytes=max(1, len(txlist)) * TX_WIRE_BYTES,
            )
        ctx.net.run()
        return proposals

    def _output_shards(self, tagged: TaggedTx) -> list[int]:
        """Shards holding this transaction's non-home outputs."""
        shards = {
            shard_of_address(output.address, self.params.m)
            for output in tagged.tx.outputs
        }
        shards.discard(tagged.home_shard)
        return sorted(shards)

    def _route_cross_shard(
        self,
        ctx: RoundContext,
        accepted: dict[int, list[TaggedTx]],
        request_tag: str,
        responses: dict[tuple[int, bytes], int],
    ) -> tuple[dict[int, list[TaggedTx]], int]:
        """Shared cross-shard request/filter machinery.

        For every accepted cross-shard transaction the home leader sends
        one ``request_tag`` message (payload ``(home_index, txid)``) to
        each output shard's leader; the caller pre-registers whatever
        handler chain its protocol needs (a direct ack for RapidChain, the
        Atomix lock/proof/unlock legs for OmniLedger) and hands over the
        ``responses`` dict those handlers fill, keyed by the same payload.
        After the network drains, a cross-shard transaction survives only
        if every output shard responded.  Returns the filtered
        per-committee lists and the number of cross-shard attempts.
        """
        leaders = {spec.index: spec.leader for spec in ctx.committees}
        needed: dict[tuple[int, bytes], int] = {}
        started = 0
        for index, txlist in sorted(accepted.items()):
            home_leader = ctx.nodes[leaders[index]]
            for tagged in txlist:
                if not tagged.cross_shard:
                    continue
                outputs = self._output_shards(tagged)
                needed[(index, tagged.tx.txid)] = len(outputs)
                started += 1
                for out_shard in outputs:
                    home_leader.send(
                        leaders[out_shard],
                        request_tag,
                        (index, tagged.tx.txid),
                        size=TX_WIRE_BYTES,
                    )
        ctx.net.run()

        final: dict[int, list[TaggedTx]] = {}
        for index, txlist in sorted(accepted.items()):
            kept: list[TaggedTx] = []
            for tagged in txlist:
                if tagged.cross_shard:
                    key = (index, tagged.tx.txid)
                    if responses.get(key, 0) < needed[key]:
                        continue
                kept.append(tagged)
            final[index] = kept
        return final, started

    def _build_block(
        self, ctx: RoundContext, final_lists: dict[int, list[TaggedTx]]
    ) -> PackReport:
        """Assemble the round's block from per-committee final lists, append
        it to the chain, and apply it to every shard's UTXO view."""
        ordered: list[TaggedTx] = []
        per_committee: dict[int, int] = {}
        for index in sorted(final_lists):
            txs = final_lists[index]
            per_committee[index] = len(txs)
            ordered.extend(txs)
        if not ordered:
            return PackReport(
                block=None, packed=0, cross_packed=0, per_committee=per_committee
            )
        block = Block(
            round_number=ctx.round_number,
            prev_hash=self.chain.head.hash if len(self.chain) else GENESIS_PREV_HASH,
            transactions=tuple(t.tx for t in ordered),
            randomness=self.randomness,
            participants=(),
            reputations=(),
            referee=tuple(self._next_referee),
            leaders=tuple(self._next_leaders),
            partial_sets=(),
        )
        self.chain.append(block)
        for state in self.shard_states:
            state.apply_block(block.transactions)
        for tx in block.transactions:
            if validate_transaction(tx, self.global_utxos) is ValidationResult.VALID:
                self.global_utxos.apply_transaction(tx)
        return PackReport(
            block=block,
            packed=len(ordered),
            cross_packed=sum(1 for t in ordered if t.cross_shard),
            per_committee=per_committee,
        )
