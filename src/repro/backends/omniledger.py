"""Executable OmniLedger-style backend [Kokoris-Kogias et al., S&P'18].

The simplified executable sibling of the analytic
:class:`~repro.baselines.omniledger.OmniLedgerModel`: sortition-drawn
per-shard committees, ByzCoin-style intra-shard consensus (accept needs
more than 2/3 Yes votes, matching the shard BFT bound), and client-driven
Atomix cross-shard commit — a lock / proof-of-acceptance / unlock round
trip between the input and output shard leaders, driven by the
never-absent client the paper's §II-A critique centres on.  The staged
``referee`` group plays OmniLedger's epoch-randomness (RandHound) role:
it beacons the next epoch seed to shard leaders but takes no part in
transaction consensus, and there is no global packing committee — each
shard's final list becomes a sub-block and the backend concatenates them
into the round's canonical block.

A cross-shard transaction commits only when all three Atomix legs are
actually delivered and both leaders are honest and online; a faulty
coordinating leader or a partition stalls it, with no recovery — the
Table I dishonest-leader column, produced by mechanics.  See
``docs/backends.md`` for fidelity caveats.
"""

from __future__ import annotations

from repro.backends.base import (
    CONTROL_WIRE_BYTES,
    TX_WIRE_BYTES,
    CommitteeSimBackend,
    PackReport,
    SimRoundReport,
)
from repro.core.pipeline import Phase, PhasePipeline
from repro.core.structures import RoundContext
from repro.ledger.workload import TaggedTx

PHASE_SHARD = "shard"
PHASE_ATOMIX = "atomix"
PHASE_BLOCK = "block"


class OmniLedgerBackend(CommitteeSimBackend):
    """Simplified executable OmniLedger (backend name ``omniledger_sim``)."""

    backend_name = "omniledger_sim"
    pack_phase = PHASE_BLOCK
    dissemination_chunks = 2

    def build_pipeline(self) -> PhasePipeline:
        """The three OmniLedger phases: shard BFT, Atomix, packing."""
        return PhasePipeline(
            (
                Phase(PHASE_SHARD, self._phase_shard),
                Phase(PHASE_ATOMIX, self._phase_atomix),
                Phase(PHASE_BLOCK, self._phase_block),
            )
        )

    # -- phases --------------------------------------------------------------
    def _phase_shard(self, ctx: RoundContext) -> dict[int, list[TaggedTx]]:
        """Intra-shard ByzCoin consensus: leaders disseminate validated
        TXLists; acceptance needs a greater-than-2/3 supermajority."""
        ctx.metrics.set_phase(PHASE_SHARD)
        proposals = self._disseminate_proposals(ctx, "ol/propose")
        yes = self._collect_committee_votes(ctx, proposals, "ol/vote")
        accepted: dict[int, list[TaggedTx]] = {}
        for spec in ctx.committees:
            txlist = proposals.get(spec.index)
            if txlist is None:
                continue
            if 3 * yes.get(spec.index, 0) > 2 * spec.size:
                accepted[spec.index] = txlist
        ctx.intra_results = accepted
        return accepted

    def _phase_atomix(self, ctx: RoundContext) -> dict[int, list[TaggedTx]]:
        """Atomix: for each accepted cross-shard transaction the client
        drives lock -> proof-of-acceptance -> unlock between the input and
        output shard leaders.  Commit requires the full round trip per
        output shard; any undelivered leg or misbehaving leader leaves the
        transaction locked forever (no recovery)."""
        ctx.metrics.set_phase(PHASE_ATOMIX)
        accepted = ctx.phase_reports[PHASE_SHARD]
        unlocked: dict[tuple[int, bytes], int] = {}

        def make_on_lock(leader_id: int):
            """Handler factory: output-shard leader answers lock with proof."""

            def on_lock(msg) -> None:
                """Honest online leaders return a proof-of-acceptance."""
                node = ctx.nodes[leader_id]
                if node.online and not node.behavior.is_malicious:
                    node.send(
                        msg.sender, "ol/proof", msg.payload,
                        size=CONTROL_WIRE_BYTES,
                    )
            return on_lock

        def make_on_proof(leader_id: int):
            """Handler factory: the client's proof-to-unlock leg."""

            def on_proof(msg) -> None:
                """The client, holding the proof-of-acceptance, submits the
                unlock-to-commit to the output shard's leader."""
                ctx.nodes[leader_id].send(
                    msg.sender, "ol/unlock", msg.payload, size=TX_WIRE_BYTES
                )
            return on_proof

        def on_unlock(msg) -> None:
            """Count one unlock-to-commit for a cross-shard transaction."""
            unlocked[msg.payload] = unlocked.get(msg.payload, 0) + 1

        for spec in ctx.committees:
            node = ctx.nodes[spec.leader]
            node.on("ol/lock", make_on_lock(spec.leader))
            node.on("ol/proof", make_on_proof(spec.leader))
            node.on("ol/unlock", on_unlock)

        final, self._atomix_started = self._route_cross_shard(
            ctx, accepted, "ol/lock", unlocked
        )
        ctx.inter_results = final
        return final

    def _phase_block(self, ctx: RoundContext) -> PackReport:
        """Sub-block assembly plus the RandHound beacon: each shard's final
        list becomes a sub-block gossiped to its members; the epoch group
        (staged referee set) beacons next-round randomness to every shard
        leader."""
        ctx.metrics.set_phase(PHASE_BLOCK)
        final = ctx.phase_reports[PHASE_ATOMIX]
        for spec in ctx.committees:
            txlist = final.get(spec.index)
            if not txlist:
                continue
            leader = ctx.nodes[spec.leader]
            self._chunked_multicast(
                leader,
                spec.members,
                "ol/subblock",
                spec.index,
                total_bytes=len(txlist) * TX_WIRE_BYTES,
            )
        # RandHound's output reaches each shard leader from the epoch group
        # leader (best-effort channel; the seed itself stays deterministic).
        beacon = ctx.nodes[ctx.referee[0]]
        for spec in ctx.committees:
            beacon.send(
                spec.leader, "ol/rand", ctx.round_number, size=CONTROL_WIRE_BYTES
            )
        ctx.net.run()
        return self._build_block(ctx, final)

    # -- report decoration ---------------------------------------------------
    def _decorate_report(self, report: SimRoundReport, ctx, phase_reports) -> None:
        timings = report.phase_sim_times
        report.intra_accepted = sum(
            len(txs) for txs in phase_reports[PHASE_SHARD].values()
        )
        report.inter_voted = self._atomix_started
        report.inter_accepted = sum(
            sum(1 for t in txs if t.cross_shard)
            for txs in phase_reports[PHASE_ATOMIX].values()
        )
        report.intra_elapsed = timings.get(PHASE_SHARD, 0.0)
        report.inter_elapsed = timings.get(PHASE_ATOMIX, 0.0)
        report.blockgen_elapsed = timings.get(PHASE_BLOCK, 0.0)
        report.blockgen_subblocks = len(
            [txs for txs in phase_reports[PHASE_ATOMIX].values() if txs]
        )
