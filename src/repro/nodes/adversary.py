"""Mildly-adaptive adversary controller (§III-C).

"We may assume the existence of a probabilistic polynomial-time Adversary
which takes control of less than 1/3 part of total nodes. … he/she is
allowed to corrupt a set of nodes at the start of any round.  Nevertheless,
such corruption attempts require at least a round's time to take effect."

The controller owns the corrupted set and assigns behaviours:

* corrupted nodes that end up as leaders get a leader attack strategy;
* corrupted ordinary members get a voter attack strategy;
* corruption requests lodged in round ``r`` activate in round ``r+1``
  (mild adaptivity) — :meth:`request_corruption` / :meth:`advance_round`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.nodes.behaviors import (
    BEHAVIOR_REGISTRY,
    Behavior,
    HonestBehavior,
)


@dataclass
class AdversaryConfig:
    """Static description of the adversary.

    ``fraction`` < 1/3 per the threat model (a larger value is allowed for
    experiments that demonstrate failure beyond the bound).
    ``leader_strategy`` / ``voter_strategy`` name entries in
    :data:`BEHAVIOR_REGISTRY`; ``strategy_kwargs`` are forwarded to the
    leader strategy constructor.
    """

    fraction: float = 0.0
    leader_strategy: str = "equivocating_leader"
    voter_strategy: str = "contrary_voter"
    offline_fraction: float = 0.0  # share of corrupted nodes simply offline
    strategy_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        if self.leader_strategy not in BEHAVIOR_REGISTRY:
            raise ValueError(f"unknown leader strategy {self.leader_strategy!r}")
        if self.voter_strategy not in BEHAVIOR_REGISTRY:
            raise ValueError(f"unknown voter strategy {self.voter_strategy!r}")


class AdversaryController:
    """Chooses who is corrupted and what they do."""

    def __init__(
        self, config: AdversaryConfig, node_ids: list[int], rng: np.random.Generator
    ) -> None:
        self.config = config
        self.rng = rng
        self.all_ids = list(node_ids)
        t = int(config.fraction * len(node_ids))
        corrupted = rng.choice(node_ids, size=t, replace=False) if t else []
        # Corruption order is remembered so fraction ramps can shrink the
        # set deterministically (most recently corrupted nodes heal first).
        self._corruption_order: list[int] = [int(x) for x in corrupted]
        self.corrupted: set[int] = set(self._corruption_order)
        self.offline: set[int] = set(
            int(x)
            for x in self.rng.choice(
                sorted(self.corrupted),
                size=int(config.offline_fraction * len(self.corrupted)),
                replace=False,
            )
        ) if self.corrupted and config.offline_fraction > 0 else set()
        self._pending_corruptions: set[int] = set()
        # Scenario-driven offline windows (crash/churn injection), replaced
        # wholesale each round by the scenario driver.
        self.forced_offline: set[int] = set()

    # -- membership --------------------------------------------------------
    def is_corrupted(self, node_id: int) -> bool:
        return node_id in self.corrupted

    @property
    def count(self) -> int:
        return len(self.corrupted)

    # -- behaviour assignment ------------------------------------------------
    def leader_behavior(self, node_id: int) -> Behavior:
        if node_id not in self.corrupted:
            return HonestBehavior()
        cls = BEHAVIOR_REGISTRY[self.config.leader_strategy]
        try:
            return cls(**self.config.strategy_kwargs)
        except TypeError:
            return cls()

    def voter_behavior(self, node_id: int) -> Behavior:
        if node_id not in self.corrupted:
            return HonestBehavior()
        return BEHAVIOR_REGISTRY[self.config.voter_strategy]()

    def is_offline(self, node_id: int) -> bool:
        return node_id in self.offline or node_id in self.forced_offline

    # -- scenario reconfiguration -------------------------------------------
    def force_offline(self, node_ids: "set[int] | frozenset[int] | list[int]") -> None:
        """Replace the injected offline set (crash/churn windows).

        Unlike :attr:`offline` this is orthogonal to corruption: any node —
        honest or Byzantine — can be knocked out by an infrastructure
        fault.  Passing an empty collection ends the window.
        """
        self.forced_offline = {int(n) for n in node_ids}

    def retarget_fraction(self, fraction: float) -> None:
        """Mid-run corruption retargeting for adversary-fraction ramps.

        Growing the target corrupts additional nodes drawn from the
        controller's own RNG stream (deterministic per seed and call
        sequence); shrinking heals the most recently corrupted first.  The
        round-boundary call site preserves the paper's mild adaptivity —
        corruption never changes inside a round.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        target = int(fraction * len(self.all_ids))
        if target > len(self._corruption_order):
            pool = sorted(set(self.all_ids) - set(self._corruption_order))
            extra = self.rng.choice(
                pool, size=target - len(self._corruption_order), replace=False
            )
            self._corruption_order.extend(int(x) for x in extra)
        elif target < len(self._corruption_order):
            del self._corruption_order[target:]
        self.corrupted = set(self._corruption_order)
        self.offline &= self.corrupted

    def retarget_nodes(self, node_ids: Iterable[int]) -> None:
        """Wholesale corruption replacement onto an explicit target list.

        Strategic policies (:mod:`repro.scenarios.policies`) compute their
        own targets from published round state, so unlike
        :meth:`retarget_fraction` this draws nothing from the controller's
        RNG stream — seed-paired arms with and without a policy keep
        byte-identical randomness everywhere else.  Order is preserved
        (first target = corrupted longest) and duplicates collapse; like
        every retarget, the round-boundary call site preserves mild
        adaptivity.
        """
        order: list[int] = []
        seen: set[int] = set()
        known = set(self.all_ids)
        for node_id in node_ids:
            node_id = int(node_id)
            if node_id not in known:
                raise ValueError(f"cannot corrupt unknown node id {node_id}")
            if node_id not in seen:
                seen.add(node_id)
                order.append(node_id)
        self._corruption_order = order
        self.corrupted = set(order)
        self.offline &= self.corrupted

    # -- mild adaptivity ----------------------------------------------------
    def request_corruption(self, node_ids: set[int]) -> None:
        """Lodge corruption attempts; they take effect only after
        :meth:`advance_round` (at least a round's delay, §III-C)."""
        self._pending_corruptions |= set(node_ids)

    def advance_round(self) -> None:
        for node_id in sorted(self._pending_corruptions - self.corrupted):
            self._corruption_order.append(node_id)
        self.corrupted |= self._pending_corruptions
        self._pending_corruptions = set()


def honest_majority_everywhere(
    committees: list[list[int]], adversary: AdversaryController
) -> bool:
    """Check the security predicate: every committee > 1/2 honest."""
    for members in committees:
        bad = sum(1 for node in members if adversary.is_corrupted(node))
        if bad * 2 >= len(members):
            return False
    return True
