"""Behaviour strategies.

Honest nodes "always follow the protocol and do nothing exceeding the
regulation"; corrupted nodes "may collude and act out arbitrary behaviors
like sending wrong messages or simply pretending to be offline" (§III-C).

Each strategy is a set of hooks the phase executors consult at the points
where a Byzantine node could deviate.  The default implementation is the
honest protocol; malicious classes override exactly the hook they attack,
so every attack is localized and testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.ledger.utxo import ValidationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import CycNode
    from repro.ledger.state import ShardState
    from repro.ledger.transaction import Transaction

YES, NO, UNKNOWN = 1, -1, 0


class Behavior:
    """Honest baseline; every hook implements the paper's prescribed action."""

    name = "honest"
    is_malicious = False

    # -- Algorithm 3 hooks ---------------------------------------------------
    def propose_payloads(
        self, node: "CycNode", recipients: Sequence[int], payload: Any
    ) -> dict[int, Any] | None:
        """What the node, as Alg. 3 leader, PROPOSEs to each member.

        ``None`` means "the honest thing": the same ``payload`` to everyone.
        Returning a dict (recipient → payload) enables equivocation; a
        recipient mapped to ``...`` (Ellipsis) receives nothing.
        """
        return None

    def echoes(self, node: "CycNode") -> bool:
        """Whether the node participates in ECHO/CONFIRM steps."""
        return True

    def proposes_txlist(self, node: "CycNode") -> bool:
        """Whether the node, as committee leader, broadcasts its TXList at
        the start of a voting round (Alg. 5 line 7)."""
        return True

    # -- voting hooks -------------------------------------------------------
    def vote(
        self,
        node: "CycNode",
        txs: Sequence["Transaction"],
        state: "ShardState",
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vote vector over ``txs``: +1 Yes, -1 No, 0 Unknown.

        Honest nodes run V up to their validation ``capacity`` (a model of
        per-node computing power, §VII-A: nodes with more resources judge
        more transactions within the round) and vote Unknown beyond it.
        """
        votes = np.zeros(len(txs), dtype=np.int8)
        budget = node.take_budget(len(txs))
        for index, tx in enumerate(txs):
            if index >= budget:
                break  # "fails to judge within the given time" -> Unknown
            result = state.validate(tx)
            votes[index] = YES if result is ValidationResult.VALID else NO
        return votes

    def vote_on_outputs(
        self,
        node: "CycNode",
        txs: Sequence["Transaction"],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Receiving-committee vote on cross-shard transactions.

        The input side was certified by the sending committee; the receiving
        committee checks the output side (well-formed, positive amounts).
        """
        votes = np.zeros(len(txs), dtype=np.int8)
        budget = node.take_budget(len(txs))
        for index, tx in enumerate(txs):
            if index >= budget:
                break
            well_formed = bool(tx.outputs) and all(
                o.amount > 0 for o in tx.outputs
            )
            votes[index] = YES if well_formed else NO
        return votes

    # -- intra-committee leader hooks ---------------------------------------
    def assemble_txdec(
        self, node: "CycNode", majority_yes: list, vlist: Any
    ) -> list:
        """TXdecSET the leader reports, given the honest majority result."""
        return majority_yes

    # -- semi-commitment hooks -----------------------------------------------
    def semi_commitment_claim(
        self, node: "CycNode", commitment: bytes, member_list: tuple
    ) -> tuple[bytes, tuple]:
        """(commitment, member list) the leader sends to C_R and partials."""
        return commitment, member_list

    # -- inter-committee hooks -----------------------------------------------
    def forwards_inter(self, node: "CycNode") -> bool:
        """Whether leader forwards cross-shard packages (Lemma 7 attack)."""
        return True

    # -- recovery hooks -----------------------------------------------------
    def fabricate_accusation(self, node: "CycNode") -> bool:
        """Whether a partial member files a witness against an honest leader
        (Claim 4 attack)."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class HonestBehavior(Behavior):
    """Alias for readability at call sites."""


class EquivocatingLeader(Behavior):
    """Alg. 3 attack: PROPOSE different payloads to different members.

    §IV-B: "If any non-faulty node notices that the leader is malicious
    (e.g., proposed different messages to different nodes), he/she informs
    all members of the committee immediately."
    """

    name = "equivocating_leader"
    is_malicious = True

    def propose_payloads(
        self, node: "CycNode", recipients: Sequence[int], payload: Any
    ) -> dict[int, Any] | None:
        if not recipients:
            return None
        half = len(recipients) // 2
        forged = ("FORGED", payload)
        return {
            rid: (payload if k < half else forged)
            for k, rid in enumerate(recipients)
        }


class CensoringLeader(Behavior):
    """Omits Yes-majority transactions from TXdecSET (Lemma 6's "conceal").

    The omission is provable: the leader signs both the VList consensus and
    the TXdecSET, and any tx with > c/2 Yes in the former but missing from
    the latter is a witness.
    """

    name = "censoring_leader"
    is_malicious = True

    def __init__(self, keep_fraction: float = 0.0) -> None:
        self.keep_fraction = keep_fraction

    def assemble_txdec(
        self, node: "CycNode", majority_yes: list, vlist: Any
    ) -> list:
        keep = int(len(majority_yes) * self.keep_fraction)
        return majority_yes[:keep]


class SilentLeader(Behavior):
    """Sends nothing at all ("simply pretending to be offline", §III-C)."""

    name = "silent_leader"
    is_malicious = True

    def propose_payloads(
        self, node: "CycNode", recipients: Sequence[int], payload: Any
    ) -> dict[int, Any] | None:
        return {rid: ... for rid in recipients}  # ... = send nothing

    def proposes_txlist(self, node: "CycNode") -> bool:
        return False

    def forwards_inter(self, node: "CycNode") -> bool:
        return False


class InterSilentLeader(Behavior):
    """Participates honestly inside its committee but never forwards
    cross-shard packages — the precise attack Lemma 7 addresses."""

    name = "inter_silent_leader"
    is_malicious = True

    def forwards_inter(self, node: "CycNode") -> bool:
        return False


class BadSemiCommitLeader(Behavior):
    """Publishes a semi-commitment that does not hash the true member list
    (the attack Theorem 2 rules out)."""

    name = "bad_semicommit_leader"
    is_malicious = True

    def semi_commitment_claim(
        self, node: "CycNode", commitment: bytes, member_list: tuple
    ) -> tuple[bytes, tuple]:
        forged = bytes(b ^ 0xFF for b in commitment)
        return forged, member_list


class ContraryVoter(Behavior):
    """Votes the opposite of V on every transaction (maximal reputational
    damage per Eq. 1: cosine similarity -1 against a unanimous decision)."""

    name = "contrary_voter"
    is_malicious = True

    def vote(self, node, txs, state, rng):
        honest = Behavior().vote(node, txs, state, rng)
        return (-honest).astype(np.int8)

    def vote_on_outputs(self, node, txs, rng):
        honest = Behavior().vote_on_outputs(node, txs, rng)
        return (-honest).astype(np.int8)


class RandomVoter(Behavior):
    """Votes uniformly at random — no honest computation contributed."""

    name = "random_voter"
    is_malicious = True

    def vote(self, node, txs, state, rng):
        return rng.choice(
            np.array([YES, NO, UNKNOWN], dtype=np.int8), size=len(txs)
        )

    vote_on_outputs = lambda self, node, txs, rng: self.vote(  # noqa: E731
        node, txs, None, rng
    )


class LazyVoter(Behavior):
    """Always votes Unknown.  Not malicious — models a node with zero spare
    capacity.  §IV-G: such nodes keep reputation 0 and "could still get
    little rewards"."""

    name = "lazy_voter"
    is_malicious = False

    def vote(self, node, txs, state, rng):
        return np.zeros(len(txs), dtype=np.int8)

    def vote_on_outputs(self, node, txs, rng):
        return np.zeros(len(txs), dtype=np.int8)


class OfflineNode(Behavior):
    """Fully offline: transmits and hears nothing (handled by the node's
    ``online`` flag, set by the adversary controller)."""

    name = "offline"
    is_malicious = True

    def echoes(self, node):
        return False


class QuorumWithholder(Behavior):
    """Withholds every form of participation: no echoes, Unknown votes, no
    TXList proposal.

    The building block of the quorum-boundary policy
    (:class:`repro.scenarios.policies.QuorumWithholding`): a corrupted
    member acts honest while its committee has slack and switches to this
    behaviour exactly in rounds where the withheld votes are pivotal."""

    name = "quorum_withholder"
    is_malicious = True

    def echoes(self, node):
        return False

    def proposes_txlist(self, node):
        return False

    def vote(self, node, txs, state, rng):
        return np.zeros(len(txs), dtype=np.int8)

    def vote_on_outputs(self, node, txs, rng):
        return np.zeros(len(txs), dtype=np.int8)


class FramingPartialMember(Behavior):
    """Partial-set member that accuses an honest leader with a fabricated
    witness (the attack Claim 4 rules out)."""

    name = "framing_partial"
    is_malicious = True

    def fabricate_accusation(self, node: "CycNode") -> bool:
        return True


BEHAVIOR_REGISTRY: dict[str, type[Behavior]] = {
    cls.name: cls
    for cls in (
        HonestBehavior,
        EquivocatingLeader,
        CensoringLeader,
        SilentLeader,
        InterSilentLeader,
        BadSemiCommitLeader,
        ContraryVoter,
        RandomVoter,
        LazyVoter,
        QuorumWithholder,
        OfflineNode,
        FramingPartialMember,
    )
}
