"""Node behaviours: honest strategy, malicious strategies, and the
mildly-adaptive adversary controller (§III-C)."""

from repro.nodes.behaviors import (
    Behavior,
    HonestBehavior,
    EquivocatingLeader,
    CensoringLeader,
    SilentLeader,
    InterSilentLeader,
    BadSemiCommitLeader,
    ContraryVoter,
    RandomVoter,
    LazyVoter,
    OfflineNode,
    FramingPartialMember,
    BEHAVIOR_REGISTRY,
)
from repro.nodes.adversary import AdversaryController, AdversaryConfig

__all__ = [
    "Behavior",
    "HonestBehavior",
    "EquivocatingLeader",
    "CensoringLeader",
    "SilentLeader",
    "InterSilentLeader",
    "BadSemiCommitLeader",
    "ContraryVoter",
    "RandomVoter",
    "LazyVoter",
    "OfflineNode",
    "FramingPartialMember",
    "BEHAVIOR_REGISTRY",
    "AdversaryController",
    "AdversaryConfig",
]
