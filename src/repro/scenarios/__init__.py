"""Scenario / fault-injection subsystem.

Declarative, seed-deterministic fault timelines (network partitions,
latency spikes, leader crashes, adversary-fraction ramps, node churn)
applied to a running :class:`~repro.core.protocol.CycLedger` through its
phase pipeline's hooks.

    from repro import CycLedger, ProtocolParams
    from repro.scenarios import SCENARIO_PRESETS

    ledger = CycLedger(
        ProtocolParams(n=48, m=4, lam=2, referee_size=8),
        scenario=SCENARIO_PRESETS["partition-halves"],
    )
    reports = ledger.run(rounds=5)  # rounds 2-3 partitioned, then recovery
"""

from repro.scenarios.events import (
    EVENT_TYPES,
    HALVES,
    AdversaryRamp,
    Churn,
    LatencySpike,
    LeaderCrash,
    Partition,
    event_from_dict,
    event_to_dict,
)
from repro.scenarios.policies import (
    POLICY_PRESETS,
    POLICY_TYPES,
    AdversaryPolicy,
    LeaderboardCorruption,
    PolicyDriver,
    QuorumWithholding,
    RefereeEclipse,
    TargetedCensorship,
    policy_from_dict,
    policy_to_dict,
)
from repro.scenarios.presets import SCENARIO_PRESETS
from repro.scenarios.scenario import Scenario, ScenarioDriver

__all__ = [
    "EVENT_TYPES",
    "HALVES",
    "POLICY_PRESETS",
    "POLICY_TYPES",
    "AdversaryPolicy",
    "AdversaryRamp",
    "Churn",
    "LatencySpike",
    "LeaderCrash",
    "LeaderboardCorruption",
    "Partition",
    "PolicyDriver",
    "QuorumWithholding",
    "RefereeEclipse",
    "SCENARIO_PRESETS",
    "Scenario",
    "ScenarioDriver",
    "TargetedCensorship",
    "event_from_dict",
    "event_to_dict",
    "policy_from_dict",
    "policy_to_dict",
]
