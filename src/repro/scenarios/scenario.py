"""Scenario container and the driver that binds it to a running ledger.

A :class:`Scenario` is a named, declarative, JSON-serialisable timeline of
fault-injection events.  The :class:`ScenarioDriver` turns it into live
behaviour by subscribing to the orchestrator's phase pipeline:

* at the **round pre-hook** (before roles are assigned) it applies
  adversary-fraction ramps and computes this round's injected offline set
  (leader crashes, churn windows) on the
  :class:`~repro.nodes.adversary.AdversaryController`;
* at the **config phase pre-hook** (after the per-round network reset,
  before any message flows) it installs partitions and latency spikes on
  the :class:`~repro.net.simulator.Network`.

The driver draws randomness only from its own spawned RNG sub-stream, so
attaching a scenario never perturbs the protocol, workload, adversary
lottery, or jitter streams — and a (seed, scenario) pair replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.core.pipeline import POST, PRE
from repro.scenarios.events import (
    HALVES,
    AdversaryRamp,
    Churn,
    LatencySpike,
    LeaderCrash,
    Partition,
    event_from_dict,
    event_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import CycLedger, RoundReport
    from repro.core.structures import RoundContext


@dataclass(frozen=True)
class Scenario:
    """A named timeline of fault-injection events."""

    name: str
    events: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(
            self,
            "_last_round",
            max((e.last_active_round for e in self.events), default=0),
        )

    @property
    def last_event_round(self) -> int:
        """Last round any event is active — runs should go past it to show
        recovery."""
        return self._last_round

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "events": [event_to_dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            events=tuple(event_from_dict(e) for e in data["events"]),
        )


class ScenarioDriver:
    """Applies one :class:`Scenario` to one :class:`CycLedger` via hooks."""

    def __init__(self, scenario: Scenario, rng: np.random.Generator) -> None:
        self.scenario = scenario
        self.rng = rng
        self._crashed_until: dict[int, int] = {}  # node id -> last crash round
        #: Human-readable record of every applied action (for CLI/tests).
        #: Each line is stamped with the continuous cross-round sim clock
        #: (``Network.global_now``), so fault timelines read as one run,
        #: not as per-round fragments that all start at t=0.
        self.log: list[str] = []
        self._net = None  # bound at install time, for log timestamps

    def _stamp(self, line: str) -> str:
        """Prefix a log line with the continuous sim-clock timestamp."""
        if self._net is None:
            return line
        return f"t={self._net.global_now:.1f} {line}"

    # -- wiring ------------------------------------------------------------
    def install(self, ledger: "CycLedger") -> None:
        """Attach this driver's fault hooks to ``ledger``'s pipeline (a
        pipeline accepts exactly one driver)."""
        pipeline = ledger.pipeline
        if pipeline.scenario_driver is not None:
            # Hooks are append-only: a second driver on the same pipeline
            # would double-apply offline draws and ramps and silently break
            # seed determinism.
            raise ValueError(
                "pipeline already has a scenario driver installed; give "
                "each scenario-bearing ledger its own pipeline"
            )
        self._validate_targets(ledger.params.m, ledger.params.n)
        self._net = ledger.net
        pipeline.scenario_driver = self
        first_phase = pipeline.names[0]
        pipeline.add_round_hook(PRE, self._on_round_start)
        pipeline.add_phase_hook(first_phase, PRE, self._on_config_pre)
        pipeline.add_round_hook(POST, self._on_round_end)

    def _validate_targets(self, m: int, n: int) -> None:
        """Hand-written scenario files are the expected use-case: an
        out-of-range committee index or node id should fail at attach time
        with a clear message, not as an IndexError mid-round (or worse, a
        silent no-op partition of nonexistent nodes)."""
        for event in self.scenario.events:
            indices: tuple[int, ...] = ()
            if isinstance(event, LeaderCrash):
                indices = event.committees
            elif isinstance(event, Partition):
                if isinstance(event.committees, tuple):
                    indices = tuple(
                        i for group in event.committees for i in group
                    )
                elif event.nodes is not None:
                    bad_nodes = sorted(
                        i
                        for group in event.nodes
                        for i in group
                        if not 0 <= i < n
                    )
                    if bad_nodes:
                        raise ValueError(
                            f"scenario {self.scenario.name!r}: node ids "
                            f"{bad_nodes} out of range for n={n}"
                        )
            bad = sorted(i for i in indices if not 0 <= i < m)
            if bad:
                raise ValueError(
                    f"scenario {self.scenario.name!r}: committee indices "
                    f"{bad} out of range for m={m}"
                )

    # -- round boundary: adversary & offline reconfiguration ----------------
    def _on_round_start(self, ledger: "CycLedger") -> None:
        round_number = ledger.round_number
        for event in self.scenario.events:
            if isinstance(event, AdversaryRamp) and event.active(round_number):
                fraction = event.fraction_at(round_number)
                ledger.adversary.retarget_fraction(fraction)
                self.log.append(self._stamp(
                    f"r{round_number}: adversary fraction -> {fraction:.3f}"
                ))
        offline = self._offline_this_round(ledger, round_number)
        ledger.adversary.force_offline(offline)
        if offline:
            self.log.append(
                self._stamp(f"r{round_number}: forced offline {sorted(offline)}")
            )

    def _offline_this_round(
        self, ledger: "CycLedger", round_number: int
    ) -> set[int]:
        offline: set[int] = set()
        for event in self.scenario.events:
            if isinstance(event, LeaderCrash) and event.round == round_number:
                for committee_index in event.committees:
                    pk = ledger._next_leaders[committee_index]
                    node_id = ledger._node_id(pk)
                    self._crashed_until[node_id] = (
                        round_number + event.duration - 1
                    )
                    self.log.append(self._stamp(
                        f"r{round_number}: crash leader-elect {node_id} "
                        f"of committee {committee_index}"
                    ))
            elif isinstance(event, Churn) and event.active(round_number):
                count = int(event.offline_fraction * len(ledger.nodes))
                if count:
                    picks = self.rng.choice(
                        sorted(ledger.nodes), size=count, replace=False
                    )
                    offline |= {int(x) for x in picks}
        offline |= {
            node_id
            for node_id, until in self._crashed_until.items()
            if round_number <= until
        }
        return offline

    # -- first phase: network fault installation ----------------------------
    def _on_config_pre(self, ctx: "RoundContext", phase_name: str) -> None:
        round_number = ctx.round_number
        for event in self.scenario.events:
            if isinstance(event, Partition) and event.active(round_number):
                groups = self._resolve_partition(event, ctx)
                ctx.net.set_partitions(groups)
                self.log.append(self._stamp(
                    f"r{round_number}: partition "
                    f"{[sorted(g) for g in groups]}"
                ))
            elif isinstance(event, LatencySpike) and event.active(round_number):
                ctx.net.add_link_degradation(
                    event.factor, channels=event.channels
                )
                self.log.append(self._stamp(
                    f"r{round_number}: latency x{event.factor:g} "
                    f"on {list(event.channels) if event.channels else 'all'}"
                ))

    def _resolve_partition(
        self, event: Partition, ctx: "RoundContext"
    ) -> list[set[int]]:
        if event.nodes is not None:
            groups = [set(group) for group in event.nodes]
        else:
            committees = event.committees
            if committees == HALVES:
                indices = list(range(len(ctx.committees)))
                half = max(1, len(indices) // 2)
                committees = (tuple(indices[:half]), tuple(indices[half:]))
            groups = []
            for group_indices in committees:
                group: set[int] = set()
                for committee_index in group_indices:
                    group |= set(ctx.committees[committee_index].members)
                groups.append(group)
        # Referee placement applies in both modes, but only to referee
        # members the groups did not already claim explicitly.
        listed: set[int] = set().union(*groups) if groups else set()
        referee = set(ctx.referee) - listed
        if event.isolate_referee:
            groups.append(referee)
        elif groups:
            groups[0] |= referee
        return [g for g in groups if g]

    # -- round end ----------------------------------------------------------
    def _on_round_end(self, ledger: "CycLedger", report: "RoundReport") -> None:
        # Crash windows that ended are forgotten so the log stays readable
        # and membership checks stay O(active crashes).
        expired = [
            node_id
            for node_id, until in self._crashed_until.items()
            if until < ledger.round_number
        ]
        for node_id in expired:
            del self._crashed_until[node_id]
