"""Declarative fault-injection event vocabulary.

Each event is a frozen dataclass with a ``kind`` tag and a round window;
scenarios are tuples of events, applied by the
:class:`~repro.scenarios.scenario.ScenarioDriver` at pipeline hooks.  All
round windows are inclusive at both ends and 1-based (round numbers as the
orchestrator counts them).  Events carry no callables and no live state, so
a scenario serialises to canonical JSON and travels through the experiment
engine's process pool unchanged.

Determinism: every event is either fully explicit (rounds, committee
indices, factors) or draws from the scenario's own spawned RNG sub-stream
(:class:`Churn`), so a (seed, scenario) pair always replays the exact same
timeline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Mapping

#: Sentinel for :attr:`Partition.committees`: split the committee indices
#: into two halves at runtime (presets cannot know ``m`` up front).
HALVES = "halves"


@dataclass(frozen=True)
class WindowedEvent:
    """Common shape of events active over an inclusive round window."""

    start_round: int
    end_round: int

    def __post_init__(self) -> None:
        if self.start_round < 1:
            raise ValueError("rounds are 1-based")
        if self.end_round < self.start_round:
            raise ValueError("end_round must be >= start_round")

    def active(self, round_number: int) -> bool:
        """Whether this event applies in ``round_number`` (inclusive window)."""
        return self.start_round <= round_number <= self.end_round

    @property
    def last_active_round(self) -> int:
        """The last round this event can still act in."""
        return self.end_round


@dataclass(frozen=True)
class Partition(WindowedEvent):
    """Cut the network between committee (or explicit node) groups for a
    window of rounds.

    Exactly one of ``committees``/``nodes`` describes the cut:

    * ``committees`` — groups of committee *indices*, resolved to member
      node ids each round after role assignment (so the cut follows the
      committees as membership rotates), or the string ``"halves"`` to
      split the committee range in two;
    * ``nodes`` — explicit node-id groups, applied verbatim.

    The referee committee joins group 0 unless ``isolate_referee`` puts it
    in a group of its own (a much harsher fault: nobody can finalise).
    """

    kind: ClassVar[str] = "partition"

    committees: tuple[tuple[int, ...], ...] | str | None = None
    nodes: tuple[tuple[int, ...], ...] | None = None
    isolate_referee: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if (self.committees is None) == (self.nodes is None):
            raise ValueError("give exactly one of committees/nodes")
        if isinstance(self.committees, str) and self.committees != HALVES:
            raise ValueError(f"unknown committee split {self.committees!r}")


@dataclass(frozen=True)
class LatencySpike(WindowedEvent):
    """Multiply link delays by ``factor`` for a window of rounds.

    ``channels`` restricts the spike to channel classes (default: all).
    Values above the model's synchrony bounds are intentional — this is an
    infrastructure fault, not the in-model adversary.
    """

    kind: ClassVar[str] = "latency_spike"

    factor: float
    channels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")


@dataclass(frozen=True)
class LeaderCrash:
    """Crash the incoming leaders of the given committees.

    At the start of ``round`` the nodes slated to lead the listed
    committees are taken offline for ``duration`` rounds (then recover).
    The partial set prosecutes the silent leader (Alg. 6), so this is the
    canonical recovery-latency probe.
    """

    kind: ClassVar[str] = "leader_crash"

    round: int
    committees: tuple[int, ...]
    duration: int = 1

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError("rounds are 1-based")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if not self.committees:
            raise ValueError("name at least one committee")

    @property
    def last_active_round(self) -> int:
        """The last round a crashed leader is still forced offline."""
        return self.round + self.duration - 1


@dataclass(frozen=True)
class AdversaryRamp(WindowedEvent):
    """Linearly ramp the corrupted fraction across a window of rounds.

    At each round boundary in the window the controller is retargeted to
    the interpolated fraction; outside the window the fraction stays at
    whatever the ramp last set (ramps do not auto-heal — chain a second
    ramp down if the scenario should recover).
    """

    kind: ClassVar[str] = "adversary_ramp"

    start_fraction: float
    end_fraction: float

    def __post_init__(self) -> None:
        super().__post_init__()
        for fraction in (self.start_fraction, self.end_fraction):
            if not (0.0 <= fraction <= 1.0):
                raise ValueError("fractions must be in [0, 1]")

    def fraction_at(self, round_number: int) -> float:
        """The interpolated corrupted fraction this round (clamped to the
        ramp window's endpoints)."""
        if self.end_round == self.start_round:
            return self.end_fraction
        progress = (round_number - self.start_round) / (
            self.end_round - self.start_round
        )
        progress = min(max(progress, 0.0), 1.0)
        return self.start_fraction + progress * (
            self.end_fraction - self.start_fraction
        )


@dataclass(frozen=True)
class Churn(WindowedEvent):
    """Node churn: each round in the window a fresh random
    ``offline_fraction`` of all nodes is offline (drawn from the scenario
    RNG stream, so the same seed churns the same nodes)."""

    kind: ClassVar[str] = "churn"

    offline_fraction: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.offline_fraction < 1.0):
            raise ValueError("offline_fraction must be in [0, 1)")


EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (Partition, LatencySpike, LeaderCrash, AdversaryRamp, Churn)
}


def _tuplify(value: Any) -> Any:
    """Recursively turn lists back into tuples (JSON round-trip)."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def event_to_dict(event: Any) -> dict[str, Any]:
    """JSON-ready rendering of one event (kind tag plus its fields)."""
    if type(event) not in EVENT_TYPES.values():
        raise TypeError(f"not a scenario event: {event!r}")
    return {"kind": event.kind, **asdict(event)}


def event_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild an event from :func:`event_to_dict` output (JSON round-trip)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    return cls(**{key: _tuplify(value) for key, value in payload.items()})
