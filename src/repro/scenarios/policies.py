"""Strategic, state-observing adversary policies.

Scenario events (:mod:`repro.scenarios.events`) are *schedules*: they name
rounds and targets up front.  Policies are *strategies*: each round the
:class:`PolicyDriver` lets the active policy read the ledger's published
state — the reputation leaderboard, the staged leaders, this round's
committee rosters — and decide where to strike.  This is still the paper's
mildly-adaptive adversary (§III-C): decisions use only state published by
round ``r - 1`` and take effect at the round-``r`` boundary, never inside a
round.

Four policies ship:

* :class:`LeaderboardCorruption` — re-aims the corruption budget at the
  top of the reputation leaderboard (and the staged leaders) every round;
* :class:`QuorumWithholding` — corrupted members act honest until the
  round where their withheld votes are pivotal for a committee's quorum;
* :class:`RefereeEclipse` — partitions the current referee committee away
  from everyone else, following its rotating membership;
* :class:`TargetedCensorship` — corrupts the staged leaders and has them
  censor transactions (:class:`~repro.nodes.behaviors.CensoringLeader`).

Policies are frozen dataclasses over an inclusive round window, serialise
to canonical JSON like events (:func:`policy_to_dict` /
:func:`policy_from_dict`), and attach to any registered backend through
the same pipeline hooks the :class:`~repro.scenarios.scenario.ScenarioDriver`
uses, so seed-paired sweeps gain a ``policy`` axis next to
scenario/backend/overlap.

Determinism: current policies compute targets from published round state
with explicit tie-breaks and draw **nothing** from any RNG stream (the
driver still owns a spawned sub-stream for future randomized policies), so
a (seed, policy) pair replays exactly and the no-policy arm of a
seed-paired sweep is byte-identical to a run without the axis.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping

import numpy as np

from repro.core.pipeline import PRE
from repro.nodes.behaviors import (
    CensoringLeader,
    HonestBehavior,
    QuorumWithholder,
)
from repro.scenarios.events import WindowedEvent, _tuplify

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.structures import CommitteeSpec, RoundContext


@dataclass(frozen=True)
class AdversaryPolicy(WindowedEvent):
    """Common shape of adversary policies: an inclusive round window plus
    two optional decision hooks the :class:`PolicyDriver` calls.

    ``corruption_targets`` runs at the round pre-hook (before role
    assignment) and may return the node ids the corruption budget should
    move to; ``apply`` runs at the first phase's pre-hook (after role
    assignment and the per-round network reset) and may override behaviours
    or install network cuts for this round.
    """

    def corruption_targets(self, ledger: Any) -> list[int] | None:
        """Node ids to corrupt this round, or ``None`` to leave corruption
        untouched.  Called only in active rounds."""
        return None

    def apply(self, ctx: "RoundContext", driver: "PolicyDriver") -> None:
        """Committee-aware action for this round (behaviour overrides,
        partitions).  Called only in active rounds."""


def _leaderboard(ledger: Any) -> list[int]:
    """Node ids ordered by published reputation, highest first, ties broken
    by node id so the ranking is total and deterministic."""
    ranked = sorted(
        ledger.reputation.items(),
        key=lambda item: (-item[1], ledger._node_id(item[0])),
    )
    return [ledger._node_id(pk) for pk, _rep in ranked]


def _staged_leader_ids(ledger: Any) -> list[int]:
    """Node ids of the leaders staged for the coming round (published in
    the previous round's block, so fair game for a mildly-adaptive
    adversary)."""
    return [ledger._node_id(pk) for pk in ledger._next_leaders]


@dataclass(frozen=True)
class LeaderboardCorruption(AdversaryPolicy):
    """Adaptive corruption that chases the reputation leaderboard.

    Each active round the corruption budget (``budget_fraction`` of all
    nodes) is re-aimed at the staged leaders (when ``include_leaders``)
    followed by the highest-reputation remaining nodes.  Under CycLedger's
    reputation-ranked leader selection this doubles as an attack on *next*
    round's leadership, which is exactly why the paper's incentive layer
    must keep honest reputation ahead of the adversary's.
    """

    kind: ClassVar[str] = "leaderboard_corruption"

    budget_fraction: float = 0.25
    include_leaders: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.budget_fraction <= 1.0):
            raise ValueError("budget_fraction must be in [0, 1]")

    def corruption_targets(self, ledger: Any) -> list[int]:
        """Staged leaders first (optional), then the leaderboard, truncated
        to the corruption budget."""
        budget = int(self.budget_fraction * len(ledger.nodes))
        targets: list[int] = []
        seen: set[int] = set()
        pools = [_leaderboard(ledger)]
        if self.include_leaders:
            pools.insert(0, _staged_leader_ids(ledger))
        for pool in pools:
            for node_id in pool:
                if node_id not in seen:
                    seen.add(node_id)
                    targets.append(node_id)
        return targets[:budget]


@dataclass(frozen=True)
class QuorumWithholding(AdversaryPolicy):
    """Sleeper agents that withhold votes exactly at quorum boundaries.

    Corrupted nodes behave honestly ("sleepers") except in committees where
    the withheld participation is *pivotal*: with ``c`` members and a
    majority quorum of ``need = c // 2 + 1``, a committee is pivotal when
    its honestly-acting online members alone miss the quorum but would
    reach it with the corrupted members' help.  Only then do the corrupted
    non-leader members switch to
    :class:`~repro.nodes.behaviors.QuorumWithholder`, killing the round's
    consensus while revealing nothing in committees with slack.

    The majority rule is exact for CycLedger (Alg. 3) and RapidChain;
    OmniLedger's BFT accept needs a > 2/3 supermajority, so there the
    boundary test is conservative — the policy withholds in a subset of the
    truly pivotal rounds (committees already below 2/3 fail without help).

    With ``budget_fraction > 0`` the policy also re-aims corruption each
    round at the highest-reputation nodes that are *not* staged leaders
    (withholders must sit among the voters); with the default ``0.0`` it
    drives whatever corruption the run's
    :class:`~repro.nodes.adversary.AdversaryConfig` provides.
    """

    kind: ClassVar[str] = "quorum_withholding"

    budget_fraction: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.budget_fraction <= 1.0):
            raise ValueError("budget_fraction must be in [0, 1]")

    def corruption_targets(self, ledger: Any) -> list[int] | None:
        """Top-reputation non-leader nodes up to the budget (or ``None``
        when the policy rides an externally configured adversary)."""
        if self.budget_fraction == 0.0:
            return None
        budget = int(self.budget_fraction * len(ledger.nodes))
        leaders = set(_staged_leader_ids(ledger))
        ranked = [nid for nid in _leaderboard(ledger) if nid not in leaders]
        return ranked[:budget]

    @staticmethod
    def _pivotal(
        spec: "CommitteeSpec", ctx: "RoundContext", corrupted: set[int]
    ) -> tuple[bool, list[int]]:
        """Whether withholding flips this committee, and the members that
        would withhold (corrupted, online, non-leader)."""
        withholders = [
            member
            for member in spec.members
            if member in corrupted
            and member != spec.leader
            and ctx.nodes[member].online
        ]
        reliable = sum(
            1
            for member in spec.members
            if ctx.nodes[member].online
            and (member not in corrupted or member == spec.leader)
        )
        need = len(spec.members) // 2 + 1
        return reliable < need <= reliable + len(withholders), withholders

    def apply(self, ctx: "RoundContext", driver: "PolicyDriver") -> None:
        """Sleepers everywhere, withholders only where pivotal."""
        corrupted = driver.adversary.corrupted
        for node_id in corrupted:
            ctx.nodes[node_id].behavior = HonestBehavior()
        for spec in ctx.committees:
            pivotal, withholders = self._pivotal(spec, ctx, corrupted)
            if pivotal:
                for member in withholders:
                    ctx.nodes[member].behavior = QuorumWithholder()
                driver.note(
                    ctx.round_number,
                    f"quorum withholding in committee {spec.index}: "
                    f"{sorted(withholders)} go silent",
                )


@dataclass(frozen=True)
class RefereeEclipse(AdversaryPolicy):
    """Partition the referee committee away from the rest of the network.

    The cut is recomputed from this round's actual referee membership, so
    it follows the rotating lottery — an *adaptive* eclipse, unlike the
    static node groups of a scenario :class:`~repro.scenarios.events.Partition`.
    Per-round network resets heal the cut automatically once the window
    closes.
    """

    kind: ClassVar[str] = "referee_eclipse"

    def apply(self, ctx: "RoundContext", driver: "PolicyDriver") -> None:
        """Isolate this round's referee members in their own partition."""
        referee = set(ctx.referee)
        ctx.net.set_partitions([referee])
        driver.note(
            ctx.round_number, f"eclipse referee committee {sorted(referee)}"
        )


@dataclass(frozen=True)
class TargetedCensorship(AdversaryPolicy):
    """Corrupt the staged leaders and have them censor transactions.

    Each active round the corruption budget moves onto the staged leaders
    (plus leaderboard fill-up), and every corrupted node that actually
    leads a committee runs
    :class:`~repro.nodes.behaviors.CensoringLeader` keeping only
    ``keep_fraction`` of the majority-Yes transactions.  CycLedger commits
    the censored remainder and leaves a provable trail; the rival backends
    model any malicious leader as a dead committee, so the same policy is
    strictly harsher there.
    """

    kind: ClassVar[str] = "censorship"

    keep_fraction: float = 0.25
    budget_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 <= self.keep_fraction <= 1.0):
            raise ValueError("keep_fraction must be in [0, 1]")
        if not (0.0 <= self.budget_fraction <= 1.0):
            raise ValueError("budget_fraction must be in [0, 1]")

    def corruption_targets(self, ledger: Any) -> list[int]:
        """Staged leaders, then leaderboard fill-up, within budget."""
        budget = int(self.budget_fraction * len(ledger.nodes))
        targets: list[int] = []
        seen: set[int] = set()
        for pool in (_staged_leader_ids(ledger), _leaderboard(ledger)):
            for node_id in pool:
                if node_id not in seen:
                    seen.add(node_id)
                    targets.append(node_id)
        return targets[:budget]

    def apply(self, ctx: "RoundContext", driver: "PolicyDriver") -> None:
        """Corrupted committee leaders censor; other corrupted nodes keep
        their configured strategies."""
        censoring = []
        for spec in ctx.committees:
            if spec.leader in driver.adversary.corrupted:
                ctx.nodes[spec.leader].behavior = CensoringLeader(
                    keep_fraction=self.keep_fraction
                )
                censoring.append(spec.index)
        if censoring:
            driver.note(
                ctx.round_number,
                f"censoring leaders in committees {censoring} "
                f"(keep {self.keep_fraction:g})",
            )


POLICY_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        LeaderboardCorruption,
        QuorumWithholding,
        RefereeEclipse,
        TargetedCensorship,
    )
}

#: Named, ready-to-attach policy instances — the ``--policy`` /
#: ``policy_grid`` vocabulary.  Windows start at round 2 so round 1 is
#: byte-identical to the policy-free arm, and end before typical sweep
#: horizons' last round only where the healed tail is the point
#: (referee-eclipse).
POLICY_PRESETS: dict[str, AdversaryPolicy] = {
    "adaptive-corruption": LeaderboardCorruption(
        start_round=2, end_round=6, budget_fraction=0.25
    ),
    "quorum-withholding": QuorumWithholding(
        start_round=2, end_round=6, budget_fraction=0.3
    ),
    "referee-eclipse": RefereeEclipse(start_round=2, end_round=3),
    "censorship": TargetedCensorship(
        start_round=2, end_round=6, keep_fraction=0.25, budget_fraction=0.25
    ),
}


def policy_to_dict(policy: Any) -> dict[str, Any]:
    """JSON-ready rendering of one policy (kind tag plus its fields)."""
    if type(policy) not in POLICY_TYPES.values():
        raise TypeError(f"not an adversary policy: {policy!r}")
    return {"kind": policy.kind, **asdict(policy)}


def policy_from_dict(data: Mapping[str, Any]) -> AdversaryPolicy:
    """Rebuild a policy from :func:`policy_to_dict` output (JSON
    round-trip)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = POLICY_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown policy kind {kind!r}")
    return cls(**{key: _tuplify(value) for key, value in payload.items()})


class PolicyDriver:
    """Applies one :class:`AdversaryPolicy` to one running ledger via its
    phase pipeline's hooks (mirror of
    :class:`~repro.scenarios.scenario.ScenarioDriver`, which owns scheduled
    faults; the two compose on one ledger)."""

    def __init__(
        self, policy: AdversaryPolicy, rng: np.random.Generator
    ) -> None:
        self.policy = policy
        #: Own spawned RNG sub-stream.  Shipped policies are fully
        #: deterministic and never draw from it, but the stream is reserved
        #: so a future randomized policy cannot perturb protocol streams.
        self.rng = rng
        #: Human-readable record of every applied action, each line stamped
        #: with the continuous cross-round sim clock (``Network.global_now``)
        #: like the scenario driver's fault events.
        self.log: list[str] = []
        self._net = None
        self._ledger = None
        self._baseline: list[int] | None = None
        self._healed = False

    def _stamp(self, line: str) -> str:
        """Prefix a log line with the continuous sim-clock timestamp."""
        if self._net is None:
            return line
        return f"t={self._net.global_now:.1f} {line}"

    def note(self, round_number: int, line: str) -> None:
        """Record one applied policy action (timestamped)."""
        self.log.append(self._stamp(f"r{round_number}: {line}"))

    @property
    def adversary(self) -> Any:
        """The bound ledger's adversary controller."""
        return self._ledger.adversary

    # -- wiring ------------------------------------------------------------
    def install(self, ledger: Any) -> None:
        """Attach this driver's policy hooks to ``ledger``'s pipeline (a
        pipeline accepts at most one policy driver)."""
        pipeline = ledger.pipeline
        if pipeline.policy_driver is not None:
            # Hooks are append-only: a second driver would re-aim the same
            # corruption budget twice per round with order-dependent
            # results.
            raise ValueError(
                "pipeline already has a policy driver installed; give "
                "each policy-bearing ledger its own pipeline"
            )
        self._ledger = ledger
        self._net = ledger.net
        pipeline.policy_driver = self
        pipeline.add_round_hook(PRE, self._on_round_start)
        pipeline.add_phase_hook(pipeline.names[0], PRE, self._on_config_pre)

    # -- round boundary: corruption re-aiming --------------------------------
    def _on_round_start(self, ledger: Any) -> None:
        round_number = ledger.round_number
        policy = self.policy
        if policy.active(round_number):
            targets = policy.corruption_targets(ledger)
            if targets is not None:
                if self._baseline is None:
                    # First strike: remember the configured corruption so
                    # the window's close restores it (the heal round).
                    self._baseline = list(ledger.adversary._corruption_order)
                ledger.adversary.retarget_nodes(targets)
                self.note(
                    round_number,
                    f"{policy.kind} corrupts {sorted(targets)}",
                )
        elif (
            round_number > policy.last_active_round
            and self._baseline is not None
            and not self._healed
        ):
            ledger.adversary.retarget_nodes(self._baseline)
            self._healed = True
            self.note(
                round_number,
                f"{policy.kind} window closed; corruption restored to "
                f"{sorted(self._baseline)}",
            )

    # -- first phase: committee-aware actions --------------------------------
    def _on_config_pre(self, ctx: "RoundContext", phase_name: str) -> None:
        if self.policy.active(ctx.round_number):
            self.policy.apply(ctx, self)
