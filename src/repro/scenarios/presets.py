"""Named, canned scenarios.

Presets are concrete :class:`~repro.scenarios.scenario.Scenario` instances
keyed by name, so they can travel through JSON specs and the experiment
engine's worker pool by name alone (like capacity presets).  All of them
leave at least one clean round after the fault window so a run of
``last_event_round + 1`` rounds (or more) demonstrates recovery.
"""

from __future__ import annotations

from repro.net.params import ChannelClass
from repro.scenarios.events import (
    HALVES,
    AdversaryRamp,
    Churn,
    LatencySpike,
    LeaderCrash,
    Partition,
)
from repro.scenarios.scenario import Scenario

#: Split the committees into two halves and cut the fabric between them
#: for rounds 2–3 (the referee rides with group 0, so half the shards lose
#: the referee and inter-committee traffic crosses the cut).
partition_halves = Scenario(
    "partition-halves",
    (Partition(start_round=2, end_round=3, committees=HALVES),),
)

#: 15% of all nodes offline per round in rounds 2–4, fresh draw each round.
churn = Scenario(
    "churn",
    (Churn(start_round=2, end_round=4, offline_fraction=0.15),),
)

#: Corrupted fraction climbs 0 → 25% across rounds 1–4 and stays there.
adversary_ramp = Scenario(
    "adversary-ramp",
    (
        AdversaryRamp(
            start_round=1, end_round=4, start_fraction=0.0, end_fraction=0.25
        ),
    ),
)

#: Committee 0's incoming leader crashes in round 2 and recovers after it.
leader_crash = Scenario(
    "leader-crash",
    (LeaderCrash(round=2, committees=(0,)),),
)

#: Partially-synchronous links (PoW submission, block propagation) are 4×
#: slower in rounds 2–3.
latency_spike = Scenario(
    "latency-spike",
    (
        LatencySpike(
            start_round=2,
            end_round=3,
            factor=4.0,
            channels=(ChannelClass.PARTIAL,),
        ),
    ),
)

#: Compound stress: churn under a partition while the adversary ramps.
perfect_storm = Scenario(
    "perfect-storm",
    (
        Partition(start_round=3, end_round=4, committees=HALVES),
        Churn(start_round=2, end_round=4, offline_fraction=0.1),
        AdversaryRamp(
            start_round=1, end_round=3, start_fraction=0.0, end_fraction=0.2
        ),
    ),
)

SCENARIO_PRESETS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        partition_halves,
        churn,
        adversary_ramp,
        leader_crash,
        latency_spike,
        perfect_storm,
    )
}
