"""Frozen pre-optimization implementations, kept as measurement baselines.

Every hot-path optimization in this repository is gated by an A/B perf
case: the optimized code ships in its real module, the code it replaced is
preserved here — verbatim, not simplified — so ``repro bench`` can keep
measuring the speedup on every host, every PR.  Nothing in the protocol
imports this module; it exists only for :mod:`repro.perf.cases` and the
equivalence tests that pin optimized and baseline behaviour together.

Baselines frozen here:

* :func:`naive_verify_loop` / :func:`naive_sign_loop` — scalar
  sign/verify with one canonical statement encoding *per call* (replaced
  by the batched helpers in :mod:`repro.crypto.signatures`);
* :func:`naive_payload_size` — wire-size estimation with per-call
  ``dataclasses.fields`` introspection and isinstance chains (replaced by
  the exact-type dispatch in :mod:`repro.net.message`);
* :class:`NaiveNetwork` — the simulator's send path with per-message
  envelope allocation and scalar jitter draws (replaced by envelope
  pooling and block-buffered jitter in :mod:`repro.net.simulator`);
* :class:`NaiveWorkloadGenerator` — transaction generation with
  ``Generator.choice`` defect draws and an any()-scan address bucket fill
  (replaced by tuple-indexed bounded-integer draws and a slot countdown in
  :mod:`repro.ledger.workload`).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Any, Iterable, Sequence

import numpy as np

from repro.crypto.pki import PKI, KeyPair
from repro.crypto.signatures import Signature, sign, verify
from repro.ledger.transaction import Transaction, TxInput, TxOutput, shard_of_address
from repro.ledger.workload import TaggedTx, WorkloadGenerator
from repro.net.message import Message
from repro.net.params import ChannelClass
from repro.net.simulator import Network, SimulationError

_SIG_SIZE = 64
_HASH_SIZE = 32
_INT_SIZE = 8


# -- crypto ------------------------------------------------------------------
def naive_sign_loop(keypairs: Iterable[KeyPair], message: Any) -> list[Signature]:
    """Pre-batching signing: one full statement encoding per signer."""
    return [sign(kp, message) for kp in keypairs]


def naive_verify_loop(
    pki: PKI,
    signatures: Sequence[Signature],
    message: Any,
    members: "set[str] | None" = None,
) -> set[str]:
    """Pre-batching certificate check: scalar :func:`verify` per signature
    (re-encoding the statement each time), exactly as
    ``verify_certificate`` did before ``signers_of``."""
    valid: set[str] = set()
    for sig in signatures:
        if members is not None and sig.pk not in members:
            continue
        if verify(pki, sig, message):
            valid.add(sig.pk)
    return valid


# -- wire sizing -------------------------------------------------------------
def naive_payload_size(obj: Any) -> int:
    """The pre-optimization ``payload_size``: isinstance chain per element
    and ``dataclasses.fields`` introspection per dataclass instance."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return _INT_SIZE
    if isinstance(obj, float):
        return _INT_SIZE
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 2 + sum(naive_payload_size(x) for x in obj)
    if isinstance(obj, dict):
        return 2 + sum(
            naive_payload_size(k) + naive_payload_size(v) for k, v in obj.items()
        )
    type_name = type(obj).__name__
    if type_name == "Signature":
        return _SIG_SIZE
    if type_name == "VRFOutput":
        return _SIG_SIZE + _HASH_SIZE
    if dataclasses.is_dataclass(obj):
        return 2 + sum(
            naive_payload_size(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, _np_scalar_types()):
        return _INT_SIZE
    raise TypeError(f"naive_payload_size cannot size {type_name}")


def _np_scalar_types() -> tuple[type, ...]:
    import numpy as np  # the old deferred-import behaviour, per call

    return (np.integer, np.floating)


# -- network -----------------------------------------------------------------
class NaiveNetwork(Network):
    """The simulator with its pre-optimization send path.

    Allocates a fresh :class:`Message` per send, draws jitter with a scalar
    ``Generator.random()`` call per message, and sizes payloads with
    :func:`naive_payload_size`.  Given the same RNG seed it produces the
    identical delivery schedule as the optimized :class:`Network` (the
    jitter block is stream-exact), so A/B pump runs can be checked for
    equality, not just timed.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        kwargs["pool_envelopes"] = False
        super().__init__(*args, **kwargs)

    def _next_jitter(self) -> float:
        return float(self.rng.random())

    def send(
        self,
        sender: int,
        recipient: int,
        tag: str,
        payload: Any,
        size: "int | None" = None,
    ) -> None:
        """The pre-pooling send path, preserved verbatim for A/B timing."""
        if recipient not in self.nodes:
            raise SimulationError(f"unknown recipient {recipient}")
        channel = self.channel_classifier(sender, recipient)
        if channel is None:
            if self.strict_channels:
                raise SimulationError(
                    f"no channel from {sender} to {recipient}: the topology "
                    "does not provide this link (see §III-B)"
                )
            channel = ChannelClass.PARTIAL
        if self._crosses_partition(sender, recipient):
            self.dropped_messages += 1
            self.partition_dropped += 1
            return
        nbytes = size if size is not None else naive_payload_size(payload)
        message = Message(
            sender=sender,
            recipient=recipient,
            tag=tag,
            payload=payload,
            size=nbytes,
            channel=channel,
            send_time=self.now,
            deliver_time=0.0,
        )
        if self.drop_filter is not None and self.drop_filter(message):
            self.dropped_messages += 1
            return
        message.deliver_time = self.now + self._sample_delay(channel, message)
        self.metrics.record_send(sender, nbytes)
        heapq.heappush(
            self._queue, (message.deliver_time, next(self._seq), message, None)
        )


# -- workload ----------------------------------------------------------------
class NaiveWorkloadGenerator(WorkloadGenerator):
    """The workload generator with its pre-optimization draw paths.

    Overrides exactly the two methods the optimization touched: the
    address bucket fill (any()-scan per candidate address) and the defect
    draw (``Generator.choice`` over a Python string list).  Both are
    RNG-stream-identical to the optimized versions, so same-seed instances
    generate byte-identical transaction batches — asserted by the perf
    case's equivalence check.
    """

    def __init__(
        self,
        m: int,
        users_per_shard: int,
        rng: np.random.Generator,
        endowment: int = 1_000,
        fee: int = 1,
    ) -> None:
        super().__init__(m, users_per_shard, rng, endowment=endowment, fee=fee)
        # Rebuild the address buckets the old way (no RNG involved, so
        # redoing the work changes nothing but measures the old cost).
        self.addresses_by_shard = [[] for _ in range(m)]
        serial = 0
        while any(
            len(bucket) < users_per_shard for bucket in self.addresses_by_shard
        ):
            address = f"user-{serial:08d}"
            serial += 1
            shard = shard_of_address(address, m)
            if len(self.addresses_by_shard[shard]) < users_per_shard:
                self.addresses_by_shard[shard].append(address)

    def _build_invalid(self, home: int, cross: bool) -> TaggedTx:
        defect = str(
            self.rng.choice(["double_spend", "overspend", "phantom_input"])
        )
        payee = self._pick_payee(home, cross)
        if defect == "double_spend" and self._spent:
            outpoint, owner, amount = self._spent[
                int(self.rng.integers(0, len(self._spent)))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, max(1, amount - self.fee)),),
                nonce=self._next_nonce(),
            )
        elif defect == "overspend" and self._spendable[home]:
            outpoint, owner, amount = self._spendable[home][
                int(self.rng.integers(0, len(self._spendable[home])))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, amount * 2 + 1),),
                nonce=self._next_nonce(),
            )
        else:
            defect = "phantom_input"
            phantom = (
                Transaction(
                    inputs=(),
                    outputs=(TxOutput("nobody", 1),),
                    nonce=self._next_nonce(),
                ).txid,
                0,
            )
            tx = Transaction(
                inputs=(TxInput(*phantom),),
                outputs=(TxOutput(payee, 10),),
                nonce=self._next_nonce(),
            )
        out_shard = shard_of_address(payee, self.m)
        return TaggedTx(
            tx=tx,
            home_shard=home,
            cross_shard=out_shard != home,
            intended_valid=False,
            defect=defect,
        )
