"""Perf-regression harness: timing cases, calibration, ``BENCH_perf.json``.

The measurement counterpart to :mod:`repro.exp`: where the experiment
engine answers "what did the protocol do", this package answers "how fast
did the code do it" — reproducibly enough to gate optimizations and catch
regressions PR-over-PR.

    from repro.perf import PERF_REGISTRY, PerfSettings, run_cases, write_bench

    payload = run_cases(sorted(PERF_REGISTRY), PerfSettings(), repeats=5)
    write_bench("BENCH_perf.json", payload)

``repro bench`` is the CLI face; ``docs/perf.md`` documents the protocol
(warmup + repeats, median/p95, A/B baselines, calibration normalization)
and how CI consumes the artifact.
"""

from repro.perf.harness import (
    BENCH_SCHEMA,
    CaseResult,
    PERF_REGISTRY,
    PerfCase,
    PerfSettings,
    TimingSummary,
    bench_payload,
    calibrate,
    perf_case_names,
    register_perf_case,
    run_case,
    run_cases,
    write_bench,
)

# Importing the case catalogue populates PERF_REGISTRY.
from repro.perf import cases as _cases  # noqa: F401  (import for effect)

__all__ = [
    "BENCH_SCHEMA",
    "CaseResult",
    "PERF_REGISTRY",
    "PerfCase",
    "PerfSettings",
    "TimingSummary",
    "bench_payload",
    "calibrate",
    "perf_case_names",
    "register_perf_case",
    "run_case",
    "run_cases",
    "write_bench",
]
