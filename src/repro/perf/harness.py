"""The perf-regression harness: registry, timing protocol, and artifact.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows" — which is unfalsifiable without numbers.  This module gives every
PR a way to *prove* its speed claims:

* a :class:`PerfCase` registry of named, reproducible timing cases — micro
  cases pitting an optimized hot path against its frozen pre-optimization
  baseline (:mod:`repro.perf.baselines`), and end-to-end round cases
  driving whole executable backends;
* a warmup + repeat measurement protocol reporting median/p95/min
  wall-clock (medians because timing distributions are long-tailed; p95 so
  regressions hiding in the tail stay visible) plus simulated time for
  round cases;
* cProfile hotspot extraction, so "what got slower" comes with "where";
* a calibration microbench that normalizes ops/sec against the host's
  measured hash and interpreter speed, making ``BENCH_perf.json`` numbers
  comparable across machines;
* a canonical, schema-stable ``BENCH_perf.json`` artifact (fixed key set,
  sorted keys) that CI uploads on every push — values vary with the host,
  the schema never does.

See ``docs/perf.md`` for the workflow and ``repro bench --help`` for the
CLI surface.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import platform
import pstats
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.exp.results import atomic_write_bytes

#: Artifact schema identifier.  Bump only when the key set changes.
BENCH_SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class PerfSettings:
    """Knobs a perf case may read in its ``setup`` hook.

    One settings object parameterizes a whole harness invocation; round
    cases read the protocol sizing fields, micro cases read the batch
    sizing fields.  ``scaled`` derives per-scale variants for the CLI's
    ``--scales`` axis.
    """

    backend: str = "cycledger"
    n: int = 48
    m: int = 4
    lam: int = 2
    referee_size: int = 8
    users_per_shard: int = 24
    tx_per_committee: int = 6
    cross_shard_ratio: float = 0.3
    invalid_ratio: float = 0.1
    seed: int = 0
    committee: int = 48  # signer-set size for the MAC micro cases
    batch: int = 400  # transactions per workload-generator invocation
    messages: int = 2000  # sends per message-pump invocation

    def scaled(self, n: int) -> "PerfSettings":
        """This settings object resized to an ``n``-node deployment.

        Keeps ``(n - referee_size) % m == 0`` (the committee-size
        invariant) by shrinking the referee committee when needed.
        """
        referee = self.referee_size
        while (n - referee) % self.m != 0:
            referee -= 1
        if referee <= 0:
            raise ValueError(f"no valid referee size for n={n}, m={self.m}")
        return replace(self, n=n, referee_size=referee)

    def scale_sized(self, n: int) -> "PerfSettings":
        """Paper-mode scaling for the ``scale:`` family: the committee
        *count* m grows with n so the committee *size* stays bounded
        (c ≈ 30, the regime §VI sizes against), instead of ``scaled``'s
        fixed-m regime where c — and the O(c²) consensus message count —
        grows linearly with n.

        The referee size is searched *upward* (any window of m consecutive
        integers contains a value ≡ n (mod m)), so unlike ``scaled``'s
        decrement-only search it can never fall below the protocol's
        minimum of 3 at large m.
        """
        m = max(self.m, n // 32)
        start = max(self.referee_size, 3)
        referee = next(
            r for r in range(start, start + m) if (n - r) % m == 0
        )
        return replace(self, n=n, m=m, referee_size=referee)


@dataclass(frozen=True)
class PerfCase:
    """One named, reproducible timing case.

    ``setup(settings)`` builds fresh state; ``run(state)`` is the timed
    body (its float return values, if any, are accumulated as simulated
    time); ``baseline(state)`` is the frozen pre-optimization
    implementation of the same work, timed under the identical protocol so
    the artifact carries a measured speedup; ``check(state)`` asserts the
    optimized and baseline paths produce equal results — a perf case that
    got faster by computing something else must fail loudly.
    """

    name: str
    description: str
    category: str  # 'micro' | 'round' | 'scale' | 'soak'
    setup: Callable[[PerfSettings], Any]
    run: Callable[[Any], Any]
    ops: Callable[[PerfSettings], int]
    baseline: Callable[[Any], Any] | None = None
    baseline_setup: Callable[[PerfSettings], Any] | None = None  # defaults to setup
    check: Callable[[PerfSettings], None] | None = None
    backend: str | None = None  # round/scale cases: the backend they drive
    #: ``scale:`` cases pin their own n-axis (the scalability curve); the
    #: CLI ``--scales`` flag, when given, overrides it.
    scales: tuple[int, ...] | None = None
    #: Per-case ceiling on the n-axis: scales above it are skipped, so a
    #: slow rival backend can ride the same curve without blowing the
    #: bench budget.  ``None`` = uncapped.
    max_scale: int | None = None
    #: Per-case ceiling on measured repeats (scale cases: one n=4096
    #: round costs what hundreds of n=48 rounds cost).  ``None`` = the
    #: harness-level repeat count.
    max_repeats: int | None = None
    #: ``soak:`` cases expose their long-horizon measurements (RSS
    #: plateau, rounds, streamed-report count) here: called with the
    #: case's post-run state, returns the artifact row's ``soak`` block.
    #: ``None`` (every other category) renders as ``"soak": null``, so
    #: per-row key sets stay uniform across the whole ``cases[]`` array.
    extras: Callable[[Any], dict[str, Any] | None] | None = None


#: name -> registered perf case.  The CLI and CI resolve cases by name.
PERF_REGISTRY: dict[str, PerfCase] = {}


def register_perf_case(case: PerfCase) -> PerfCase:
    """Register ``case`` under its name; duplicate names are a bug."""
    if case.name in PERF_REGISTRY:
        raise ValueError(f"perf case {case.name!r} is already registered")
    PERF_REGISTRY[case.name] = case
    return case


def perf_case_names(category: str | None = None) -> list[str]:
    """Sorted registered case names, optionally filtered by category."""
    return sorted(
        name
        for name, case in PERF_REGISTRY.items()
        if category is None or case.category == category
    )


# -- timing protocol ---------------------------------------------------------
@dataclass(frozen=True)
class TimingSummary:
    """Distribution summary of one timed function's repeat samples."""

    median: float
    p95: float
    minimum: float
    mean: float
    repeats: int

    @classmethod
    def from_samples(cls, samples: "list[float]") -> "TimingSummary":
        """Summarize raw per-repeat wall-clock samples."""
        arr = np.asarray(samples, dtype=float)
        return cls(
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            minimum=float(arr.min()),
            mean=float(arr.mean()),
            repeats=len(samples),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering for the ``wall`` blocks of the artifact."""
        return {
            "median_s": self.median,
            "p95_s": self.p95,
            "min_s": self.minimum,
            "mean_s": self.mean,
            "repeats": self.repeats,
        }


def _time_fn(
    fn: Callable[[Any], Any], state: Any, warmup: int, repeats: int
) -> tuple[TimingSummary, float]:
    """Run the warmup + repeat protocol on ``fn``.

    Returns the wall-clock summary plus accumulated simulated time (the
    sum of numeric return values over the *measured* repeats; 0.0 when the
    case returns nothing numeric).
    """
    for _ in range(warmup):
        fn(state)
    samples: list[float] = []
    sim_time = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn(state)
        samples.append(time.perf_counter() - start)
        if isinstance(out, (int, float)) and not isinstance(out, bool):
            sim_time += float(out)
    return TimingSummary.from_samples(samples), sim_time


def _time_paired(
    fn: Callable[[Any], Any],
    state: Any,
    baseline_fn: Callable[[Any], Any],
    baseline_state: Any,
    warmup: int,
    repeats: int,
) -> tuple[TimingSummary, TimingSummary, float]:
    """The A/B variant of ``_time_fn``: alternate the two arms repeat by
    repeat instead of timing one arm's whole block after the other's.

    Pairing matters for the long-running ``round:*`` A/B cases: on a
    shared or thermally drifting host, seconds-long un-paired blocks let
    a slow window land entirely on one arm and masquerade as a speedup
    (or regression).  Alternating samples the same machine conditions
    into both arms, so the median *ratio* is robust even when the
    absolute medians wobble.
    """
    for _ in range(warmup):
        baseline_fn(baseline_state)
        fn(state)
    samples: list[float] = []
    baseline_samples: list[float] = []
    sim_time = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        baseline_fn(baseline_state)
        baseline_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        out = fn(state)
        samples.append(time.perf_counter() - start)
        if isinstance(out, (int, float)) and not isinstance(out, bool):
            sim_time += float(out)
    return (
        TimingSummary.from_samples(samples),
        TimingSummary.from_samples(baseline_samples),
        sim_time,
    )


def _profile_hotspots(
    fn: Callable[[Any], Any], state: Any, top: int
) -> list[dict[str, Any]]:
    """One profiled invocation of ``fn``; the top-``top`` functions by
    cumulative time, with paths trimmed for cross-machine readability."""
    profiler = cProfile.Profile()
    profiler.enable()
    fn(state)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows: list[dict[str, Any]] = []
    for (filename, lineno, func), (
        _cc,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        parts = filename.replace("\\", "/").split("/")
        where = "/".join(parts[-2:]) if len(parts) > 1 else filename
        rows.append(
            {
                "function": f"{where}:{lineno}({func})",
                "ncalls": int(ncalls),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
    rows.sort(key=lambda r: (-r["cumtime_s"], r["function"]))
    return rows[:top]


# -- calibration -------------------------------------------------------------
def calibrate() -> dict[str, float]:
    """Measure the host, so case throughputs can be normalized.

    Two single-thread microbenches bracket what the simulator actually
    stresses: SHA-256 over 1 KiB blocks (the crypto substrate) and a pure
    Python attribute/arithmetic loop (interpreter dispatch).  Normalized
    scores in the artifact are ``ops_per_sec / hash_ops_per_sec`` — a
    dimensionless ratio that stays comparable when the same case runs on a
    faster or slower machine.
    """
    block = b"\x00" * 1024
    count = 4000
    start = time.perf_counter()
    for _ in range(count):
        hashlib.sha256(block).digest()
    hash_ops = count / (time.perf_counter() - start)

    total = 0
    loops = 200_000
    start = time.perf_counter()
    for i in range(loops):
        total += i & 7
    loop_ops = loops / (time.perf_counter() - start)
    assert total >= 0
    return {
        "hash_1kib_ops_per_sec": float(hash_ops),
        "pyloop_ops_per_sec": float(loop_ops),
    }


# -- execution ---------------------------------------------------------------
@dataclass(frozen=True)
class CaseResult:
    """Everything one executed perf case produced."""

    case: PerfCase
    settings: PerfSettings
    wall: TimingSummary
    sim_time: float
    ops: int
    baseline_wall: TimingSummary | None
    hotspots: list[dict[str, Any]] = field(default_factory=list)
    extras: dict[str, Any] | None = None  # soak block (None off-category)

    @property
    def ops_per_sec(self) -> float:
        """Case throughput: declared ops over the median wall time."""
        return self.ops / self.wall.median if self.wall.median > 0 else 0.0

    @property
    def speedup(self) -> float | None:
        """Measured baseline/optimized median ratio (>1 means faster)."""
        if self.baseline_wall is None or self.wall.median == 0:
            return None
        return self.baseline_wall.median / self.wall.median

    def to_dict(self, calibration: Mapping[str, float]) -> dict[str, Any]:
        """One ``cases[]`` row of the artifact, normalized against the
        host calibration."""
        hash_ops = calibration.get("hash_1kib_ops_per_sec", 0.0)
        return {
            "name": self.case.name,
            "category": self.case.category,
            "backend": self.case.backend,
            "description": self.case.description,
            "n": self.settings.n,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "normalized_ops": (
                self.ops_per_sec / hash_ops if hash_ops > 0 else 0.0
            ),
            "sim_time": self.sim_time,
            "wall": self.wall.to_dict(),
            "baseline_wall": (
                None if self.baseline_wall is None else self.baseline_wall.to_dict()
            ),
            "speedup": self.speedup,
            "hotspots": list(self.hotspots),
            "soak": None if self.extras is None else dict(self.extras),
        }


def run_case(
    case: PerfCase,
    settings: PerfSettings,
    warmup: int = 1,
    repeats: int = 5,
    profile: bool = False,
    top: int = 10,
) -> CaseResult:
    """Execute one case under the warmup + repeat protocol.

    The equivalence ``check`` (when present) runs first: a case whose
    optimized and baseline paths disagree raises before any timing is
    reported.  Baseline timing uses *fresh* state from the same settings,
    so both arms start from identical conditions, and A/B repeats are
    interleaved (``_time_paired``) so host drift cannot bias one arm.
    """
    if case.check is not None:
        case.check(settings)
    state = case.setup(settings)
    baseline_wall: TimingSummary | None = None
    if case.baseline is not None:
        baseline_state = (case.baseline_setup or case.setup)(settings)
        wall, baseline_wall, sim_time = _time_paired(
            case.run, state, case.baseline, baseline_state, warmup, repeats
        )
    else:
        wall, sim_time = _time_fn(case.run, state, warmup, repeats)
    hotspots: list[dict[str, Any]] = []
    if profile:
        hotspots = _profile_hotspots(case.run, case.setup(settings), top)
    return CaseResult(
        case=case,
        settings=settings,
        wall=wall,
        sim_time=sim_time,
        ops=case.ops(settings),
        baseline_wall=baseline_wall,
        hotspots=hotspots,
        extras=case.extras(state) if case.extras is not None else None,
    )


def run_cases(
    names: Iterable[str],
    settings: PerfSettings,
    scales: Iterable[int] = (),
    warmup: int = 1,
    repeats: int = 5,
    profile: bool = False,
    top: int = 10,
    progress: Callable[[CaseResult], None] | None = None,
) -> dict[str, Any]:
    """Run the named cases and assemble the ``BENCH_perf.json`` payload.

    Micro cases run once on ``settings``; round cases run once per entry
    in ``scales`` (defaulting to ``settings.n``), so one invocation can
    sweep node counts.  Unknown names fail with the known roster.
    """
    resolved: list[PerfCase] = []
    for name in names:
        case = PERF_REGISTRY.get(name)
        if case is None:
            known = ", ".join(sorted(PERF_REGISTRY))
            raise ValueError(f"unknown perf case {name!r} (known: {known})")
        resolved.append(case)
    explicit_scales = list(scales)
    scale_list = explicit_scales or [settings.n]
    calibration = calibrate()
    results: list[CaseResult] = []
    for case in resolved:
        if case.category == "round":
            case_scales = scale_list
        elif case.category in ("scale", "soak"):
            # Scale/soak cases carry their own axis; an explicit --scales
            # overrides it (the CI smoke preset runs them tiny this way).
            case_scales = explicit_scales or list(case.scales or scale_list)
        else:
            case_scales = [settings.n]
        if case.max_scale is not None:
            case_scales = [n for n in case_scales if n <= case.max_scale]
        sized = (
            settings.scale_sized if case.category == "scale" else settings.scaled
        )
        case_repeats = (
            repeats
            if case.max_repeats is None
            else max(1, min(repeats, case.max_repeats))
        )
        # A scale-tier round is seconds long at the top of the curve (and
        # one soak repeat is thousands of rounds); interpreter warmup buys
        # nothing at that granularity and would double the budget, so
        # those categories run cold.
        case_warmup = 0 if case.category in ("scale", "soak") else warmup
        for n in case_scales:
            result = run_case(
                case,
                sized(n),
                warmup=case_warmup,
                repeats=case_repeats,
                profile=profile,
                top=top,
            )
            results.append(result)
            if progress is not None:
                progress(result)
    return bench_payload(results, calibration, settings)


def bench_payload(
    results: "list[CaseResult]",
    calibration: Mapping[str, float],
    settings: PerfSettings,
) -> dict[str, Any]:
    """The canonical ``BENCH_perf.json`` payload (fixed key set)."""
    import repro

    return {
        "schema": BENCH_SCHEMA,
        "version": repro.__version__,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "implementation": sys.implementation.name,
        },
        "calibration": dict(calibration),
        "settings": {
            "backend": settings.backend,
            "seed": settings.seed,
            "m": settings.m,
            "lam": settings.lam,
        },
        "cases": sorted(
            (r.to_dict(calibration) for r in results),
            key=lambda row: (row["name"], row["n"]),
        ),
    }


def write_bench(path: str, payload: Mapping[str, Any]) -> None:
    """Write the artifact with sorted keys and a trailing newline, so two
    payloads with equal values are byte-equal files."""
    atomic_write_bytes(
        path, (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()
    )
