"""The registered perf cases.

Four families:

* ``micro:*`` — A/B cases pitting an optimized hot path against its frozen
  baseline from :mod:`repro.perf.baselines`.  Each carries an equivalence
  ``check`` proving the two paths compute the same thing, so the measured
  speedup can never come from computing less.
* ``round:*`` — end-to-end cases driving one executable backend for whole
  rounds (one per registry entry), timed across node scales by the CLI's
  ``--scales`` axis.  These are the regression tripwires: a slowdown that
  hides from every micro case still shows up here.
* ``scale:*`` — the wall-clock-vs-n scalability curve under paper-mode
  sizing (m grows with n, committee size bounded).
* ``soak:*`` — long-horizon bounded-memory endurance runs: thousands of
  poisson-fed rounds with chain pruning, spent-set compaction, and
  streamed reports, gated on an RSS plateau (docs/perf.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.perf import baselines
from repro.perf.harness import PerfCase, PerfSettings, register_perf_case


# -- micro: batched MAC creation/verification --------------------------------
def _mac_statement(settings: PerfSettings) -> tuple:
    """A realistic certificate statement: a txid tuple the size of a
    committee's TXList inside a CONFIRM frame."""
    txids = tuple(
        bytes([i % 256]) * 32 for i in range(settings.tx_per_committee * 4)
    )
    return ("CONFIRM", 7, ("VOTEROUND", "intra:0"), txids)


@dataclass
class _MacState:
    pki: Any
    keypairs: list
    sigs: list
    statement: tuple
    members: set = field(default_factory=set)


def _mac_setup(settings: PerfSettings) -> _MacState:
    from repro.crypto.pki import PKI
    from repro.crypto.signatures import sign

    pki = PKI()
    keypairs = [pki.generate(("perf", i)) for i in range(settings.committee)]
    statement = _mac_statement(settings)
    sigs = [sign(kp, statement) for kp in keypairs]
    return _MacState(
        pki=pki,
        keypairs=keypairs,
        sigs=sigs,
        statement=statement,
        members={kp.pk for kp in keypairs},
    )


def _mac_verify_run(state: _MacState) -> None:
    from repro.crypto.signatures import signers_of

    signers = signers_of(
        state.pki, state.sigs, state.statement, members=state.members
    )
    assert len(signers) == len(state.sigs)


def _mac_verify_baseline(state: _MacState) -> None:
    signers = baselines.naive_verify_loop(
        state.pki, state.sigs, state.statement, members=state.members
    )
    assert len(signers) == len(state.sigs)


def _mac_verify_check(settings: PerfSettings) -> None:
    from repro.crypto.signatures import signers_of

    state = _mac_setup(settings)
    batched = signers_of(
        state.pki, state.sigs, state.statement, members=state.members
    )
    naive = baselines.naive_verify_loop(
        state.pki, state.sigs, state.statement, members=state.members
    )
    if batched != naive:
        raise AssertionError("signers_of disagrees with the scalar verify loop")


register_perf_case(
    PerfCase(
        name="micro:mac_verify",
        description=(
            "certificate check: one statement against a committee-sized "
            "signer set (signers_of vs per-signature verify loop)"
        ),
        category="micro",
        setup=_mac_setup,
        run=_mac_verify_run,
        baseline=_mac_verify_baseline,
        check=_mac_verify_check,
        ops=lambda s: s.committee,
    )
)


def _mac_sign_run(state: _MacState) -> None:
    from repro.crypto.signatures import sign_many

    sigs = sign_many(state.keypairs, state.statement)
    assert len(sigs) == len(state.keypairs)


def _mac_sign_baseline(state: _MacState) -> None:
    sigs = baselines.naive_sign_loop(state.keypairs, state.statement)
    assert len(sigs) == len(state.keypairs)


def _mac_sign_check(settings: PerfSettings) -> None:
    from repro.crypto.signatures import sign_many

    state = _mac_setup(settings)
    if sign_many(state.keypairs, state.statement) != baselines.naive_sign_loop(
        state.keypairs, state.statement
    ):
        raise AssertionError("sign_many disagrees with the scalar sign loop")


register_perf_case(
    PerfCase(
        name="micro:mac_sign",
        description=(
            "recipient-set signing: one statement under a committee of "
            "keys (sign_many vs per-recipient sign loop)"
        ),
        category="micro",
        setup=_mac_setup,
        run=_mac_sign_run,
        baseline=_mac_sign_baseline,
        check=_mac_sign_check,
        ops=lambda s: s.committee,
    )
)


# -- micro: workload generation ----------------------------------------------
@dataclass
class _WorkloadState:
    generator: Any
    batch: int


def _make_workload(settings: PerfSettings, naive: bool) -> Any:
    from repro.ledger.workload import WorkloadGenerator

    factory = baselines.NaiveWorkloadGenerator if naive else WorkloadGenerator
    return factory(
        m=settings.m,
        users_per_shard=max(settings.users_per_shard, 48),
        rng=np.random.default_rng(settings.seed),
    )


def _workload_setup(settings: PerfSettings) -> _WorkloadState:
    return _WorkloadState(
        generator=_make_workload(settings, naive=False), batch=settings.batch
    )


def _workload_setup_naive(settings: PerfSettings) -> _WorkloadState:
    return _WorkloadState(
        generator=_make_workload(settings, naive=True), batch=settings.batch
    )


def _workload_run(state: _WorkloadState) -> None:
    batch = state.generator.generate_batch(
        state.batch, cross_shard_ratio=0.3, invalid_ratio=0.5
    )
    state.generator.confirm_round({t.tx.txid for t in batch})


def _workload_check(settings: PerfSettings) -> None:
    fast = _make_workload(settings, naive=False)
    naive = _make_workload(settings, naive=True)
    for _ in range(3):
        a = fast.generate_batch(64, cross_shard_ratio=0.3, invalid_ratio=0.5)
        b = naive.generate_batch(64, cross_shard_ratio=0.3, invalid_ratio=0.5)
        if [t.tx.txid for t in a] != [t.tx.txid for t in b] or [
            t.defect for t in a
        ] != [t.defect for t in b]:
            raise AssertionError(
                "optimized workload diverged from the naive generator"
            )
        fast.confirm_round({t.tx.txid for t in a})
        naive.confirm_round({t.tx.txid for t in b})


register_perf_case(
    PerfCase(
        name="micro:workload_gen",
        description=(
            "transaction batch generation with defect injection "
            "(tuple-indexed defect draws vs Generator.choice)"
        ),
        category="micro",
        setup=_workload_setup,
        run=_workload_run,
        baseline=_workload_run,
        baseline_setup=_workload_setup_naive,
        check=_workload_check,
        ops=lambda s: s.batch,
    )
)


# -- micro: message fabric ---------------------------------------------------
@dataclass
class _PumpState:
    net: Any
    nodes: list
    payload: Any
    messages: int
    counter: dict = field(default_factory=dict)


def _pump_payload() -> tuple:
    """A protocol-shaped payload: signature + transaction + framing, so
    ``payload_size`` recursion is exercised like a real TX_LIST send."""
    from repro.crypto.pki import PKI
    from repro.crypto.signatures import sign
    from repro.ledger.transaction import Transaction, TxInput, TxOutput

    pki = PKI()
    kp = pki.generate("pump")
    txs = tuple(
        Transaction(
            inputs=(TxInput(bytes([i]) * 32, 0),),
            outputs=(
                TxOutput("user-00000001", 5),
                TxOutput("user-00000002", 3),
            ),
            nonce=i,
        )
        for i in range(8)
    )
    sig = sign(kp, ("PUMP", txs[0].txid))
    return ("TX_LIST", txs, sig, 42)


def _pump_state(settings: PerfSettings, naive: bool) -> _PumpState:
    from repro.crypto.pki import PKI
    from repro.net.node import ProtocolNode
    from repro.net.params import NetworkParams
    from repro.net.simulator import Network

    factory = baselines.NaiveNetwork if naive else Network
    kwargs = {} if naive else {"pool_envelopes": True}
    net = factory(
        NetworkParams(), np.random.default_rng(settings.seed), **kwargs
    )
    pki = PKI()
    nodes = [ProtocolNode(i, pki.generate(("pump", i))) for i in range(8)]
    counter = {"received": 0}

    def on_msg(message: Any) -> None:
        """Count a delivery (the pump only measures fabric overhead)."""
        counter["received"] += 1

    for node in nodes:
        node.on("PUMP", on_msg)
        net.add_node(node)
    return _PumpState(
        net=net,
        nodes=nodes,
        payload=_pump_payload(),
        messages=settings.messages,
        counter=counter,
    )


def _pump_setup(settings: PerfSettings) -> _PumpState:
    return _pump_state(settings, naive=False)


def _pump_setup_naive(settings: PerfSettings) -> _PumpState:
    return _pump_state(settings, naive=True)


def _pump_run(state: _PumpState) -> None:
    net = state.net
    fanout = len(state.nodes)
    payload = state.payload
    for i in range(state.messages):
        net.send(i % fanout, (i + 1) % fanout, "PUMP", payload)
        if net.pending >= 256:
            net.run()
    net.run()


def _pump_check(settings: PerfSettings) -> None:
    fast = _pump_state(settings, naive=False)
    naive = _pump_state(settings, naive=True)
    _pump_run(fast)
    _pump_run(naive)
    same_count = fast.counter["received"] == naive.counter["received"]
    same_clock = abs(fast.net.now - naive.net.now) < 1e-12
    same_bytes = (
        fast.net.metrics.total_bytes() == naive.net.metrics.total_bytes()
    )
    if not (same_count and same_clock and same_bytes):
        raise AssertionError(
            "pooled/buffered fabric diverged from the naive fabric: "
            f"count {fast.counter['received']} vs {naive.counter['received']}, "
            f"clock {fast.net.now} vs {naive.net.now}"
        )


register_perf_case(
    PerfCase(
        name="micro:message_pump",
        description=(
            "message fabric throughput: envelope pooling + block-buffered "
            "jitter + type-dispatched payload sizing vs per-message "
            "allocation, scalar draws and introspective sizing"
        ),
        category="micro",
        setup=_pump_setup,
        run=_pump_run,
        baseline=_pump_run,
        baseline_setup=_pump_setup_naive,
        check=_pump_check,
        ops=lambda s: s.messages,
    )
)


# -- round: end-to-end backend rounds ----------------------------------------
def _round_setup_for(backend: str):
    """Setup-factory for ``round:*`` cases: builds the named backend."""

    def setup(settings: PerfSettings) -> Any:
        """Construct the backend sized by the harness settings."""
        from repro.backends import create_backend
        from repro.core.config import ProtocolParams

        params = ProtocolParams(
            n=settings.n,
            m=settings.m,
            lam=settings.lam,
            referee_size=settings.referee_size,
            seed=settings.seed,
            users_per_shard=settings.users_per_shard,
            tx_per_committee=settings.tx_per_committee,
            cross_shard_ratio=settings.cross_shard_ratio,
            invalid_ratio=settings.invalid_ratio,
        )
        return create_backend(backend, params)

    return setup


def _round_run(ledger: Any) -> float:
    report = ledger.run_round()
    return float(report.sim_time)


def _register_round_cases() -> None:
    from repro.backends import BACKEND_REGISTRY

    for backend in sorted(BACKEND_REGISTRY):
        register_perf_case(
            PerfCase(
                name=f"round:{backend}",
                description=(
                    f"one full {backend} round: sortition, committees, "
                    "consensus phases, packing (end-to-end tripwire)"
                ),
                category="round",
                setup=_round_setup_for(backend),
                run=_round_run,
                ops=lambda s: 2 * s.m * s.tx_per_committee,
                backend=backend,
            )
        )


_register_round_cases()


# -- scale: the scalability curve to n=4096 -----------------------------------
#: The n-axis of the scalability curve.  Sizing is paper-mode
#: (``PerfSettings.scale_sized``): m grows with n so the committee size
#: stays ≈ 30 and the per-round cost is dominated by committee *count*,
#: not by O(c²) consensus blow-up inside ever-larger committees.
SCALE_CURVE = (128, 256, 512, 1024, 2048, 4096)

#: Per-backend ceilings on the curve.  All three currently ride it to the
#: top (a CycLedger round at n=4096 is ~10⁶ messages and finishes well
#: inside the bench budget; the rivals are far cheaper); lower a backend's
#: cap here if it ever grows a superlinear phase instead of timing out
#: the whole bench.
SCALE_CAPS = {"cycledger": 4096, "rapidchain": 4096, "omniledger_sim": 4096}


def _register_scale_cases() -> None:
    from repro.backends import BACKEND_REGISTRY

    for backend in sorted(BACKEND_REGISTRY):
        register_perf_case(
            PerfCase(
                name=f"scale:{backend}",
                description=(
                    f"wall-clock-vs-n scalability curve for {backend}: one "
                    "full round per curve point under paper-mode sizing "
                    "(m grows with n, committee size bounded)"
                ),
                category="scale",
                setup=_round_setup_for(backend),
                run=_round_run,
                ops=lambda s: 2 * s.m * s.tx_per_committee,
                backend=backend,
                scales=SCALE_CURVE,
                max_scale=SCALE_CAPS.get(backend),
                max_repeats=2,
            )
        )


_register_scale_cases()


# -- round: continuous-time overlap engine ------------------------------------
def _overlap_setup(settings: PerfSettings) -> Any:
    """CycLedger on the round-overlap engine: semicommit-pipelined
    timeline plus a persistent poisson mempool, so the case times the
    continuous-clock machinery (queue settlement, overlap scheduling) on
    top of the plain round."""
    from repro.backends import create_backend
    from repro.core.config import ProtocolParams

    params = ProtocolParams(
        n=settings.n,
        m=settings.m,
        lam=settings.lam,
        referee_size=settings.referee_size,
        seed=settings.seed,
        users_per_shard=settings.users_per_shard,
        tx_per_committee=settings.tx_per_committee,
        cross_shard_ratio=settings.cross_shard_ratio,
        invalid_ratio=settings.invalid_ratio,
        overlap="semicommit",
        arrival_process="poisson",
        arrival_rate=float(2 * settings.m * settings.tx_per_committee),
        mempool_max_age=4,
    )
    return create_backend("cycledger", params)


register_perf_case(
    PerfCase(
        name="round:cycledger_overlap",
        description=(
            "one CycLedger round on the continuous-time overlap engine: "
            "poisson mempool feed, FIFO settlement, semicommit-pipelined "
            "timeline scheduling"
        ),
        category="round",
        setup=_overlap_setup,
        run=_round_run,
        ops=lambda s: 2 * s.m * s.tx_per_committee,
        backend="cycledger",
    )
)


# -- soak: long-horizon bounded-memory endurance run ---------------------------
#: Rounds per soak repeat in the committed artifact.  Long enough that an
#: unbounded structure (report list, chain bodies, spent-set) would grow
#: visibly past the warmup point, short enough for the bench budget; the
#: 10k-round acceptance run uses the same state via ``soak_state``.
SOAK_ROUNDS = 2000

#: Round at which the RSS reference sample is taken.  The plateau gate
#: asserts peak RSS after this point stays within ``SOAK_RSS_FACTOR`` of
#: it — the memory-boundedness contract from docs/perf.md.
SOAK_WARMUP_ROUND = 500
SOAK_RSS_FACTOR = 1.5

#: How often (in rounds) the soak loop samples RSS and compacts the
#: ledger's UTXO dicts.
SOAK_SAMPLE_EVERY = 50
SOAK_COMPACT_EVERY = 500


@dataclass
class _SoakState:
    """Mutable carrier threaded from soak setup through run to extras."""

    ledger: Any
    rounds: int
    warmup_round: int
    rss_warmup_kb: int = 0
    rss_peak_kb: int = 0
    rounds_done: int = 0


def soak_state(settings: PerfSettings, rounds: int = SOAK_ROUNDS) -> _SoakState:
    """A bounded-memory CycLedger soak deployment: poisson arrivals into a
    persistent mempool, chain bodies pruned behind a retention window,
    the workload's spent-history trimmed, round reports dropped after
    emission, and RSS sampling on.  Tests and the 10k acceptance run
    reuse this with their own round budgets."""
    from repro.backends import create_backend
    from repro.core.config import ProtocolParams

    params = ProtocolParams(
        n=settings.n,
        m=settings.m,
        lam=settings.lam,
        referee_size=settings.referee_size,
        seed=settings.seed,
        users_per_shard=settings.users_per_shard,
        tx_per_committee=settings.tx_per_committee,
        cross_shard_ratio=settings.cross_shard_ratio,
        invalid_ratio=settings.invalid_ratio,
        arrival_process="poisson",
        arrival_rate=float(2 * settings.m * settings.tx_per_committee),
        mempool_max_age=4,
        chain_retention=8,
        spent_retention=4096,
        sample_rss=True,
    )
    ledger = create_backend("cycledger", params)
    ledger.report_retention = 1  # stream-and-drop; totals come from extras
    return _SoakState(
        ledger=ledger, rounds=rounds, warmup_round=SOAK_WARMUP_ROUND
    )


def _soak_setup(settings: PerfSettings) -> _SoakState:
    return soak_state(settings)


def run_soak(state: _SoakState) -> float:
    """Drive the soak loop; returns accumulated simulated time.

    Samples RSS every ``SOAK_SAMPLE_EVERY`` rounds, records the warmup
    reference at ``state.warmup_round``, and asserts the plateau gate at
    the end (skipped when RSS is unreadable, e.g. no procfs)."""
    from repro.core.reporting import rss_kb
    from repro.ledger.checkpoint import compact_ledger

    ledger = state.ledger
    sim_time = 0.0
    for _ in range(state.rounds):
        report = ledger.run_round()
        sim_time += float(report.sim_time)
        state.rounds_done += 1
        done = state.rounds_done
        if done % SOAK_COMPACT_EVERY == 0:
            compact_ledger(ledger)
        if done == state.warmup_round:
            state.rss_warmup_kb = rss_kb()
        elif done > state.warmup_round and done % SOAK_SAMPLE_EVERY == 0:
            state.rss_peak_kb = max(state.rss_peak_kb, rss_kb())
    state.rss_peak_kb = max(state.rss_peak_kb, rss_kb())
    if state.rss_warmup_kb > 0 and state.rss_peak_kb > 0:
        if state.rss_peak_kb > SOAK_RSS_FACTOR * state.rss_warmup_kb:
            raise AssertionError(
                "soak RSS plateau violated: peak "
                f"{state.rss_peak_kb} KiB > {SOAK_RSS_FACTOR}x warmup "
                f"{state.rss_warmup_kb} KiB at round {state.warmup_round}"
            )
    return sim_time


def soak_extras(state: _SoakState) -> dict[str, Any]:
    """The artifact row's ``soak`` block (see ``PerfCase.extras``)."""
    warmup = state.rss_warmup_kb
    return {
        "rounds": state.rounds_done,
        "rss_warmup_kb": warmup,
        "rss_peak_kb": state.rss_peak_kb,
        "plateau_ratio": (
            state.rss_peak_kb / warmup if warmup > 0 else None
        ),
        "reports_streamed": state.ledger.reports_streamed,
        "total_transactions": state.ledger.chain.total_transactions(),
        "chain_retention": state.ledger.params.chain_retention,
    }


register_perf_case(
    PerfCase(
        name="soak:cycledger",
        description=(
            f"{SOAK_ROUNDS}-round bounded-memory CycLedger endurance run: "
            "poisson mempool feed, chain-body pruning, spent-set "
            "compaction, streamed round reports; asserts peak RSS stays "
            f"within {SOAK_RSS_FACTOR}x the round-{SOAK_WARMUP_ROUND} "
            "plateau"
        ),
        category="soak",
        setup=_soak_setup,
        run=run_soak,
        ops=lambda s: SOAK_ROUNDS * 2 * s.m * s.tx_per_committee,
        backend="cycledger",
        scales=(64,),
        max_repeats=1,
        extras=soak_extras,
    )
)


# -- round: shard-parallel committee execution --------------------------------
def _shards_params_for(settings: PerfSettings, workers: int):
    from repro.core.config import ProtocolParams

    return ProtocolParams(
        n=settings.n,
        m=settings.m,
        lam=settings.lam,
        referee_size=settings.referee_size,
        seed=settings.seed,
        users_per_shard=settings.users_per_shard,
        tx_per_committee=settings.tx_per_committee,
        cross_shard_ratio=settings.cross_shard_ratio,
        invalid_ratio=settings.invalid_ratio,
        shard_workers=workers,
    )


def _shards_setup(settings: PerfSettings) -> Any:
    """CycLedger with per-committee work fanned across a 2-worker shard
    pool (repro.core.shards); the A arm of the speedup ratio."""
    from repro.backends import create_backend

    return create_backend("cycledger", _shards_params_for(settings, 2))


def _shards_setup_legacy(settings: PerfSettings) -> Any:
    """The historical interleaved path (``shard_workers=0``): all
    committees' sessions multiplexed on the one global network — the
    execution model every prior PR measured, and the baseline the shard
    fan-out is meant to beat."""
    from repro.backends import create_backend

    return create_backend("cycledger", _shards_params_for(settings, 0))


def _shards_check(settings: PerfSettings) -> None:
    """The shard path's core invariant, asserted before any timing: the
    pool arm must finish a round in byte-identical ledger state to the
    sharded-serial reference (``shard_workers=1``).  The legacy baseline
    arm consumes the shared RNG streams differently, so it is compared
    for liveness only, not byte equality."""
    pool = _shards_setup(settings)
    serial = create_backend_serial(settings)
    legacy = _shards_setup_legacy(settings)
    pool_report = pool.run_round()
    serial_report = serial.run_round()
    legacy_report = legacy.run_round()
    assert pool.chain.head.hash == serial.chain.head.hash
    assert pool.reputation == serial.reputation
    assert pool_report.sim_time == serial_report.sim_time
    assert pool_report.messages == serial_report.messages
    assert legacy.chain.head.hash
    assert legacy_report.packed >= 0


def create_backend_serial(settings: PerfSettings) -> Any:
    """Sharded-serial reference arm used only by the equivalence check."""
    from repro.backends import create_backend

    return create_backend("cycledger", _shards_params_for(settings, 1))


register_perf_case(
    PerfCase(
        name="round:cycledger_shards",
        description=(
            "one CycLedger round with per-committee semicommit/vote work "
            "fanned across a 2-worker shard pool vs the historical "
            "interleaved execution (speedup = shard fan-out over the "
            "serial path; pool==sharded-serial byte-identity is asserted "
            "separately by the check)"
        ),
        category="round",
        setup=_shards_setup,
        run=_round_run,
        baseline=_round_run,
        baseline_setup=_shards_setup_legacy,
        check=_shards_check,
        ops=lambda s: 2 * s.m * s.tx_per_committee,
        backend="cycledger",
    )
)
