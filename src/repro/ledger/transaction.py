"""Transactions in the UTXO model."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import H, H_int


def shard_of_address(address: str, m: int) -> int:
    """Deterministic address → shard assignment (users "almost equally
    divided into m shards", §III-D)."""
    if m <= 0:
        raise ValueError("m must be positive")
    return H_int("SHARD", address) % m


@dataclass(frozen=True, slots=True)
class TxInput:
    """Reference to an unspent output: ``(txid, index)``."""

    txid: bytes
    index: int


@dataclass(frozen=True, slots=True)
class TxOutput:
    """A spendable coin: owner address and amount."""

    address: str
    amount: int


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction.

    ``nonce`` disambiguates otherwise-identical transfers (same payer, payee
    and amount) so txids are unique.  The fee is implicit:
    ``sum(inputs) - sum(outputs)``, computable only against a UTXO set.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    nonce: int = 0

    @cached_property
    def txid(self) -> bytes:
        return H(
            "TX",
            tuple((i.txid, i.index) for i in self.inputs),
            tuple((o.address, o.amount) for o in self.outputs),
            self.nonce,
        )

    @property
    def is_coinbase(self) -> bool:
        return len(self.inputs) == 0

    def output_total(self) -> int:
        return sum(o.amount for o in self.outputs)

    def output_shards(self, m: int) -> set[int]:
        return {shard_of_address(o.address, m) for o in self.outputs}

    def outpoints(self) -> tuple[tuple[bytes, int], ...]:
        """The (txid, index) pairs this transaction consumes."""
        return tuple((i.txid, i.index) for i in self.inputs)

    def __repr__(self) -> str:
        return (
            f"Transaction({self.txid.hex()[:10]}…, {len(self.inputs)} in, "
            f"{len(self.outputs)} out)"
        )


def make_transfer(
    source: tuple[bytes, int],
    source_amount: int,
    payee: str,
    amount: int,
    change_address: str,
    fee: int = 1,
    nonce: int = 0,
) -> Transaction:
    """Build a single-input transfer paying ``amount`` to ``payee`` with the
    remainder (minus ``fee``) returned to ``change_address``.

    Raises if the source cannot cover amount + fee — workload code should
    only build coverable transfers (invalid transactions are injected
    deliberately, not by accident).
    """
    if amount <= 0:
        raise ValueError("amount must be positive")
    if fee < 0:
        raise ValueError("fee cannot be negative")
    change = source_amount - amount - fee
    if change < 0:
        raise ValueError(
            f"source {source_amount} cannot cover amount {amount} + fee {fee}"
        )
    outputs = [TxOutput(payee, amount)]
    if change > 0:
        outputs.append(TxOutput(change_address, change))
    return Transaction(
        inputs=(TxInput(*source),), outputs=tuple(outputs), nonce=nonce
    )


def make_coinbase(outputs: list[TxOutput], nonce: int = 0) -> Transaction:
    """Genesis / reward transaction creating coins from nothing."""
    return Transaction(inputs=(), outputs=tuple(outputs), nonce=nonce)
