"""UTXO set and the authentication function V (§III-D).

"All processors have access to an authentication function V to verify
whether a transaction is legitimate, e.g., the sum of all inputs of the
transaction is no less than the sum of all outputs and there is no
double-spending."
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator

from repro.ledger.transaction import Transaction, TxOutput


class ValidationResult(Enum):
    """Outcome of V, with the reason for rejection (useful to tests and to
    honest voters explaining their No votes)."""

    VALID = "valid"
    MISSING_INPUT = "missing_input"  # spent already or never existed
    DUPLICATE_INPUT = "duplicate_input"  # same outpoint twice in one tx
    OVERSPEND = "overspend"  # outputs exceed inputs
    EMPTY = "empty"  # no outputs
    NONPOSITIVE_OUTPUT = "nonpositive_output"

    def __bool__(self) -> bool:
        return self is ValidationResult.VALID


class UTXOSet:
    """Mapping of outpoints ``(txid, index)`` to unspent outputs.

    Mutation is transactional at block granularity via
    :meth:`apply_transaction` and :meth:`snapshot`/:meth:`restore` — a
    committee that sees a proposed block revalidates against a snapshot and
    only commits once the block is accepted.
    """

    def __init__(self) -> None:
        self._utxos: dict[tuple[bytes, int], TxOutput] = {}

    # -- queries -----------------------------------------------------------
    def __contains__(self, outpoint: tuple[bytes, int]) -> bool:
        return outpoint in self._utxos

    def __len__(self) -> int:
        return len(self._utxos)

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        return iter(self._utxos)

    def get(self, outpoint: tuple[bytes, int]) -> TxOutput | None:
        return self._utxos.get(outpoint)

    def amount(self, outpoint: tuple[bytes, int]) -> int:
        output = self._utxos.get(outpoint)
        return 0 if output is None else output.amount

    def total_value(self) -> int:
        return sum(o.amount for o in self._utxos.values())

    def outpoints_of(self, address: str) -> list[tuple[bytes, int]]:
        return [op for op, out in self._utxos.items() if out.address == address]

    # -- mutation --------------------------------------------------------------
    def add(self, outpoint: tuple[bytes, int], output: TxOutput) -> None:
        if outpoint in self._utxos:
            raise ValueError(f"outpoint {outpoint[0].hex()[:8]}:{outpoint[1]} exists")
        self._utxos[outpoint] = output

    def spend(self, outpoint: tuple[bytes, int]) -> TxOutput:
        try:
            return self._utxos.pop(outpoint)
        except KeyError:
            raise KeyError(
                f"outpoint {outpoint[0].hex()[:8]}:{outpoint[1]} not unspent"
            ) from None

    def apply_transaction(self, tx: Transaction) -> None:
        """Spend the inputs and create the outputs of a *validated* tx."""
        for outpoint in tx.outpoints():
            self.spend(outpoint)
        for index, output in enumerate(tx.outputs):
            self.add((tx.txid, index), output)

    def snapshot(self) -> dict[tuple[bytes, int], TxOutput]:
        return dict(self._utxos)

    def restore(self, snapshot: dict[tuple[bytes, int], TxOutput]) -> None:
        self._utxos = dict(snapshot)

    def compact(self) -> None:
        """Rebuild the backing dict at its live size.

        A long run churns millions of outpoints through the set; CPython
        dicts never shrink their hash table after deletions, so a mostly-
        drained set can pin the high-water capacity forever.  Rebuilding is
        content-neutral: same keys, same values, same iteration order.
        """
        self._utxos = dict(self._utxos)


def validate_transaction(tx: Transaction, utxos: UTXOSet) -> ValidationResult:
    """The authentication function V.

    Coinbase transactions are only created by the protocol itself (genesis
    and fee distribution) and never enter V — user-submitted coinbases are
    rejected as OVERSPEND (they create value from nothing).
    """
    if not tx.outputs:
        return ValidationResult.EMPTY
    if any(o.amount <= 0 for o in tx.outputs):
        return ValidationResult.NONPOSITIVE_OUTPUT
    outpoints = tx.outpoints()
    if len(set(outpoints)) != len(outpoints):
        return ValidationResult.DUPLICATE_INPUT
    total_in = 0
    for outpoint in outpoints:
        output = utxos.get(outpoint)
        if output is None:
            return ValidationResult.MISSING_INPUT
        total_in += output.amount
    if total_in < tx.output_total():
        return ValidationResult.OVERSPEND
    return ValidationResult.VALID


def transaction_fee(tx: Transaction, utxos: UTXOSet) -> int:
    """Fee = inputs - outputs; only meaningful for transactions valid
    against ``utxos``."""
    total_in = sum(utxos.amount(op) for op in tx.outpoints())
    return total_in - tx.output_total()


def validate_batch(
    txs: Iterable[Transaction], utxos: UTXOSet, sequential: bool = True
) -> list[ValidationResult]:
    """Validate a list in order.  With ``sequential=True`` each valid tx is
    applied to a scratch copy before the next is checked, so intra-batch
    double spends are caught (the committee-level semantics)."""
    if not sequential:
        return [validate_transaction(tx, utxos) for tx in txs]
    scratch = UTXOSet()
    scratch.restore(utxos.snapshot())
    results = []
    for tx in txs:
        result = validate_transaction(tx, scratch)
        results.append(result)
        if result:
            scratch.apply_transaction(tx)
    return results
