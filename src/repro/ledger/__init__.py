"""UTXO ledger substrate.

The paper's problem definition (§III-D): users are divided into ``m``
shards; each shard's state (identities + Unspent Transaction Outputs) is
maintained by the corresponding committee; all processors share an
authentication function ``V`` that checks legitimacy (inputs cover outputs,
no double spending).
"""

from repro.ledger.transaction import (
    Transaction,
    TxInput,
    TxOutput,
    shard_of_address,
    make_transfer,
)
from repro.ledger.utxo import UTXOSet, ValidationResult, validate_transaction
from repro.ledger.state import ShardState
from repro.ledger.chain import Block, Chain, GENESIS_PREV_HASH
from repro.ledger.workload import WorkloadGenerator, TaggedTx

__all__ = [
    "Transaction",
    "TxInput",
    "TxOutput",
    "shard_of_address",
    "make_transfer",
    "UTXOSet",
    "ValidationResult",
    "validate_transaction",
    "ShardState",
    "Block",
    "Chain",
    "GENESIS_PREV_HASH",
    "WorkloadGenerator",
    "TaggedTx",
]
