"""Synthetic transaction workload generator and the persistent mempool.

The paper assumes "a large set of transactions are continuously sent to our
network by external users" (§III-D).  This generator plays those users:

* a population of addresses pre-bucketed by shard;
* a genesis coinbase endowing every address;
* batches with a configurable cross-shard ratio (output shard differs from
  the input's home shard) and an invalid ratio (double spends, overspends,
  phantom inputs) to exercise V and the No votes;
* its own spend tracking so *intended-valid* transactions never collide,
  while injected double spends are deliberate.

Every generated transaction is wrapped in :class:`TaggedTx`, carrying ground
truth (home shard, output shards, intended validity and the injected defect)
so tests and benchmarks can score committee decisions exactly.

:class:`TxMempool` sits between the generator and the round loop.  In
``legacy`` mode it reproduces the historical draw-a-batch-per-round model
byte-exactly (same RNG consumption, unpacked transactions rolled back each
round).  In ``poisson`` mode transactions arrive via a rate process on the
continuous simulation clock, survive unpacked rounds in FIFO order, age
while queued, and are evicted only by TTL or capacity backpressure — the
sustained-load model the round-overlap engine measures latency against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.ledger.transaction import (
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
    shard_of_address,
)
from repro.ledger.utxo import UTXOSet


@dataclass(frozen=True)
class TaggedTx:
    """A generated transaction plus generator-side ground truth."""

    tx: Transaction
    home_shard: int  # shard owning all inputs
    cross_shard: bool  # any output in a different shard
    intended_valid: bool
    defect: str | None = None  # 'double_spend' | 'overspend' | 'phantom_input'


class WorkloadGenerator:
    """Deterministic transaction stream for ``m`` shards."""

    def __init__(
        self,
        m: int,
        users_per_shard: int,
        rng: np.random.Generator,
        endowment: int = 1_000,
        fee: int = 1,
        spent_retention: int = 0,
    ) -> None:
        if m <= 0 or users_per_shard <= 0:
            raise ValueError("m and users_per_shard must be positive")
        if spent_retention < 0:
            raise ValueError("spent_retention must be >= 0")
        self.m = m
        self.rng = rng
        self.fee = fee
        self.endowment = endowment
        # Bound on the confirmed-spent history the double-spend injector
        # draws from (0 = unbounded).  Trimming changes which historical
        # outputs get re-spent, so bounded runs are NOT byte-comparable to
        # unbounded ones — the bound is opt-in for long soaks only.
        self.spent_retention = spent_retention
        self._nonce = 0
        # Legacy batches flush created outputs into the spendable pool at
        # batch end (every unpacked tx is rolled back the same round, so
        # nothing off-chain ever gets re-spent).  The persistent mempool
        # sets this True: created outputs are withheld until the creating
        # transaction actually packs (forget_txids), so intended-valid
        # draws never chain-spend an off-chain output and eviction can
        # never double-count value.
        self.defer_created = False
        # Bucket addresses by their hash-derived shard until each bucket is
        # full; the address space is dense enough that this terminates fast.
        # A single countdown of remaining open slots replaces the previous
        # any()-scan over all buckets per candidate address, which made
        # generator construction O(addresses x m).
        self.addresses_by_shard: list[list[str]] = [[] for _ in range(m)]
        open_slots = m * users_per_shard
        serial = 0
        while open_slots:
            address = f"user-{serial:08d}"
            serial += 1
            bucket = self.addresses_by_shard[shard_of_address(address, m)]
            if len(bucket) < users_per_shard:
                bucket.append(address)
                open_slots -= 1
        self.genesis_tx = make_coinbase(
            [
                TxOutput(address, endowment)
                for bucket in self.addresses_by_shard
                for address in bucket
            ]
        )
        # Generator-side view of what is spendable, per shard.
        self._spendable: list[list[tuple[tuple[bytes, int], str, int]]] = [
            [] for _ in range(m)
        ]
        for index, output in enumerate(self.genesis_tx.outputs):
            shard = shard_of_address(output.address, m)
            self._spendable[shard].append(
                ((self.genesis_tx.txid, index), output.address, output.amount)
            )
        self._spent: list[tuple[tuple[bytes, int], str, int]] = []
        self._spent_this_batch: list[tuple[tuple[bytes, int], str, int]] = []
        self._pending: list[tuple[int, tuple[tuple[bytes, int], str, int]]] = []
        # txid -> (home, consumed entry, [(shard, created entry), ...]) for
        # every generated-but-unconfirmed transaction, so unpacked (or
        # mempool-evicted) txs can be undone.  In the legacy per-round flow
        # at most one batch is ever outstanding.
        self._effects: dict[
            bytes,
            tuple[int, tuple, list[tuple[int, tuple]]],
        ] = {}

    # -- helpers ----------------------------------------------------------
    def genesis_utxos(self) -> UTXOSet:
        utxos = UTXOSet()
        for index, output in enumerate(self.genesis_tx.outputs):
            utxos.add((self.genesis_tx.txid, index), output)
        return utxos

    def _next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce

    def _pick_payee(self, home: int, cross: bool) -> str:
        if cross and self.m > 1:
            other = int(self.rng.integers(0, self.m - 1))
            if other >= home:
                other += 1
            shard = other
        else:
            shard = home
        bucket = self.addresses_by_shard[shard]
        return bucket[int(self.rng.integers(0, len(bucket)))]

    def _build_valid(self, home: int, cross: bool) -> TaggedTx | None:
        if not self._spendable[home]:
            return None
        idx = int(self.rng.integers(0, len(self._spendable[home])))
        outpoint, owner, amount = self._spendable[home].pop(idx)
        # Visible to the double-spend injector only from the next batch:
        # within a batch every tx is validated against round-start UTXOs,
        # where a same-batch "double spend" would in fact be valid.
        self._spent_this_batch.append((outpoint, owner, amount))
        payee = self._pick_payee(home, cross)
        spend = max(1, int(self.rng.integers(1, max(2, amount - self.fee))))
        change = amount - spend - self.fee
        outputs = [TxOutput(payee, spend)]
        if change > 0:
            outputs.append(TxOutput(owner, change))
        tx = Transaction(
            inputs=(TxInput(*outpoint),),
            outputs=tuple(outputs),
            nonce=self._next_nonce(),
        )
        # Outputs created in this batch become spendable only from the NEXT
        # batch: committees validate against round-start UTXOs, so a chained
        # spend inside one round would (correctly) be voted No (§VIII-B).
        created: list[tuple[int, tuple]] = []
        if change > 0:
            created.append((home, ((tx.txid, 1), owner, change)))
        out_shard = shard_of_address(payee, self.m)
        created.append((out_shard, ((tx.txid, 0), payee, spend)))
        self._pending.extend(created)
        self._effects[tx.txid] = (
            home,
            (outpoint, owner, amount),
            created,
        )
        return TaggedTx(
            tx=tx,
            home_shard=home,
            cross_shard=out_shard != home,
            intended_valid=True,
        )

    _DEFECTS = ("double_spend", "overspend", "phantom_input")

    def _build_invalid(self, home: int, cross: bool) -> TaggedTx:
        # Indexing the tuple with one bounded-integer draw is
        # stream-identical to ``rng.choice(list)`` — Generator.choice is
        # itself ``integers(0, len)`` under the hood, but wrapped in an
        # ndarray conversion of the whole option list that dominated this
        # function's profile (asserted identical in tests).
        defect = self._DEFECTS[int(self.rng.integers(0, 3))]
        payee = self._pick_payee(home, cross)
        if defect == "double_spend" and self._spent:
            outpoint, owner, amount = self._spent[
                int(self.rng.integers(0, len(self._spent)))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, max(1, amount - self.fee)),),
                nonce=self._next_nonce(),
            )
        elif defect == "overspend" and self._spendable[home]:
            # Spend a real UTXO but emit more value than it holds.  The
            # outpoint is NOT consumed from the spendable pool: V rejects the
            # transaction, so the coin remains live.
            outpoint, owner, amount = self._spendable[home][
                int(self.rng.integers(0, len(self._spendable[home])))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, amount * 2 + 1),),
                nonce=self._next_nonce(),
            )
        else:
            defect = "phantom_input"
            phantom = (
                Transaction(
                    inputs=(),
                    outputs=(TxOutput("nobody", 1),),
                    nonce=self._next_nonce(),
                ).txid,
                0,
            )
            tx = Transaction(
                inputs=(TxInput(*phantom),),
                outputs=(TxOutput(payee, 10),),
                nonce=self._next_nonce(),
            )
        out_shard = shard_of_address(payee, self.m)
        return TaggedTx(
            tx=tx,
            home_shard=home,
            cross_shard=out_shard != home,
            intended_valid=False,
            defect=defect,
        )

    # -- public API ------------------------------------------------------------
    def generate_batch(
        self,
        count: int,
        cross_shard_ratio: float = 0.0,
        invalid_ratio: float = 0.0,
    ) -> list[TaggedTx]:
        """Generate ``count`` transactions (fewer only if shards run dry)."""
        if not (0.0 <= cross_shard_ratio <= 1.0):
            raise ValueError("cross_shard_ratio must be in [0, 1]")
        if not (0.0 <= invalid_ratio <= 1.0):
            raise ValueError("invalid_ratio must be in [0, 1]")
        batch: list[TaggedTx] = []
        if not self.defer_created:
            # Legacy contract: confirm_round reconciles only the most
            # recent batch, so a direct caller that skips confirm_round
            # neither accumulates effects nor gets earlier batches
            # retroactively rolled back.  Deferred (persistent-mempool)
            # mode is exactly the opposite: effects live until the
            # mempool packs or evicts the transaction.
            self._effects = {}
        for _ in range(count):
            home = int(self.rng.integers(0, self.m))
            cross = bool(self.rng.random() < cross_shard_ratio)
            invalid = bool(self.rng.random() < invalid_ratio)
            tagged = (
                self._build_invalid(home, cross)
                if invalid
                else self._build_valid(home, cross)
            )
            if tagged is not None:
                batch.append(tagged)
        if not self.defer_created:
            for shard, entry in self._pending:
                self._spendable[shard].append(entry)
            self._spent.extend(self._spent_this_batch)
            self._trim_spent()
        # Deferred mode publishes created outputs AND spent records only at
        # pack time (forget_txids): a double-spend injected against a
        # merely-queued transaction's input would in truth be valid on
        # chain, corrupting the defect ground truth in the other direction.
        self._pending.clear()
        self._spent_this_batch.clear()
        return batch

    def _rollback_one(self, txid: bytes) -> bool:
        """Undo one pending transaction's generator-side effects.

        Its created outputs are withdrawn from the spendable pool and the
        consumed input is returned; returns False if ``txid`` has no
        pending effects (injected-invalid transactions never do).
        """
        effects = self._effects.pop(txid, None)
        if effects is None:
            return False
        home, consumed, created = effects
        if not self.defer_created:
            # Deferred mode never published these outputs, so there is
            # nothing to withdraw (and no chained descendant can exist).
            for shard, entry in created:
                try:
                    self._spendable[shard].remove(entry)
                except ValueError:
                    pass  # already consumed — cannot happen before next batch
        self._spendable[home].append(consumed)
        try:
            self._spent.remove(consumed)
        except ValueError:
            pass
        return True

    def rollback_txids(self, txids: Iterable[bytes]) -> int:
        """Undo the listed transactions (mempool eviction / TTL expiry);
        returns how many actually had pending effects."""
        return sum(1 for txid in txids if self._rollback_one(txid))

    def forget_txids(self, txids: Iterable[bytes]) -> None:
        """Drop pending effects without undoing them — the transactions
        made it on-chain, so their spends and outputs are now real.

        In deferred mode this is also the moment the packed transactions'
        created outputs finally enter the spendable pool: outputs become
        drawable only once they exist on-chain, which keeps every
        intended-valid draw honest under sustained load.
        """
        for txid in txids:
            effects = self._effects.pop(txid, None)
            if effects is not None and self.defer_created:
                for shard, entry in effects[2]:
                    self._spendable[shard].append(entry)
                # The input is now confirmed-spent: only from here may the
                # double-spend injector reference it.
                self._spent.append(effects[1])
        self._trim_spent()

    def _trim_spent(self) -> None:
        bound = self.spent_retention
        if bound and len(self._spent) > bound:
            del self._spent[: len(self._spent) - bound]

    def confirm_round(self, packed_txids: set[bytes]) -> int:
        """Reconcile the generator's view with what the chain packed
        (the legacy per-round settlement).

        Intended-valid outstanding transactions that did NOT make it into
        the block (committee budget, leader failure, void round) never
        happened on-chain: every pending effect outside ``packed_txids``
        is rolled back.  Returns the number of transactions rolled back.
        """
        rolled_back = 0
        for txid in list(self._effects):
            if txid in packed_txids:
                continue
            if self._rollback_one(txid):
                rolled_back += 1
        self._effects = {}
        return rolled_back

    def by_home_shard(self, batch: Sequence[TaggedTx]) -> list[list[TaggedTx]]:
        """Route a batch to committees by input ownership (Fig. 2 step 2)."""
        routed: list[list[TaggedTx]] = [[] for _ in range(self.m)]
        for tagged in batch:
            routed[tagged.home_shard].append(tagged)
        return routed


# -- the persistent mempool ---------------------------------------------------
#: Arrival-process names accepted by :class:`TxMempool` (and by
#: ``ProtocolParams.arrival_process``).
ARRIVAL_LEGACY = "legacy"
ARRIVAL_POISSON = "poisson"
ARRIVAL_PROCESSES = (ARRIVAL_LEGACY, ARRIVAL_POISSON)


@dataclass
class QueuedTx:
    """One mempool entry: a generated transaction plus queue metadata."""

    tagged: TaggedTx
    arrived_at: float  # continuous sim time (Network.global_now)
    arrived_round: int

    def age(self, now: float) -> float:
        """Sim-time this transaction has waited in the queue."""
        return now - self.arrived_at

    def age_rounds(self, round_number: int) -> int:
        """Full rounds this transaction has waited without being packed."""
        return round_number - self.arrived_round


@dataclass(frozen=True)
class MempoolStats:
    """Queue health at one round's settlement (RoundReport material)."""

    arrivals: int  # transactions admitted this round
    evicted: int  # TTL/capacity evictions this round
    depth: int  # transactions still queued after settlement
    age_mean: float  # mean queue age of survivors, in sim time
    age_max: float  # oldest survivor's queue age, in sim time


class TxMempool:
    """Persistent transaction queue between the generator and the rounds.

    ``legacy`` process: every round admits one fixed-size batch (the
    historical model, RNG-stream byte-exact — no extra draws) and settles
    by rolling back everything the block did not pack; the queue is always
    empty between rounds.

    ``poisson`` process: each round admits ``Generator.poisson(rate)``
    transactions stamped with their arrival time on the continuous clock.
    Unpacked transactions survive in FIFO order and are offered again next
    round; a transaction leaves the queue only by being packed, by
    exceeding ``max_age_rounds``, or by capacity backpressure (the oldest
    entries beyond ``capacity`` are evicted first — they have had the most
    chances).  Evicted valid transactions are rolled back in the
    generator, returning their inputs to the spendable pool.
    """

    def __init__(
        self,
        generator: WorkloadGenerator,
        process: str = ARRIVAL_LEGACY,
        rate: float = 0.0,
        capacity: int = 0,
        max_age_rounds: int = 0,
    ) -> None:
        if process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {process!r} "
                f"(known: {', '.join(ARRIVAL_PROCESSES)})"
            )
        if process == ARRIVAL_POISSON and rate <= 0.0:
            raise ValueError("poisson arrivals need a positive rate")
        if capacity < 0 or max_age_rounds < 0:
            raise ValueError("capacity and max_age_rounds must be >= 0")
        if process == ARRIVAL_LEGACY and (rate or capacity or max_age_rounds):
            # Legacy settlement clears the queue every round, so these
            # knobs would be silent no-ops (mirrors ProtocolParams).
            raise ValueError(
                "rate/capacity/max_age_rounds require the poisson arrival "
                "process (legacy mode clears the queue every round)"
            )
        self.generator = generator
        self.process = process
        self.rate = rate
        self.capacity = capacity
        self.max_age_rounds = max_age_rounds
        # Persistent queues defer created outputs until the creating tx
        # packs (see WorkloadGenerator.defer_created): a queued-but-
        # unconfirmed transaction's outputs must never seed later draws,
        # or ground-truth tags would call off-chain chains "valid" and
        # evictions would double-count value.
        generator.defer_created = self.persistent
        self.queue: list[QueuedTx] = []
        self.total_admitted = 0
        self.total_evicted = 0
        self._last_arrivals = 0

    @property
    def depth(self) -> int:
        """Transactions currently queued."""
        return len(self.queue)

    @property
    def persistent(self) -> bool:
        """Whether unpacked transactions survive between rounds."""
        return self.process != ARRIVAL_LEGACY

    # -- round interface ---------------------------------------------------
    def admit(
        self,
        round_number: int,
        now: float,
        legacy_count: int,
        cross_shard_ratio: float,
        invalid_ratio: float,
    ) -> int:
        """Admit this round's arrivals; returns how many arrived.

        ``legacy_count`` sizes the legacy per-round batch; the poisson
        process draws its own count from the workload RNG stream instead.
        """
        if self.process == ARRIVAL_LEGACY:
            count = legacy_count
        else:
            count = int(self.generator.rng.poisson(self.rate))
        batch = self.generator.generate_batch(
            count,
            cross_shard_ratio=cross_shard_ratio,
            invalid_ratio=invalid_ratio,
        )
        self.queue.extend(
            QueuedTx(tagged=t, arrived_at=now, arrived_round=round_number)
            for t in batch
        )
        self.total_admitted += len(batch)
        self._last_arrivals = len(batch)
        return len(batch)

    def offered(self) -> list[list[TaggedTx]]:
        """The round's per-shard mempools, oldest-arrival first.

        FIFO order is the packing fairness rule: a leader's budget always
        goes to the longest-waiting transactions of its shard.
        """
        routed: list[list[TaggedTx]] = [[] for _ in range(self.generator.m)]
        for entry in self.queue:
            routed[entry.tagged.home_shard].append(entry.tagged)
        return routed

    def settle(
        self, packed_txids: set[bytes], round_number: int, now: float
    ) -> MempoolStats:
        """Reconcile the queue with what the round's block packed."""
        if self.process == ARRIVAL_LEGACY:
            self.generator.confirm_round(packed_txids)
            self.queue.clear()
            return MempoolStats(
                arrivals=self._last_arrivals,
                evicted=0,
                depth=0,
                age_mean=0.0,
                age_max=0.0,
            )
        # Forget in queue (FIFO) order, never in set-iteration order: in
        # deferred mode forgetting publishes created outputs into the
        # spendable pool, and that order feeds later index draws — a
        # hash-ordered set here would make blocks PYTHONHASHSEED-dependent.
        self.generator.forget_txids(
            e.tagged.tx.txid
            for e in self.queue
            if e.tagged.tx.txid in packed_txids
        )
        survivors = [
            e for e in self.queue if e.tagged.tx.txid not in packed_txids
        ]
        evicted: list[QueuedTx] = []
        if self.max_age_rounds > 0:
            expired = [
                e
                for e in survivors
                if e.age_rounds(round_number) >= self.max_age_rounds
            ]
            if expired:
                evicted.extend(expired)
                survivors = [
                    e
                    for e in survivors
                    if e.age_rounds(round_number) < self.max_age_rounds
                ]
        if self.capacity > 0 and len(survivors) > self.capacity:
            overflow = len(survivors) - self.capacity
            evicted.extend(survivors[:overflow])
            survivors = survivors[overflow:]
        if evicted:
            self.generator.rollback_txids(
                e.tagged.tx.txid for e in evicted
            )
            self.total_evicted += len(evicted)
        self.queue = survivors
        ages = [e.age(now) for e in survivors]
        return MempoolStats(
            arrivals=self._last_arrivals,
            evicted=len(evicted),
            depth=len(survivors),
            age_mean=sum(ages) / len(ages) if ages else 0.0,
            age_max=max(ages, default=0.0),
        )
