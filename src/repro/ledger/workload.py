"""Synthetic transaction workload generator.

The paper assumes "a large set of transactions are continuously sent to our
network by external users" (§III-D).  This generator plays those users:

* a population of addresses pre-bucketed by shard;
* a genesis coinbase endowing every address;
* batches with a configurable cross-shard ratio (output shard differs from
  the input's home shard) and an invalid ratio (double spends, overspends,
  phantom inputs) to exercise V and the No votes;
* its own spend tracking so *intended-valid* transactions never collide,
  while injected double spends are deliberate.

Every generated transaction is wrapped in :class:`TaggedTx`, carrying ground
truth (home shard, output shards, intended validity and the injected defect)
so tests and benchmarks can score committee decisions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ledger.transaction import (
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
    shard_of_address,
)
from repro.ledger.utxo import UTXOSet


@dataclass(frozen=True)
class TaggedTx:
    """A generated transaction plus generator-side ground truth."""

    tx: Transaction
    home_shard: int  # shard owning all inputs
    cross_shard: bool  # any output in a different shard
    intended_valid: bool
    defect: str | None = None  # 'double_spend' | 'overspend' | 'phantom_input'


class WorkloadGenerator:
    """Deterministic transaction stream for ``m`` shards."""

    def __init__(
        self,
        m: int,
        users_per_shard: int,
        rng: np.random.Generator,
        endowment: int = 1_000,
        fee: int = 1,
    ) -> None:
        if m <= 0 or users_per_shard <= 0:
            raise ValueError("m and users_per_shard must be positive")
        self.m = m
        self.rng = rng
        self.fee = fee
        self.endowment = endowment
        self._nonce = 0
        # Bucket addresses by their hash-derived shard until each bucket is
        # full; the address space is dense enough that this terminates fast.
        # A single countdown of remaining open slots replaces the previous
        # any()-scan over all buckets per candidate address, which made
        # generator construction O(addresses x m).
        self.addresses_by_shard: list[list[str]] = [[] for _ in range(m)]
        open_slots = m * users_per_shard
        serial = 0
        while open_slots:
            address = f"user-{serial:08d}"
            serial += 1
            bucket = self.addresses_by_shard[shard_of_address(address, m)]
            if len(bucket) < users_per_shard:
                bucket.append(address)
                open_slots -= 1
        self.genesis_tx = make_coinbase(
            [
                TxOutput(address, endowment)
                for bucket in self.addresses_by_shard
                for address in bucket
            ]
        )
        # Generator-side view of what is spendable, per shard.
        self._spendable: list[list[tuple[tuple[bytes, int], str, int]]] = [
            [] for _ in range(m)
        ]
        for index, output in enumerate(self.genesis_tx.outputs):
            shard = shard_of_address(output.address, m)
            self._spendable[shard].append(
                ((self.genesis_tx.txid, index), output.address, output.amount)
            )
        self._spent: list[tuple[tuple[bytes, int], str, int]] = []
        self._spent_this_batch: list[tuple[tuple[bytes, int], str, int]] = []
        self._pending: list[tuple[int, tuple[tuple[bytes, int], str, int]]] = []
        # txid -> (home, consumed entry, [(shard, created entry), ...]) for
        # the most recent batch, so confirm_round can undo unpacked txs.
        self._last_batch_effects: dict[
            bytes,
            tuple[int, tuple, list[tuple[int, tuple]]],
        ] = {}

    # -- helpers ----------------------------------------------------------
    def genesis_utxos(self) -> UTXOSet:
        utxos = UTXOSet()
        for index, output in enumerate(self.genesis_tx.outputs):
            utxos.add((self.genesis_tx.txid, index), output)
        return utxos

    def _next_nonce(self) -> int:
        self._nonce += 1
        return self._nonce

    def _pick_payee(self, home: int, cross: bool) -> str:
        if cross and self.m > 1:
            other = int(self.rng.integers(0, self.m - 1))
            if other >= home:
                other += 1
            shard = other
        else:
            shard = home
        bucket = self.addresses_by_shard[shard]
        return bucket[int(self.rng.integers(0, len(bucket)))]

    def _build_valid(self, home: int, cross: bool) -> TaggedTx | None:
        if not self._spendable[home]:
            return None
        idx = int(self.rng.integers(0, len(self._spendable[home])))
        outpoint, owner, amount = self._spendable[home].pop(idx)
        # Visible to the double-spend injector only from the next batch:
        # within a batch every tx is validated against round-start UTXOs,
        # where a same-batch "double spend" would in fact be valid.
        self._spent_this_batch.append((outpoint, owner, amount))
        payee = self._pick_payee(home, cross)
        spend = max(1, int(self.rng.integers(1, max(2, amount - self.fee))))
        change = amount - spend - self.fee
        outputs = [TxOutput(payee, spend)]
        if change > 0:
            outputs.append(TxOutput(owner, change))
        tx = Transaction(
            inputs=(TxInput(*outpoint),),
            outputs=tuple(outputs),
            nonce=self._next_nonce(),
        )
        # Outputs created in this batch become spendable only from the NEXT
        # batch: committees validate against round-start UTXOs, so a chained
        # spend inside one round would (correctly) be voted No (§VIII-B).
        created: list[tuple[int, tuple]] = []
        if change > 0:
            created.append((home, ((tx.txid, 1), owner, change)))
        out_shard = shard_of_address(payee, self.m)
        created.append((out_shard, ((tx.txid, 0), payee, spend)))
        self._pending.extend(created)
        self._last_batch_effects[tx.txid] = (
            home,
            (outpoint, owner, amount),
            created,
        )
        return TaggedTx(
            tx=tx,
            home_shard=home,
            cross_shard=out_shard != home,
            intended_valid=True,
        )

    _DEFECTS = ("double_spend", "overspend", "phantom_input")

    def _build_invalid(self, home: int, cross: bool) -> TaggedTx:
        # Indexing the tuple with one bounded-integer draw is
        # stream-identical to ``rng.choice(list)`` — Generator.choice is
        # itself ``integers(0, len)`` under the hood, but wrapped in an
        # ndarray conversion of the whole option list that dominated this
        # function's profile (asserted identical in tests).
        defect = self._DEFECTS[int(self.rng.integers(0, 3))]
        payee = self._pick_payee(home, cross)
        if defect == "double_spend" and self._spent:
            outpoint, owner, amount = self._spent[
                int(self.rng.integers(0, len(self._spent)))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, max(1, amount - self.fee)),),
                nonce=self._next_nonce(),
            )
        elif defect == "overspend" and self._spendable[home]:
            # Spend a real UTXO but emit more value than it holds.  The
            # outpoint is NOT consumed from the spendable pool: V rejects the
            # transaction, so the coin remains live.
            outpoint, owner, amount = self._spendable[home][
                int(self.rng.integers(0, len(self._spendable[home])))
            ]
            tx = Transaction(
                inputs=(TxInput(*outpoint),),
                outputs=(TxOutput(payee, amount * 2 + 1),),
                nonce=self._next_nonce(),
            )
        else:
            defect = "phantom_input"
            phantom = (
                Transaction(
                    inputs=(),
                    outputs=(TxOutput("nobody", 1),),
                    nonce=self._next_nonce(),
                ).txid,
                0,
            )
            tx = Transaction(
                inputs=(TxInput(*phantom),),
                outputs=(TxOutput(payee, 10),),
                nonce=self._next_nonce(),
            )
        out_shard = shard_of_address(payee, self.m)
        return TaggedTx(
            tx=tx,
            home_shard=home,
            cross_shard=out_shard != home,
            intended_valid=False,
            defect=defect,
        )

    # -- public API ------------------------------------------------------------
    def generate_batch(
        self,
        count: int,
        cross_shard_ratio: float = 0.0,
        invalid_ratio: float = 0.0,
    ) -> list[TaggedTx]:
        """Generate ``count`` transactions (fewer only if shards run dry)."""
        if not (0.0 <= cross_shard_ratio <= 1.0):
            raise ValueError("cross_shard_ratio must be in [0, 1]")
        if not (0.0 <= invalid_ratio <= 1.0):
            raise ValueError("invalid_ratio must be in [0, 1]")
        batch: list[TaggedTx] = []
        self._last_batch_effects = {}
        for _ in range(count):
            home = int(self.rng.integers(0, self.m))
            cross = bool(self.rng.random() < cross_shard_ratio)
            invalid = bool(self.rng.random() < invalid_ratio)
            tagged = (
                self._build_invalid(home, cross)
                if invalid
                else self._build_valid(home, cross)
            )
            if tagged is not None:
                batch.append(tagged)
        for shard, entry in self._pending:
            self._spendable[shard].append(entry)
        self._pending.clear()
        self._spent.extend(self._spent_this_batch)
        self._spent_this_batch.clear()
        return batch

    def confirm_round(self, packed_txids: set[bytes]) -> int:
        """Reconcile the generator's view with what the chain packed.

        Intended-valid transactions from the last batch that did NOT make it
        into the block (committee budget, leader failure, void round) never
        happened on-chain: their created outputs are withdrawn from the
        spendable pool and the consumed input is returned.  Returns the
        number of transactions rolled back.
        """
        rolled_back = 0
        for txid, (home, consumed, created) in self._last_batch_effects.items():
            if txid in packed_txids:
                continue
            for shard, entry in created:
                try:
                    self._spendable[shard].remove(entry)
                except ValueError:
                    pass  # already consumed — cannot happen before next batch
            self._spendable[home].append(consumed)
            try:
                self._spent.remove(consumed)
            except ValueError:
                pass
            rolled_back += 1
        self._last_batch_effects = {}
        return rolled_back

    def by_home_shard(self, batch: Sequence[TaggedTx]) -> list[list[TaggedTx]]:
        """Route a batch to committees by input ownership (Fig. 2 step 2)."""
        routed: list[list[TaggedTx]] = [[] for _ in range(self.m)]
        for tagged in batch:
            routed[tagged.home_shard].append(tagged)
        return routed
