"""Per-shard state maintained by a committee.

"The status of each shard, including the users' identity and Unspent
Transaction Outputs (UTXOs), is maintained by the corresponding committee."
(§III-D)

A shard's state holds only the UTXOs whose owner address maps to that shard.
After each block every committee member "deletes the used ones from their
local UTXO Lists and appends the newly generated outputs that they are
responsible for" (§IV-G) — that is :meth:`apply_block`.
"""

from __future__ import annotations

from typing import Iterable

from repro.ledger.transaction import Transaction, shard_of_address
from repro.ledger.utxo import UTXOSet, ValidationResult, validate_transaction


class ShardState:
    """UTXO view restricted to one shard."""

    def __init__(self, shard: int, m: int) -> None:
        if not (0 <= shard < m):
            raise ValueError(f"shard {shard} out of range for m={m}")
        self.shard = shard
        self.m = m
        self.utxos = UTXOSet()

    def owns_address(self, address: str) -> bool:
        return shard_of_address(address, self.m) == self.shard

    def add_genesis(self, tx: Transaction) -> None:
        """Load the shard's slice of a genesis/coinbase transaction."""
        for index, output in enumerate(tx.outputs):
            if self.owns_address(output.address):
                self.utxos.add((tx.txid, index), output)

    def validate(self, tx: Transaction) -> ValidationResult:
        """Run V against this shard's UTXO view.

        Only meaningful for transactions whose *inputs* live in this shard;
        inputs from other shards look like MISSING_INPUT here, which is
        exactly why cross-shard transactions need the inter-committee phase.
        """
        return validate_transaction(tx, self.utxos)

    def inputs_are_local(self, tx: Transaction) -> bool:
        """True if every input this shard can see belongs to it.

        Committees only receive transactions routed to them by input
        ownership, so this is a sanity check rather than a filter.
        """
        return all(
            self.owns_address(out.address)
            for op in tx.outpoints()
            if (out := self.utxos.get(op)) is not None
        )

    def apply_block(self, txs: Iterable[Transaction]) -> tuple[int, int]:
        """Apply a block's transactions to the shard view.

        Spends every referenced outpoint present locally and adds every
        output owned by this shard.  Returns ``(spent, created)`` counts.
        """
        spent = created = 0
        for tx in txs:
            for outpoint in tx.outpoints():
                if outpoint in self.utxos:
                    self.utxos.spend(outpoint)
                    spent += 1
            for index, output in enumerate(tx.outputs):
                if self.owns_address(output.address):
                    self.utxos.add((tx.txid, index), output)
                    created += 1
        return spent, created

    def size(self) -> int:
        return len(self.utxos)

    def digest_items(self) -> tuple:
        """Canonical content tuple for consensus on the final UTXO list."""
        return tuple(
            sorted(
                (txid.hex(), index, out.address, out.amount)
                for (txid, index), out in (
                    ((op, self.utxos.get(op)) for op in self.utxos)
                )
            )
        )
