"""Blocks and the chain the referee committee maintains.

§IV-G: the referee committee "packs [the valid TXdecSETs] up, together with
all participants of next round S^{r+1}, their reputations W^{r+1}, the
elected referee committee C_R^{r+1}, leaders and partial sets as a block
B^r".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import H
from repro.ledger.transaction import Transaction

GENESIS_PREV_HASH = b"\x00" * 32


@dataclass(frozen=True)
class Block:
    """One round's block ``B^r``."""

    round_number: int
    prev_hash: bytes
    transactions: tuple[Transaction, ...]
    randomness: bytes  # R^{r+1}
    participants: tuple[str, ...]  # S^{r+1}: pks admitted via PoW
    reputations: tuple[tuple[str, float], ...]  # W^{r+1}
    referee: tuple[str, ...]  # C_R^{r+1}
    leaders: tuple[str, ...]  # l^{r+1}_1..m
    partial_sets: tuple[tuple[str, ...], ...]  # C^{r+1}_{k,partial}

    @cached_property
    def hash(self) -> bytes:
        return H(
            "BLOCK",
            self.round_number,
            self.prev_hash,
            tuple(tx.txid for tx in self.transactions),
            self.randomness,
            self.participants,
            self.reputations,
            self.referee,
            self.leaders,
            self.partial_sets,
        )

    def __repr__(self) -> str:
        return (
            f"Block(r={self.round_number}, {len(self.transactions)} txs, "
            f"hash={self.hash.hex()[:10]}…)"
        )


class Chain:
    """Append-only chain with link validation and optional body pruning.

    ``retention`` > 0 keeps only the last ``retention`` block bodies in
    ``blocks`` (the *retained suffix*); older bodies are dropped after each
    append.  Hash linkage survives pruning because the chain remembers the
    hash and round number of the last pruned block, so ``append``,
    ``verify``, ``head``, ``__len__`` and ``total_transactions`` all report
    exactly what an unbounded chain would.  ``retention == 0`` keeps
    everything (the historical behaviour).
    """

    def __init__(self, retention: int = 0) -> None:
        if retention < 0:
            raise ValueError("retention must be >= 0")
        self.blocks: list[Block] = []
        self.retention = retention
        self.pruned_blocks = 0  # bodies dropped from the front
        self.pruned_transactions = 0  # txs inside those bodies
        # Hash/round of the newest pruned block: the predecessor the
        # retained suffix links to (genesis sentinel until pruning starts).
        self.pruned_head_hash = GENESIS_PREV_HASH
        self.pruned_last_round = 0

    def append(self, block: Block) -> None:
        expected_prev = (
            self.blocks[-1].hash if self.blocks else self.pruned_head_hash
        )
        if block.prev_hash != expected_prev:
            raise ValueError(
                f"block r={block.round_number} does not extend the chain head"
            )
        last_round = (
            self.blocks[-1].round_number
            if self.blocks
            else self.pruned_last_round
        )
        if len(self) and block.round_number <= last_round:
            raise ValueError("round numbers must increase")
        self.blocks.append(block)
        if self.retention and len(self.blocks) > self.retention:
            self._prune(len(self.blocks) - self.retention)

    def _prune(self, count: int) -> None:
        dropped = self.blocks[:count]
        self.pruned_transactions += sum(len(b.transactions) for b in dropped)
        self.pruned_blocks += count
        self.pruned_head_hash = dropped[-1].hash
        self.pruned_last_round = dropped[-1].round_number
        del self.blocks[:count]

    @property
    def head(self) -> Block:
        if not self.blocks:
            raise IndexError("empty chain")
        return self.blocks[-1]

    def __len__(self) -> int:
        return self.pruned_blocks + len(self.blocks)

    def __iter__(self):
        """Iterate the *retained* suffix (all blocks when unpruned)."""
        return iter(self.blocks)

    def total_transactions(self) -> int:
        return self.pruned_transactions + sum(
            len(b.transactions) for b in self.blocks
        )

    def verify(self) -> bool:
        """Recheck every retained hash link (integration-test helper).

        Under pruning the walk starts from the stored predecessor hash of
        the retained suffix instead of the genesis sentinel.
        """
        prev = self.pruned_head_hash
        for block in self.blocks:
            if block.prev_hash != prev:
                return False
            prev = block.hash
        return True
