"""Blocks and the chain the referee committee maintains.

§IV-G: the referee committee "packs [the valid TXdecSETs] up, together with
all participants of next round S^{r+1}, their reputations W^{r+1}, the
elected referee committee C_R^{r+1}, leaders and partial sets as a block
B^r".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import H
from repro.ledger.transaction import Transaction

GENESIS_PREV_HASH = b"\x00" * 32


@dataclass(frozen=True)
class Block:
    """One round's block ``B^r``."""

    round_number: int
    prev_hash: bytes
    transactions: tuple[Transaction, ...]
    randomness: bytes  # R^{r+1}
    participants: tuple[str, ...]  # S^{r+1}: pks admitted via PoW
    reputations: tuple[tuple[str, float], ...]  # W^{r+1}
    referee: tuple[str, ...]  # C_R^{r+1}
    leaders: tuple[str, ...]  # l^{r+1}_1..m
    partial_sets: tuple[tuple[str, ...], ...]  # C^{r+1}_{k,partial}

    @cached_property
    def hash(self) -> bytes:
        return H(
            "BLOCK",
            self.round_number,
            self.prev_hash,
            tuple(tx.txid for tx in self.transactions),
            self.randomness,
            self.participants,
            self.reputations,
            self.referee,
            self.leaders,
            self.partial_sets,
        )

    def __repr__(self) -> str:
        return (
            f"Block(r={self.round_number}, {len(self.transactions)} txs, "
            f"hash={self.hash.hex()[:10]}…)"
        )


class Chain:
    """Append-only chain with link validation."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []

    def append(self, block: Block) -> None:
        expected_prev = self.head.hash if self.blocks else GENESIS_PREV_HASH
        if block.prev_hash != expected_prev:
            raise ValueError(
                f"block r={block.round_number} does not extend the chain head"
            )
        if self.blocks and block.round_number <= self.head.round_number:
            raise ValueError("round numbers must increase")
        self.blocks.append(block)

    @property
    def head(self) -> Block:
        if not self.blocks:
            raise IndexError("empty chain")
        return self.blocks[-1]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def total_transactions(self) -> int:
        return sum(len(b.transactions) for b in self.blocks)

    def verify(self) -> bool:
        """Recheck every hash link (integration-test helper)."""
        prev = GENESIS_PREV_HASH
        for block in self.blocks:
            if block.prev_hash != prev:
                return False
            prev = block.hash
        return True
