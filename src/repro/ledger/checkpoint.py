"""Deterministic snapshot/restore of a running ledger (ISSUE 10).

A checkpoint captures *everything that survives a round boundary*: the
chain's retained suffix plus pruning frontier, the global and per-shard
UTXO sets, the array-backed :class:`~repro.core.reputation.ReputationStore`,
the persistent :class:`~repro.ledger.workload.TxMempool` queue, the
workload generator's spendable/spent bookkeeping, the adversary's
corruption state, scenario/policy driver state, the overlap scheduler's
timeline frontier, cumulative metrics, the staged next-round roles, and
every RNG child generator's exact position via ``bit_generator.state``
(protocol, workload, adversary, network, scenario, policy — the six-way
fan-out of :func:`repro.backends.base.init_shared_state`).

Round-local state is deliberately *not* captured: node role flags, the
network's event queue and per-round classifiers/partitions, and per-node
behaviours are all rebuilt from scratch by ``_assign_round``/``net.reset``
at the top of every round, so a checkpoint taken between ``run_round``
calls needs none of it.  That is the checkpoint contract: **capture and
restore only at round boundaries**.

A restored run is byte-identical to the uninterrupted run — same chain
head hash, same reputation table, same round-report stream — which the
checkpoint tests assert across all three backends, mid-scenario and
mid-policy.

``capacity_fn`` is not picklable (arbitrary callables) and must be
re-supplied at load time; capacity draws happen during construction from
the protocol RNG whose state is overwritten afterwards, so supplying the
same function reproduces the same capacities.  ``scenario``/``policy``
are frozen dataclasses and travel inside the checkpoint; both can be
*overridden* at load time for warm-start sweeps (seed-paired arms that
resume from a shared policy-free prefix and diverge only in the arm's
policy).
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

import numpy as np

#: Bump when the capture layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Pinned pickle protocol so checkpoint files are stable across the
#: Python versions the CI matrix spans (3.10–3.13).
PICKLE_PROTOCOL = 4

_UNSET = object()


def _capture_metrics(metrics: Any) -> dict[str, Any]:
    return {
        "phase": metrics.phase,
        "cells": {
            key: (cell.messages, cell.bytes, cell.storage)
            for key, cell in metrics.cells.items()
        },
        "per_node_messages": dict(metrics.per_node_messages),
        "per_node_bytes": dict(metrics.per_node_bytes),
        "per_node_storage": dict(metrics.per_node_storage),
        "node_roles": dict(metrics.node_roles),
        "channel_counts": dict(metrics.channel_counts),
        "events": metrics.events,
    }


def _restore_metrics(metrics: Any, state: dict[str, Any]) -> None:
    metrics.phase = state["phase"]
    metrics.cells.clear()
    for key, (messages, nbytes, storage) in state["cells"].items():
        cell = metrics.cells[key]
        cell.messages = messages
        cell.bytes = nbytes
        cell.storage = storage
    for attr in (
        "per_node_messages",
        "per_node_bytes",
        "per_node_storage",
        "node_roles",
        "channel_counts",
    ):
        target = getattr(metrics, attr)
        target.clear()
        target.update(state[attr])
    metrics.events = state["events"]


def capture_checkpoint(ledger: Any) -> dict[str, Any]:
    """Snapshot ``ledger`` at a round boundary into a picklable dict.

    Mutable containers are copied, so the ledger may keep running after
    the capture without disturbing the snapshot.
    """
    net = ledger.net
    chain = ledger.chain
    workload = ledger.workload
    mempool = ledger.mempool
    adversary = ledger.adversary
    scheduler = ledger.overlap_scheduler

    rng_states: dict[str, Any] = {
        "proto": ledger.rng.bit_generator.state,
        "workload": workload.rng.bit_generator.state,
        "adversary": adversary.rng.bit_generator.state,
        "net": net.rng.bit_generator.state,
    }
    scenario_driver = getattr(ledger, "scenario_driver", None)
    policy_driver = getattr(ledger, "policy_driver", None)

    return {
        "version": CHECKPOINT_VERSION,
        "backend": ledger.backend_name,
        "params": ledger.params,
        "adversary_config": adversary.config,
        "scenario": getattr(ledger, "scenario", None),
        "policy": getattr(ledger, "policy", None),
        "round_number": ledger.round_number,
        "randomness": ledger.randomness,
        # Staged roles are reassigned wholesale each round (never mutated
        # in place), so the references themselves are safe to retain and
        # their exact container types are preserved through the pickle.
        "next_referee": ledger._next_referee,
        "next_leaders": ledger._next_leaders,
        # Rival backends have no partial sets; CycLedger stages them.
        "next_partials": getattr(ledger, "_next_partials", None),
        "rng": rng_states,
        "net": {
            "epoch": net.epoch,
            "now": net.now,
            # A partially-consumed pre-drawn jitter block is live RNG
            # state: restoring generator position alone would replay the
            # wrong jitter values.
            "jitter_block": (
                None if net._jitter_block is None else net._jitter_block.copy()
            ),
            "jitter_idx": net._jitter_idx,
        },
        "chain": {
            "blocks": list(chain.blocks),
            "retention": chain.retention,
            "pruned_blocks": chain.pruned_blocks,
            "pruned_transactions": chain.pruned_transactions,
            "pruned_head_hash": chain.pruned_head_hash,
            "pruned_last_round": chain.pruned_last_round,
        },
        "global_utxos": ledger.global_utxos.snapshot(),
        "shard_utxos": [
            state.utxos.snapshot() for state in ledger.shard_states
        ],
        "reputation": {
            "pks": list(ledger.reputation._pks),
            "values": ledger.reputation._values.copy(),
        },
        "rewards": dict(ledger.rewards),
        "metrics": _capture_metrics(ledger.metrics),
        "mempool": {
            "queue": list(mempool.queue),
            "total_admitted": mempool.total_admitted,
            "total_evicted": mempool.total_evicted,
            "last_arrivals": mempool._last_arrivals,
        },
        "workload": {
            "nonce": workload._nonce,
            "defer_created": workload.defer_created,
            "spendable": [list(bucket) for bucket in workload._spendable],
            "spent": list(workload._spent),
            "effects": dict(workload._effects),
        },
        "adversary": {
            "corruption_order": list(adversary._corruption_order),
            "corrupted": set(adversary.corrupted),
            "offline": set(adversary.offline),
            "pending_corruptions": set(adversary._pending_corruptions),
            "forced_offline": set(adversary.forced_offline),
        },
        "scenario_driver": (
            None
            if scenario_driver is None
            else {
                "crashed_until": dict(scenario_driver._crashed_until),
                "log": list(scenario_driver.log),
                "rng": scenario_driver.rng.bit_generator.state,
            }
        ),
        "policy_driver": (
            None
            if policy_driver is None
            else {
                "baseline": (
                    None
                    if policy_driver._baseline is None
                    else list(policy_driver._baseline)
                ),
                "healed": policy_driver._healed,
                "log": list(policy_driver.log),
                "rng": policy_driver.rng.bit_generator.state,
            }
        ),
        "overlap": {
            "prev_ends": dict(scheduler._prev_ends),
            "prev_round_end": scheduler._prev_round_end,
            "makespan": scheduler.makespan,
        },
        "reports_streamed": ledger.reports_streamed,
    }


def restore_checkpoint(
    state: dict[str, Any],
    capacity_fn: Callable[[int, np.random.Generator], int] | None = None,
    scenario: Any = _UNSET,
    policy: Any = _UNSET,
) -> Any:
    """Rebuild a ledger from a :func:`capture_checkpoint` dict.

    The backend is constructed normally (same deterministic genesis,
    keys, and capacities), then every mutable field is overwritten with
    the captured state.  ``scenario``/``policy`` override the captured
    objects when given — the warm-start hook: captured driver state is
    reapplied only when the effective object equals the captured one, so
    an arm resumed with a *different* policy starts that policy's driver
    fresh, exactly as the uninterrupted arm would.
    """
    from repro.backends import create_backend

    if state["version"] != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {state['version']} != supported "
            f"{CHECKPOINT_VERSION}"
        )
    effective_scenario = (
        state["scenario"] if scenario is _UNSET else scenario
    )
    effective_policy = state["policy"] if policy is _UNSET else policy
    ledger = create_backend(
        state["backend"],
        state["params"],
        adversary=state["adversary_config"],
        capacity_fn=capacity_fn,
        scenario=effective_scenario,
        policy=effective_policy,
    )

    ledger.round_number = state["round_number"]
    ledger.randomness = state["randomness"]
    ledger._next_referee = state["next_referee"]
    ledger._next_leaders = state["next_leaders"]
    if state["next_partials"] is not None:
        ledger._next_partials = state["next_partials"]

    ledger.rng.bit_generator.state = state["rng"]["proto"]
    ledger.workload.rng.bit_generator.state = state["rng"]["workload"]
    ledger.adversary.rng.bit_generator.state = state["rng"]["adversary"]
    net = ledger.net
    net.rng.bit_generator.state = state["rng"]["net"]
    net.epoch = state["net"]["epoch"]
    net.now = state["net"]["now"]
    jitter = state["net"]["jitter_block"]
    net._jitter_block = None if jitter is None else np.array(jitter)
    net._jitter_idx = state["net"]["jitter_idx"]

    chain = ledger.chain
    chain.blocks = list(state["chain"]["blocks"])
    chain.retention = state["chain"]["retention"]
    chain.pruned_blocks = state["chain"]["pruned_blocks"]
    chain.pruned_transactions = state["chain"]["pruned_transactions"]
    chain.pruned_head_hash = state["chain"]["pruned_head_hash"]
    chain.pruned_last_round = state["chain"]["pruned_last_round"]

    ledger.global_utxos.restore(state["global_utxos"])
    for shard_state, snapshot in zip(
        ledger.shard_states, state["shard_utxos"]
    ):
        shard_state.utxos.restore(snapshot)

    reputation = ledger.reputation
    if reputation._pks != state["reputation"]["pks"]:
        raise ValueError(
            "checkpoint reputation roster does not match the rebuilt "
            "ledger (seed or backend mismatch?)"
        )
    reputation._values = np.array(state["reputation"]["values"], dtype=float)

    ledger.rewards.clear()
    ledger.rewards.update(state["rewards"])
    _restore_metrics(ledger.metrics, state["metrics"])

    mempool = ledger.mempool
    mempool.queue = list(state["mempool"]["queue"])
    mempool.total_admitted = state["mempool"]["total_admitted"]
    mempool.total_evicted = state["mempool"]["total_evicted"]
    mempool._last_arrivals = state["mempool"]["last_arrivals"]

    workload = ledger.workload
    workload._nonce = state["workload"]["nonce"]
    workload.defer_created = state["workload"]["defer_created"]
    workload._spendable = [
        list(bucket) for bucket in state["workload"]["spendable"]
    ]
    workload._spent = list(state["workload"]["spent"])
    workload._effects = dict(state["workload"]["effects"])

    adversary = ledger.adversary
    adversary._corruption_order = list(state["adversary"]["corruption_order"])
    adversary.corrupted = set(state["adversary"]["corrupted"])
    adversary.offline = set(state["adversary"]["offline"])
    adversary._pending_corruptions = set(
        state["adversary"]["pending_corruptions"]
    )
    adversary.forced_offline = set(state["adversary"]["forced_offline"])

    if (
        state["scenario_driver"] is not None
        and ledger.scenario_driver is not None
        and effective_scenario == state["scenario"]
    ):
        driver = ledger.scenario_driver
        driver._crashed_until = dict(state["scenario_driver"]["crashed_until"])
        driver.log = list(state["scenario_driver"]["log"])
        driver.rng.bit_generator.state = state["scenario_driver"]["rng"]
    if (
        state["policy_driver"] is not None
        and ledger.policy_driver is not None
        and effective_policy == state["policy"]
    ):
        driver = ledger.policy_driver
        baseline = state["policy_driver"]["baseline"]
        driver._baseline = None if baseline is None else list(baseline)
        driver._healed = state["policy_driver"]["healed"]
        driver.log = list(state["policy_driver"]["log"])
        driver.rng.bit_generator.state = state["policy_driver"]["rng"]

    scheduler = ledger.overlap_scheduler
    scheduler._prev_ends = dict(state["overlap"]["prev_ends"])
    scheduler._prev_round_end = state["overlap"]["prev_round_end"]
    scheduler.makespan = state["overlap"]["makespan"]

    ledger.reports_streamed = state["reports_streamed"]
    return ledger


def save_checkpoint(ledger: Any, path: str) -> dict[str, Any]:
    """Capture ``ledger`` and pickle the snapshot to ``path`` atomically
    (write-then-rename, so a crashed save never leaves a torn file).
    Returns the captured state dict."""
    import os
    import tempfile

    state = capture_checkpoint(ledger)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(state, fh, protocol=PICKLE_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return state


def load_checkpoint(
    path: str,
    capacity_fn: Callable[[int, np.random.Generator], int] | None = None,
    scenario: Any = _UNSET,
    policy: Any = _UNSET,
) -> Any:
    """Unpickle ``path`` and rebuild the ledger it captured.  See
    :func:`restore_checkpoint` for the ``capacity_fn`` and warm-start
    override semantics."""
    with open(path, "rb") as fh:
        state = pickle.load(fh)
    return restore_checkpoint(
        state, capacity_fn=capacity_fn, scenario=scenario, policy=policy
    )


def compact_ledger(ledger: Any) -> None:
    """Shed retained-capacity overhead mid-soak: rebuild the global and
    per-shard UTXO dicts at their live size (content-neutral — see
    :meth:`repro.ledger.utxo.UTXOSet.compact`)."""
    ledger.global_utxos.compact()
    for state in ledger.shard_states:
        state.utxos.compact()
