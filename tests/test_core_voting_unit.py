"""Vote-round machinery unit tests (direct, below the intra/inter phases)."""

import numpy as np
import pytest

from repro.core.committee import run_committee_configuration
from repro.core.sandbox import build_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.core.voting import (
    VoteRoundSession,
    input_side_votes,
    output_side_votes,
    run_vote_rounds,
)
from repro.ledger.transaction import TxOutput, make_coinbase, make_transfer


@pytest.fixture
def ctx_with_coins():
    ctx = build_sandbox(committee_size=8, lam=2)
    state = ctx.shard_states[0]
    genesis = make_coinbase([TxOutput(f"user-{i}", 100) for i in range(12)])
    state.add_genesis(genesis)
    txs = []
    for nonce, op in enumerate(sorted(state.utxos, key=lambda o: (o[0], o[1]))[:5]):
        owner = state.utxos.get(op).address
        txs.append(make_transfer(op, 100, "payee", 10, owner, nonce=nonce))
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    return ctx, txs


def run_single(ctx, txs, session="vr", override=None):
    committee = ctx.committees[0]
    vote_session = VoteRoundSession(
        ctx, committee, txs, session, input_side_votes, "intra",
        leader_proposes_override=override,
    )
    vote_session.start()
    ctx.net.run()
    return vote_session.finish()


def test_matrix_rows_follow_member_order(ctx_with_coins):
    ctx, txs = ctx_with_coins
    result = run_single(ctx, txs)
    assert result.matrix.shape == (8, 5)
    # all honest, all valid -> every row all-Yes
    assert np.all(result.matrix == 1)
    assert np.all(result.decision == 1)
    assert result.consensus_success
    assert len(result.reported_txs) == 5


def test_artifacts_signed_by_leader(ctx_with_coins):
    ctx, txs = ctx_with_coins
    result = run_single(ctx, txs)
    from repro.crypto.signatures import signed_by

    leader_pk = ctx.pk_of(0)
    assert signed_by(
        ctx.pki, result.sig_dec,
        ("INTRA_DEC", 1, 0, result.reported_txids), leader_pk,
    )
    assert signed_by(
        ctx.pki, result.sig_votes,
        ("VLIST", 1, 0, result.txids, result.vlist_tuple), leader_pk,
    )


def test_nonrepliers_counted_unknown(ctx_with_coins):
    ctx, txs = ctx_with_coins
    # two members go fully offline
    ctx.nodes[6].online = False
    ctx.nodes[7].online = False
    result = run_single(ctx, txs)
    assert result.replies == 6
    assert np.all(result.matrix[6:] == 0)  # deemed Unknown
    # 6 of 8 Yes still clears the > c/2 bar
    assert np.all(result.decision == 1)


def test_timeout_without_proposal_collects_no_proposal_sigs(ctx_with_coins):
    ctx, txs = ctx_with_coins
    result = run_single(ctx, txs, override=False)
    assert result.timed_out
    # every honest partial member holds a > c/2 quorum of statements
    for pid in ctx.committees[0].partial:
        assert len(result.no_proposal_sigs.get(pid, [])) > 8 / 2


def test_duplicate_vote_ignored(ctx_with_coins):
    """A member's second VOTE for the same session cannot overwrite."""
    ctx, txs = ctx_with_coins
    committee = ctx.committees[0]
    session = VoteRoundSession(ctx, committee, txs, "dup", input_side_votes, "intra")
    session.start()
    ctx.net.run()
    result = session.finish()
    assert result.replies == 8  # one per member, duplicates impossible


def test_vote_with_wrong_length_rejected(ctx_with_coins):
    ctx, txs = ctx_with_coins
    committee = ctx.committees[0]
    session = VoteRoundSession(ctx, committee, txs, "wl", input_side_votes, "intra")
    session.start()
    # forge a short vote from member 3 before the window closes
    from repro.crypto.signatures import sign

    node = ctx.nodes[3]
    bad_votes = (1,)
    statement = ("VOTE", 1, 0, "wl", bad_votes)
    node.send(0, "VOTE:wl", (3, bad_votes, sign(node.keypair, statement)))
    ctx.net.run()
    result = session.finish()
    assert result.matrix.shape == (8, 5)


def test_concurrent_vote_rounds(ctx_with_coins):
    ctx, txs = ctx_with_coins
    committee = ctx.committees[0]
    results = run_vote_rounds(
        ctx,
        [
            (committee, txs[:3], "c1", input_side_votes, "intra"),
            (committee, txs[3:], "c2", input_side_votes, "intra"),
        ],
    )
    assert all(r.consensus_success for r in results)
    assert len(results[0].txs) == 3 and len(results[1].txs) == 2


def test_output_side_votes_check_wellformedness(ctx_with_coins):
    ctx, txs = ctx_with_coins
    result_session = VoteRoundSession(
        ctx, ctx.committees[0], txs, "out", output_side_votes, "inter-recv"
    )
    result_session.start()
    ctx.net.run()
    result = result_session.finish()
    # outputs are positive -> all Yes on the output side
    assert np.all(result.matrix == 1)


def test_empty_tx_list(ctx_with_coins):
    ctx, _ = ctx_with_coins
    result = run_single(ctx, [], session="empty")
    assert result.consensus_success
    assert result.reported_txs == []
    assert result.matrix.shape == (8, 0)
