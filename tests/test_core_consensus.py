"""Algorithm 3: inside-committee consensus, equivocation, certificates."""

import pytest

from repro.core.consensus import (
    EquivocationWitness,
    InsideConsensus,
    consensus_digest,
    verify_certificate,
)
from repro.core.sandbox import build_sandbox
from repro.crypto.signatures import sign
from repro.nodes.behaviors import EquivocatingLeader, OfflineNode, SilentLeader


def run_consensus(ctx, payload="M", sn=1, session="t"):
    committee = ctx.committees[0]
    session_obj = InsideConsensus(
        ctx, committee.members, leader=committee.leader, sn=sn,
        payload=payload, session=session,
    )
    return session_obj.run()


def test_honest_leader_reaches_consensus():
    ctx = build_sandbox(committee_size=9, lam=2)
    out = run_consensus(ctx, payload=("TXSET", 1, 2, 3))
    assert out.success
    assert out.payload == ("TXSET", 1, 2, 3)
    assert out.confirms == 9
    assert out.equivocation is None
    assert out.elapsed > 0


def test_certificate_verifies_and_binds():
    ctx = build_sandbox(committee_size=9, lam=2)
    out = run_consensus(ctx, payload="X", sn=("a", 1))
    pks = [ctx.pk_of(i) for i in ctx.committees[0].members]
    assert verify_certificate(ctx.pki, pks, 1, ("a", 1), out.digest, out.cert)
    # wrong sn / digest / member set must fail
    assert not verify_certificate(ctx.pki, pks, 1, ("a", 2), out.digest, out.cert)
    assert not verify_certificate(
        ctx.pki, pks, 1, ("a", 1), consensus_digest("Y"), out.cert
    )
    assert not verify_certificate(
        ctx.pki, pks[:3], 1, ("a", 1), out.digest, out.cert, threshold=4
    )


def test_certificate_discards_foreign_and_duplicate_sigs():
    ctx = build_sandbox(committee_size=5, lam=2)
    out = run_consensus(ctx)
    pks = [ctx.pk_of(i) for i in ctx.committees[0].members]
    # padding with duplicates cannot inflate the count
    padded = list(out.cert) + list(out.cert)
    assert verify_certificate(ctx.pki, pks, 1, 1, out.digest, padded)
    # a single signature repeated is insufficient
    one = [out.cert[0]] * 10
    assert not verify_certificate(ctx.pki, pks, 1, 1, out.digest, one)


def test_minority_nonparticipants_tolerated():
    behaviors = {i: OfflineNode() for i in (5, 6, 7, 8)}
    ctx = build_sandbox(committee_size=9, lam=2, behaviors=behaviors)
    out = run_consensus(ctx)
    assert out.success
    assert out.confirms == 5


def test_majority_nonparticipants_blocks():
    behaviors = {i: OfflineNode() for i in (4, 5, 6, 7, 8)}
    ctx = build_sandbox(committee_size=9, lam=2, behaviors=behaviors)
    out = run_consensus(ctx)
    assert not out.success


def test_equivocating_leader_detected_not_agreed():
    ctx = build_sandbox(committee_size=9, lam=2, behaviors={0: EquivocatingLeader()})
    out = run_consensus(ctx)
    assert not out.success
    assert out.equivocation is not None
    assert out.equivocation.is_valid(ctx.pki)
    assert out.equivocation.leader_pk == ctx.pk_of(0)


def test_silent_leader_produces_nothing():
    ctx = build_sandbox(committee_size=9, lam=2, behaviors={0: SilentLeader()})
    out = run_consensus(ctx)
    assert not out.success
    assert out.confirms == 0


def test_leader_must_be_member():
    ctx = build_sandbox(committee_size=5, lam=2)
    with pytest.raises(ValueError):
        InsideConsensus(ctx, [0, 1, 2], leader=4, sn=1, payload="x", session="s")


def test_concurrent_sessions_do_not_interfere():
    ctx = build_sandbox(committee_size=7, lam=2)
    committee = ctx.committees[0]
    a = InsideConsensus(ctx, committee.members, 0, sn=1, payload="A", session="sa")
    b = InsideConsensus(ctx, committee.members, 1, sn=2, payload="B", session="sb")
    a.start()
    b.start()
    ctx.net.run()
    assert a.outcome.success and a.outcome.payload == "A"
    assert b.outcome.success and b.outcome.payload == "B"


def test_witness_validation_rules(pki):
    leader = pki.generate("leader")
    other = pki.generate("other")
    d1, d2 = consensus_digest("a"), consensus_digest("b")
    good = EquivocationWitness(
        leader_pk=leader.pk, round_number=1, sn=1,
        digest_a=d1, sig_a=sign(leader, ("PROPOSE", 1, 1, d1)),
        digest_b=d2, sig_b=sign(leader, ("PROPOSE", 1, 1, d2)),
    )
    assert good.is_valid(pki)
    # same digest twice is not equivocation
    same = EquivocationWitness(
        leader_pk=leader.pk, round_number=1, sn=1,
        digest_a=d1, sig_a=sign(leader, ("PROPOSE", 1, 1, d1)),
        digest_b=d1, sig_b=sign(leader, ("PROPOSE", 1, 1, d1)),
    )
    assert not same.is_valid(pki)
    # signatures by someone else cannot frame the leader
    framed = EquivocationWitness(
        leader_pk=leader.pk, round_number=1, sn=1,
        digest_a=d1, sig_a=sign(other, ("PROPOSE", 1, 1, d1)),
        digest_b=d2, sig_b=sign(other, ("PROPOSE", 1, 1, d2)),
    )
    assert not framed.is_valid(pki)


def test_message_complexity_order_c_squared():
    """Alg. 3 is an all-to-all echo: total messages grow ~ c²."""
    counts = []
    for c in (6, 12, 24):
        ctx = build_sandbox(committee_size=c, lam=2)
        before = ctx.metrics.total_messages()
        run_consensus(ctx)
        counts.append(ctx.metrics.total_messages() - before)
    ratio1 = counts[1] / counts[0]
    ratio2 = counts[2] / counts[1]
    assert 3.0 < ratio1 < 5.0  # doubling c ~ 4x messages
    assert 3.0 < ratio2 < 5.0
