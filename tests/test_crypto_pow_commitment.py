"""PoW admission puzzle and the semi-commitment scheme."""

import pytest

from repro.crypto.commitment import (
    canonical_member_list,
    semi_commitment,
    superset_consistent,
    verify_semi_commitment,
)
from repro.crypto.pow import PowPuzzle, PowSolution, expected_attempts, solve_pow, verify_pow


# -- PoW ---------------------------------------------------------------------


def test_solve_and_verify():
    puzzle = PowPuzzle(round_number=1, randomness=b"R", difficulty_bits=6)
    solution = solve_pow(puzzle, "node-pk")
    assert verify_pow(puzzle, solution)


def test_wrong_nonce_fails():
    puzzle = PowPuzzle(1, b"R", 6)
    solution = solve_pow(puzzle, "node-pk")
    assert not verify_pow(puzzle, PowSolution(pk="node-pk", nonce=solution.nonce + 10**6))


def test_solution_not_transferable():
    puzzle = PowPuzzle(1, b"R", 6)
    solution = solve_pow(puzzle, "alice")
    stolen = PowSolution(pk="bob", nonce=solution.nonce)
    # Overwhelmingly likely to fail (puzzle binds the pk).
    assert not verify_pow(puzzle, stolen)


def test_difficulty_zero_trivial():
    puzzle = PowPuzzle(1, b"R", 0)
    assert verify_pow(puzzle, solve_pow(puzzle, "x"))


def test_difficulty_out_of_range():
    with pytest.raises(ValueError):
        PowPuzzle(1, b"R", 256).target


def test_unsolvable_budget_raises():
    puzzle = PowPuzzle(1, b"R", 40)
    with pytest.raises(RuntimeError):
        solve_pow(puzzle, "x", max_iters=10)


def test_expected_attempts():
    assert expected_attempts(10) == 1024.0


def test_puzzle_binds_round_and_randomness():
    base = PowPuzzle(1, b"R", 8)
    solution = solve_pow(base, "x")
    assert not verify_pow(PowPuzzle(2, b"R", 8), solution) or not verify_pow(
        PowPuzzle(1, b"S", 8), solution
    )


# -- semi-commitment -----------------------------------------------------------


MEMBERS = [("pk1", "addr1"), ("pk2", "addr2"), ("pk3", "addr3")]


def test_commitment_roundtrip():
    com = semi_commitment(MEMBERS)
    assert verify_semi_commitment(com, MEMBERS)


def test_commitment_order_invariant():
    assert semi_commitment(MEMBERS) == semi_commitment(list(reversed(MEMBERS)))


def test_commitment_binding():
    com = semi_commitment(MEMBERS)
    assert not verify_semi_commitment(com, MEMBERS[:2])
    assert not verify_semi_commitment(com, MEMBERS + [("pk4", "addr4")])


def test_canonical_list_sorted():
    assert canonical_member_list(reversed(MEMBERS)) == tuple(sorted(MEMBERS))


def test_superset_consistency():
    assert superset_consistent(MEMBERS, MEMBERS[:2])
    assert superset_consistent(MEMBERS, MEMBERS)
    assert not superset_consistent(MEMBERS[:2], MEMBERS)
