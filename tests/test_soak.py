"""Bounded-memory soak machinery: streaming reports, pruning, RSS columns.

These are the fast structural tests behind the ``soak:cycledger`` perf
case: every unbounded structure the soak loop bounds (report list, chain
bodies, spent-history) is asserted bounded here, and every compaction is
asserted *content-neutral* — the streamed/pruned run emits byte-identical
rows to the legacy unbounded run.
"""

from __future__ import annotations

import json

from repro.analysis.invariants import InvariantChecker
from repro.backends import create_backend
from repro.core.config import ProtocolParams
from repro.core.reporting import rss_kb
from repro.exp.results import (
    _CSV_TOTAL_COLUMNS,
    JsonlReportWriter,
    RoundAggregator,
    round_row,
)
from repro.exp.spec import canonical_json
from repro.perf.cases import run_soak, soak_extras, soak_state
from repro.perf.harness import PerfSettings


def _params(**overrides) -> ProtocolParams:
    base = dict(
        n=24,
        m=2,
        lam=2,
        referee_size=6,
        seed=3,
        users_per_shard=12,
        tx_per_committee=4,
    )
    base.update(overrides)
    return ProtocolParams(**base)


# -- round_row / CSV schema ---------------------------------------------------
def test_round_row_carries_epoch_scale_columns():
    ledger = create_backend("cycledger", _params())
    report = ledger.run_round()
    row = round_row(report)
    assert row["rss_peak_kb"] == 0  # sample_rss off: deterministic zero
    assert row["reports_streamed"] == 1
    assert "rss_peak_kb" in _CSV_TOTAL_COLUMNS
    assert "reports_streamed" in _CSV_TOTAL_COLUMNS


def test_aggregator_totals_include_epoch_scale_columns():
    ledger = create_backend("cycledger", _params())
    agg = RoundAggregator(keep_rows=False)
    for _ in range(3):
        agg.add(ledger.run_round())
    totals = agg.totals()
    assert totals["rounds"] == 3
    assert totals["reports_streamed"] == 3
    assert totals["rss_peak_kb"] == 0
    assert agg.rows is None  # keep_rows=False: O(1) memory


def test_sample_rss_populates_report_field():
    ledger = create_backend("cycledger", _params(sample_rss=True))
    report = ledger.run_round()
    if rss_kb() > 0:  # procfs available (Linux CI)
        assert report.rss_peak_kb > 0
    else:  # no procfs: the field degrades to the deterministic zero
        assert report.rss_peak_kb == 0


# -- streaming JSONL emission -------------------------------------------------
def test_jsonl_stream_matches_in_memory_rows(tmp_path):
    """The streamed file is row-for-row byte-identical to what the legacy
    in-memory run flattens, and single-pass totals agree."""
    legacy = create_backend("cycledger", _params())
    legacy.run(5)

    path = str(tmp_path / "rounds.jsonl")
    streamed = create_backend("cycledger", _params())
    streamed.report_retention = 1  # stream-and-drop
    with JsonlReportWriter(path) as writer:
        streamed.report_sink = writer
        agg = RoundAggregator(keep_rows=False)
        for _ in range(5):
            agg.add(streamed.run_round())
    assert writer.rows_written == 5
    assert len(streamed.reports) == 1  # bounded in-memory tail

    with open(path) as fh:
        lines = [line.rstrip("\n") for line in fh]
    assert lines == [canonical_json(round_row(r)) for r in legacy.reports]
    assert [json.loads(line)["round"] for line in lines] == [1, 2, 3, 4, 5]

    legacy_agg = RoundAggregator()
    for report in legacy.reports:
        legacy_agg.add(report)
    assert agg.totals() == legacy_agg.totals()


def test_report_retention_bounds_list_without_changing_stream():
    bounded = create_backend("cycledger", _params())
    bounded.report_retention = 2
    reports = bounded.run(6)
    assert len(bounded.reports) == 2
    assert bounded.reports_streamed == 6
    # run() still returns every report; only the retained tail is bounded.
    assert [r.round_number for r in reports] == [1, 2, 3, 4, 5, 6]
    assert [r.reports_streamed for r in bounded.reports] == [5, 6]


# -- chain pruning ------------------------------------------------------------
def test_chain_pruning_is_content_neutral():
    """A retention-windowed chain emits byte-identical rows, head, length
    and transaction totals to the unbounded run."""
    full = create_backend("cycledger", _params())
    pruned = create_backend("cycledger", _params(chain_retention=3))
    full.run(8)
    pruned.run(8)
    assert [canonical_json(round_row(r)) for r in pruned.reports] == [
        canonical_json(round_row(r)) for r in full.reports
    ]
    assert pruned.chain.head.hash == full.chain.head.hash
    assert len(pruned.chain) == len(full.chain) == 8
    assert len(pruned.chain.blocks) == 3  # only the retained suffix
    assert pruned.chain.pruned_blocks == 5
    assert (
        pruned.chain.total_transactions() == full.chain.total_transactions()
    )
    assert pruned.chain.verify()


def test_invariants_hold_on_pruned_chain():
    """The incremental checker keeps working across the pruning frontier,
    including with the compacted spent-outpoint window."""
    ledger = create_backend(
        "cycledger", _params(chain_retention=2, spent_retention=128)
    )
    checker = InvariantChecker(spent_retention=4)
    checker.install(ledger)
    ledger.run(8)
    checker.assert_clean()
    assert checker.check_final(ledger) == []


# -- the soak loop itself -----------------------------------------------------
def test_soak_loop_bounds_every_structure():
    """A short soak through the real soak state: reports dropped after
    emission, chain bodies pruned, extras block coherent.  (The RSS
    plateau gate itself needs a long horizon; the soak-smoke CI job and
    the ``soak:cycledger`` bench case assert it.)"""
    state = soak_state(PerfSettings().scaled(24), rounds=12)
    state.warmup_round = 10**9  # horizon too short for a meaningful gate
    sim_time = run_soak(state)
    assert sim_time > 0
    ledger = state.ledger
    assert state.rounds_done == 12
    assert ledger.reports_streamed == 12
    assert len(ledger.reports) == 1
    assert len(ledger.chain) == 12
    assert len(ledger.chain.blocks) == ledger.params.chain_retention
    extras = soak_extras(state)
    assert extras["rounds"] == 12
    assert extras["reports_streamed"] == 12
    assert extras["chain_retention"] == ledger.params.chain_retention
    assert extras["total_transactions"] == ledger.chain.total_transactions()
