"""Experiment engine: spec hashing, parallel/serial equality, cache resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.exp import (
    ExperimentSpec,
    Runner,
    derive_point_seed,
    run_point,
    run_sweep,
    smoke_spec,
)

TINY = ExperimentSpec(
    name="tiny",
    rounds=1,
    seeds=(0,),
    base={
        "n": 24,
        "lam": 2,
        "referee_size": 6,
        "users_per_shard": 8,
        "tx_per_committee": 3,
    },
    grid={"m": (2, 3)},
    adversary_grid={"fraction": (0.0, 0.2)},
)


# -- spec hashing -----------------------------------------------------------
def test_spec_hash_stable_across_instances():
    again = ExperimentSpec(
        name="tiny",
        rounds=1,
        seeds=(0,),
        base={
            "tx_per_committee": 3,
            "users_per_shard": 8,
            "referee_size": 6,
            "lam": 2,
            "n": 24,
        },  # same content, different key order / container types
        grid={"m": [2, 3]},
        adversary_grid={"fraction": [0.0, 0.2]},
    )
    assert TINY.spec_hash() == again.spec_hash()


def test_spec_hash_sensitive_to_every_knob():
    variants = [
        ExperimentSpec(name="tiny2", rounds=1, seeds=(0,), base=TINY.base,
                       grid=TINY.grid, adversary_grid=TINY.adversary_grid),
        ExperimentSpec(name="tiny", rounds=2, seeds=(0,), base=TINY.base,
                       grid=TINY.grid, adversary_grid=TINY.adversary_grid),
        ExperimentSpec(name="tiny", rounds=1, seeds=(0, 1), base=TINY.base,
                       grid=TINY.grid, adversary_grid=TINY.adversary_grid),
        ExperimentSpec(name="tiny", rounds=1, seeds=(0,), base=TINY.base,
                       grid={"m": (2, 4)}, adversary_grid=TINY.adversary_grid),
    ]
    hashes = {TINY.spec_hash()} | {v.spec_hash() for v in variants}
    assert len(hashes) == len(variants) + 1


def test_spec_rejects_unknown_fields():
    with pytest.raises(ValueError, match="ProtocolParams"):
        ExperimentSpec(name="bad", grid={"not_a_param": (1, 2)})
    with pytest.raises(ValueError, match="AdversaryConfig"):
        ExperimentSpec(name="bad", adversary_grid={"nope": (0.1,)})
    with pytest.raises(ValueError, match="seeds"):
        ExperimentSpec(name="bad", base={"seed": 3})
    with pytest.raises(ValueError, match="seeds"):
        ExperimentSpec(name="bad", points=({"seed": 5},))
    with pytest.raises(ValueError, match="capacity preset"):
        ExperimentSpec(name="bad", capacity_preset="no-such-preset")


# -- seed derivation --------------------------------------------------------
def test_derived_seed_is_content_addressed():
    a = derive_point_seed({"n": 24, "m": 2}, None, 0, 2)
    assert a == derive_point_seed({"m": 2, "n": 24}, None, 0, 2)  # order-free
    assert a != derive_point_seed({"n": 24, "m": 3}, None, 0, 2)
    assert a != derive_point_seed({"n": 24, "m": 2}, None, 1, 2)
    assert a != derive_point_seed({"n": 24, "m": 2}, {"fraction": 0.1}, 0, 2)
    assert 0 <= a < 2**31


def test_expansion_is_deterministic_and_complete():
    points = TINY.expand()
    assert len(points) == 4  # 2 m-values × 2 fractions × 1 seed
    assert points == TINY.expand()
    keys = {p.key for p in points}
    assert len(keys) == 4
    ms = sorted({p.params["m"] for p in points})
    fractions = sorted({p.adversary["fraction"] for p in points})
    assert ms == [2, 3] and fractions == [0.0, 0.2]


# -- execution --------------------------------------------------------------
def test_parallel_equals_serial_byte_identical():
    serial = Runner(TINY, workers=1).run()
    parallel = Runner(TINY, workers=2).run()
    assert parallel.workers >= 2
    assert serial.json_bytes() == parallel.json_bytes()


def test_run_point_is_reproducible():
    point = TINY.expand()[0]
    first = run_point(point)
    second = run_point(point)
    assert first.to_dict() == second.to_dict()
    assert first.chain["valid"]
    assert first.totals["packed"] > 0
    assert len(first.per_round) == TINY.rounds


def test_resume_from_cache(tmp_path):
    cache = str(tmp_path / "cache")
    first = Runner(TINY, workers=1, cache_dir=cache).run()
    assert first.executed == 4 and first.from_cache == 0

    second = Runner(TINY, workers=1, cache_dir=cache).run()
    assert second.executed == 0 and second.from_cache == 4
    assert second.json_bytes() == first.json_bytes()

    # drop one cached point -> only that point re-runs, bytes unchanged
    victim = first.results[2].key
    os.unlink(os.path.join(cache, TINY.spec_hash(), f"{victim}.json"))
    third = Runner(TINY, workers=1, cache_dir=cache).run()
    assert third.executed == 1 and third.from_cache == 3
    assert third.json_bytes() == first.json_bytes()


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = str(tmp_path / "cache")
    first = Runner(TINY, workers=1, cache_dir=cache).run()
    victim = os.path.join(cache, TINY.spec_hash(), f"{first.results[0].key}.json")
    with open(victim, "w") as fh:
        fh.write("{not json")
    again = Runner(TINY, workers=1, cache_dir=cache).run()
    assert again.executed == 1
    assert again.json_bytes() == first.json_bytes()


def test_outcome_lookup_and_artifacts(tmp_path):
    outcome = run_sweep(TINY, workers=1)
    result = outcome.one(m=2, fraction=0.2)
    assert result.point["params"]["m"] == 2
    assert result.point["adversary"]["fraction"] == 0.2
    with pytest.raises(LookupError):
        outcome.one(m=99)

    json_path = tmp_path / "results.json"
    csv_path = tmp_path / "results.csv"
    bench_path = tmp_path / "BENCH_sweep.json"
    outcome.write_json(str(json_path))
    outcome.write_csv(str(csv_path))
    outcome.write_bench(str(bench_path))

    payload = json.loads(json_path.read_text())
    assert payload["spec_hash"] == TINY.spec_hash()
    assert len(payload["results"]) == 4
    keys = [r["key"] for r in payload["results"]]
    assert keys == sorted(keys)

    header, *rows = csv_path.read_text().strip().splitlines()
    assert "p_m" in header and "a_fraction" in header and "packed" in header
    assert len(rows) == 4

    bench = json.loads(bench_path.read_text())
    assert bench["points"] == 4 and bench["executed"] == 4
    assert bench["rounds_per_sec"] > 0
    assert len(bench["trajectory"]) == 4


def test_smoke_spec_expands_to_2x2():
    points = smoke_spec().expand()
    assert len(points) == 4
    assert {p.params["m"] for p in points} == {2, 3}
    assert {p.adversary["fraction"] for p in points} == {0.0, 0.2}


def test_capacity_preset_round_trip():
    spec = ExperimentSpec(
        name="preset",
        rounds=1,
        seeds=(4,),
        derive_seeds=False,
        base={
            "n": 24,
            "m": 2,
            "lam": 2,
            "referee_size": 6,
            "users_per_shard": 8,
            "tx_per_committee": 3,
        },
        capacity_preset="tiered",
    )
    result = run_sweep(spec).results[0]
    capacities = {node["capacity"] for node in result.nodes}
    assert capacities == {2, 5, 10_000}


def test_scenario_axis_expands_and_runs():
    spec = ExperimentSpec(
        name="scenario-axis",
        rounds=4,
        seeds=(0,),
        base={
            "n": 24,
            "m": 2,
            "lam": 2,
            "referee_size": 6,
            "users_per_shard": 8,
            "tx_per_committee": 3,
        },
        scenario_grid=(None, "partition-halves"),
    )
    points = spec.expand()
    assert [p.scenario for p in points] == [None, "partition-halves"]
    # The scenario distinguishes the arms' cache keys, but both arms run
    # the SAME protocol seed — scenario sweeps are paired comparisons.
    assert points[0].derived_seed == derive_point_seed(
        dict(points[0].params), None, 0, 4
    )
    assert points[0].derived_seed == points[1].derived_seed
    assert points[0].key != points[1].key

    outcome = run_sweep(spec, workers=1)
    clean = outcome.one(scenario=None)
    cut = outcome.one(scenario="partition-halves")
    assert clean.totals["dropped"] == 0
    assert cut.totals["dropped"] > 0


def test_spec_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        ExperimentSpec(name="bad", seeds=(0,), scenario="no-such-preset")
    with pytest.raises(ValueError):
        ExperimentSpec(
            name="bad", seeds=(0,), scenario="churn", scenario_grid=("churn",)
        )


# -- CLI --------------------------------------------------------------------
def test_cli_sweep_smoke(tmp_path, capsys):
    out = tmp_path / "results.json"
    bench = tmp_path / "BENCH_sweep.json"
    code = cli_main([
        "sweep", "--grid", "m=2,3", "--grid", "adversary.fraction=0.0,0.2",
        "--n", "24", "--users", "8", "--txs", "3", "--rounds", "1",
        "--workers", "2", "--out", str(out), "--bench-out", str(bench),
    ])
    assert code == 0
    captured = capsys.readouterr().out
    assert "4 points" in captured
    payload = json.loads(out.read_text())
    assert len(payload["results"]) == 4
    assert json.loads(bench.read_text())["points"] == 4
