"""Behaviour strategies and the adversary controller."""

import numpy as np
import pytest

from repro.core.sandbox import build_sandbox
from repro.ledger.transaction import TxOutput, make_coinbase, make_transfer
from repro.nodes.adversary import (
    AdversaryConfig,
    AdversaryController,
    honest_majority_everywhere,
)
from repro.nodes.behaviors import (
    BEHAVIOR_REGISTRY,
    Behavior,
    CensoringLeader,
    ContraryVoter,
    EquivocatingLeader,
    HonestBehavior,
    LazyVoter,
    RandomVoter,
    SilentLeader,
)


@pytest.fixture
def voting_setup():
    ctx = build_sandbox(committee_size=6, lam=2)
    state = ctx.shard_states[0]
    genesis = make_coinbase([TxOutput(f"user-{i}", 100) for i in range(8)])
    state.add_genesis(genesis)
    # one valid spend + one overspend
    op = next(iter(state.utxos))
    owner = state.utxos.get(op).address
    valid = make_transfer(op, 100, "user-1", 10, owner)
    from repro.ledger.transaction import Transaction, TxInput

    invalid = Transaction(inputs=(TxInput(*op),), outputs=(TxOutput("x", 500),))
    return ctx, state, [valid, invalid]


def test_registry_complete():
    assert "honest" in BEHAVIOR_REGISTRY
    for name, cls in BEHAVIOR_REGISTRY.items():
        assert cls.name == name


def test_honest_votes_match_v(voting_setup, rng):
    ctx, state, txs = voting_setup
    node = ctx.nodes[2]
    votes = HonestBehavior().vote(node, txs, state, rng)
    assert list(votes) == [1, -1]


def test_honest_capacity_unknowns(voting_setup, rng):
    ctx, state, txs = voting_setup
    node = ctx.nodes[2]
    node.capacity = 1
    votes = HonestBehavior().vote(node, txs, state, rng)
    assert list(votes) == [1, 0]


def test_contrary_votes_inverted(voting_setup, rng):
    ctx, state, txs = voting_setup
    node = ctx.nodes[2]
    votes = ContraryVoter().vote(node, txs, state, rng)
    assert list(votes) == [-1, 1]


def test_lazy_votes_all_unknown(voting_setup, rng):
    ctx, state, txs = voting_setup
    votes = LazyVoter().vote(ctx.nodes[2], txs, state, rng)
    assert list(votes) == [0, 0]


def test_random_votes_in_alphabet(voting_setup, rng):
    ctx, state, txs = voting_setup
    votes = RandomVoter().vote(ctx.nodes[2], txs * 20, state, rng)
    assert set(votes) <= {-1, 0, 1}


def test_equivocating_splits_payloads():
    ctx = build_sandbox(committee_size=6, lam=2)
    variants = EquivocatingLeader().propose_payloads(ctx.nodes[0], [1, 2, 3, 4], "M")
    assert len(set(map(str, variants.values()))) == 2


def test_silent_sends_nothing():
    ctx = build_sandbox(committee_size=6, lam=2)
    behavior = SilentLeader()
    variants = behavior.propose_payloads(ctx.nodes[0], [1, 2], "M")
    assert all(v is ... for v in variants.values())
    assert not behavior.proposes_txlist(ctx.nodes[0])
    assert not behavior.forwards_inter(ctx.nodes[0])


def test_censoring_keeps_fraction():
    ctx = build_sandbox(committee_size=6, lam=2)
    kept = CensoringLeader(keep_fraction=0.5).assemble_txdec(
        ctx.nodes[0], list(range(10)), None
    )
    assert kept == list(range(5))
    assert CensoringLeader().assemble_txdec(ctx.nodes[0], list(range(10)), None) == []


def test_honest_output_votes(voting_setup, rng):
    ctx, _, txs = voting_setup
    votes = HonestBehavior().vote_on_outputs(ctx.nodes[2], txs, rng)
    assert list(votes) == [1, 1]  # both have positive outputs


# -- adversary controller --------------------------------------------------------


def test_fraction_respected(rng):
    config = AdversaryConfig(fraction=0.3)
    controller = AdversaryController(config, list(range(100)), rng)
    assert controller.count == 30


def test_zero_fraction(rng):
    controller = AdversaryController(AdversaryConfig(), list(range(10)), rng)
    assert controller.count == 0
    assert isinstance(controller.leader_behavior(0), HonestBehavior)


def test_behavior_assignment(rng):
    config = AdversaryConfig(
        fraction=0.5, leader_strategy="censoring_leader",
        voter_strategy="random_voter",
        strategy_kwargs={"keep_fraction": 0.25},
    )
    controller = AdversaryController(config, list(range(20)), rng)
    corrupted = next(iter(controller.corrupted))
    honest = next(i for i in range(20) if not controller.is_corrupted(i))
    leader_behavior = controller.leader_behavior(corrupted)
    assert isinstance(leader_behavior, CensoringLeader)
    assert leader_behavior.keep_fraction == 0.25
    assert isinstance(controller.voter_behavior(corrupted), RandomVoter)
    assert isinstance(controller.leader_behavior(honest), HonestBehavior)


def test_offline_subset(rng):
    config = AdversaryConfig(fraction=0.5, offline_fraction=0.5)
    controller = AdversaryController(config, list(range(40)), rng)
    assert len(controller.offline) == 10
    assert controller.offline <= controller.corrupted


def test_mild_adaptivity(rng):
    controller = AdversaryController(AdversaryConfig(fraction=0.1), list(range(20)), rng)
    fresh = next(i for i in range(20) if not controller.is_corrupted(i))
    controller.request_corruption({fresh})
    assert not controller.is_corrupted(fresh)
    controller.advance_round()
    assert controller.is_corrupted(fresh)


def test_config_validation():
    with pytest.raises(ValueError):
        AdversaryConfig(fraction=1.5)
    with pytest.raises(ValueError):
        AdversaryConfig(leader_strategy="nonexistent")


def test_honest_majority_predicate(rng):
    controller = AdversaryController(AdversaryConfig(fraction=0.0), list(range(9)), rng)
    assert honest_majority_everywhere([[0, 1, 2], [3, 4, 5]], controller)
    controller.corrupted = {0, 1}
    assert not honest_majority_everywhere([[0, 1, 2]], controller)
