"""Simulated VRF: uniqueness, verifiability, pseudorandomness proxies."""

import numpy as np

from repro.crypto.vrf import VRFOutput, vrf_eval, vrf_verify


def test_eval_verify_roundtrip(pki, keypair):
    out = vrf_eval(keypair, ("Q", 1))
    assert vrf_verify(pki, out, ("Q", 1))


def test_wrong_alpha_fails(pki, keypair):
    out = vrf_eval(keypair, ("Q", 1))
    assert not vrf_verify(pki, out, ("Q", 2))


def test_uniqueness(keypair):
    assert vrf_eval(keypair, "a") == vrf_eval(keypair, "a")


def test_different_keys_different_values(pki, keypair, keypair_b):
    assert vrf_eval(keypair, "a").value != vrf_eval(keypair_b, "a").value


def test_tampered_value_fails(pki, keypair):
    out = vrf_eval(keypair, "a")
    forged = VRFOutput(pk=out.pk, value=out.value ^ 1, proof=out.proof)
    assert not vrf_verify(pki, forged, "a")


def test_tampered_proof_fails(pki, keypair):
    out = vrf_eval(keypair, "a")
    forged = VRFOutput(pk=out.pk, value=out.value, proof=bytes(32))
    assert not vrf_verify(pki, forged, "a")


def test_stolen_output_fails_for_other_pk(pki, keypair, keypair_b):
    out = vrf_eval(keypair, "a")
    stolen = VRFOutput(pk=keypair_b.pk, value=out.value, proof=out.proof)
    assert not vrf_verify(pki, stolen, "a")


def test_unregistered_pk_fails(pki, keypair):
    out = vrf_eval(keypair, "a")
    impostor = VRFOutput(pk="unregistered", value=out.value, proof=out.proof)
    assert not vrf_verify(pki, impostor, "a")


def test_values_look_uniform(pki):
    """Crude pseudorandomness check: committee assignment (value mod m)
    should be close to uniform over many keys."""
    m = 8
    counts = np.zeros(m, dtype=int)
    for i in range(800):
        kp = pki.generate(("uniformity", i))
        counts[vrf_eval(kp, "round-randomness").value % m] += 1
    expected = 800 / m
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    # 99.9th percentile of chi2 with 7 dof is ~24.3
    assert chi2 < 24.3
