"""Selection phase (beacon + PoW + role lotteries) and block generation."""

import numpy as np
import pytest

from repro.core.blockgen import parallel_subblocks, relevant, run_block_generation
from repro.core.committee import run_committee_configuration
from repro.core.inter import run_inter_consensus
from repro.core.intra import run_intra_consensus
from repro.core.sandbox import build_multi_sandbox
from repro.core.selection import run_selection
from repro.core.semicommit import run_semi_commitment_exchange
from repro.ledger.transaction import Transaction, TxInput, TxOutput, make_coinbase
from repro.ledger.workload import WorkloadGenerator


def setup(seed=0, cross=0.3):
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2, seed=seed)
    wg = WorkloadGenerator(m=2, users_per_shard=24, rng=np.random.default_rng(seed))
    for state in ctx.shard_states:
        state.add_genesis(wg.genesis_tx)
    ctx.global_utxos.restore(wg.genesis_utxos().snapshot())
    batch = wg.generate_batch(40, cross_shard_ratio=cross, invalid_ratio=0.1)
    for k, pool in enumerate(wg.by_home_shard(batch)):
        ctx.mempools[k] = pool
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    run_intra_consensus(ctx)
    run_inter_consensus(ctx)
    return ctx, wg


# -- selection ----------------------------------------------------------------


def test_selection_produces_all_roles():
    ctx, _ = setup()
    report = run_selection(ctx)
    assert len(report.randomness) == 32
    assert len(report.next_referee) == ctx.params.referee_size
    assert len(report.next_leaders) == ctx.params.m
    assert all(len(p) == ctx.params.lam for p in report.next_partials)


def test_selection_roles_disjoint():
    ctx, _ = setup()
    report = run_selection(ctx)
    referee = set(report.next_referee)
    leaders = set(report.next_leaders)
    partials = {pk for group in report.next_partials for pk in group}
    assert not (referee & leaders)
    assert not (referee & partials)
    assert not (leaders & partials)


def test_selection_participants_all_online():
    ctx, _ = setup()
    report = run_selection(ctx)
    assert len(report.participants) == len(ctx.nodes)
    assert report.rejected_pow == 0


def test_leaders_are_top_reputation():
    ctx, _ = setup()
    # plant distinctive reputations
    pks = sorted(ctx.reputation)
    for rank, pk in enumerate(pks):
        ctx.reputation[pk] = float(rank)
    report = run_selection(ctx)
    eligible = [pk for pk in pks if pk not in set(report.next_referee)]
    expected = set(
        sorted(eligible, key=lambda pk: -ctx.reputation[pk])[: ctx.params.m]
    )
    assert set(report.next_leaders) == expected


def test_beacon_unbiased_by_malicious_referee():
    ctx, _ = setup()
    from repro.nodes.behaviors import ContraryVoter

    ctx.nodes[ctx.referee[0]].behavior = ContraryVoter()
    report = run_selection(ctx)
    assert report.beacon is not None
    assert report.beacon.disqualified  # the corrupt dealing was thrown out
    assert len(report.randomness) == 32


# -- block generation -----------------------------------------------------------


def test_block_packs_certified_txs():
    ctx, wg = setup()
    selection = run_selection(ctx)
    report = run_block_generation(ctx, selection)
    assert report.block is not None
    assert report.packed == len(report.block.transactions) > 0
    assert report.rejected_at_cr == 0
    assert len(ctx.chain) == 1
    assert ctx.chain.verify()


def test_block_fees_distributed():
    ctx, _ = setup()
    selection = run_selection(ctx)
    report = run_block_generation(ctx, selection)
    assert report.total_fees > 0
    assert sum(report.rewards.values()) == pytest.approx(report.total_fees)
    assert set(report.rewards) == {node.pk for node in ctx.nodes.values()}


def test_block_carries_next_round_roles():
    ctx, _ = setup()
    selection = run_selection(ctx)
    report = run_block_generation(ctx, selection)
    block = report.block
    assert block.referee == tuple(selection.next_referee)
    assert block.leaders == tuple(selection.next_leaders)
    assert block.randomness == selection.randomness


def test_shard_states_updated():
    ctx, _ = setup()
    sizes_before = [state.size() for state in ctx.shard_states]
    selection = run_selection(ctx)
    run_block_generation(ctx, selection)
    sizes_after = [state.size() for state in ctx.shard_states]
    assert sizes_after != sizes_before


def test_global_state_conservation():
    """Total UTXO value decreases exactly by the collected fees."""
    ctx, _ = setup()
    value_before = ctx.global_utxos.total_value()
    selection = run_selection(ctx)
    report = run_block_generation(ctx, selection)
    assert ctx.global_utxos.total_value() == value_before - report.total_fees


# -- §VIII-B parallel sub-blocks ----------------------------------------------


def _chain_txs():
    genesis = make_coinbase([TxOutput("a", 100), TxOutput("b", 100)])
    tx1 = Transaction(
        inputs=(TxInput(genesis.txid, 0),), outputs=(TxOutput("c", 99),), nonce=1
    )
    tx2 = Transaction(  # spends tx1's output: relevant to tx1
        inputs=(TxInput(tx1.txid, 0),), outputs=(TxOutput("d", 98),), nonce=2
    )
    tx3 = Transaction(  # same input as tx1: relevant (conflict)
        inputs=(TxInput(genesis.txid, 0),), outputs=(TxOutput("e", 99),), nonce=3
    )
    tx4 = Transaction(  # independent
        inputs=(TxInput(genesis.txid, 1),), outputs=(TxOutput("f", 99),), nonce=4
    )
    return tx1, tx2, tx3, tx4


def test_relevance_predicate():
    tx1, tx2, tx3, tx4 = _chain_txs()
    assert relevant(tx1, tx2)  # spends output
    assert relevant(tx1, tx3)  # same input
    assert not relevant(tx1, tx4)
    assert not relevant(tx2, tx4)


def test_parallel_subblocks_separate_relevant():
    tx1, tx2, tx3, tx4 = _chain_txs()
    groups = parallel_subblocks([tx1, tx2, tx3, tx4])
    index_of = {}
    for g_index, group in enumerate(groups):
        for tx in group:
            index_of[tx.txid] = g_index
    assert index_of[tx1.txid] != index_of[tx2.txid]
    assert index_of[tx1.txid] != index_of[tx3.txid]
    # every pair inside a group is irrelevant
    for group in groups:
        for a in group:
            for b in group:
                if a is not b:
                    assert not relevant(a, b)


def test_parallel_subblocks_empty():
    assert parallel_subblocks([]) == []


def test_parallel_block_generation_reports_width():
    ctx, _ = setup(seed=3)
    object.__setattr__(ctx.params, "parallel_block_generation", True)
    selection = run_selection(ctx)
    report = run_block_generation(ctx, selection)
    assert report.parallel_subblocks >= 1
    assert report.parallel_width >= 1
