"""Large-n fast path: byte-identity of the vectorized roster/reputation
machinery against the pre-vectorization seed behaviour.

Three contracts, checked *before* any timing claims:

1. **Run byte-identity** — every RoundReport row, phase sim-time map and
   final chain/reputation state must match the seed fixtures generated at
   v1.6.0 (the last pre-vectorization HEAD), for every execution path:
   default, sharded, overlapped, and both rival backends
   (``tests/fixtures/pre_largen_rounds.json``).
2. **Artifact byte-identity** — the sweep JSON (minus the version-bearing
   ``spec_hash`` field) and CSV artifacts hash to the pinned SHA-256
   digests, so the *encodings* leaders of downstream tooling consume are
   pinned too, not only the in-memory rows.
3. **Vectorized == scalar** — the batched sortition primitives
   (:func:`role_digests`, :func:`passes_threshold_many`,
   :func:`rank_select`, :func:`assign_partial_sets`) and the array-backed
   :class:`ReputationStore` reproduce the scalar/dict reference paths
   value-for-value, including tie handling and IEEE accumulation order.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.backends import create_backend
from repro.core.config import ProtocolParams
from repro.core.reputation import ReputationStore, distribute_rewards
from repro.core.sortition import (
    PARTIAL_ROLE,
    assign_partial_sets,
    partial_committee_of,
    passes_threshold,
    passes_threshold_many,
    rank_select,
    role_digests,
    role_hash,
)
from repro.exp import ExperimentSpec, Runner
from repro.exp.results import round_row, write_csv
from repro.exp.spec import canonical_json
from repro.nodes.adversary import AdversaryConfig

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "pre_largen_rounds.json"
)


@pytest.fixture(scope="module")
def fixtures():
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


# -- 1. run byte-identity against the v1.6.0 fixtures ------------------------
@pytest.mark.parametrize(
    "name",
    [
        "cycledger_n96",
        "cycledger_n96_sharded",
        "cycledger_n64_overlap_poisson",
        "rapidchain_n96",
        "omniledger_n96",
    ],
)
def test_fast_path_matches_pre_vectorization_fixture(fixtures, name):
    fx = fixtures["runs"][name]
    ledger = create_backend(
        fx["backend"],
        ProtocolParams(**fx["params"]),
        adversary=AdversaryConfig(**fx["adversary"]) if fx["adversary"] else None,
    )
    reports = ledger.run(fx["rounds"])
    assert len(reports) == len(fx["rows"])
    for index, (report, want) in enumerate(zip(reports, fx["rows"])):
        got = round_row(report)
        view = {key: got[key] for key in want}
        assert canonical_json(view) == canonical_json(want), (
            f"{name} round {index} diverged from the pre-vectorization seed"
        )
    for index, (report, want) in enumerate(
        zip(reports, fx["phase_sim_times"])
    ):
        assert report.phase_sim_times == want, (
            f"{name} round {index}: phase sim times diverged"
        )
    assert ledger.chain.head.hash.hex() == fx["final"]["chain_head"]
    assert len(ledger.chain) == fx["final"]["chain_length"]
    assert ledger.total_packed() == fx["final"]["total_packed"]
    assert dict(sorted(ledger.reputation.items())) == fx["final"]["reputation"]


# -- 2. sweep artifact byte-identity -----------------------------------------
def test_sweep_artifacts_byte_identical(fixtures, tmp_path):
    spec = ExperimentSpec(
        name="pre-largen-sweep",
        rounds=2,
        seeds=(0,),
        base={
            "n": 96, "m": 4, "lam": 2, "referee_size": 8,
            "users_per_shard": 24, "tx_per_committee": 6,
            "cross_shard_ratio": 0.3, "invalid_ratio": 0.1,
        },
        adversary={"fraction": 0.2},
        backend_grid=("cycledger", "rapidchain", "omniledger_sim"),
    )
    outcome = Runner(spec, workers=1).run()
    payload = json.loads(outcome.json_bytes())
    payload.pop("spec_hash", None)  # the only version-bearing field
    stripped = (canonical_json(payload) + "\n").encode("utf-8")
    csv_path = tmp_path / "sweep.csv"
    write_csv(str(csv_path), outcome.results)
    want = fixtures["sweep"]
    assert hashlib.sha256(stripped).hexdigest() == want[
        "json_sha256_no_spec_hash"
    ], "sweep JSON artifact (minus spec_hash) diverged byte-for-byte"
    assert (
        hashlib.sha256(csv_path.read_bytes()).hexdigest() == want["csv_sha256"]
    ), "sweep CSV artifact diverged byte-for-byte"


# -- 3. vectorized == scalar equivalence -------------------------------------
def _roster(count: int) -> list[str]:
    return [f"pk-{i:04d}" for i in range(count)]


RAND = b"\x07" * 32


def test_role_digests_match_scalar_role_hash():
    pks = _roster(64)
    digests = role_digests(9, RAND, pks, "LEADER")
    for pk, digest in zip(pks, digests):
        assert int.from_bytes(digest, "big") == role_hash(9, RAND, pk, "LEADER")


@pytest.mark.parametrize(
    "difficulty", [0.0, 1e-12, 0.01, 0.25, 0.5, 0.75, 1.0 - 1e-12, 1.0]
)
def test_passes_threshold_many_matches_scalar(difficulty):
    pks = _roster(48)
    batched = passes_threshold_many(3, RAND, pks, "REFEREE", difficulty)
    scalar = [passes_threshold(3, RAND, pk, "REFEREE", difficulty) for pk in pks]
    assert batched.dtype == bool
    assert batched.tolist() == scalar


def test_passes_threshold_many_empty_roster():
    result = passes_threshold_many(3, RAND, [], "REFEREE", 0.5)
    assert result.shape == (0,) and result.dtype == bool


def test_rank_select_matches_scalar_ranking():
    pks = _roster(40)
    for count in (0, 1, 7, 40):
        expected = sorted(pks, key=lambda pk: role_hash(5, RAND, pk, "X"))[:count]
        assert rank_select(pks, 5, RAND, "X", count) == expected
    with pytest.raises(ValueError):
        rank_select(pks, 5, RAND, "X", 41)


def test_assign_partial_sets_matches_scalar_reimplementation():
    pool = _roster(37)
    m, lam = 5, 3
    # Scalar reference: rank by role_hash, bucket by partial_committee_of.
    order = sorted(pool, key=lambda pk: role_hash(11, RAND, pk, PARTIAL_ROLE))
    expected: list[list[str]] = [[] for _ in range(m)]
    overflow: list[str] = []
    for pk in order:
        k = partial_committee_of(11, RAND, pk, m)
        if len(expected[k]) < lam:
            expected[k].append(pk)
        else:
            overflow.append(pk)
    for k in range(m):
        while len(expected[k]) < lam and overflow:
            expected[k].append(overflow.pop(0))
    assert assign_partial_sets(pool, 11, RAND, m, lam) == expected


def test_reputation_store_mapping_surface():
    pks = _roster(6)
    store = ReputationStore(pks)
    mirror = {pk: 0.0 for pk in pks}
    assert list(store) == pks and len(store) == 6
    assert store == mirror  # Mapping-equality bridge
    store[pks[2]] = 1.5
    mirror[pks[2]] = 1.5
    assert store[pks[2]] == 1.5 and store.get("absent", -1.0) == -1.0
    store["newcomer"] = 0.75  # growth path
    mirror["newcomer"] = 0.75
    assert "newcomer" in store and dict(store.items()) == mirror
    assert store.keys() == list(mirror) and store.values() == list(
        mirror.values()
    )


def test_reputation_store_add_scores_matches_scalar_accumulation():
    rng = np.random.default_rng(1234)
    pks = _roster(128)
    store = ReputationStore(pks)
    mirror: dict[str, float] = {pk: 0.0 for pk in pks}
    for _ in range(5):
        batch = [
            (pk, float(score))
            for pk, score in zip(pks, rng.uniform(-1.0, 1.0, size=len(pks)))
        ]
        applied = store.add_scores(batch)
        assert applied == len(batch)
        for pk, score in batch:
            mirror[pk] = mirror[pk] + score
    # Bit-identical IEEE accumulation, not approximate agreement.
    assert dict(store.items()) == mirror


def test_per_node_memory_bounded_at_n1024():
    """Slimmed per-node state regression bound: building a 1024-node
    deployment must stay within a fixed per-node byte budget (measured
    ~3.2 KB/node including PKI keys, users and the reputation store;
    bounded at 8 KB so a reintroduced per-node dict/mailbox — tens of KB
    each — trips this immediately, while interpreter drift does not)."""
    import gc
    import sys
    import tracemalloc

    params = ProtocolParams(
        n=1024, m=32, lam=2, referee_size=32, seed=0,
        users_per_shard=24, tx_per_committee=6,
        cross_shard_ratio=0.3, invalid_ratio=0.1,
    )
    gc.collect()
    tracemalloc.start()
    try:
        ledger = create_backend("cycledger", params)
        current, _peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    per_node = current / params.n
    assert per_node < 8192, f"per-node construction cost grew to {per_node:.0f} B"
    # Idle nodes are an array row, not a mailbox: slotted (no instance
    # dict) and the handler table materializes only on first subscription.
    node = next(iter(ledger.nodes.values()))
    assert not hasattr(node, "__dict__")
    assert node.handlers is None
    assert sys.getsizeof(node) <= 200


def test_distribute_rewards_identical_for_store_and_dict():
    pks = _roster(16)
    store = ReputationStore(pks)
    for i, pk in enumerate(pks):
        store[pk] = (i - 8) / 4.0
    as_dict = dict(store.items())
    assert distribute_rewards(13.5, store) == distribute_rewards(13.5, as_dict)
