"""Workload generator: ground truth, routing, reconciliation."""

import numpy as np
import pytest

from repro.ledger.transaction import shard_of_address
from repro.ledger.utxo import validate_transaction
from repro.ledger.workload import WorkloadGenerator


@pytest.fixture
def generator(rng):
    return WorkloadGenerator(m=4, users_per_shard=16, rng=rng)


def test_addresses_bucketed_correctly(generator):
    for shard, bucket in enumerate(generator.addresses_by_shard):
        assert len(bucket) == 16
        for address in bucket:
            assert shard_of_address(address, 4) == shard


def test_genesis_covers_all_users(generator):
    assert len(generator.genesis_tx.outputs) == 64
    utxos = generator.genesis_utxos()
    assert len(utxos) == 64
    assert utxos.total_value() == 64 * generator.endowment


def test_ground_truth_matches_v(generator):
    utxos = generator.genesis_utxos()
    for _ in range(6):
        batch = generator.generate_batch(50, cross_shard_ratio=0.4, invalid_ratio=0.2)
        results = [validate_transaction(t.tx, utxos) for t in batch]
        for tagged, result in zip(batch, results):
            assert bool(result) == tagged.intended_valid, (tagged.defect, result)
        for tagged, result in zip(batch, results):
            if result:
                utxos.apply_transaction(tagged.tx)
        generator.confirm_round({t.tx.txid for t in batch})


def test_cross_shard_flag_accurate(generator):
    batch = generator.generate_batch(80, cross_shard_ratio=0.5)
    for tagged in batch:
        out_shards = tagged.tx.output_shards(4)
        if tagged.cross_shard:
            assert out_shards - {tagged.home_shard}
        elif tagged.intended_valid:
            assert out_shards == {tagged.home_shard}


def test_cross_ratio_roughly_respected(rng):
    generator = WorkloadGenerator(m=4, users_per_shard=32, rng=rng)
    batch = generator.generate_batch(400, cross_shard_ratio=0.5)
    observed = sum(t.cross_shard for t in batch) / len(batch)
    assert 0.3 < observed < 0.7


def test_invalid_ratio_roughly_respected(rng):
    # Keep the request within the spendable pool so no valid builds run dry.
    generator = WorkloadGenerator(m=4, users_per_shard=64, rng=rng)
    batch = generator.generate_batch(200, invalid_ratio=0.3)
    observed = sum(not t.intended_valid for t in batch) / len(batch)
    assert 0.15 < observed < 0.45


def test_batch_shrinks_when_pool_dry(generator):
    """Requesting far more than the spendable supply yields a shorter batch
    (valid builds are skipped), never an exception."""
    batch = generator.generate_batch(500, invalid_ratio=0.0)
    assert 0 < len(batch) < 500


def test_routing_by_home_shard(generator):
    batch = generator.generate_batch(60, cross_shard_ratio=0.3)
    routed = generator.by_home_shard(batch)
    assert sum(len(r) for r in routed) == len(batch)
    for k, pool in enumerate(routed):
        assert all(t.home_shard == k for t in pool)


def test_defect_kinds(generator):
    batch = generator.generate_batch(300, invalid_ratio=0.5)
    defects = {t.defect for t in batch if not t.intended_valid}
    assert defects <= {"double_spend", "overspend", "phantom_input"}
    assert len(defects) >= 2


def test_confirm_round_rolls_back_unpacked(generator):
    """A valid tx that never reached a block must not poison later ground
    truth: its input is spendable again and later spends of it are valid."""
    utxos = generator.genesis_utxos()
    batch = generator.generate_batch(30, invalid_ratio=0.0)
    # pretend NOTHING was packed
    rolled = generator.confirm_round(set())
    assert rolled == len([t for t in batch if t.intended_valid])
    batch2 = generator.generate_batch(30, invalid_ratio=0.0)
    for tagged in batch2:
        assert bool(validate_transaction(tagged.tx, utxos)) == tagged.intended_valid


def test_confirm_round_keeps_packed(generator):
    utxos = generator.genesis_utxos()
    batch = generator.generate_batch(30, invalid_ratio=0.0)
    packed = {t.tx.txid for t in batch}
    for tagged in batch:
        utxos.apply_transaction(tagged.tx)
    assert generator.confirm_round(packed) == 0
    batch2 = generator.generate_batch(30, invalid_ratio=0.0)
    for tagged in batch2:
        assert bool(validate_transaction(tagged.tx, utxos)) == tagged.intended_valid


def test_param_validation(generator):
    with pytest.raises(ValueError):
        generator.generate_batch(1, cross_shard_ratio=2.0)
    with pytest.raises(ValueError):
        generator.generate_batch(1, invalid_ratio=-0.1)
    with pytest.raises(ValueError):
        WorkloadGenerator(m=0, users_per_shard=1, rng=np.random.default_rng(0))


def test_determinism():
    a = WorkloadGenerator(m=2, users_per_shard=8, rng=np.random.default_rng(3))
    b = WorkloadGenerator(m=2, users_per_shard=8, rng=np.random.default_rng(3))
    batch_a = a.generate_batch(20, cross_shard_ratio=0.3, invalid_ratio=0.1)
    batch_b = b.generate_batch(20, cross_shard_ratio=0.3, invalid_ratio=0.1)
    assert [t.tx.txid for t in batch_a] == [t.tx.txid for t in batch_b]
