"""CLI and ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_bars, ascii_plot
from repro.cli import build_parser, main


# -- plotting ------------------------------------------------------------------


def test_ascii_plot_basic():
    xs = np.arange(10)
    out = ascii_plot(xs, {"linear": xs * 2.0})
    assert "legend: * linear" in out
    assert out.count("\n") > 10
    assert "*" in out


def test_ascii_plot_multi_series_markers():
    xs = np.arange(5)
    out = ascii_plot(xs, {"a": xs + 1.0, "b": xs + 2.0})
    assert "* a" in out and "o b" in out


def test_ascii_plot_logy_drops_nonpositive():
    xs = np.arange(1, 6, dtype=float)
    ys = np.array([1e-3, 1e-2, 0.0, 1e-1, 1.0])
    out = ascii_plot(xs, {"s": ys}, logy=True)
    assert "(log10)" in out


def test_ascii_plot_validation():
    with pytest.raises(ValueError):
        ascii_plot([1.0], {"s": [1.0]})
    with pytest.raises(ValueError):
        ascii_plot([1.0, 2.0], {"s": [1.0]})


def test_ascii_plot_constant_series():
    out = ascii_plot([0.0, 1.0, 2.0], {"flat": [3.0, 3.0, 3.0]})
    assert "flat" in out


def test_ascii_bars():
    out = ascii_bars(["a", "bb"], [1.0, 2.0], title="T")
    assert out.startswith("T")
    assert "bb" in out and "#" in out


def test_ascii_bars_validation():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        ascii_bars([], [])


def test_ascii_bars_zero_values():
    out = ascii_bars(["z"], [0.0])
    assert "z" in out


# -- CLI -------------------------------------------------------------------------


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--n", "48", "--m", "3"])
    assert args.n == 48 and args.command == "run"
    args = parser.parse_args(["failure", "--cmax", "100"])
    assert args.cmax == 100


def test_cli_gx(capsys):
    assert main(["gx"]) == 0
    out = capsys.readouterr().out
    assert "g(x)" in out


def test_cli_failure(capsys):
    assert main(["failure", "--cmin", "20", "--cmax", "80", "--step", "20"]) == 0
    out = capsys.readouterr().out
    assert "exact" in out and "(log10)" in out


def test_cli_table1(capsys):
    assert main(["table1", "--m", "8", "--c", "100"]) == 0
    out = capsys.readouterr().out
    assert "CycLedger" in out and "RapidChain" in out


def test_cli_run_small(capsys):
    code = main([
        "run", "--n", "36", "--m", "2", "--lam", "2", "--referee", "8",
        "--rounds", "1", "--users", "16", "--txs", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "chain 1 blocks" in out and "valid=True" in out


def test_cli_scenario_list(capsys):
    assert main(["scenario", "--list"]) == 0
    out = capsys.readouterr().out
    assert "partition-halves" in out and "churn" in out


def test_cli_scenario_unknown_preset():
    import pytest

    with pytest.raises(SystemExit):
        main(["scenario", "--preset", "no-such-scenario"])


def test_cli_scenario_run_deterministic_json(tmp_path, capsys):
    args = [
        "scenario", "--preset", "leader-crash", "--n", "24", "--m", "2",
        "--lam", "2", "--referee", "6", "--users", "12", "--txs", "4",
        "--rounds", "3", "--verbose",
    ]
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert main([*args, "--json", str(first)]) == 0
    out = capsys.readouterr().out
    assert "scenario 'leader-crash'" in out
    assert "crash leader-elect" in out
    assert main([*args, "--json", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
