"""Adversary policies: serialization, determinism, pairing, and strategy."""

from __future__ import annotations

import json

import pytest

from repro.backends import backend_names, create_backend
from repro.core.config import ProtocolParams
from repro.exp import ExperimentSpec
from repro.exp.results import round_row
from repro.scenarios import (
    POLICY_PRESETS,
    SCENARIO_PRESETS,
    LeaderboardCorruption,
    policy_from_dict,
    policy_to_dict,
)

SMALL = dict(
    n=24,
    m=2,
    lam=2,
    referee_size=6,
    users_per_shard=12,
    tx_per_committee=4,
    cross_shard_ratio=0.25,
)


def _run(policy=None, seed=7, rounds=4, backend="cycledger", **kwargs):
    params = ProtocolParams(seed=seed, **SMALL)
    ledger = create_backend(backend, params, policy=policy, **kwargs)
    reports = ledger.run(rounds=rounds)
    return ledger, reports


# -- serialization -----------------------------------------------------------


@pytest.mark.parametrize("name", sorted(POLICY_PRESETS))
def test_policy_json_round_trip(name):
    policy = POLICY_PRESETS[name]
    payload = json.loads(json.dumps(policy_to_dict(policy)))
    assert policy_from_dict(payload) == policy


def test_policy_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown policy kind"):
        policy_from_dict({"kind": "bribe-everyone"})


# -- determinism and pairing -------------------------------------------------


@pytest.mark.parametrize("name", sorted(POLICY_PRESETS))
def test_policy_timeline_deterministic(name):
    """Identical seeds replay the exact policy event timeline and rounds."""
    policy = POLICY_PRESETS[name]
    rounds = policy.last_active_round + 1
    ledger_a, reports_a = _run(policy, rounds=rounds)
    ledger_b, reports_b = _run(policy, rounds=rounds)
    assert ledger_a.policy_driver.log == ledger_b.policy_driver.log
    assert [round_row(r) for r in reports_a] == [round_row(r) for r in reports_b]
    # Log lines ride the continuous timeline clock, not the round index.
    for line in ledger_a.policy_driver.log:
        assert line.startswith("t=")


def test_policy_free_prefix_is_byte_identical():
    """Before the first strike round, a policy arm matches the policy-free
    arm byte-for-byte (seed-pairing: the policy stream is drawn but never
    consumed by shipped policies)."""
    _, plain = _run(None, rounds=1)
    _, attacked = _run(POLICY_PRESETS["adaptive-corruption"], rounds=1)
    assert round_row(plain[0]) == round_row(attacked[0])


def test_policy_axis_pairs_seeds_but_splits_keys():
    spec = ExperimentSpec(
        name="pairing",
        rounds=2,
        seeds=(0,),
        base=dict(SMALL),
        policy_grid=(None, "adaptive-corruption"),
    )
    points = spec.expand()
    assert [p.policy for p in points] == [None, "adaptive-corruption"]
    assert points[0].derived_seed == points[1].derived_seed
    assert points[0].key != points[1].key
    assert points[1].descriptor()["policy"] == "adaptive-corruption"


def test_spec_rejects_unknown_policy_and_both_axes():
    with pytest.raises(ValueError, match="unknown policy"):
        ExperimentSpec(name="bad", base=dict(SMALL), policy="nope")
    with pytest.raises(ValueError, match="not both"):
        ExperimentSpec(
            name="bad",
            base=dict(SMALL),
            policy="adaptive-corruption",
            policy_grid=("censorship",),
        )


# -- strategic behaviour -----------------------------------------------------


def test_leaderboard_corruption_tracks_the_leaderboard():
    """The adaptive policy re-aims at current top-reputation nodes, so its
    strike log changes across rounds as the leaderboard shifts."""
    policy = POLICY_PRESETS["adaptive-corruption"]
    ledger, _ = _run(policy, rounds=policy.last_active_round + 1)
    strikes = [ln for ln in ledger.policy_driver.log if "corrupts" in ln]
    assert len(strikes) >= 2
    targets = {ln.split("corrupts")[1] for ln in strikes}
    assert len(targets) > 1, "targets never moved despite leaderboard churn"


def test_corruption_heals_after_the_window():
    policy = LeaderboardCorruption(
        start_round=2, end_round=3, budget_fraction=0.25
    )
    ledger, _ = _run(policy, rounds=5)
    assert ledger.adversary.count == 0


def test_adaptive_corruption_hurts_rivals_more_than_cycledger():
    """The acceptance contrast: the same adaptive adversary on the same
    seed degrades the recovery-free rivals harder than CycLedger."""
    policy = POLICY_PRESETS["adaptive-corruption"]

    def packed_ratio(backend):
        _, plain = _run(None, backend=backend, rounds=5)
        _, attacked = _run(policy, backend=backend, rounds=5)
        base = sum(r.packed for r in plain)
        hit = sum(r.packed for r in attacked)
        return hit / base if base else 0.0

    cyc = packed_ratio("cycledger")
    for rival in ("rapidchain", "omniledger_sim"):
        assert cyc > packed_ratio(rival)


# -- wiring errors -----------------------------------------------------------


def test_policy_rejects_shard_workers():
    params = ProtocolParams(seed=1, shard_workers=2, **SMALL)
    with pytest.raises(ValueError, match="shard_workers"):
        create_backend(
            "cycledger", params, policy=POLICY_PRESETS["censorship"]
        )


def test_policy_needs_dedicated_pipeline():
    from repro.core.protocol import CycLedger

    params = ProtocolParams(seed=1, **SMALL)
    ledger = CycLedger(params)
    with pytest.raises(ValueError, match="dedicated pipeline"):
        CycLedger(
            params,
            policy=POLICY_PRESETS["censorship"],
            pipeline=ledger.pipeline,
        )


def test_policy_driver_rejects_shared_pipeline():
    from repro.scenarios.policies import PolicyDriver

    params = ProtocolParams(seed=1, **SMALL)
    ledger = create_backend(
        "cycledger", params, policy=POLICY_PRESETS["censorship"]
    )
    import numpy as np

    driver = PolicyDriver(POLICY_PRESETS["censorship"], np.random.default_rng(0))
    with pytest.raises(ValueError, match="already"):
        driver.install(ledger)


def test_create_backend_rejects_unknown_policy_name_indirectly():
    # Policies resolve by preset name only in the exp layer; backends take
    # instances, so a bad name fails at spec validation (covered above) —
    # here we just pin that passing a non-policy object fails loudly.
    params = ProtocolParams(seed=1, **SMALL)
    with pytest.raises(AttributeError):
        ledger = create_backend("cycledger", params, policy="not-a-policy")
        ledger.run(rounds=1)


# -- composition -------------------------------------------------------------


def test_policy_composes_with_scenario():
    """A scripted scenario and an adaptive policy can share one run: both
    drivers install and both logs populate."""
    scenario = SCENARIO_PRESETS["latency-spike"]
    policy = POLICY_PRESETS["adaptive-corruption"]
    params = ProtocolParams(seed=11, **SMALL)
    ledger = create_backend(
        "cycledger", params, scenario=scenario, policy=policy
    )
    rounds = max(scenario.last_event_round, policy.last_active_round) + 1
    ledger.run(rounds=rounds)
    assert ledger.scenario_driver.log
    assert ledger.policy_driver.log


@pytest.mark.parametrize("backend", backend_names())
def test_policies_run_on_every_backend(backend):
    policy = POLICY_PRESETS["quorum-withholding"]
    ledger, reports = _run(policy, backend=backend, rounds=3)
    assert len(reports) == 3
    assert ledger.policy is policy
