"""Security math: Eq. 3–4, Fig. 5 anchors, Table I failure column."""

import numpy as np
import pytest

from repro.analysis.security import (
    committee_failure_exact,
    committee_failure_kl_bound,
    committee_failure_simple_bound,
    kl_divergence_bernoulli,
    minimum_committee_size,
    monte_carlo_committee_failure,
    partial_set_failure,
    round_failure_cycledger,
    round_failure_elastico,
    round_failure_rapidchain,
    union_bound,
)


N, T = 2000, 666  # Fig. 5's population


def test_exact_tail_monotone_in_c():
    cs = np.arange(20, 301, 20)
    probs = committee_failure_exact(N, T, cs)
    assert np.all(np.diff(probs) < 0)  # bigger committees, safer


def test_exact_tail_fig5_anchor_order_of_magnitude():
    """Paper: c=240 -> < 2.1e-9.  Our exact weak-majority tail is 8.5e-9 —
    same order; the strict-majority convention gives 3.7e-9 (see
    EXPERIMENTS.md)."""
    p = committee_failure_exact(N, T, 240)
    assert 1e-9 < p < 1e-8


def test_exact_tail_extremes():
    assert committee_failure_exact(10, 10, 4) == pytest.approx(1.0)
    assert committee_failure_exact(10, 0, 4) == pytest.approx(0.0)


def test_kl_divergence_properties():
    assert kl_divergence_bernoulli(0.5, 0.5) == pytest.approx(0.0)
    assert kl_divergence_bernoulli(0.5, 1 / 3) > 0
    with pytest.raises(ValueError):
        kl_divergence_bernoulli(0.5, 0.0)


def test_kl_unit_slip_behind_eq4():
    """Reproduction finding (see EXPERIMENTS.md): the paper's step from
    Eq. 3 to Eq. 4 needs D(1/2 ‖ 1/3) ≥ 1/12, which holds in *bits*
    (0.0850) but not in nats (0.0589) — while the Chernoff bound
    ``exp(-D·c)`` requires nats.  e^{-c/12} is therefore slightly below the
    valid KL bound."""
    d_nats = kl_divergence_bernoulli(0.5, 1 / 3)
    assert d_nats < 1 / 12 < d_nats / np.log(2)


def test_kl_bound_dominates_exact():
    """The (nats) KL Chernoff bound is a genuine upper bound on the tail."""
    cs = np.arange(12, 241, 12)
    exact = committee_failure_exact(N, T, cs)
    bound = committee_failure_kl_bound(N, T, cs)
    assert np.all(bound >= exact * 0.999)


def test_eq4_constant_is_optimistic():
    """Consequence of the unit slip: e^{-c/12} undercuts the exact tail at
    large c (8.5e-9 vs 2.06e-9 at c = 240) — the paper's Fig. 5 anchor
    '2.1e-9' is e^{-240/12}, not the exact hypergeometric tail."""
    cs = np.arange(36, 241, 12)
    kl = committee_failure_kl_bound(N, T, cs)
    simple = committee_failure_simple_bound(cs)
    assert np.all(simple <= kl)  # Eq. 4 is tighter than the valid bound
    assert committee_failure_simple_bound(240) == pytest.approx(2.06e-9, rel=0.01)
    assert committee_failure_exact(N, T, 240) > committee_failure_simple_bound(240)


def test_monte_carlo_matches_exact(rng):
    c = 50
    exact = committee_failure_exact(N, T, c)
    empirical = monte_carlo_committee_failure(N, T, c, trials=400_000, rng=rng)
    assert empirical == pytest.approx(exact, rel=0.15)


def test_partial_set_failure_lambda40():
    p = partial_set_failure(40)
    assert p == pytest.approx((1 / 3) ** 40)
    assert p < 8.3e-20  # paper rounds this to "< 8e-20"
    assert union_bound(p, 20) < 2e-18


def test_union_bound_clips():
    assert union_bound(0.3, 10) == 1.0
    assert union_bound(1e-9, 20) == pytest.approx(2e-8)


def test_round_failure_table1_shapes():
    m, c, lam = 16, 100, 40
    cyc = round_failure_cycledger(m, c, lam)
    rapid = round_failure_rapidchain(m, c)
    elastico = round_failure_elastico(m, c)
    # With small committees Elastico's e^{-c/40} is catastrophically larger.
    assert elastico > 100 * cyc
    # RapidChain's (1/2)^27 floor dominates at large c.
    assert round_failure_rapidchain(16, 1000) == pytest.approx(0.5**27, rel=0.01)
    # CycLedger at λ=40 adds a negligible partial-set term.
    assert cyc == pytest.approx(rapid - 0.5**27, rel=0.05)


def test_elastico_97_percent_over_6_epochs():
    """§II-A: '16 shards -> 97% failure over only 6 epochs' with c ≈ 100."""
    from repro.baselines.elastico import ElasticoModel

    model = ElasticoModel()
    p6 = model.epoch_failure(m=16, c=100, epochs=6)
    assert p6 > 0.75  # catastrophic, same shape as the quoted 97%


def test_minimum_committee_size():
    c = minimum_committee_size(N, T, 1e-6)
    assert committee_failure_exact(N, T, c) < 1e-6
    assert committee_failure_exact(N, T, c - 1) >= 1e-6
    with pytest.raises(ValueError):
        minimum_committee_size(N, T, 1.5)


def test_input_validation():
    with pytest.raises(ValueError):
        committee_failure_exact(10, 20, 5)
    with pytest.raises(ValueError):
        committee_failure_exact(10, 5, 0)
