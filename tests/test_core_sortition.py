"""Algorithm 1 sortition and the role lotteries."""

import numpy as np
import pytest

from repro.core.sortition import (
    PARTIAL_ROLE,
    REFEREE_ROLE,
    crypto_sort,
    partial_committee_of,
    passes_threshold,
    rank_select,
    role_hash,
    verify_sortition,
)


def test_sortition_in_range(pki):
    kp = pki.generate(1)
    ticket = crypto_sort(kp, round_number=3, randomness=b"R", m=7)
    assert 0 <= ticket.committee_id < 7


def test_sortition_verifies(pki):
    kp = pki.generate(1)
    ticket = crypto_sort(kp, 3, b"R", 7)
    assert verify_sortition(pki, ticket, 3, b"R", 7)


def test_sortition_wrong_context_fails(pki):
    kp = pki.generate(1)
    ticket = crypto_sort(kp, 3, b"R", 7)
    assert not verify_sortition(pki, ticket, 4, b"R", 7)
    assert not verify_sortition(pki, ticket, 3, b"S", 7)


def test_sortition_forged_committee_fails(pki):
    """A node cannot claim a committee its VRF did not assign."""
    kp = pki.generate(1)
    ticket = crypto_sort(kp, 3, b"R", 7)
    from repro.core.sortition import SortitionTicket

    forged = SortitionTicket(
        committee_id=(ticket.committee_id + 1) % 7, vrf=ticket.vrf
    )
    assert not verify_sortition(pki, forged, 3, b"R", 7)


def test_sortition_m_validation(pki):
    with pytest.raises(ValueError):
        crypto_sort(pki.generate(2), 1, b"R", 0)


def test_sortition_distribution(pki):
    m = 5
    counts = np.zeros(m)
    for i in range(500):
        kp = pki.generate(("dist", i))
        counts[crypto_sort(kp, 1, b"R", m).committee_id] += 1
    expected = 500 / m
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    assert chi2 < 18.5  # 99.9th pct, 4 dof


def test_role_hash_depends_on_all_inputs():
    base = role_hash(1, b"R", "pk", REFEREE_ROLE)
    assert base != role_hash(2, b"R", "pk", REFEREE_ROLE)
    assert base != role_hash(1, b"S", "pk", REFEREE_ROLE)
    assert base != role_hash(1, b"R", "pk2", REFEREE_ROLE)
    assert base != role_hash(1, b"R", "pk", PARTIAL_ROLE)


def test_threshold_probability():
    hits = sum(
        passes_threshold(1, b"R", f"pk-{i}", REFEREE_ROLE, 0.25) for i in range(2000)
    )
    assert 400 < hits < 600  # ~500 expected


def test_threshold_validation():
    with pytest.raises(ValueError):
        passes_threshold(1, b"R", "pk", REFEREE_ROLE, 1.5)


def test_rank_select_exact_size_and_deterministic():
    candidates = [f"pk-{i}" for i in range(50)]
    chosen = rank_select(candidates, 2, b"R", REFEREE_ROLE, 10)
    assert len(chosen) == 10
    assert chosen == rank_select(list(reversed(candidates)), 2, b"R", REFEREE_ROLE, 10)


def test_rank_select_matches_threshold_ordering():
    """rank_select picks exactly the lowest role hashes."""
    candidates = [f"pk-{i}" for i in range(30)]
    chosen = set(rank_select(candidates, 1, b"R", PARTIAL_ROLE, 5))
    hashes = {pk: role_hash(1, b"R", pk, PARTIAL_ROLE) for pk in candidates}
    cutoff = sorted(hashes.values())[4]
    assert chosen == {pk for pk, h in hashes.items() if h <= cutoff}


def test_rank_select_too_many_raises():
    with pytest.raises(ValueError):
        rank_select(["a"], 1, b"R", REFEREE_ROLE, 2)


def test_partial_committee_in_range():
    for i in range(20):
        assert 0 <= partial_committee_of(1, b"R", f"pk-{i}", 6) < 6
