"""Continuous-time round-overlap engine and the persistent mempool.

Three contracts, in increasing strictness:

1. **Legacy byte-identity** — with default params (``overlap=none``,
   legacy arrivals) every RoundReport field that existed before the
   refactor must match the pre-refactor seed fixtures byte-for-byte
   (``tests/fixtures/pre_overlap_rounds.json``, generated at PR 4's HEAD).
2. **Overlap state identity** — ``overlap=semicommit`` re-times the
   timeline but must leave the final chain / UTXO set / reputation map
   byte-identical to ``overlap=none``, while reporting ≥ 10% lower
   end-to-end sim-time latency on the default compare spec.
3. **Mempool determinism** — identical seeds give identical
   arrival/packing/eviction order, whether a sweep runs serially or on
   process-pool workers.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.backends import create_backend
from repro.core.config import ProtocolParams
from repro.core.pipeline import (
    OVERLAP_NONE,
    OVERLAP_SEMICOMMIT,
    OverlapScheduler,
    Phase,
)
from repro.core.protocol import CycLedger, build_default_pipeline
from repro.exp import ExperimentSpec, Runner, overlap_compare_spec
from repro.exp.results import round_row, write_csv
from repro.exp.spec import canonical_json
from repro.ledger.workload import TxMempool, WorkloadGenerator
from repro.nodes.adversary import AdversaryConfig

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "pre_overlap_rounds.json"
)

DEFAULTISH = dict(
    n=48, m=4, lam=2, referee_size=8, seed=0, users_per_shard=24,
    tx_per_committee=6, cross_shard_ratio=0.3, invalid_ratio=0.1,
)


def _noop(ctx):
    return None


# -- OverlapScheduler units --------------------------------------------------
def _synthetic_phases() -> tuple[Phase, ...]:
    """A miniature CycLedger-shaped pipeline: prefix, body, tail."""
    return (
        Phase("config", _noop, needs_prev=("selection",)),
        Phase("semicommit", _noop),
        Phase("intra", _noop, needs=("semicommit",), needs_prev=("block",)),
        Phase("selection", _noop),
        Phase("block", _noop),
    )


DURATIONS = {
    "config": 5.0, "semicommit": 5.0, "intra": 20.0,
    "selection": 10.0, "block": 30.0,
}
ROUND_TOTAL = sum(DURATIONS.values())  # 70


def test_scheduler_none_serializes_rounds():
    scheduler = OverlapScheduler(OVERLAP_NONE)
    phases = _synthetic_phases()
    first = scheduler.observe_round(1, phases, DURATIONS, ROUND_TOTAL)
    second = scheduler.observe_round(2, phases, DURATIONS, ROUND_TOTAL)
    assert (first.start, first.end) == (0.0, 70.0)
    assert (second.start, second.end) == (70.0, 140.0)
    # Phases chain back to back inside each round.
    assert [w.start for w in first.phases] == [0.0, 5.0, 10.0, 30.0, 40.0]
    assert scheduler.makespan == 140.0


def test_scheduler_semicommit_overlaps_prefix():
    scheduler = OverlapScheduler(OVERLAP_SEMICOMMIT)
    phases = _synthetic_phases()
    first = scheduler.observe_round(1, phases, DURATIONS, ROUND_TOTAL)
    second = scheduler.observe_round(2, phases, DURATIONS, ROUND_TOTAL)
    # Round 1 is dense: same spans as the serial schedule.
    assert (first.start, first.end) == (0.0, 70.0)
    by_name = {w.name: w for w in second.phases}
    # config(r2) starts at selection(r1).end = 40, not at block(r1).end = 70.
    assert by_name["config"].start == 40.0
    assert by_name["semicommit"].end == 50.0
    # intra(r2) still waits for block(r1): starts at 70, not 50.
    assert by_name["intra"].start == 70.0
    # The prefix (10 sim-time units) left the critical path entirely.
    assert second.end == 140.0 - 10.0
    assert scheduler.makespan == 130.0


def test_scheduler_rejects_unknown_mode():
    with pytest.raises(ValueError, match="overlap mode"):
        OverlapScheduler("both")
    with pytest.raises(ValueError, match="overlap mode"):
        ProtocolParams(overlap="both")


def test_scheduler_rejects_unknown_dependency_names():
    scheduler = OverlapScheduler(OVERLAP_SEMICOMMIT)
    typo = (
        Phase("config", _noop, needs_prev=("selction",)),  # typo'd
        Phase("selection", _noop),
    )
    with pytest.raises(ValueError, match="needs_prev 'selction'"):
        scheduler.observe_round(1, typo, {}, 0.0)
    forward = (
        Phase("a", _noop, needs=("b",)),  # b is not an earlier phase
        Phase("b", _noop),
    )
    with pytest.raises(ValueError, match="not an earlier phase"):
        OverlapScheduler(OVERLAP_NONE).observe_round(1, forward, {}, 0.0)


def test_legacy_generate_batch_contract_unchanged():
    """Direct callers may skip confirm_round: each legacy batch supersedes
    the previous one's effects, so a late confirm_round never rolls back
    older batches (the pre-refactor contract)."""
    generator = _generator()
    generator.generate_batch(15, invalid_ratio=0.0)
    second = generator.generate_batch(15, invalid_ratio=0.0)
    assert set(generator._effects) == {t.tx.txid for t in second}
    rolled = generator.confirm_round(set())
    assert rolled == len(second)  # only the outstanding batch


def test_default_pipeline_carries_dependency_annotations():
    phases = {p.name: p for p in build_default_pipeline()}
    assert phases["config"].needs_prev == ("selection",)
    assert phases["intra"].needs_prev == ("block",)
    assert phases["intra"].needs == ("semicommit",)


# -- legacy byte-identity against pre-refactor fixtures ----------------------
@pytest.fixture(scope="module")
def fixtures():
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize(
    "name", ["cycledger_default", "cycledger_small", "rapidchain_small"]
)
def test_overlap_none_matches_pre_refactor_fixture(fixtures, name):
    fx = fixtures[name]
    ledger = create_backend(
        fx["backend"],
        ProtocolParams(**fx["params"]),
        adversary=AdversaryConfig(**fx["adversary"]) if fx["adversary"] else None,
    )
    reports = ledger.run(fx["rounds"])
    for index, (report, want) in enumerate(zip(reports, fx["rows"])):
        got = round_row(report)
        pre_refactor_view = {key: got[key] for key in want}
        # Byte-for-byte on every pre-refactor column (canonical JSON is the
        # artifact encoding, so compare through it).
        assert canonical_json(pre_refactor_view) == canonical_json(want), (
            name, index,
        )
        assert report.phase_sim_times == fx["phase_sim_times"][index]
        # The new timeline columns are consistent with the old clock: at
        # overlap=none each round's window spans its sim_time (up to float
        # re-association of base + sim_time; the cumulative end below is
        # exact).
        assert got["timeline_end"] - got["timeline_start"] == pytest.approx(
            got["sim_time"], rel=1e-9
        )
        # Legacy arrivals leave no standing queue and never evict.
        assert got["queue_depth"] == 0 and got["tx_evicted"] == 0
    final = fx["final"]
    assert ledger.chain.head.hash.hex() == final["chain_head"]
    assert len(ledger.chain) == final["chain_length"]
    assert ledger.total_packed() == final["total_packed"]
    assert dict(sorted(ledger.reputation.items())) == final["reputation"]
    # none-mode e2e latency == the cumulative per-round clock, exactly.
    assert reports[-1].timeline_end == sum(r.sim_time for r in reports)


# -- overlap=semicommit: identical state, lower latency ----------------------
def _ledger_state(ledger):
    return (
        [block.hash for block in ledger.chain],
        sorted(ledger.global_utxos),
        dict(sorted(ledger.reputation.items())),
        dict(sorted(ledger.rewards.items())),
    )


def test_semicommit_identical_state_lower_latency():
    rounds = 8
    runs = {}
    for mode in (OVERLAP_NONE, OVERLAP_SEMICOMMIT):
        ledger = CycLedger(
            ProtocolParams(**DEFAULTISH, overlap=mode),
            adversary=AdversaryConfig(fraction=0.2),
        )
        runs[mode] = (ledger, ledger.run(rounds))
    ledger_none, reports_none = runs[OVERLAP_NONE]
    ledger_semi, reports_semi = runs[OVERLAP_SEMICOMMIT]

    # Execution is identical: same chain, UTXOs, reputation, rewards, and
    # identical per-round clocks — only the composed timeline differs.
    assert _ledger_state(ledger_none) == _ledger_state(ledger_semi)
    assert [r.sim_time for r in reports_none] == [
        r.sim_time for r in reports_semi
    ]
    assert [r.phase_sim_times for r in reports_none] == [
        r.phase_sim_times for r in reports_semi
    ]

    e2e_none = reports_none[-1].timeline_end
    e2e_semi = max(r.timeline_end for r in reports_semi)
    assert e2e_semi <= 0.90 * e2e_none  # the >= 10% pipelining gain
    # Overlapped rounds start before their predecessor ends (true overlap,
    # not just a shorter total).
    assert any(
        later.timeline_start < earlier.timeline_end
        for earlier, later in zip(reports_semi, reports_semi[1:])
    )


def test_overlap_compare_preset_meets_gain_target():
    outcome = Runner(overlap_compare_spec(), workers=1).run()
    by_mode = {
        result.point["params"]["overlap"]: result
        for result in outcome.results
    }
    none, semi = by_mode["none"], by_mode["semicommit"]
    # Paired arms: identical ledger state, identical per-round clocks.
    assert none.chain["head"] == semi.chain["head"]
    assert [r["sim_time"] for r in none.per_round] == [
        r["sim_time"] for r in semi.per_round
    ]
    assert none.totals["e2e_sim_time"] == none.totals["sim_time"]
    assert semi.totals["e2e_sim_time"] <= 0.90 * none.totals["e2e_sim_time"]


# -- the persistent mempool --------------------------------------------------
def _generator(seed=7, m=2):
    return WorkloadGenerator(
        m=m, users_per_shard=16, rng=np.random.default_rng(seed)
    )


def test_mempool_legacy_matches_raw_generator():
    direct = _generator()
    pooled = TxMempool(_generator())
    for round_number in (1, 2, 3):
        want = direct.generate_batch(
            20, cross_shard_ratio=0.3, invalid_ratio=0.2
        )
        arrivals = pooled.admit(
            round_number, 0.0, legacy_count=20,
            cross_shard_ratio=0.3, invalid_ratio=0.2,
        )
        assert arrivals == len(want)
        # offered() routes exactly like the historical by_home_shard path.
        assert [
            [t.tx.txid for t in shard] for shard in pooled.offered()
        ] == [
            [t.tx.txid for t in shard] for shard in direct.by_home_shard(want)
        ]
        packed = {t.tx.txid for t in want[::2]}
        direct.confirm_round(packed)
        stats = pooled.settle(packed, round_number, 1.0)
        assert (stats.depth, stats.evicted) == (0, 0)
        assert pooled.depth == 0
    # Identical RNG consumption and spend-tracking state afterwards.
    assert [
        t.tx.txid for t in direct.generate_batch(10)
    ] == [t.tx.txid for t in pooled.generator.generate_batch(10)]


def test_mempool_rejects_bad_configuration():
    with pytest.raises(ValueError, match="arrival process"):
        TxMempool(_generator(), process="burst")
    with pytest.raises(ValueError, match="positive rate"):
        TxMempool(_generator(), process="poisson", rate=0.0)
    with pytest.raises(ValueError, match=">= 0"):
        TxMempool(_generator(), capacity=-1)
    with pytest.raises(ValueError, match="legacy"):
        TxMempool(_generator(), capacity=100)  # silent no-op otherwise
    with pytest.raises(ValueError, match="arrival process"):
        ProtocolParams(arrival_process="burst")
    with pytest.raises(ValueError, match="arrival_rate"):
        ProtocolParams(arrival_process="poisson", arrival_rate=0.0)
    # Queue knobs are no-ops under legacy settlement (the queue clears
    # every round): reject them instead of silently measuring nothing.
    for knobs in (
        {"mempool_max_age": 2},
        {"mempool_capacity": 100},
        {"arrival_rate": 10.0},
    ):
        with pytest.raises(ValueError, match="legacy"):
            ProtocolParams(**knobs)


def test_mempool_poisson_fifo_age_and_ttl_eviction():
    pool = TxMempool(
        _generator(), process="poisson", rate=12.0, max_age_rounds=2
    )
    arrived = pool.admit(1, 0.0, legacy_count=0,
                         cross_shard_ratio=0.0, invalid_ratio=0.0)
    assert arrived > 0 and pool.depth == arrived
    # Nothing packs: entries age, then expire after two full rounds.
    stats1 = pool.settle(set(), 1, 10.0)
    assert stats1.depth == arrived and stats1.evicted == 0
    assert stats1.age_max == 10.0 and stats1.age_mean == 10.0
    pool.admit(2, 10.0, 0, 0.0, 0.0)
    stats2 = pool.settle(set(), 2, 25.0)
    assert stats2.evicted == 0  # round-1 arrivals are one round old
    pool.admit(3, 25.0, 0, 0.0, 0.0)
    stats3 = pool.settle(set(), 3, 40.0)
    assert stats3.evicted == arrived  # the round-1 cohort hit the TTL
    assert pool.total_evicted == arrived
    # Eviction rolled their inputs back into the spendable pool: the
    # generator can still build valid transactions from them.
    assert all(
        e.arrived_round > 1 for e in pool.queue
    )


def test_mempool_capacity_backpressure_evicts_oldest():
    pool = TxMempool(
        _generator(seed=11), process="poisson", rate=15.0, capacity=10
    )
    pool.admit(1, 0.0, 0, 0.0, 0.0)
    pool.admit(2, 5.0, 0, 0.0, 0.0)
    stats = pool.settle(set(), 2, 9.0)
    assert stats.depth == 10
    assert pool.depth == 10
    # Survivors are the newest arrivals (oldest evicted first).
    assert [e.arrived_round for e in pool.queue] == sorted(
        e.arrived_round for e in pool.queue
    )
    if stats.evicted:
        assert min(e.arrived_at for e in pool.queue) >= 0.0


def test_poisson_backlog_drains_across_rounds():
    """A tx unpacked in round r stays queued and packs in a later round."""
    params = ProtocolParams(
        **{**DEFAULTISH, "seed": 3},
        arrival_process="poisson", arrival_rate=60.0, mempool_max_age=4,
    )
    ledger = CycLedger(params)
    reports = ledger.run(5)
    assert any(r.queue_depth > 0 for r in reports)  # standing queue exists
    assert any(r.tx_age_mean > 0 for r in reports)
    assert sum(r.submitted for r in reports) == ledger.mempool.total_admitted
    # Conservation: everything admitted is packed, still queued, or evicted.
    packed_total = sum(r.packed for r in reports)
    assert (
        ledger.mempool.total_admitted
        == packed_total + ledger.mempool.depth + ledger.mempool.total_evicted
    )
    # Arrivals vary round to round (a real rate process, not a constant).
    assert len({r.submitted for r in reports}) > 1


def test_mempool_identical_seeds_identical_order():
    """Same seed ⇒ same arrivals, packing and evictions, run twice."""
    params = ProtocolParams(
        **{**DEFAULTISH, "seed": 5},
        arrival_process="poisson", arrival_rate=55.0,
        mempool_max_age=3, mempool_capacity=120,
    )
    rows_a = [round_row(r) for r in CycLedger(params).run(4)]
    rows_b = [round_row(r) for r in CycLedger(params).run(4)]
    assert canonical_json(rows_a) == canonical_json(rows_b)


def test_poisson_draws_never_spend_offchain_outputs():
    """Ground truth stays honest under sustained load.

    Created outputs are deferred until the creating tx packs
    (``WorkloadGenerator.defer_created``), so an intended-valid queued
    transaction always spends outputs that exist on-chain right now —
    committees reject it only for budget/cross-shard reasons, never
    because the generator chained off an unconfirmed parent.
    """
    params = ProtocolParams(
        **{**DEFAULTISH, "seed": 3},
        arrival_process="poisson", arrival_rate=60.0, mempool_max_age=2,
    )
    ledger = CycLedger(params)
    for _ in range(6):
        ledger.run_round()
        for entry in ledger.mempool.queue:
            if not entry.tagged.intended_valid:
                continue
            for tx_input in entry.tagged.tx.inputs:
                outpoint = (tx_input.txid, tx_input.index)
                assert outpoint in ledger.global_utxos, (
                    "queued intended-valid tx spends an off-chain output"
                )


def test_deferred_spent_records_follow_packing():
    """Double-spend injection material is confirmed-spent inputs only.

    In persistent mode an input counts as "spent" (and so becomes a
    double-spend target) only once its transaction packs; merely-queued
    spends stay invisible, otherwise the injected defect would actually
    be valid against the chain's UTXO view.
    """
    pool = TxMempool(_generator(seed=21), process="poisson", rate=16.0)
    generator = pool.generator
    assert generator.defer_created is True
    pool.admit(1, 0.0, 0, cross_shard_ratio=0.0, invalid_ratio=0.0)
    assert generator._spent == []  # nothing confirmed yet
    queued = [e.tagged for e in pool.queue if e.tagged.intended_valid]
    packed = {t.tx.txid for t in queued[: len(queued) // 2]}
    pool.settle(packed, 1, 1.0)
    spent_outpoints = {outpoint for outpoint, _, _ in generator._spent}
    want = {
        (tx_input.txid, tx_input.index)
        for t in queued
        if t.tx.txid in packed
        for tx_input in t.tx.inputs
    }
    assert spent_outpoints == want


def test_eviction_does_not_duplicate_value():
    """TTL/capacity eviction returns inputs exactly once: the spendable
    pool never holds duplicate outpoints and its total value never
    exceeds the genesis endowment (fees only ever remove value)."""
    params = ProtocolParams(
        **{**DEFAULTISH, "seed": 9},
        arrival_process="poisson", arrival_rate=70.0,
        mempool_max_age=1, mempool_capacity=40,
    )
    ledger = CycLedger(params)
    genesis_total = sum(
        output.amount for output in ledger.workload.genesis_tx.outputs
    )
    for _ in range(5):
        ledger.run_round()
        outpoints = [
            entry[0]
            for shard in ledger.workload._spendable
            for entry in shard
        ]
        assert len(outpoints) == len(set(outpoints)), "duplicate outpoint"
        spendable_value = sum(
            entry[2]
            for shard in ledger.workload._spendable
            for entry in shard
        )
        assert spendable_value <= genesis_total
    assert ledger.mempool.total_evicted > 0  # the hazard path actually ran


# -- sweep integration -------------------------------------------------------
POISSON_SWEEP = ExperimentSpec(
    name="overlap-mempool-sweep",
    rounds=3,
    seeds=(0, 1),
    base={
        "n": 24, "m": 2, "lam": 2, "referee_size": 6,
        "users_per_shard": 12, "tx_per_committee": 4,
        "arrival_process": "poisson", "arrival_rate": 14.0,
        "mempool_max_age": 2,
    },
    grid={"overlap": ("none", "semicommit")},
)


def test_poisson_run_stable_across_hash_seeds():
    """Persistent-mempool runs must not depend on PYTHONHASHSEED.

    Settlement publishes deferred outputs in queue order, never in
    set-iteration order — this caught a real bug where forget_txids
    iterated the packed-txid set and block content varied by hash seed.
    In-process byte-identity tests cannot see this (one process has one
    hash seed), so run two interpreters with different seeds.
    """
    import subprocess
    import sys

    program = (
        "from repro.core.config import ProtocolParams\n"
        "from repro.core.protocol import CycLedger\n"
        "from repro.exp.results import round_row\n"
        "from repro.exp.spec import canonical_json\n"
        "params = ProtocolParams(n=24, m=2, lam=2, referee_size=6, seed=3,\n"
        "    users_per_shard=12, tx_per_committee=4, invalid_ratio=0.1,\n"
        "    arrival_process='poisson', arrival_rate=14.0,\n"
        "    mempool_max_age=2, overlap='semicommit')\n"
        "rows = [round_row(r) for r in CycLedger(params).run(3)]\n"
        "print(canonical_json(rows))\n"
    )
    outputs = []
    for hash_seed in ("1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]


def test_mempool_sweep_serial_parallel_byte_identical(tmp_path):
    serial = Runner(POISSON_SWEEP, workers=1).run()
    parallel = Runner(POISSON_SWEEP, workers=2).run()
    assert serial.json_bytes() == parallel.json_bytes()
    csv_path = tmp_path / "sweep.csv"
    write_csv(str(csv_path), serial.results)
    header = csv_path.read_text().splitlines()[0].split(",")
    for column in (
        "e2e_sim_time", "queue_depth_final", "tx_evicted", "tx_age_max",
    ):
        assert column in header
    assert "p_overlap" in header


def test_overlap_axis_is_seed_paired():
    """Both overlap arms of one sweep point run the same derived seed.

    ``overlap`` travels inside the params override dict, but it is
    excluded from seed derivation (like the scenario and backend axes):
    it only re-times the reported timeline, so the arms must share every
    protocol stream for the latency comparison to be paired.  Cache keys
    still differ — the descriptor keeps the full params.
    """
    points = POISSON_SWEEP.expand()
    assert len(points) == 4  # 2 overlap modes x 2 seeds
    by_seed: dict[int, set[int]] = {}
    keys = set()
    for point in points:
        by_seed.setdefault(point.seed, set()).add(point.derived_seed)
        keys.add(point.key)
    assert all(len(derived) == 1 for derived in by_seed.values())
    assert len(keys) == 4  # distinct cache identities per arm


def test_overlap_sweep_arms_share_ledger_state():
    outcome = Runner(POISSON_SWEEP, workers=1).run()
    for seed in (0, 1):
        none = outcome.one(seed=seed, overlap="none")
        semi = outcome.one(seed=seed, overlap="semicommit")
        assert none.chain == semi.chain
        assert none.totals["packed"] == semi.totals["packed"]
        assert none.totals["tx_evicted"] == semi.totals["tx_evicted"]
        assert semi.totals["e2e_sim_time"] < none.totals["e2e_sim_time"]
