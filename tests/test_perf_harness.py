"""Perf harness: registry, timing protocol, artifact schema, and the
equivalence guarantees the hot-path optimizations rest on."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.perf import (
    BENCH_SCHEMA,
    PERF_REGISTRY,
    PerfCase,
    PerfSettings,
    TimingSummary,
    calibrate,
    perf_case_names,
    run_case,
    run_cases,
    write_bench,
)
from repro.perf import baselines

SMOKE = PerfSettings(
    n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
    tx_per_committee=4, committee=12, batch=48, messages=120,
)


# -- RNG stream guarantees the optimizations rely on -------------------------
def test_batched_random_matches_scalar_draws():
    """The jitter block in Network._next_jitter is stream-exact."""
    a, b = np.random.default_rng(5), np.random.default_rng(5)
    batched = a.random(257)
    scalars = [b.random() for _ in range(257)]
    assert np.array_equal(batched, np.asarray(scalars))


def test_indexed_integers_match_generator_choice():
    """The workload defect draw is stream-exact vs Generator.choice."""
    options = ["double_spend", "overspend", "phantom_input"]
    a, b = np.random.default_rng(9), np.random.default_rng(9)
    via_choice = [str(a.choice(options)) for _ in range(200)]
    via_index = [options[int(b.integers(0, 3))] for _ in range(200)]
    assert via_choice == via_index


# -- optimized vs frozen-baseline equivalence --------------------------------
def test_network_jitter_block_matches_naive_scalar_network():
    from repro.net.params import NetworkParams
    from repro.net.simulator import Network

    fast = Network(NetworkParams(), np.random.default_rng(3), pool_envelopes=True)
    naive = baselines.NaiveNetwork(NetworkParams(), np.random.default_rng(3))
    fast_delays = [fast._sample_delay("intra") for _ in range(100)]
    naive_delays = [naive._sample_delay("intra") for _ in range(100)]
    assert fast_delays == naive_delays


def test_payload_size_matches_naive_on_protocol_shapes():
    from repro.crypto.pki import PKI
    from repro.crypto.signatures import sign
    from repro.ledger.transaction import Transaction, TxInput, TxOutput
    from repro.net.message import payload_size

    pki = PKI()
    kp = pki.generate("x")
    tx = Transaction(
        inputs=(TxInput(b"\x07" * 32, 1),),
        outputs=(TxOutput("addr", 5),),
        nonce=3,
    )
    shapes = [
        None,
        True,
        7,
        3.5,
        b"\x01" * 16,
        "hello",
        (1, "a", b"bb"),
        [1, 2, 3],
        {1: "a", "b": (2, 3)},
        frozenset({1, 2}),
        sign(kp, ("S", 1)),
        tx,
        ("TX_LIST", (tx, tx), sign(kp, "s"), 42),
        np.int64(5),
        np.float64(2.5),
    ]
    for obj in shapes:
        assert payload_size(obj) == baselines.naive_payload_size(obj), obj


def test_workload_generator_matches_naive_generator():
    from repro.ledger.workload import WorkloadGenerator

    fast = WorkloadGenerator(m=3, users_per_shard=8, rng=np.random.default_rng(2))
    naive = baselines.NaiveWorkloadGenerator(
        m=3, users_per_shard=8, rng=np.random.default_rng(2)
    )
    assert fast.addresses_by_shard == naive.addresses_by_shard
    for _ in range(4):
        a = fast.generate_batch(32, cross_shard_ratio=0.4, invalid_ratio=0.5)
        b = naive.generate_batch(32, cross_shard_ratio=0.4, invalid_ratio=0.5)
        assert [t.tx.txid for t in a] == [t.tx.txid for t in b]
        assert [t.defect for t in a] == [t.defect for t in b]
        packed = {t.tx.txid for t in a[::2]}  # pack half, roll back half
        assert fast.confirm_round(packed) == naive.confirm_round(packed)


def test_batched_signatures_match_scalar_loops():
    from repro.crypto.pki import PKI
    from repro.crypto.signatures import (
        sign,
        sign_many,
        signers_of,
        verify,
        verify_many,
    )

    pki = PKI()
    kps = [pki.generate(i) for i in range(6)]
    stmt = ("STMT", 1, (b"\x01" * 32,))
    sigs = sign_many(kps, stmt)
    assert sigs == [sign(kp, stmt) for kp in kps]
    assert verify_many(pki, sigs, stmt) == [verify(pki, s, stmt) for s in sigs]
    # Tampered and foreign signatures are rejected identically.
    bad = sigs[0].__class__(pk=sigs[0].pk, tag=b"\x00" * 32)
    mixed = [*sigs, bad]
    assert signers_of(pki, mixed, stmt) == {s.pk for s in sigs}
    members = {kps[0].pk, kps[1].pk}
    assert signers_of(pki, mixed, stmt, members=members) == members


def test_pki_mac_many_matches_mac():
    from repro.crypto.pki import PKI

    pki = PKI()
    kps = [pki.generate(i) for i in range(4)]
    pks = [kp.pk for kp in kps]
    message = b"payload"
    assert pki.mac_many(pks, message) == [pki.mac(pk, message) for pk in pks]
    with pytest.raises(KeyError):
        pki.mac_many(["missing"], message)


# -- envelope pooling --------------------------------------------------------
def test_envelope_pool_reuses_but_never_corrupts_delivery():
    from repro.crypto.pki import PKI
    from repro.net.node import ProtocolNode
    from repro.net.params import NetworkParams
    from repro.net.simulator import Network

    net = Network(NetworkParams(), np.random.default_rng(0), pool_envelopes=True)
    pki = PKI()
    seen: list[tuple[str, int]] = []
    nodes = [ProtocolNode(i, pki.generate(i)) for i in range(3)]
    for node in nodes:
        node.on("T", lambda m: seen.append((m.payload, m.sender)))
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: "intra")
    for i in range(50):
        nodes[0].send(1, "T", f"p{i}")
    net.run()
    # Jitter permutes delivery order; every payload must arrive intact
    # exactly once (a pooled envelope clearing or reusing too early would
    # surface as None or duplicated payloads here).
    assert {p for p, _ in seen} == {f"p{i}" for i in range(50)}
    assert len(seen) == 50
    assert net._pool  # envelopes actually got recycled
    # Pool stays bounded and disabled networks never pool.
    plain = Network(NetworkParams(), np.random.default_rng(0))
    assert plain.pool_envelopes is False


# -- harness mechanics -------------------------------------------------------
def test_registry_contains_micro_and_round_cases():
    names = perf_case_names()
    assert "micro:mac_verify" in names
    assert "micro:workload_gen" in names
    assert "micro:message_pump" in names
    for backend in ("cycledger", "rapidchain", "omniledger_sim"):
        assert f"round:{backend}" in names
    assert perf_case_names("round") == [
        n for n in names if n.startswith("round:")
    ]


def test_timing_summary_stats():
    summary = TimingSummary.from_samples([0.4, 0.1, 0.2, 0.3, 0.5])
    assert summary.median == pytest.approx(0.3)
    assert summary.minimum == pytest.approx(0.1)
    assert summary.repeats == 5
    assert summary.p95 >= summary.median


def test_run_case_reports_speedup_and_checks_equivalence():
    case = PERF_REGISTRY["micro:mac_verify"]
    result = run_case(case, SMOKE, warmup=0, repeats=2)
    assert result.ops == SMOKE.committee
    assert result.wall.repeats == 2
    assert result.baseline_wall is not None
    assert result.speedup is not None and result.speedup > 0


def test_failing_equivalence_check_aborts_the_case():
    def bad_check(settings):
        raise AssertionError("diverged")

    case = PerfCase(
        name="tmp:bad",
        description="",
        category="micro",
        setup=lambda s: None,
        run=lambda state: None,
        ops=lambda s: 1,
        check=bad_check,
    )
    with pytest.raises(AssertionError, match="diverged"):
        run_case(case, SMOKE, warmup=0, repeats=1)


def test_round_case_captures_sim_time():
    result = run_case(
        PERF_REGISTRY["round:rapidchain"], SMOKE, warmup=0, repeats=2
    )
    assert result.sim_time > 0.0


def test_unknown_case_name_fails_with_roster():
    with pytest.raises(ValueError, match="unknown perf case"):
        run_cases(["micro:nope"], SMOKE)


def test_scaled_settings_keep_committee_invariant():
    for n in (24, 36, 48, 96):
        scaled = PerfSettings(m=4, referee_size=8).scaled(n)
        assert (scaled.n - scaled.referee_size) % scaled.m == 0


def test_scale_sized_settings_grow_m_with_bounded_committees():
    base = PerfSettings(m=4, referee_size=8)
    for n in (128, 256, 512, 1024, 2048, 4096):
        sized = base.scale_sized(n)
        assert (sized.n - sized.referee_size) % sized.m == 0
        assert sized.referee_size >= 3
        committee = (sized.n - sized.referee_size) // sized.m
        # Paper-mode scaling: committee size stays bounded as n grows.
        assert base.lam + 2 <= committee <= 40
    assert base.scale_sized(4096).m > base.scale_sized(128).m
    # Unlike scaled()'s decrement-only search, the upward referee search
    # never underflows at large m (the n=512/m=16 failure mode).
    assert base.scale_sized(512).referee_size >= 3


def test_scale_registry_carries_curve_axis_and_caps():
    from repro.perf.cases import SCALE_CAPS, SCALE_CURVE

    names = perf_case_names("scale")
    assert names == [
        "scale:cycledger", "scale:omniledger_sim", "scale:rapidchain"
    ]
    for name in names:
        case = PERF_REGISTRY[name]
        assert case.category == "scale"
        assert case.scales == SCALE_CURVE
        assert case.max_scale == SCALE_CAPS[case.backend]
        assert case.max_repeats == 2


def test_scale_case_explicit_scales_override_and_caps_filter():
    # Explicit --scales override the pinned curve (the CI smoke preset),
    # max_scale filters out-of-cap entries, and max_repeats clamps the
    # harness-level repeat count.
    payload = run_cases(
        ["scale:rapidchain"], SMOKE, scales=[24, 8192], warmup=0, repeats=5
    )
    rows = [(r["name"], r["n"]) for r in payload["cases"]]
    assert rows == [("scale:rapidchain", 24)]  # 8192 > max_scale dropped
    assert payload["cases"][0]["wall"]["repeats"] == 2  # clamped from 5


def test_calibration_returns_positive_rates():
    calib = calibrate()
    assert calib["hash_1kib_ops_per_sec"] > 0
    assert calib["pyloop_ops_per_sec"] > 0


# -- artifact schema ---------------------------------------------------------
EXPECTED_TOP_KEYS = {"schema", "version", "host", "calibration", "settings", "cases"}
EXPECTED_CASE_KEYS = {
    "name", "category", "backend", "description", "n", "ops", "ops_per_sec",
    "normalized_ops", "sim_time", "wall", "baseline_wall", "speedup", "hotspots",
    "soak",  # None off-category; the soak: family's endurance block
}
EXPECTED_WALL_KEYS = {"median_s", "p95_s", "min_s", "mean_s", "repeats"}


def test_bench_payload_schema_is_stable(tmp_path):
    payload = run_cases(
        ["micro:mac_verify", "round:rapidchain"],
        SMOKE,
        warmup=0,
        repeats=2,
        profile=True,
        top=5,
    )
    assert payload["schema"] == BENCH_SCHEMA
    assert set(payload) == EXPECTED_TOP_KEYS
    assert len(payload["cases"]) == 2
    for row in payload["cases"]:
        assert set(row) == EXPECTED_CASE_KEYS
        assert set(row["wall"]) == EXPECTED_WALL_KEYS
    profiled = next(r for r in payload["cases"] if r["name"] == "round:rapidchain")
    assert profiled["hotspots"], "profiling requested but no hotspots recorded"
    assert len(profiled["hotspots"]) <= 5
    for spot in profiled["hotspots"]:
        assert set(spot) == {"function", "ncalls", "tottime_s", "cumtime_s"}

    out = tmp_path / "BENCH_perf.json"
    write_bench(str(out), payload)
    text = out.read_text()
    assert text.endswith("\n")
    reread = json.loads(text)
    assert set(reread) == EXPECTED_TOP_KEYS
    # Keys are sorted, so equal payloads are byte-equal files.
    assert text == json.dumps(reread, sort_keys=True, indent=2) + "\n"


def test_case_rows_are_sorted_by_name_then_scale():
    payload = run_cases(
        ["round:rapidchain", "micro:mac_sign"],
        SMOKE,
        scales=[36, 24],
        warmup=0,
        repeats=1,
    )
    rows = [(r["name"], r["n"]) for r in payload["cases"]]
    assert rows == sorted(rows)
    assert [r for r in rows if r[0] == "round:rapidchain"] == [
        ("round:rapidchain", 24),
        ("round:rapidchain", 36),
    ]
