"""End-to-end integration: multi-round runs, honest and adversarial."""

import numpy as np
import pytest

from repro import AdversaryConfig, CycLedger, ProtocolParams
from repro.ledger.utxo import UTXOSet, validate_transaction


def small_params(seed=0, **overrides) -> ProtocolParams:
    defaults = dict(n=48, m=3, lam=2, referee_size=6, seed=seed,
                    users_per_shard=24, tx_per_committee=8)
    defaults.update(overrides)
    return ProtocolParams(**defaults)


def test_three_honest_rounds():
    ledger = CycLedger(small_params())
    reports = ledger.run(3)
    assert len(ledger.chain) == 3
    assert ledger.chain.verify()
    for report in reports:
        assert report.block is not None
        assert report.packed > 0
        assert report.recoveries == 0


def test_blocks_replayable_from_genesis():
    """Every packed transaction validates in order against genesis."""
    ledger = CycLedger(small_params(seed=2))
    ledger.run(3)
    utxos = UTXOSet()
    utxos.restore(ledger.workload.genesis_utxos().snapshot())
    for block in ledger.chain:
        for tx in block.transactions:
            assert validate_transaction(tx, utxos)
            utxos.apply_transaction(tx)


def test_cross_shard_included():
    ledger = CycLedger(small_params(seed=3, cross_shard_ratio=0.4))
    reports = ledger.run(2)
    assert any(r.cross_packed > 0 for r in reports)


def test_determinism_same_seed():
    a = CycLedger(small_params(seed=5)).run(2)
    b = CycLedger(small_params(seed=5)).run(2)
    assert [r.packed for r in a] == [r.packed for r in b]
    assert a[-1].block.hash == b[-1].block.hash


def test_different_seeds_differ():
    a = CycLedger(small_params(seed=6)).run(1)
    b = CycLedger(small_params(seed=7)).run(1)
    assert a[0].block.hash != b[0].block.hash


def test_roles_rotate_between_rounds():
    ledger = CycLedger(small_params(seed=8))
    ledger.run_round()
    referee_1 = set(ledger._next_referee)
    ledger.run_round()
    referee_2 = set(ledger._next_referee)
    assert referee_1 != referee_2  # overwhelmingly likely with fresh randomness


def test_randomness_changes_every_round():
    ledger = CycLedger(small_params(seed=9))
    r1 = ledger.run_round().block.randomness
    r2 = ledger.run_round().block.randomness
    assert r1 != r2


def test_invalid_txs_never_packed():
    ledger = CycLedger(small_params(seed=10, invalid_ratio=0.3))
    ledger.run(2)
    # replay check doubles as the assertion: invalid txs would fail V
    utxos = UTXOSet()
    utxos.restore(ledger.workload.genesis_utxos().snapshot())
    for block in ledger.chain:
        for tx in block.transactions:
            assert validate_transaction(tx, utxos)
            utxos.apply_transaction(tx)


def test_reputation_accumulates_for_honest():
    ledger = CycLedger(small_params(seed=11))
    ledger.run(3)
    reps = list(ledger.reputation.values())
    assert np.mean(reps) > 0


def test_rewards_accumulate_and_match_fees():
    ledger = CycLedger(small_params(seed=12))
    reports = ledger.run(2)
    total_fees = sum(r.blockgen.total_fees for r in reports)
    assert sum(ledger.rewards.values()) == pytest.approx(total_fees)


def test_adversarial_equivocators_recovered():
    """With 30% corruption the chain still grows and any corrupted leader is
    impeached within its round."""
    found_recovery = False
    for seed in range(1, 6):
        adv = AdversaryConfig(fraction=0.3)
        ledger = CycLedger(small_params(seed=seed), adversary=adv)
        report = ledger.run_round()
        assert report.block is not None, f"void block at seed {seed}"
        bad_leaders = [
            c.leader
            for c in []  # committees not exposed post-round; use recoveries
        ]
        if report.recoveries:
            found_recovery = True
            assert report.intra.equivocation_detected or report.inter.recoveries
    assert found_recovery


def test_contrary_voters_sink_below_honest():
    adv = AdversaryConfig(fraction=0.25, voter_strategy="contrary_voter")
    ledger = CycLedger(small_params(seed=13), adversary=adv)
    ledger.run(3)
    grouped = ledger.reputation_by_behavior()
    if "contrary_voter" in grouped and "honest" in grouped:
        assert np.mean(grouped["contrary_voter"]) < np.mean(grouped["honest"])


def test_rewards_ordering_honest_vs_malicious():
    adv = AdversaryConfig(fraction=0.25, voter_strategy="contrary_voter")
    ledger = CycLedger(small_params(seed=14), adversary=adv)
    ledger.run(3)
    honest_rewards, bad_rewards = [], []
    for node in ledger.nodes.values():
        reward = ledger.rewards.get(node.pk, 0.0)
        if ledger.adversary.is_corrupted(node.node_id):
            bad_rewards.append(reward)
        else:
            honest_rewards.append(reward)
    assert np.mean(honest_rewards) > np.mean(bad_rewards)


def test_throughput_scales_with_committees():
    """§III-D scalability: |TX| grows with n (quasi-linearly via m)."""
    packed = []
    for n, m in ((32, 2), (64, 4)):
        params = ProtocolParams(
            n=n, m=m, lam=2, referee_size=8, seed=20,
            users_per_shard=32, tx_per_committee=8,
        )
        ledger = CycLedger(params)
        reports = ledger.run(2)
        packed.append(sum(r.packed for r in reports))
    assert packed[1] > 1.5 * packed[0]


def test_mildly_adaptive_corruption_delayed():
    adv = AdversaryConfig(fraction=0.1)
    ledger = CycLedger(small_params(seed=15), adversary=adv)
    before = set(ledger.adversary.corrupted)
    target = next(i for i in ledger.nodes if i not in before)
    ledger.adversary.request_corruption({target})
    assert not ledger.adversary.is_corrupted(target)  # not yet
    ledger.run_round()  # advance_round happens inside
    assert ledger.adversary.is_corrupted(target)  # took effect after a round


def test_params_validation():
    with pytest.raises(ValueError):
        ProtocolParams(n=50, m=3, lam=2, referee_size=6)  # 44 % 3 != 0
    with pytest.raises(ValueError):
        ProtocolParams(n=48, m=3, lam=20, referee_size=6)  # partial > committee
    with pytest.raises(ValueError):
        ProtocolParams(n=48, m=3, lam=2, referee_size=1)
