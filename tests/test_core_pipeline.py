"""Phase pipeline: registry, hooks, timings, and orchestrator integration."""

import pytest

from repro import CycLedger, ProtocolParams
from repro.core.pipeline import POST, PRE, Phase, PhasePipeline
from repro.core.protocol import build_default_pipeline

PHASE_ORDER = (
    "config",
    "semicommit",
    "intra",
    "inter",
    "reputation",
    "selection",
    "block",
)


def small_params(seed=0, **overrides) -> ProtocolParams:
    defaults = dict(n=24, m=2, lam=2, referee_size=6, seed=seed,
                    users_per_shard=12, tx_per_committee=4)
    defaults.update(overrides)
    return ProtocolParams(**defaults)


# -- registry ----------------------------------------------------------------
def test_default_pipeline_has_paper_phase_order():
    assert build_default_pipeline().names == PHASE_ORDER


def test_register_appends_and_inserts():
    pipeline = PhasePipeline((Phase("a", lambda ctx: None),))
    pipeline.register(Phase("c", lambda ctx: None))
    pipeline.register(Phase("b", lambda ctx: None), before="c")
    pipeline.register(Phase("d", lambda ctx: None), after="c")
    assert pipeline.names == ("a", "b", "c", "d")


def test_register_rejects_duplicates_and_bad_anchors():
    pipeline = PhasePipeline((Phase("a", lambda ctx: None),))
    with pytest.raises(ValueError):
        pipeline.register(Phase("a", lambda ctx: None))
    with pytest.raises(KeyError):
        pipeline.register(Phase("b", lambda ctx: None), before="nope")
    with pytest.raises(ValueError):
        pipeline.register(Phase("b", lambda ctx: None), before="a", after="a")


def test_hook_validation():
    pipeline = PhasePipeline((Phase("a", lambda ctx: None),))
    with pytest.raises(ValueError):
        pipeline.add_phase_hook("a", "sideways", lambda ctx, name: None)
    with pytest.raises(KeyError):
        pipeline.add_phase_hook("nope", PRE, lambda ctx, name: None)
    with pytest.raises(ValueError):
        pipeline.add_round_hook("sideways", lambda ledger: None)


# -- orchestrator integration ------------------------------------------------
def test_run_round_executes_all_phases_via_pipeline():
    ledger = CycLedger(small_params())
    seen = []
    for name in ledger.pipeline.names:
        ledger.pipeline.add_phase_hook(
            name, PRE, lambda ctx, phase: seen.append(phase)
        )
    report = ledger.run_round()
    assert tuple(seen) == PHASE_ORDER
    assert report.block is not None


def test_phase_reports_accumulate_in_context_order():
    ledger = CycLedger(small_params(seed=1))
    snapshots = {}
    for name in ledger.pipeline.names:
        ledger.pipeline.add_phase_hook(
            name,
            POST,
            lambda ctx, phase: snapshots.setdefault(
                phase, tuple(ctx.phase_reports)
            ),
        )
    ledger.run_round()
    for index, name in enumerate(PHASE_ORDER):
        assert snapshots[name] == PHASE_ORDER[: index + 1]


def test_phase_sim_times_recorded_per_round():
    ledger = CycLedger(small_params(seed=2))
    report = ledger.run_round()
    assert set(report.phase_sim_times) == set(PHASE_ORDER)
    assert all(t >= 0.0 for t in report.phase_sim_times.values())
    # Spans sum to the round's simulated duration: phases run back to back
    # on one clock.
    assert sum(report.phase_sim_times.values()) == pytest.approx(
        report.sim_time
    )


def test_round_hooks_fire_with_ledger_and_report():
    ledger = CycLedger(small_params(seed=3))
    calls = []
    ledger.pipeline.add_round_hook(
        PRE, lambda led: calls.append(("pre", led.round_number))
    )
    ledger.pipeline.add_round_hook(
        POST, lambda led, rep: calls.append(("post", rep.round_number))
    )
    ledger.run(2)
    assert calls == [("pre", 1), ("post", 1), ("pre", 2), ("post", 2)]


def test_custom_phase_observes_round():
    """A pipeline extension sees the same context the built-ins do."""
    ledger = CycLedger(small_params(seed=4))
    observed = []

    def audit(ctx):
        observed.append(len(ctx.phase_reports))
        return "audited"

    ledger.pipeline.register(Phase("audit", audit), after="inter")
    report = ledger.run_round()
    assert observed == [4]  # config, semicommit, intra, inter came before
    assert report.phase_sim_times["audit"] == 0.0
    assert report.block is not None


def test_pipeline_refactor_preserves_determinism():
    a = CycLedger(small_params(seed=5)).run(2)
    b = CycLedger(small_params(seed=5)).run(2)
    assert [r.packed for r in a] == [r.packed for r in b]
    assert a[-1].block.hash == b[-1].block.hash
    assert [r.phase_sim_times for r in a] == [r.phase_sim_times for r in b]
