"""Shard state and chain."""

import pytest

from repro.ledger.chain import GENESIS_PREV_HASH, Block, Chain
from repro.ledger.state import ShardState
from repro.ledger.transaction import TxOutput, make_coinbase, make_transfer, shard_of_address


def make_block(round_number: int, prev_hash: bytes, txs=()) -> Block:
    return Block(
        round_number=round_number,
        prev_hash=prev_hash,
        transactions=tuple(txs),
        randomness=b"r" * 32,
        participants=("pk1",),
        reputations=(("pk1", 0.0),),
        referee=("pk1",),
        leaders=("pk2",),
        partial_sets=(("pk3",),),
    )


# -- ShardState ---------------------------------------------------------------


def test_state_filters_genesis_by_shard():
    m = 4
    genesis = make_coinbase([TxOutput(f"user-{i}", 10) for i in range(40)])
    states = [ShardState(k, m) for k in range(m)]
    for state in states:
        state.add_genesis(genesis)
    assert sum(state.size() for state in states) == 40
    for state in states:
        for op in state.utxos:
            owner = state.utxos.get(op).address
            assert shard_of_address(owner, m) == state.shard


def test_state_shard_range():
    with pytest.raises(ValueError):
        ShardState(5, 4)


def test_apply_block_spends_and_creates():
    m = 2
    genesis = make_coinbase([TxOutput(f"user-{i}", 100) for i in range(10)])
    states = [ShardState(k, m) for k in range(m)]
    for state in states:
        state.add_genesis(genesis)
    # pick a genesis output and build a transfer from it
    home = shard_of_address("user-0", m)
    index = [i for i, o in enumerate(genesis.outputs) if o.address == "user-0"][0]
    tx = make_transfer((genesis.txid, index), 100, "user-1", 25, "user-0")
    spent, created = states[home].apply_block([tx])
    assert spent == 1
    dest = shard_of_address("user-1", m)
    if dest == home:
        assert created >= 1
    total = sum(state.size() for state in states)
    # other shard also applies
    other = 1 - home
    states[other].apply_block([tx])
    assert sum(state.size() for state in states) >= total


def test_validate_against_shard_view():
    m = 2
    genesis = make_coinbase([TxOutput(f"user-{i}", 100) for i in range(10)])
    state0 = ShardState(0, m)
    state0.add_genesis(genesis)
    # a tx whose input lives in shard 1 looks like MISSING_INPUT to shard 0
    owner1 = next(
        o.address for o in genesis.outputs if shard_of_address(o.address, m) == 1
    )
    index = [i for i, o in enumerate(genesis.outputs) if o.address == owner1][0]
    tx = make_transfer((genesis.txid, index), 100, "user-0", 5, owner1)
    assert not state0.validate(tx)


def test_digest_items_deterministic():
    genesis = make_coinbase([TxOutput(f"user-{i}", 10) for i in range(6)])
    a, b = ShardState(0, 1), ShardState(0, 1)
    a.add_genesis(genesis)
    b.add_genesis(genesis)
    assert a.digest_items() == b.digest_items()


# -- Chain -------------------------------------------------------------------


def test_chain_append_and_verify():
    chain = Chain()
    b1 = make_block(1, GENESIS_PREV_HASH)
    chain.append(b1)
    b2 = make_block(2, b1.hash)
    chain.append(b2)
    assert len(chain) == 2
    assert chain.verify()
    assert chain.head is b2


def test_chain_rejects_broken_link():
    chain = Chain()
    chain.append(make_block(1, GENESIS_PREV_HASH))
    with pytest.raises(ValueError):
        chain.append(make_block(2, b"\x01" * 32))


def test_chain_rejects_nonmonotonic_rounds():
    chain = Chain()
    b1 = make_block(5, GENESIS_PREV_HASH)
    chain.append(b1)
    with pytest.raises(ValueError):
        chain.append(make_block(5, b1.hash))


def test_empty_chain_head_raises():
    with pytest.raises(IndexError):
        Chain().head


def test_block_hash_covers_contents():
    a = make_block(1, GENESIS_PREV_HASH)
    b = Block(
        round_number=1,
        prev_hash=GENESIS_PREV_HASH,
        transactions=(),
        randomness=b"s" * 32,  # differs
        participants=("pk1",),
        reputations=(("pk1", 0.0),),
        referee=("pk1",),
        leaders=("pk2",),
        partial_sets=(("pk3",),),
    )
    assert a.hash != b.hash
