"""Checkpoint/resume byte-identity (repro.ledger.checkpoint).

The contract under test: a run resumed from a round-boundary checkpoint
is byte-identical to the uninterrupted run — same chain head hash, same
reputation table, same round-report stream — on every backend, including
mid-scenario and mid-policy captures where driver state (crash windows,
corruption baselines, spawned RNG positions) is live.
"""

from __future__ import annotations

import pytest

from repro.backends import BACKEND_REGISTRY, create_backend
from repro.core.config import ProtocolParams
from repro.exp.results import round_row
from repro.exp.spec import canonical_json
from repro.ledger.checkpoint import (
    CHECKPOINT_VERSION,
    capture_checkpoint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.nodes.adversary import AdversaryConfig
from repro.scenarios import POLICY_PRESETS, SCENARIO_PRESETS


def _params(**overrides) -> ProtocolParams:
    base = dict(
        n=24,
        m=2,
        lam=2,
        referee_size=6,
        seed=7,
        users_per_shard=12,
        tx_per_committee=4,
    )
    base.update(overrides)
    return ProtocolParams(**base)


def _rows(reports) -> list[str]:
    return [canonical_json(round_row(r)) for r in reports]


def _assert_same_tail(full, resumed, split: int) -> None:
    """The resumed ledger's state and report stream must equal the
    uninterrupted run's from round ``split`` on, byte for byte."""
    assert resumed.chain.head.hash == full.chain.head.hash
    assert list(resumed.reputation.items()) == list(full.reputation.items())
    assert _rows(resumed.reports[-len(resumed.reports):]) == _rows(
        full.reports[split:]
    )


@pytest.mark.parametrize("backend", sorted(BACKEND_REGISTRY))
def test_roundtrip_byte_identity_all_backends(backend):
    full = create_backend(backend, _params())
    half = create_backend(backend, _params())
    full.run(8)
    half.run(4)
    resumed = restore_checkpoint(capture_checkpoint(half))
    resumed.run(4)
    _assert_same_tail(full, resumed, split=4)


def test_save_load_roundtrip(tmp_path):
    path = str(tmp_path / "ck.pkl")
    full = create_backend("cycledger", _params())
    half = create_backend("cycledger", _params())
    full.run(6)
    half.run(3)
    save_checkpoint(half, path)
    resumed = load_checkpoint(path)
    resumed.run(3)
    _assert_same_tail(full, resumed, split=3)


def test_capture_is_isolated_from_further_running():
    """The snapshot must be a copy: the donor ledger keeps running after
    capture without disturbing what was captured."""
    full = create_backend("cycledger", _params())
    half = create_backend("cycledger", _params())
    full.run(6)
    half.run(3)
    state = capture_checkpoint(half)
    half.run(3)  # mutate the donor after the capture
    resumed = restore_checkpoint(state)
    resumed.run(3)
    _assert_same_tail(full, resumed, split=3)
    assert half.chain.head.hash == full.chain.head.hash


def test_mid_scenario_checkpoint(tmp_path):
    """Capture inside a partition-halves fault window: the scenario
    driver's crash bookkeeping and spawned RNG resume exactly."""
    scenario = SCENARIO_PRESETS["partition-halves"]
    kwargs = dict(adversary=AdversaryConfig(fraction=0.1), scenario=scenario)
    split = max(2, scenario.last_event_round // 2)
    rounds = scenario.last_event_round + 2
    full = create_backend("cycledger", _params(), **kwargs)
    half = create_backend("cycledger", _params(), **kwargs)
    full.run(rounds)
    half.run(split)
    path = str(tmp_path / "scenario.pkl")
    save_checkpoint(half, path)
    resumed = load_checkpoint(path)
    resumed.run(rounds - split)
    _assert_same_tail(full, resumed, split=split)
    assert resumed.scenario_driver.log == full.scenario_driver.log


def test_mid_policy_checkpoint(tmp_path):
    """Capture while an adaptive-corruption policy is mid-campaign: the
    policy driver's baseline/healed state and RNG resume exactly."""
    policy = POLICY_PRESETS["adaptive-corruption"]
    kwargs = dict(adversary=AdversaryConfig(fraction=0.2), policy=policy)
    split = max(2, policy.last_active_round // 2)
    rounds = policy.last_active_round + 2
    full = create_backend("cycledger", _params(), **kwargs)
    half = create_backend("cycledger", _params(), **kwargs)
    full.run(rounds)
    half.run(split)
    path = str(tmp_path / "policy.pkl")
    save_checkpoint(half, path)
    resumed = load_checkpoint(path)
    resumed.run(rounds - split)
    _assert_same_tail(full, resumed, split=split)
    assert resumed.policy_driver.log == full.policy_driver.log
    assert list(resumed.adversary.corrupted) == list(full.adversary.corrupted)


def test_roundtrip_with_bounded_memory_knobs():
    """Pruned chain + trimmed spent-history + poisson mempool all travel
    through the checkpoint; the resumed bounded run matches the
    uninterrupted bounded run."""
    params = _params(
        chain_retention=3,
        spent_retention=64,
        arrival_process="poisson",
        arrival_rate=16.0,
        mempool_max_age=4,
    )
    full = create_backend("cycledger", params)
    half = create_backend("cycledger", params)
    full.run(8)
    half.run(4)
    resumed = restore_checkpoint(capture_checkpoint(half))
    resumed.run(4)
    _assert_same_tail(full, resumed, split=4)
    assert resumed.chain.pruned_blocks == full.chain.pruned_blocks
    assert len(resumed.chain.blocks) == params.chain_retention
    assert resumed.chain.verify()


def test_warm_start_policy_override():
    """The warm-start hook: a policy-free prefix checkpoint resumed with
    a policy starts that policy's driver fresh (empty log), while
    resuming with the captured (absent) policy stays policy-free."""
    half = create_backend("cycledger", _params(), adversary=AdversaryConfig(fraction=0.2))
    half.run(3)
    state = capture_checkpoint(half)
    arm = restore_checkpoint(state, policy=POLICY_PRESETS["adaptive-corruption"])
    assert arm.policy_driver is not None
    assert arm.policy_driver.log == []
    baseline = restore_checkpoint(state)
    assert baseline.policy_driver is None
    arm.run(3)
    baseline.run(3)
    # The two arms share the prefix but diverge once the policy acts.
    assert arm.round_number == baseline.round_number


def test_version_mismatch_rejected():
    half = create_backend("cycledger", _params())
    half.run(1)
    state = capture_checkpoint(half)
    state["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        restore_checkpoint(state)


def test_roster_mismatch_rejected():
    """A checkpoint restored against a different deterministic roster
    (different seed ⇒ different keys) must fail loudly, not corrupt."""
    half = create_backend("cycledger", _params())
    half.run(2)
    state = capture_checkpoint(half)
    state["params"] = _params(seed=8)
    with pytest.raises(ValueError, match="roster"):
        restore_checkpoint(state)
