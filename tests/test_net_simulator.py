"""Network simulator: delivery, latency classes, timers, strict channels."""

import pytest

from repro.crypto.pki import PKI
from repro.net import (
    Network,
    NetworkParams,
    ProtocolNode,
    SimulationError,
)
from repro.net.params import ChannelClass


class Recorder(ProtocolNode):
    def __init__(self, nid, kp):
        super().__init__(nid, kp)
        self.received = []
        self.on("MSG", lambda msg: self.received.append(msg))


@pytest.fixture
def net_and_nodes(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng)
    nodes = [Recorder(i, pki.generate(i)) for i in range(4)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    return net, nodes


def test_send_and_deliver(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "hello")
    net.run()
    assert len(nodes[1].received) == 1
    assert nodes[1].received[0].payload == "hello"
    assert nodes[1].received[0].sender == 0


def test_intra_delay_within_delta(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "x")
    t = net.run()
    assert 0 < t <= net.params.delta


def test_multicast_excludes_self(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].multicast(range(4), "MSG", "b")
    net.run()
    assert len(nodes[0].received) == 0
    assert all(len(nodes[i].received) == 1 for i in (1, 2, 3))


def test_unknown_tag_ignored(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "NOPE", "x")
    net.run()  # must not raise
    assert nodes[1].received == []


def test_strict_channel_raises(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng)
    nodes = [Recorder(i, pki.generate(100 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: None)
    with pytest.raises(SimulationError):
        nodes[0].send(1, "MSG", "x")


def test_non_strict_falls_back_to_partial(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng, strict_channels=False)
    nodes = [Recorder(i, pki.generate(200 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: None)
    nodes[0].send(1, "MSG", "x")
    net.run()
    assert nodes[1].received[0].channel == ChannelClass.PARTIAL


def test_unknown_recipient_raises(net_and_nodes):
    net, nodes = net_and_nodes
    with pytest.raises(SimulationError):
        nodes[0].send(99, "MSG", "x")


def test_duplicate_node_raises(net_and_nodes, rng):
    net, nodes = net_and_nodes
    with pytest.raises(ValueError):
        net.add_node(Recorder(0, PKI().generate("dup")))


def test_timers_fire_in_order(net_and_nodes):
    net, _ = net_and_nodes
    fired = []
    net.call_after(5.0, lambda: fired.append("b"))
    net.call_after(1.0, lambda: fired.append("a"))
    net.run()
    assert fired == ["a", "b"]
    assert net.now == 5.0


def test_timer_in_past_raises(net_and_nodes):
    net, _ = net_and_nodes
    net.call_after(1.0, lambda: None)
    net.run()
    with pytest.raises(SimulationError):
        net.call_at(0.5, lambda: None)


def test_run_until(net_and_nodes):
    net, nodes = net_and_nodes
    net.call_after(10.0, lambda: nodes[0].send(1, "MSG", "late"))
    net.run(until=5.0)
    assert net.now == 5.0
    assert net.pending == 1
    net.run()
    assert len(nodes[1].received) == 1


def test_offline_node_sends_and_hears_nothing(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[1].online = False
    nodes[0].send(1, "MSG", "x")
    nodes[1].send(0, "MSG", "y")
    net.run()
    assert nodes[1].received == []
    assert nodes[0].received == []


def test_metrics_count_messages(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "payload")
    nodes[0].send(2, "MSG", "payload")
    net.run()
    assert net.metrics.total_messages() == 2
    assert net.metrics.total_bytes() > 0


def test_event_budget_guard(rng):
    pki = PKI()
    params = NetworkParams(max_events=50)
    net = Network(params, rng)

    class Looper(ProtocolNode):
        def __init__(self, nid, kp):
            super().__init__(nid, kp)
            self.on("PING", lambda m: self.send(m.sender, "PING", None))

    a, b = Looper(0, pki.generate("a")), Looper(1, pki.generate("b"))
    net.add_node(a)
    net.add_node(b)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    a.send(1, "PING", None)
    with pytest.raises(SimulationError):
        net.run()


def test_adversarial_scheduler_stretches_partial_only(rng):
    pki = PKI()
    params = NetworkParams(jitter=0.0)
    net = Network(params, rng)
    nodes = [Recorder(i, pki.generate(300 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.PARTIAL)
    net.adversarial_scheduler = lambda msg: 100.0  # clamped to max stretch
    nodes[0].send(1, "MSG", "x")
    t = net.run()
    assert t == pytest.approx(params.partial_base * params.partial_max_stretch)


def test_drop_filter(net_and_nodes):
    net, nodes = net_and_nodes
    net.drop_filter = lambda msg: msg.payload == "drop"
    nodes[0].send(1, "MSG", "drop")
    nodes[0].send(1, "MSG", "keep")
    net.run()
    assert [m.payload for m in nodes[1].received] == ["keep"]
    assert net.dropped_messages == 1
