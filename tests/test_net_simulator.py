"""Network simulator: delivery, latency classes, timers, strict channels."""

import pytest

from repro.crypto.pki import PKI
from repro.net import (
    Network,
    NetworkParams,
    ProtocolNode,
    SimulationError,
)
from repro.net.params import ChannelClass


class Recorder(ProtocolNode):
    def __init__(self, nid, kp):
        super().__init__(nid, kp)
        self.received = []
        self.on("MSG", lambda msg: self.received.append(msg))


@pytest.fixture
def net_and_nodes(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng)
    nodes = [Recorder(i, pki.generate(i)) for i in range(4)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    return net, nodes


def test_send_and_deliver(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "hello")
    net.run()
    assert len(nodes[1].received) == 1
    assert nodes[1].received[0].payload == "hello"
    assert nodes[1].received[0].sender == 0


def test_intra_delay_within_delta(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "x")
    t = net.run()
    assert 0 < t <= net.params.delta


def test_multicast_excludes_self(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].multicast(range(4), "MSG", "b")
    net.run()
    assert len(nodes[0].received) == 0
    assert all(len(nodes[i].received) == 1 for i in (1, 2, 3))


def test_unknown_tag_ignored(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "NOPE", "x")
    net.run()  # must not raise
    assert nodes[1].received == []


def test_strict_channel_raises(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng)
    nodes = [Recorder(i, pki.generate(100 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: None)
    with pytest.raises(SimulationError):
        nodes[0].send(1, "MSG", "x")


def test_non_strict_falls_back_to_partial(rng):
    pki = PKI()
    net = Network(NetworkParams(), rng, strict_channels=False)
    nodes = [Recorder(i, pki.generate(200 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: None)
    nodes[0].send(1, "MSG", "x")
    net.run()
    assert nodes[1].received[0].channel == ChannelClass.PARTIAL


def test_unknown_recipient_raises(net_and_nodes):
    net, nodes = net_and_nodes
    with pytest.raises(SimulationError):
        nodes[0].send(99, "MSG", "x")


def test_duplicate_node_raises(net_and_nodes, rng):
    net, nodes = net_and_nodes
    with pytest.raises(ValueError):
        net.add_node(Recorder(0, PKI().generate("dup")))


def test_timers_fire_in_order(net_and_nodes):
    net, _ = net_and_nodes
    fired = []
    net.call_after(5.0, lambda: fired.append("b"))
    net.call_after(1.0, lambda: fired.append("a"))
    net.run()
    assert fired == ["a", "b"]
    assert net.now == 5.0


def test_timer_in_past_raises(net_and_nodes):
    net, _ = net_and_nodes
    net.call_after(1.0, lambda: None)
    net.run()
    with pytest.raises(SimulationError):
        net.call_at(0.5, lambda: None)


def test_run_until(net_and_nodes):
    net, nodes = net_and_nodes
    net.call_after(10.0, lambda: nodes[0].send(1, "MSG", "late"))
    net.run(until=5.0)
    assert net.now == 5.0
    assert net.pending == 1
    net.run()
    assert len(nodes[1].received) == 1


def test_offline_node_sends_and_hears_nothing(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[1].online = False
    nodes[0].send(1, "MSG", "x")
    nodes[1].send(0, "MSG", "y")
    net.run()
    assert nodes[1].received == []
    assert nodes[0].received == []


def test_metrics_count_messages(net_and_nodes):
    net, nodes = net_and_nodes
    nodes[0].send(1, "MSG", "payload")
    nodes[0].send(2, "MSG", "payload")
    net.run()
    assert net.metrics.total_messages() == 2
    assert net.metrics.total_bytes() > 0


def test_event_budget_guard(rng):
    pki = PKI()
    params = NetworkParams(max_events=50)
    net = Network(params, rng)

    class Looper(ProtocolNode):
        def __init__(self, nid, kp):
            super().__init__(nid, kp)
            self.on("PING", lambda m: self.send(m.sender, "PING", None))

    a, b = Looper(0, pki.generate("a")), Looper(1, pki.generate("b"))
    net.add_node(a)
    net.add_node(b)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    a.send(1, "PING", None)
    with pytest.raises(SimulationError):
        net.run()


def test_reset_rewinds_fabric_but_keeps_nodes(net_and_nodes):
    from repro.metrics.counters import MetricsCollector

    net, nodes = net_and_nodes
    net.drop_filter = lambda msg: True
    net.adversarial_scheduler = lambda msg: 2.0
    net.set_partitions([(0, 1), (2, 3)])
    net.add_link_degradation(3.0)
    nodes[0].send(1, "MSG", "dropped")
    nodes[0].send(2, "MSG", "partitioned")
    net.call_after(50.0, lambda: None)
    assert net.pending == 1 and net.dropped_messages == 2

    fresh_metrics = MetricsCollector()
    net.reset(metrics=fresh_metrics)
    assert net.now == 0.0
    assert net.pending == 0
    assert net.metrics is fresh_metrics
    assert net.dropped_messages == 0
    assert net.partition_dropped == 0
    assert net.drop_filter is None
    assert net.adversarial_scheduler is None
    assert not net.partitioned
    # Registry intact and the classifier back to the permissive default:
    # a previously partitioned pair delivers again.
    nodes[0].send(2, "MSG", "after-reset")
    net.run()
    assert [m.payload for m in nodes[2].received] == ["after-reset"]


def test_adversarial_scheduler_stretch_clamped_below_one(rng):
    """A scheduler cannot *accelerate* partial channels: stretches under
    1.0 clamp to the honest base delay."""
    pki = PKI()
    params = NetworkParams(jitter=0.0)
    net = Network(params, rng)
    nodes = [Recorder(i, pki.generate(400 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.PARTIAL)
    net.adversarial_scheduler = lambda msg: 0.01
    nodes[0].send(1, "MSG", "x")
    assert net.run() == pytest.approx(params.partial_base)


def test_adversarial_scheduler_stretches_partial_only(rng):
    pki = PKI()
    params = NetworkParams(jitter=0.0)
    net = Network(params, rng)
    nodes = [Recorder(i, pki.generate(300 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.PARTIAL)
    net.adversarial_scheduler = lambda msg: 100.0  # clamped to max stretch
    nodes[0].send(1, "MSG", "x")
    t = net.run()
    assert t == pytest.approx(params.partial_base * params.partial_max_stretch)


def test_drop_filter(net_and_nodes):
    net, nodes = net_and_nodes
    net.drop_filter = lambda msg: msg.payload == "drop"
    nodes[0].send(1, "MSG", "drop")
    nodes[0].send(1, "MSG", "keep")
    net.run()
    assert [m.payload for m in nodes[1].received] == ["keep"]
    assert net.dropped_messages == 1


# -- fault injection: partitions and degradations ----------------------------
def test_partition_cuts_cross_group_links_only(net_and_nodes):
    net, nodes = net_and_nodes
    net.set_partitions([(0, 1), (2,)])
    nodes[0].send(1, "MSG", "same-group")
    nodes[0].send(2, "MSG", "cross-group")
    nodes[2].send(0, "MSG", "cross-back")
    net.run()
    assert [m.payload for m in nodes[1].received] == ["same-group"]
    assert nodes[2].received == []
    assert nodes[0].received == []
    assert net.partition_dropped == 2
    assert net.dropped_messages == 2
    net.clear_partitions()
    nodes[0].send(2, "MSG", "healed")
    net.run()
    assert [m.payload for m in nodes[2].received] == ["healed"]


def test_unlisted_nodes_form_implicit_remainder_group(net_and_nodes):
    net, nodes = net_and_nodes
    net.set_partitions([(0,)])
    nodes[2].send(3, "MSG", "rest-to-rest")
    nodes[2].send(0, "MSG", "rest-to-island")
    net.run()
    assert [m.payload for m in nodes[3].received] == ["rest-to-rest"]
    assert nodes[0].received == []


def test_partition_rejects_overlapping_groups(net_and_nodes):
    net, _ = net_and_nodes
    with pytest.raises(ValueError):
        net.set_partitions([(0, 1), (1, 2)])


def test_link_degradation_window_and_channel_filter(rng):
    pki = PKI()
    net = Network(NetworkParams(jitter=0.0), rng)
    nodes = [Recorder(i, pki.generate(500 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    net.add_link_degradation(5.0, start=0.0, end=10.0,
                             channels=(ChannelClass.INTRA,))
    nodes[0].send(1, "MSG", "slow")  # sent at t=0: degraded 5x
    t = net.run()
    assert t == pytest.approx(5 * net.params.delta)
    net.call_at(20.0, lambda: nodes[0].send(1, "MSG", "fast"))
    t = net.run()  # sent at t=20, outside the window: normal delay
    assert t == pytest.approx(20.0 + net.params.delta)
    net.add_link_degradation(2.0, channels=(ChannelClass.KEY,))
    nodes[0].send(1, "MSG", "other-class")  # INTRA unaffected by KEY spike
    assert net.run() == pytest.approx(t + net.params.delta)


def test_degradations_stack_multiplicatively(rng):
    pki = PKI()
    net = Network(NetworkParams(jitter=0.0), rng)
    nodes = [Recorder(i, pki.generate(600 + i)) for i in range(2)]
    for node in nodes:
        net.add_node(node)
    net.set_channel_classifier(lambda s, d: ChannelClass.INTRA)
    net.add_link_degradation(2.0)
    net.add_link_degradation(3.0)
    nodes[0].send(1, "MSG", "x")
    assert net.run() == pytest.approx(6 * net.params.delta)


def test_degradation_factor_below_one_rejected(net_and_nodes):
    net, _ = net_and_nodes
    with pytest.raises(ValueError):
        net.add_link_degradation(0.5)
