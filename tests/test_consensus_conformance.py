"""Stateful consensus conformance: machine-checked invariants on live runs.

Three layers:

* honest/faulty runs of every executable backend with an
  :class:`~repro.analysis.invariants.InvariantChecker` raising on the
  first violated round (the executable analogue of model-checking the
  paper's safety/liveness claims);
* unit checks that each invariant actually *can* fire (a checker that
  never trips proves nothing);
* a hypothesis ``RuleBasedStateMachine`` driving one pipeline through
  randomized sequences of policy activations, fault injections and
  mempool perturbations, re-checking every invariant after every round.
"""

from __future__ import annotations

import types

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.analysis.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantViolationError,
)
from repro.backends import backend_names, create_backend
from repro.core.config import ProtocolParams
from repro.ledger.transaction import TxOutput
from repro.nodes.adversary import AdversaryConfig
from repro.scenarios import POLICY_PRESETS, SCENARIO_PRESETS

SMALL = dict(
    n=24,
    m=2,
    lam=2,
    referee_size=6,
    users_per_shard=12,
    tx_per_committee=4,
    cross_shard_ratio=0.25,
)


def _checked_run(rounds: int, **kwargs) -> InvariantChecker:
    """Run a backend with a raising checker installed; return the checker."""
    backend = kwargs.pop("backend", "cycledger")
    params = ProtocolParams(**{**SMALL, **kwargs.pop("params", {})})
    ledger = create_backend(backend, params, **kwargs)
    checker = InvariantChecker()
    checker.install(ledger)
    ledger.run(rounds=rounds)
    checker.check_final(ledger)
    return checker


# -- registry sanity ---------------------------------------------------------


def test_registry_names_kinds_and_prose():
    assert set(INVARIANTS) == {
        "chain-linkage",
        "no-double-spend",
        "utxo-conservation",
        "reputation-monotone-honest",
        "mempool-conservation",
        "recovery-terminates",
        "honest-majority-commit",
    }
    for inv in INVARIANTS.values():
        assert inv.kind in ("safety", "liveness")
        assert len(inv.description) > 40  # normative prose, not a stub


def test_invariant_catalog_documented():
    """Every registered invariant appears in the docs catalogue (and vice
    versa there is prose next to each checker name)."""
    import pathlib

    text = pathlib.Path(__file__).parent.parent.joinpath(
        "docs", "scenarios.md"
    ).read_text()
    for name, inv in INVARIANTS.items():
        assert f"`{name}`" in text, f"{name} missing from docs/scenarios.md"
        assert inv.kind in text


# -- honest runs hold every invariant, on every backend ----------------------


@pytest.mark.parametrize("backend", backend_names())
def test_honest_run_conforms(backend):
    checker = _checked_run(3, backend=backend)
    assert checker.rounds_checked == 3
    assert checker.violations == []


def test_poisson_mempool_run_conforms():
    checker = _checked_run(
        4,
        params=dict(
            seed=3,
            arrival_process="poisson",
            arrival_rate=20.0,
            mempool_max_age=2,
        ),
    )
    assert checker.violations == []


@pytest.mark.parametrize("backend", backend_names())
def test_byzantine_run_keeps_safety(backend):
    """A 30% adversary may stall commits, but safety invariants (and the
    guarded honest-only ones) still hold on every backend."""
    checker = _checked_run(
        3,
        backend=backend,
        params=dict(seed=5),
        adversary=AdversaryConfig(fraction=0.3),
    )
    assert checker.violations == []


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
def test_scenario_presets_keep_invariants(name):
    scenario = SCENARIO_PRESETS[name]
    checker = _checked_run(
        scenario.last_event_round + 1,
        params=dict(seed=9),
        scenario=scenario,
    )
    assert checker.violations == []


@pytest.mark.parametrize("name", sorted(POLICY_PRESETS))
@pytest.mark.parametrize("backend", backend_names())
def test_policy_presets_keep_invariants(backend, name):
    """Adaptive adversary policies can depress commits on any backend but
    must never violate safety."""
    policy = POLICY_PRESETS[name]
    checker = _checked_run(
        policy.last_active_round + 1,
        backend=backend,
        params=dict(seed=9),
        policy=policy,
    )
    assert checker.violations == []


# -- each invariant can actually fire ----------------------------------------


def test_checker_rejects_double_install():
    ledger = create_backend("cycledger", ProtocolParams(**SMALL))
    checker = InvariantChecker()
    checker.install(ledger)
    with pytest.raises(ValueError, match="one checker per ledger"):
        checker.install(ledger)


def test_utxo_inflation_detected():
    """Minting value out of thin air trips utxo-conservation."""
    ledger = create_backend("cycledger", ProtocolParams(**SMALL))
    checker = InvariantChecker()
    checker.install(ledger)
    ledger.run(rounds=1)
    ledger.global_utxos.add((b"\xab" * 32, 0), TxOutput("forger", 10_000))
    with pytest.raises(InvariantViolationError, match="utxo-conservation"):
        ledger.run(rounds=1)


def test_mempool_leak_detected():
    """Dropping a queued transaction behind the mempool's back breaks the
    conservation identity."""
    params = ProtocolParams(
        **SMALL, arrival_process="poisson", arrival_rate=30.0
    )
    ledger = create_backend("cycledger", params)
    checker = InvariantChecker()
    checker.install(ledger)
    ledger.run(rounds=2)
    assert ledger.mempool.depth > 0, "need a standing queue to corrupt"
    ledger.mempool.queue.pop()
    with pytest.raises(InvariantViolationError, match="mempool-conservation"):
        ledger.run(rounds=1)


def test_unfinished_recovery_detected():
    checker = InvariantChecker(raise_on_violation=False)
    report = types.SimpleNamespace(
        round_number=1,
        recoveries=2,
        recovery_times=(0.5,),
        sim_time=10.0,
    )
    checker._check_recovery(report)
    assert [v.invariant for v in checker.violations] == ["recovery-terminates"]


def test_late_recovery_detected():
    checker = InvariantChecker(raise_on_violation=False)
    report = types.SimpleNamespace(
        round_number=1,
        recoveries=1,
        recovery_times=(99.0,),
        sim_time=10.0,
    )
    checker._check_recovery(report)
    assert [v.invariant for v in checker.violations] == ["recovery-terminates"]


def test_census_mode_collects_instead_of_raising():
    ledger = create_backend("cycledger", ProtocolParams(**SMALL))
    checker = InvariantChecker(raise_on_violation=False)
    checker.install(ledger)
    ledger.run(rounds=1)
    # Mint more than one round's fees can destroy, or legitimate fee burn
    # would mask the inflation at the next round boundary.
    ledger.global_utxos.add((b"\xcd" * 32, 0), TxOutput("forger", 10_000))
    ledger.run(rounds=1)
    assert [v.invariant for v in checker.violations] == ["utxo-conservation"]
    with pytest.raises(InvariantViolationError):
        checker.assert_clean()


def test_violation_string_names_round_and_invariant():
    ledger = create_backend("cycledger", ProtocolParams(**SMALL))
    checker = InvariantChecker(raise_on_violation=False)
    checker.install(ledger)
    ledger.run(rounds=1)
    ledger.global_utxos.add((b"\xef" * 32, 0), TxOutput("forger", 10_000))
    ledger.run(rounds=1)
    text = str(checker.violations[0])
    assert "utxo-conservation" in text and "r2" in text


# -- stateful property-based conformance -------------------------------------


class ConsensusConformance(RuleBasedStateMachine):
    """Drive one backend through randomized adversity, checking every
    invariant after every round.

    Rules reconfigure the run the way scenarios and policies do — ramping
    corruption, crashing nodes, healing, perturbing mempool pressure — and
    ``advance_round`` executes a full protocol round with the installed
    checker raising on any violated invariant.  The backend and an
    optional adversary policy are themselves drawn per example.
    """

    @initialize(
        backend=st.sampled_from(sorted(backend_names())),
        policy=st.sampled_from([None, *sorted(POLICY_PRESETS)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def setup(self, backend, policy, seed):
        params = ProtocolParams(
            **SMALL,
            seed=seed,
            arrival_process="poisson",
            arrival_rate=16.0,
            mempool_max_age=3,
        )
        self.ledger = create_backend(
            backend,
            params,
            policy=POLICY_PRESETS[policy] if policy else None,
        )
        self.checker = InvariantChecker()
        self.checker.install(self.ledger)

    @rule()
    def advance_round(self):
        self.ledger.run(rounds=1)

    @precondition(lambda self: self.ledger.policy is None)
    @rule(fraction=st.sampled_from([0.0, 0.1, 0.25]))
    def ramp_adversary(self, fraction):
        # Policies own the corruption set when installed (they would
        # overwrite this at the next round boundary anyway).
        self.ledger.adversary.retarget_fraction(fraction)

    @rule(data=st.data())
    def crash_nodes(self, data):
        ids = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=SMALL["n"] - 1),
                max_size=3,
            )
        )
        self.ledger.adversary.force_offline(ids)

    @rule()
    def heal(self):
        self.ledger.adversary.force_offline(())
        if self.ledger.policy is None:
            self.ledger.adversary.retarget_fraction(0.0)

    @rule(max_age=st.integers(min_value=1, max_value=4))
    def perturb_mempool_ttl(self, max_age):
        self.ledger.mempool.max_age_rounds = max_age

    @rule(capacity=st.sampled_from([0, 8, 32]))
    def perturb_mempool_capacity(self, capacity):
        self.ledger.mempool.capacity = capacity

    def teardown(self):
        if hasattr(self, "ledger"):
            self.checker.check_final(self.ledger)


ConsensusConformance.TestCase.settings = settings(
    max_examples=5, stateful_step_count=6, deadline=None
)

TestConsensusConformance = ConsensusConformance.TestCase
