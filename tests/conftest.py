"""Shared fixtures and hypothesis settings profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.crypto.pki import PKI

# CI runs the suites reproducibly (no deadline flakes, no random example
# churn between runs); local development keeps hypothesis' default
# randomized exploration.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev")
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def pki() -> PKI:
    return PKI()


@pytest.fixture
def keypair(pki):
    return pki.generate("fixture-key")


@pytest.fixture
def keypair_b(pki):
    return pki.generate("fixture-key-b")
