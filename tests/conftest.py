"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.pki import PKI


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def pki() -> PKI:
    return PKI()


@pytest.fixture
def keypair(pki):
    return pki.generate("fixture-key")


@pytest.fixture
def keypair_b(pki):
    return pki.generate("fixture-key-b")
