"""Adversarial integration scenarios beyond the basic runs."""

import pytest

from repro import AdversaryConfig, CycLedger, ProtocolParams


def params(seed=0, **overrides):
    defaults = dict(n=48, m=3, lam=2, referee_size=6, seed=seed,
                    users_per_shard=24, tx_per_committee=8)
    defaults.update(overrides)
    return ProtocolParams(**defaults)


def test_censoring_leader_adversary():
    found = False
    for seed in range(1, 6):
        adv = AdversaryConfig(
            fraction=0.3, leader_strategy="censoring_leader",
            voter_strategy="honest",
        )
        ledger = CycLedger(params(seed=seed), adversary=adv)
        report = ledger.run_round()
        assert report.block is not None
        if report.intra.censorship_detected:
            found = True
            assert report.recoveries > 0
            # the retried committee still delivered transactions
            for k in report.intra.retried:
                assert k in report.intra.accepted_by_cr
    assert found, "no censoring leader was ever drawn across 5 seeds"


def test_silent_leader_adversary():
    found = False
    for seed in range(1, 6):
        adv = AdversaryConfig(
            fraction=0.3, leader_strategy="silent_leader",
            voter_strategy="honest",
        )
        ledger = CycLedger(params(seed=seed), adversary=adv)
        report = ledger.run_round()
        assert report.block is not None
        if report.intra.silence_detected:
            found = True
            assert report.recoveries > 0
    assert found


def test_bad_semicommit_adversary():
    found = False
    for seed in range(1, 6):
        adv = AdversaryConfig(
            fraction=0.3, leader_strategy="bad_semicommit_leader",
            voter_strategy="honest",
        )
        ledger = CycLedger(params(seed=seed), adversary=adv)
        report = ledger.run_round()
        assert report.block is not None
        if report.semicommit.cheaters_detected:
            found = True
            assert any(e.succeeded for e in report.semicommit.recoveries)
    assert found


def test_offline_adversary_liveness():
    """A fifth of the network silently offline: blocks still flow."""
    adv = AdversaryConfig(fraction=0.2, offline_fraction=1.0)
    ledger = CycLedger(params(seed=3), adversary=adv)
    reports = ledger.run(2)
    assert all(r.block is not None for r in reports)
    assert all(r.packed > 0 for r in reports)


def test_expelled_leader_not_reselected_immediately():
    """A punished ex-leader's reputation (cube-rooted) should generally keep
    it out of the next round's top-m leader set."""
    for seed in range(1, 8):
        adv = AdversaryConfig(fraction=0.3, leader_strategy="equivocating_leader",
                              voter_strategy="honest")
        ledger = CycLedger(params(seed=seed), adversary=adv)
        report = ledger.run_round()
        if not report.recoveries:
            continue
        expelled_pks = set()
        for event in (report.intra.recoveries + report.semicommit.recoveries):
            expelled_pks.add(ledger.nodes[event.old_leader].pk)
        next_leaders = set(report.selection.next_leaders)
        # honest members gained ~1 reputation + punished leaders lost theirs
        assert not (expelled_pks & next_leaders)
        return
    pytest.skip("no recovery across seeds (improbable)")


def test_selection_fails_without_enough_participants():
    """Liveness guard: if nearly everyone is offline, staffing the next
    round is impossible and the protocol refuses loudly."""
    adv = AdversaryConfig(fraction=0.9, offline_fraction=1.0)
    ledger = CycLedger(params(seed=4), adversary=adv)
    with pytest.raises(RuntimeError):
        ledger.run_round()


def test_prefilter_enabled_full_protocol():
    ledger = CycLedger(
        params(seed=5, prefilter_cross_shard=True,
               cross_shard_ratio=0.5, invalid_ratio=0.4)
    )
    reports = ledger.run(2)
    assert all(r.block is not None for r in reports)
    assert sum(r.inter.prefilter_savings for r in reports) > 0


def test_mixed_strategy_rounds_remain_consistent():
    """Equivocators + random voters + offline minority over 3 rounds: chain
    stays valid and every packed tx replays against genesis."""
    from repro.ledger.utxo import UTXOSet, validate_transaction

    adv = AdversaryConfig(
        fraction=0.3, leader_strategy="equivocating_leader",
        voter_strategy="random_voter", offline_fraction=0.2,
    )
    ledger = CycLedger(params(seed=6), adversary=adv)
    ledger.run(3)
    assert ledger.chain.verify()
    utxos = UTXOSet()
    utxos.restore(ledger.workload.genesis_utxos().snapshot())
    for block in ledger.chain:
        for tx in block.transactions:
            assert validate_transaction(tx, utxos)
            utxos.apply_transaction(tx)


def test_round_reports_account_for_submitted_txs():
    ledger = CycLedger(params(seed=7))
    report = ledger.run_round()
    assert 0 < report.packed <= report.submitted
    assert report.messages > 0
    assert report.bytes_sent > report.messages  # messages have bodies
    assert report.reliable_channels > 0
