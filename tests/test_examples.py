"""Docs-facing example scripts must keep running.

Each of the five ``examples/*.py`` scripts is executed in-process at small
n with a fixed seed; an example that raises (API drift, renamed field,
broken import) fails here instead of rotting silently in the README.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> small-and-fast overrides passed to its ``main``.
EXAMPLE_OVERRIDES = {
    "quickstart.py": dict(
        rounds=2, n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
        tx_per_committee=4, seed=2024,
    ),
    "cross_shard_payments.py": dict(
        rounds=2, n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
        tx_per_committee=4, seed=7,
    ),
    "dishonest_leaders.py": dict(
        rounds=2, n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
        tx_per_committee=4, seed=1,
    ),
    "reputation_economics.py": dict(
        rounds=2, n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
        tx_per_committee=4, seed=11,
    ),
    "security_study.py": dict(c_max=60),
}


def test_every_example_is_covered():
    """A new example script must be added to the override table."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_OVERRIDES), (
        "examples/ and EXAMPLE_OVERRIDES drifted apart"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLE_OVERRIDES))
def test_example_runs_in_process(script, capsys):
    namespace = runpy.run_path(str(EXAMPLES_DIR / script))
    namespace["main"](**EXAMPLE_OVERRIDES[script])
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_example_output_is_deterministic(capsys):
    """Same seed, same transcript — the determinism convention extends to
    the docs-facing surface."""
    namespace = runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"))
    namespace["main"](**EXAMPLE_OVERRIDES["quickstart.py"])
    first = capsys.readouterr().out
    namespace["main"](**EXAMPLE_OVERRIDES["quickstart.py"])
    second = capsys.readouterr().out
    assert first == second
