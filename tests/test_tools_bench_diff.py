"""tools/bench_diff.py: per-case median deltas and the --fail-over gate."""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

import bench_diff  # noqa: E402


def _artifact(medians: dict[str, float], hash_ops: float = 1e6) -> dict:
    return {
        "schema": "repro-bench/1",
        "version": "1.5.0",
        "host": {},
        "settings": {},
        "calibration": {
            "hash_1kib_ops_per_sec": hash_ops,
            "pyloop_ops_per_sec": 1e7,
        },
        "cases": [
            {
                "name": name,
                "n": 48,
                "category": "round" if name.startswith("round:") else "micro",
                "wall": {"median_s": median},
            }
            for name, median in medians.items()
        ],
    }


@pytest.fixture
def artifacts(tmp_path):
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_artifact(
        {"round:cycledger": 0.100, "micro:mac_sign": 0.010,
         "round:gone": 0.5},
    )))
    new.write_text(json.dumps(_artifact(
        {"round:cycledger": 0.150, "micro:mac_sign": 0.008,
         "round:cycledger_overlap": 0.2},
        hash_ops=2e6,
    )))
    return str(old), str(new)


def test_diff_prints_deltas_and_passes_without_threshold(artifacts, capsys):
    old, new = artifacts
    assert bench_diff.main([old, new]) == 0
    out = capsys.readouterr().out
    assert "round:cycledger" in out and "+50.0%" in out
    assert "micro:mac_sign" in out and "-20.0%" in out
    assert "round:gone" in out  # reported as present on one side only
    assert "round:cycledger_overlap" in out


def test_fail_over_gate_trips_on_regression(artifacts, capsys):
    old, new = artifacts
    assert bench_diff.main([old, new, "--fail-over", "20"]) == 1
    err = capsys.readouterr().err
    assert "round:cycledger" in err and "REGRESSED" not in err
    assert bench_diff.main([old, new, "--fail-over", "60"]) == 0


def test_normalize_rescales_by_calibration(artifacts, capsys):
    old, new = artifacts
    # New host hashes 2x faster; old medians halve, so the 0.100 -> 0.150
    # "regression" becomes 0.050 -> 0.150 (+200%) — normalization is about
    # honesty, not leniency, and the case filter narrows the join.
    assert bench_diff.main(
        [old, new, "--normalize", "--cases", "round:cycledger"]
    ) == 0
    out = capsys.readouterr().out
    assert "+200.0%" in out
    assert "micro:mac_sign" not in out


def test_unknown_case_filter_fails(artifacts):
    old, new = artifacts
    with pytest.raises(SystemExit):
        bench_diff.main([old, new, "--cases", "round:nope"])


def test_bad_schema_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/9", "cases": []}))
    with pytest.raises(SystemExit, match="schema"):
        bench_diff.load_cases(str(bad))


def test_missing_artifacts_require_write_baseline():
    with pytest.raises(SystemExit):
        bench_diff.main([])


def test_write_baseline_merges_standard_and_curve_cases(
    tmp_path, monkeypatch
):
    """--write-baseline runs micro/round under --scales, the scale:
    family on its pinned curve, and the soak: family's endurance run,
    merging all three into one sorted artifact."""
    calls = []

    def fake_run_cases(names, settings, scales=(), repeats=5, progress=None,
                       **kwargs):
        calls.append((tuple(names), tuple(scales), repeats))
        return {
            "schema": "repro-bench/1",
            "version": "x",
            "host": {},
            "calibration": {"hash_1kib_ops_per_sec": 1.0},
            "settings": {},
            "cases": [
                {"name": name, "n": 48, "wall": {"median_s": 0.01}}
                for name in names
            ],
        }

    import repro.perf as perf

    monkeypatch.setattr(perf, "run_cases", fake_run_cases)
    out = tmp_path / "BENCH_perf.json"
    assert bench_diff.main(
        ["--write-baseline", "--out", str(out), "--scales", "24",
         "--repeats", "3"]
    ) == 0
    standard_call, curve_call, soak_call = calls
    assert all(
        n.startswith(("micro:", "round:")) for n in standard_call[0]
    ) and standard_call[1] == (24,) and standard_call[2] == 3
    assert all(n.startswith("scale:") for n in curve_call[0])
    assert curve_call[1] == ()  # pinned curve axis, no explicit scales
    assert all(n.startswith("soak:") for n in soak_call[0])
    assert soak_call[1] == ()  # pinned soak axis
    payload = json.loads(out.read_text())
    names = [row["name"] for row in payload["cases"]]
    assert names == sorted(names)
    assert any(n.startswith("scale:") for n in names)
    assert any(n.startswith("round:") for n in names)
    assert any(n.startswith("soak:") for n in names)


def test_diff_reports_one_sided_cases_with_filter(artifacts, capsys):
    """--cases naming a one-sided case reports it (added/removed) instead
    of exiting; only a case in neither artifact is an error."""
    old, new = artifacts
    assert bench_diff.main(
        [old, new, "--cases", "round:gone,round:cycledger_overlap"]
    ) == 0
    out = capsys.readouterr().out
    assert "round:gone" in out and "removed" in out
    assert "round:cycledger_overlap" in out and "added" in out
    assert "micro:mac_sign" not in out


def test_diff_survives_disjoint_artifacts(tmp_path, capsys):
    """Two artifacts with no shared cases still produce a report."""
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_artifact({"round:retired": 0.4})))
    new.write_text(json.dumps(_artifact({"soak:cycledger": 9.0})))
    assert bench_diff.main([str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "round:retired" in out and "removed" in out
    assert "soak:cycledger" in out and "added" in out
