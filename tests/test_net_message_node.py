"""Message sizing, node dispatch, and sandbox construction."""

import numpy as np
import pytest

from repro.core.sandbox import build_multi_sandbox, build_sandbox
from repro.crypto.pki import PKI
from repro.crypto.signatures import sign
from repro.crypto.vrf import vrf_eval
from repro.net.message import Message, payload_size
from repro.net.node import ProtocolNode


# -- payload sizing ---------------------------------------------------------------


def test_scalar_sizes():
    assert payload_size(7) == 8
    assert payload_size(3.14) == 8
    assert payload_size(True) == 1
    assert payload_size(None) == 1
    assert payload_size(b"abc") == 3
    assert payload_size("hello") == 5


def test_container_sizes_additive():
    assert payload_size((1, 2)) == 2 + 16
    assert payload_size([b"ab", "c"]) == 2 + 3
    assert payload_size({"k": 1}) == 2 + 1 + 8


def test_signature_and_vrf_conventional_sizes():
    pki = PKI()
    kp = pki.generate(1)
    assert payload_size(sign(kp, "m")) == 64
    assert payload_size(vrf_eval(kp, "a")) == 96


def test_dataclass_payloads_sized():
    from repro.ledger.transaction import Transaction, TxInput, TxOutput

    tx = Transaction(
        inputs=(TxInput(b"\x00" * 32, 0),),
        outputs=(TxOutput("addr", 5),),
        nonce=1,
    )
    size = payload_size(tx)
    assert size > 32 + 8 + 4  # input id + amounts + address


def test_numpy_scalars_sized():
    assert payload_size(np.int64(3)) == 8


def test_unsizeable_raises():
    with pytest.raises(TypeError):
        payload_size(object())


def test_message_repr():
    msg = Message(
        sender=1, recipient=2, tag="PING", payload=None, size=10,
        channel="intra", send_time=0.0, deliver_time=1.0,
    )
    assert "1->2" in repr(msg) and "PING" in repr(msg)


# -- node dispatch -----------------------------------------------------------------


def test_unattached_node_cannot_send():
    node = ProtocolNode(0, PKI().generate(0))
    with pytest.raises(RuntimeError):
        node.send(1, "X", None)


def test_handler_registration_overwrites():
    node = ProtocolNode(0, PKI().generate(0))
    calls = []
    node.on("T", lambda m: calls.append("a"))
    node.on("T", lambda m: calls.append("b"))
    msg = Message(1, 0, "T", None, 1, "intra", 0.0, 0.0)
    node.receive(msg)
    assert calls == ["b"]


def test_offline_node_receive_noop():
    node = ProtocolNode(0, PKI().generate(0))
    calls = []
    node.on("T", lambda m: calls.append(1))
    node.online = False
    node.receive(Message(1, 0, "T", None, 1, "intra", 0.0, 0.0))
    assert calls == []


# -- sandboxes ----------------------------------------------------------------------


def test_sandbox_shape():
    ctx = build_sandbox(committee_size=10, lam=3, referee_size=5, seed=9)
    committee = ctx.committees[0]
    assert committee.size == 10
    assert committee.leader == 0
    assert committee.partial == (1, 2, 3)
    assert len(ctx.referee) == 5
    assert all(ctx.node(r).is_referee for r in ctx.referee)
    assert ctx.node(0).is_leader and not ctx.node(4).is_key_member


def test_sandbox_roles_in_metrics():
    ctx = build_sandbox(committee_size=8, lam=2)
    assert ctx.metrics.role_of(0) == "key"
    assert ctx.metrics.role_of(5) == "common"
    assert ctx.metrics.role_of(ctx.referee[0]) == "referee"


def test_sandbox_capacities_applied():
    ctx = build_sandbox(committee_size=6, lam=2, capacities=[1, 2, 3, 4, 5, 6])
    assert ctx.node(0).capacity == 1
    assert ctx.node(5).capacity == 6


def test_multi_sandbox_tickets_match_layout():
    ctx = build_multi_sandbox(m=3, committee_size=6, lam=2, seed=4)
    for committee in ctx.committees:
        for mid in committee.members:
            ticket = ctx.node(mid).ticket
            assert ticket.committee_id == committee.index


def test_multi_sandbox_shard_states_distinct():
    ctx = build_multi_sandbox(m=3, committee_size=6, lam=2)
    assert len({id(s) for s in ctx.shard_states}) == 3
    for k, committee in enumerate(ctx.committees):
        for mid in committee.members:
            assert ctx.node(mid).shard_state is ctx.shard_states[k]


def test_committee_spec_validation():
    from repro.core.structures import CommitteeSpec

    with pytest.raises(ValueError):
        CommitteeSpec(index=0, leader=9, partial=(1,), members=[0, 1, 2])
    with pytest.raises(ValueError):
        CommitteeSpec(index=0, leader=0, partial=(9,), members=[0, 1, 2])
    with pytest.raises(ValueError):
        CommitteeSpec(index=0, leader=0, partial=(0,), members=[0, 1, 2])


def test_replace_leader_semantics():
    from repro.core.structures import CommitteeSpec

    spec = CommitteeSpec(index=0, leader=0, partial=(1, 2), members=[0, 1, 2, 3])
    spec.replace_leader(2)
    assert spec.leader == 2
    assert spec.partial == (1,)
    with pytest.raises(ValueError):
        spec.replace_leader(3)  # not a partial member


def test_take_budget_semantics():
    ctx = build_sandbox(committee_size=6, lam=2)
    node = ctx.node(4)
    node.capacity = 5
    node.budget_left = None
    assert node.take_budget(3) == 3
    assert node.take_budget(3) == 2  # only 2 left
    assert node.take_budget(3) == 0
    node.reset_round_state()
    assert node.take_budget(1) == 1  # replenished next round
