"""SCRAPE beacon: unbiasability and liveness under adversarial referees."""

import numpy as np
import pytest

from repro.crypto.beacon import BeaconReport, ScrapeBeacon, run_beacon


def test_honest_beacon_produces_output(rng):
    out, report = run_beacon(7, round_number=2, rng=rng)
    assert isinstance(out, bytes) and len(out) == 32
    assert report.qualified == list(range(7))
    assert not report.disqualified


def test_beacon_deterministic_given_rng():
    out1, _ = run_beacon(5, 1, np.random.default_rng(9))
    out2, _ = run_beacon(5, 1, np.random.default_rng(9))
    assert out1 == out2


def test_different_rounds_different_output(rng):
    beacon = ScrapeBeacon(5, rng)
    report = BeaconReport(n=5, threshold=beacon.threshold)
    beacon.deal_all()
    qualified = beacon.qualify(report)
    secrets = beacon.reveal_and_reconstruct(qualified, report)
    assert ScrapeBeacon.output(1, secrets) != ScrapeBeacon.output(2, secrets)


def test_corrupt_dealer_disqualified(rng):
    _, report = run_beacon(8, 1, rng, corrupt_dealers=[3])
    assert 3 in report.disqualified
    assert 3 not in report.qualified


def test_withholding_minority_cannot_block(rng):
    out, report = run_beacon(9, 1, rng, withhold=[7, 8])
    assert isinstance(out, bytes)
    assert report.withheld_shares > 0
    assert len(report.reconstructed_secrets) == len(report.qualified)


def test_withholding_does_not_change_output():
    """Unbiasability: once dealings are qualified, whether malicious members
    reveal cannot change the beacon value."""
    out_all, _ = run_beacon(9, 5, np.random.default_rng(4))
    out_withheld, _ = run_beacon(9, 5, np.random.default_rng(4), withhold=[6, 7])
    assert out_all == out_withheld


def test_dishonest_majority_withholding_blocks_liveness(rng):
    with pytest.raises(RuntimeError):
        run_beacon(6, 1, rng, withhold=[0, 1, 2, 3])


def test_threshold_default_majority(rng):
    beacon = ScrapeBeacon(10, rng)
    assert beacon.threshold == 6


def test_invalid_sizes(rng):
    with pytest.raises(ValueError):
        ScrapeBeacon(0, rng)
    with pytest.raises(ValueError):
        ScrapeBeacon(4, rng, threshold=9)
