"""PKI + simulated signature scheme: unforgeability-in-simulation contract."""

import pytest

from repro.crypto.pki import PKI, KeyPair
from repro.crypto.signatures import Signature, sign, signed_by, verify


def test_generate_registers(pki):
    kp = pki.generate(1)
    assert pki.is_registered(kp.pk)
    assert len(pki) == 1


def test_generate_deterministic():
    a = PKI().generate(("seed", 7))
    b = PKI().generate(("seed", 7))
    assert a.pk == b.pk and a.sk == b.sk


def test_distinct_seeds_distinct_keys(pki):
    assert pki.generate(1).pk != pki.generate(2).pk


def test_repr_hides_secret(pki):
    kp = pki.generate(1)
    assert kp.sk.hex() not in repr(kp)


def test_register_conflicting_key_raises(pki):
    kp = pki.generate(1)
    with pytest.raises(ValueError):
        pki.register(KeyPair(pk=kp.pk, sk=b"different-secret-key-32-bytes!!!"))


def test_sign_verify_roundtrip(pki, keypair):
    message = ("PROPOSE", 3, ("sn", 1), b"digest")
    sig = sign(keypair, message)
    assert verify(pki, sig, message)


def test_wrong_message_fails(pki, keypair):
    sig = sign(keypair, "hello")
    assert not verify(pki, sig, "hellO")


def test_unregistered_key_fails(pki):
    foreign = KeyPair(pk="deadbeef" * 5, sk=b"s" * 32)
    sig = sign(foreign, "msg")
    assert not verify(pki, sig, "msg")


def test_signature_pins_signer(pki, keypair, keypair_b):
    sig = sign(keypair, "msg")
    assert signed_by(pki, sig, "msg", keypair.pk)
    assert not signed_by(pki, sig, "msg", keypair_b.pk)


def test_forged_tag_fails(pki, keypair):
    sig = sign(keypair, "msg")
    forged = Signature(pk=keypair.pk, tag=bytes(32))
    assert not verify(pki, forged, "msg")


def test_cross_key_forgery_fails(pki, keypair, keypair_b):
    # A signature by B presented as A's must not verify as A's statement.
    sig_b = sign(keypair_b, "msg")
    assert not signed_by(pki, sig_b, "msg", keypair.pk)


def test_mac_unknown_pk_raises(pki):
    with pytest.raises(KeyError):
        pki.mac("not-registered", b"x")


def test_fingerprint_changes_with_registry(pki):
    f0 = pki.fingerprint()
    pki.generate("new")
    assert pki.fingerprint() != f0
