"""Property-based tests (hypothesis) on the core data structures and math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.security import (
    committee_failure_exact,
    committee_failure_kl_bound,
    union_bound,
)
from repro.core.reputation import (
    ReputationStore,
    cosine_scores,
    distribute_rewards,
    g,
)
from repro.crypto.field import FIELD
from repro.ledger.workload import TxMempool, WorkloadGenerator
from repro.crypto.hashing import H, canonical_bytes
from repro.crypto.pvss import deal, feldman_check, reconstruct
from repro.ledger.transaction import Transaction, TxInput, TxOutput
from repro.ledger.utxo import UTXOSet, ValidationResult, validate_transaction
from repro.net.message import payload_size

# -- hashing -----------------------------------------------------------------

encodable = st.recursive(
    st.one_of(
        st.integers(),
        st.text(max_size=20),
        st.binary(max_size=20),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=8,
)


@given(encodable, encodable)
@settings(max_examples=200, deadline=None)
def test_canonical_encoding_injective_on_samples(a, b):
    # Python's == conflates 0/False and 1/True; the encoding deliberately
    # distinguishes them, so the oracle must be type-aware.
    same = a == b and repr(a) == repr(b)
    if same:
        assert H(a) == H(b)
    else:
        assert canonical_bytes(a) != canonical_bytes(b)


@given(encodable)
@settings(max_examples=100, deadline=None)
def test_payload_size_positive(obj):
    assert payload_size(obj) >= 0


# -- field / PVSS ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=FIELD.p - 1))
@settings(max_examples=100, deadline=None)
def test_field_inverse(a):
    if a != 0:
        assert FIELD.mul(a, FIELD.inv(a)) == 1


@given(
    st.integers(min_value=0, max_value=FIELD.p - 1),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=6),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_pvss_roundtrip(secret, threshold, extra, pyrandom):
    n = threshold + extra
    rng = np.random.default_rng(pyrandom.randint(0, 2**31))
    dealing, secrets = deal(secret, n=n, threshold=threshold, rng=rng)
    # every share passes Feldman verification
    for i, share in enumerate(secrets.shares, start=1):
        assert feldman_check(dealing, i, share)
    # any threshold-subset reconstructs
    indices = list(range(1, n + 1))
    pyrandom.shuffle(indices)
    points = [(i, secrets.shares[i - 1]) for i in indices[:threshold]]
    assert reconstruct(points, threshold) == secret % FIELD.p


# -- scoring / rewards ---------------------------------------------------------


votes_matrix = st.integers(min_value=1, max_value=12).flatmap(
    lambda d: st.integers(min_value=1, max_value=10).flatmap(
        lambda c: st.lists(
            st.lists(st.sampled_from([-1, 0, 1]), min_size=d, max_size=d),
            min_size=c,
            max_size=c,
        ).map(lambda rows: (np.array(rows, dtype=np.int8), d))
    )
)


@given(votes_matrix)
@settings(max_examples=150, deadline=None)
def test_cosine_scores_bounded_and_extremes(matrix_d):
    matrix, d = matrix_d
    decision = np.where((matrix == 1).sum(axis=0) > matrix.shape[0] / 2, 1, -1)
    scores = cosine_scores(matrix, decision)
    assert np.all(scores >= -1.0 - 1e-12) and np.all(scores <= 1.0 + 1e-12)
    # a row equal to the decision scores (numerically) 1
    perfect = cosine_scores(decision[None, :].astype(np.int8), decision)
    if np.any(decision):
        assert abs(perfect[0] - 1.0) < 1e-12
    else:
        assert perfect[0] == 0.0


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=6),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_reward_conservation_and_nonnegativity(reps, fees):
    rewards = distribute_rewards(fees, reps)
    assert abs(sum(rewards.values()) - fees) < 1e-6 * max(fees, 1.0)
    assert all(r >= 0 for r in rewards.values())


@given(st.floats(min_value=-50, max_value=50, allow_nan=False),
       st.floats(min_value=-50, max_value=50, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_g_monotone_property(x, y):
    if x < y:
        assert g(x) <= g(y) + 1e-12
    assert g(x) > 0


# -- UTXO invariants --------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),  # which utxo to spend
            st.integers(min_value=1, max_value=200),  # amount to send
        ),
        max_size=15,
    )
)
@settings(max_examples=100, deadline=None)
def test_utxo_value_never_increases(spends):
    utxos = UTXOSet()
    base = Transaction(
        inputs=(), outputs=tuple(TxOutput(f"u{i}", 100) for i in range(10))
    )
    for i in range(10):
        utxos.add((base.txid, i), base.outputs[i])
    total = utxos.total_value()
    nonce = 0
    for which, amount in spends:
        ops = sorted(utxos, key=lambda op: (op[0], op[1]))
        if not ops:
            break
        op = ops[which % len(ops)]
        available = utxos.amount(op)
        nonce += 1
        tx = Transaction(
            inputs=(TxInput(*op),),
            outputs=(TxOutput("payee", amount),),
            nonce=nonce,
        )
        result = validate_transaction(tx, utxos)
        if amount > available:
            assert result is ValidationResult.OVERSPEND
        else:
            assert result is ValidationResult.VALID
            utxos.apply_transaction(tx)
            new_total = utxos.total_value()
            assert new_total == total - (available - amount)
            total = new_total


# -- security bounds ---------------------------------------------------------------


@given(
    st.integers(min_value=50, max_value=500),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_exact_tail_bounded_by_kl(n, data):
    t = data.draw(st.integers(min_value=0, max_value=n // 3 - 1 if n >= 3 else 0))
    c = data.draw(st.integers(min_value=6, max_value=min(n, 200)))
    exact = committee_failure_exact(n, t, c)
    if t > 0:
        bound = committee_failure_kl_bound(n, t, c)
        assert exact <= bound * (1 + 1e-9) + 1e-300
    assert 0.0 <= exact <= 1.0


@given(st.floats(min_value=0, max_value=1), st.integers(min_value=1, max_value=100))
@settings(max_examples=100, deadline=None)
def test_union_bound_properties(p, count):
    result = float(union_bound(p, count))
    assert 0.0 <= result <= 1.0
    assert result >= min(p, 1.0) - 1e-12


# -- mempool conservation ---------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),  # fraction packed
            st.integers(min_value=0, max_value=4),  # max_age perturbation
            st.integers(min_value=0, max_value=30),  # capacity perturbation
        ),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=40, deadline=None)
def test_mempool_conservation_identity(seed, rounds):
    """Under arbitrary packing and TTL/capacity perturbations, every
    admitted transaction is accounted for exactly once:
    admitted == packed + queued + evicted (the checker's
    mempool-conservation invariant, exercised directly)."""
    generator = WorkloadGenerator(
        m=2, users_per_shard=16, rng=np.random.default_rng(seed)
    )
    mempool = TxMempool(
        generator, process="poisson", rate=12.0, capacity=0, max_age_rounds=0
    )
    packed_total = 0
    for round_number, (fraction, max_age, capacity) in enumerate(rounds, 1):
        mempool.max_age_rounds = max_age
        mempool.capacity = capacity
        now = float(round_number) * 10.0
        mempool.admit(
            round_number, now, 0, cross_shard_ratio=0.25, invalid_ratio=0.1
        )
        queued = [e.tagged.tx.txid for e in mempool.queue]
        packed = set(queued[: int(fraction * len(queued))])
        mempool.settle(packed, round_number, now + 5.0)
        packed_total += len(packed)
        assert (
            mempool.total_admitted
            == packed_total + mempool.depth + mempool.total_evicted
        )


# -- ReputationStore ≡ plain dict -------------------------------------------------


rep_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "add", "get", "add_scores"]),
        st.integers(min_value=0, max_value=11),  # pk index (8 seeded + growth)
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    max_size=30,
)


@given(rep_ops)
@settings(max_examples=100, deadline=None)
def test_reputation_store_matches_dict_model(ops):
    """The array-backed store behaves exactly like the plain dict it
    replaced, under arbitrary set/add/get interleavings including growth
    past the seeded population."""
    pks = [f"pk{i}" for i in range(12)]
    store = ReputationStore(pks[:8])
    model = {pk: 0.0 for pk in pks[:8]}
    for op, index, value in ops:
        pk = pks[index]
        if op == "set":
            store[pk] = value
            model[pk] = value
        elif op == "add" and pk in model:
            store[pk] = store[pk] + value
            model[pk] = model[pk] + value
        elif op == "get":
            assert store.get(pk, -1.0) == model.get(pk, -1.0)
        elif op == "add_scores" and pk in model:
            store.add_scores([(pk, value)])
            model[pk] += value
    assert dict(store.items()) == model
    assert store.keys() == list(model.keys())
    assert len(store) == len(model)
    assert store == model
