"""Reputation scoring (Eq. 1), g(x) (Eq. 2), rewards, and the phase."""

import numpy as np
import pytest

from repro.core.committee import run_committee_configuration
from repro.core.intra import run_intra_consensus
from repro.core.reputation import (
    LEADER_BONUS,
    cosine_scores,
    distribute_rewards,
    g,
    run_reputation_updating,
    score_summary,
)
from repro.core.sandbox import build_multi_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.ledger.workload import WorkloadGenerator
from repro.nodes.behaviors import ContraryVoter, LazyVoter


# -- Eq. 1 -------------------------------------------------------------------


def test_perfect_agreement_scores_one():
    u = np.array([1, -1, 1, -1])
    matrix = np.tile(u, (3, 1))
    assert np.allclose(cosine_scores(matrix, u), 1.0)


def test_perfect_disagreement_scores_minus_one():
    u = np.array([1, -1, 1])
    matrix = -np.tile(u, (2, 1))
    assert np.allclose(cosine_scores(matrix, u), -1.0)


def test_all_unknown_scores_zero():
    u = np.array([1, 1, -1])
    matrix = np.zeros((4, 3))
    assert np.allclose(cosine_scores(matrix, u), 0.0)


def test_partial_knowledge_scores_sqrt_fraction():
    """Judging k of D transactions correctly scores sqrt(k/D) (Eq. 1)."""
    u = np.ones(4)
    row = np.array([[1, 1, 0, 0]])
    assert cosine_scores(row, u)[0] == pytest.approx(np.sqrt(2 / 4))


def test_zero_decision_vector_scores_zero():
    matrix = np.array([[1, -1]])
    assert np.allclose(cosine_scores(matrix, np.zeros(2)), 0.0)


def test_scores_bounded():
    rng = np.random.default_rng(0)
    matrix = rng.integers(-1, 2, size=(50, 20))
    u = rng.integers(-1, 2, size=20)
    scores = cosine_scores(matrix, u)
    assert np.all(scores >= -1.0) and np.all(scores <= 1.0)


def test_shape_validation():
    with pytest.raises(ValueError):
        cosine_scores(np.ones((2, 3)), np.ones(4))


# -- Eq. 2 -------------------------------------------------------------------


def test_g_at_zero_is_one():
    assert g(0.0) == pytest.approx(1.0)


def test_g_branches():
    assert g(-1.0) == pytest.approx(np.exp(-1))
    assert g(np.e - 1) == pytest.approx(2.0)


def test_g_monotone():
    xs = np.linspace(-5, 5, 201)
    ys = g(xs)
    assert np.all(np.diff(ys) > 0)


def test_g_continuous_at_zero():
    assert abs(g(1e-9) - g(-1e-9)) < 1e-6


def test_g_negative_maps_near_zero():
    assert g(-10.0) < 1e-4


# -- rewards -----------------------------------------------------------------


def test_rewards_sum_to_fees():
    reps = {"a": 2.0, "b": 0.0, "c": -3.0}
    rewards = distribute_rewards(100.0, reps)
    assert sum(rewards.values()) == pytest.approx(100.0)


def test_rewards_ordering_matches_reputation():
    reps = {"high": 5.0, "zero": 0.0, "low": -5.0}
    rewards = distribute_rewards(90.0, reps)
    assert rewards["high"] > rewards["zero"] > rewards["low"] > 0.0


def test_zero_reputation_still_rewarded():
    rewards = distribute_rewards(10.0, {"idle": 0.0, "busy": 3.0})
    assert rewards["idle"] > 0.0


def test_empty_reputations():
    assert distribute_rewards(10.0, {}) == {}


# -- the phase -----------------------------------------------------------------


def setup(behaviors=None, seed=0):
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2, behaviors=behaviors, seed=seed)
    wg = WorkloadGenerator(m=2, users_per_shard=24, rng=np.random.default_rng(seed))
    for state in ctx.shard_states:
        state.add_genesis(wg.genesis_tx)
    batch = wg.generate_batch(40, invalid_ratio=0.2)
    for k, pool in enumerate(wg.by_home_shard(batch)):
        ctx.mempools[k] = pool
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    run_intra_consensus(ctx)
    return ctx


def test_phase_updates_reputation():
    ctx = setup()
    report = run_reputation_updating(ctx)
    assert all(report.consensus_ok.values())
    assert report.updated > 0
    honest_non_leader = [
        ctx.reputation[ctx.pk_of(mid)]
        for committee in ctx.committees
        for mid in committee.members
        if mid != committee.leader
    ]
    assert all(r > 0 for r in honest_non_leader)


def test_leader_bonus_applied():
    ctx = setup()
    run_reputation_updating(ctx)
    for committee in ctx.committees:
        leader_rep = ctx.reputation[ctx.pk_of(committee.leader)]
        member_reps = [
            ctx.reputation[ctx.pk_of(mid)]
            for mid in committee.members
            if mid != committee.leader
        ]
        assert leader_rep >= max(member_reps) - 1e-9
        assert leader_rep == pytest.approx(max(member_reps) + LEADER_BONUS, abs=0.3)


def test_contrary_voters_lose_reputation():
    behaviors = {i: ContraryVoter() for i in (3, 4)}
    ctx = setup(behaviors=behaviors, seed=2)
    report = run_reputation_updating(ctx)
    summary = score_summary(ctx, report)
    assert np.mean(summary["contrary_voter"]) < 0
    assert np.mean(summary["honest"]) > 0


def test_lazy_voters_score_zero():
    behaviors = {i: LazyVoter() for i in (5,)}
    ctx = setup(behaviors=behaviors, seed=3)
    report = run_reputation_updating(ctx)
    summary = score_summary(ctx, report)
    assert np.allclose(summary["lazy_voter"], 0.0)


def test_no_vote_records_scores_zero():
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2)
    run_committee_configuration(ctx)
    report = run_reputation_updating(ctx)
    for score_list in report.scores.values():
        assert all(s == 0.0 for s in score_list.values())
