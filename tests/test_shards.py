"""Shard-parallel intra-round execution: pool/serial identity, knob wiring.

The contract under test (see ``repro.core.shards``): ``shard_workers=1``
(sharded-serial) and ``shard_workers>=2`` (process pool) are byte-identical —
same chain, same reputation, same per-round report numbers, same sweep
artifacts — while ``shard_workers=0`` keeps the historical interleaved path
untouched.
"""

from __future__ import annotations

import pytest

from repro.backends import create_backend
from repro.cli import main as cli_main
from repro.core.config import ProtocolParams
from repro.core.shards import (
    ProcessShardExecutor,
    SerialShardExecutor,
    make_shard_executor,
)
from repro.exp import ExperimentSpec, Runner, derive_point_seed
from repro.nodes.adversary import AdversaryConfig
from repro.scenarios import SCENARIO_PRESETS

SIZING = dict(
    n=32,
    m=3,
    lam=2,
    referee_size=8,
    users_per_shard=8,
    tx_per_committee=3,
    cross_shard_ratio=0.3,
    invalid_ratio=0.1,
)


def _fingerprint(workers: int, adversary=None, rounds: int = 2):
    """Chain head + reputation + per-round headline numbers."""
    params = ProtocolParams(shard_workers=workers, **SIZING)
    ledger = create_backend("cycledger", params, adversary=adversary)
    rows = []
    for _ in range(rounds):
        report = ledger.run_round()
        rows.append(
            (
                report.packed,
                report.messages,
                report.bytes_sent,
                report.sim_time,
                report.recoveries,
            )
        )
    return (
        ledger.chain.head.hash,
        tuple(sorted(ledger.reputation.items())),
        tuple(rows),
    )


# -- pool == sharded-serial, byte for byte -----------------------------------
def test_pool_matches_serial_honest():
    assert _fingerprint(1) == _fingerprint(2)


def test_pool_matches_serial_with_forced_ipc(monkeypatch):
    # The pool's host-adaptive split keeps tasks in-process when workers
    # cannot overlap; pretend we have CPUs to spare so every dispatch
    # genuinely crosses the pool (pickling + worker rebuild exercised no
    # matter what machine the suite runs on).
    import repro.core.shards as shards

    monkeypatch.setattr(shards, "_effective_cpus", lambda: 8)
    assert _fingerprint(1) == _fingerprint(2)


def test_parent_share_split():
    pool = ProcessShardExecutor(2, "cycledger")
    import repro.core.shards as shards

    original = shards._effective_cpus
    try:
        shards._effective_cpus = lambda: 1
        assert pool._parent_share(4) == 4  # no overlap possible: keep all
        shards._effective_cpus = lambda: 8
        assert pool._parent_share(4) == 2  # 2 workers + parent = 3 lanes
        assert pool._parent_share(1) == 1
    finally:
        shards._effective_cpus = original


def test_pool_matches_serial_under_adversary():
    adversary = AdversaryConfig(
        fraction=0.3,
        leader_strategy="equivocating_leader",
        offline_fraction=0.2,
    )
    assert _fingerprint(1, adversary) == _fingerprint(2, adversary)


def test_legacy_path_unaffected_by_shard_module():
    # shard_workers=0 must keep its own deterministic stream: two legacy
    # runs agree with each other (the pre-overlap fixtures pin the actual
    # bytes; here we only prove the path still runs and is reproducible).
    assert _fingerprint(0) == _fingerprint(0)


# -- sweep artifacts ---------------------------------------------------------
def _sweep_spec(workers: int) -> ExperimentSpec:
    return ExperimentSpec(
        name="shards",
        rounds=2,
        seeds=(0, 1),
        base={"shard_workers": workers, **SIZING},
    )


def test_sweep_artifacts_byte_identical_across_executors():
    serial = Runner(_sweep_spec(1), workers=1).run()
    pooled = Runner(_sweep_spec(2), workers=1).run()
    assert serial.json_bytes() == pooled.json_bytes()


def test_spec_identity_normalizes_shard_workers():
    # 1 and 2 are the same experiment (same hash, same derived seeds);
    # 0 is a genuinely different protocol stream and keeps its own hash.
    one, two, zero = _sweep_spec(1), _sweep_spec(2), _sweep_spec(0)
    assert one.spec_hash() == two.spec_hash()
    assert one.spec_hash() != zero.spec_hash()
    p1, p2 = one.expand()[0], two.expand()[0]
    assert p1.derived_seed == p2.derived_seed
    assert derive_point_seed(
        p1.params, p1.adversary, p1.seed, p1.rounds
    ) == derive_point_seed(p2.params, p2.adversary, p2.seed, p2.rounds)


def test_spec_rejects_shard_workers_as_sweep_axis():
    with pytest.raises(ValueError, match="shard_workers"):
        ExperimentSpec(
            name="bad",
            rounds=1,
            seeds=(0,),
            base=dict(SIZING),
            grid={"shard_workers": (1, 2)},
        )
    with pytest.raises(ValueError, match="shard_workers"):
        ExperimentSpec(
            name="bad",
            rounds=1,
            seeds=(0,),
            base=dict(SIZING),
            points=({"shard_workers": 2},),
        )


# -- knob wiring -------------------------------------------------------------
def test_make_shard_executor_tiers():
    assert make_shard_executor(0, "cycledger") is None
    serial = make_shard_executor(1, "cycledger")
    assert type(serial) is SerialShardExecutor
    pool = make_shard_executor(2, "cycledger")
    assert isinstance(pool, ProcessShardExecutor)
    assert pool.workers == 2


def test_legacy_backend_has_no_executor():
    ledger = create_backend("cycledger", ProtocolParams(**SIZING))
    assert ledger._shard_executor is None


def test_negative_shard_workers_rejected():
    with pytest.raises(ValueError, match="shard_workers"):
        ProtocolParams(shard_workers=-1, **SIZING)


def test_shard_workers_incompatible_with_scenarios():
    with pytest.raises(ValueError, match="scenario"):
        create_backend(
            "cycledger",
            ProtocolParams(shard_workers=2, **SIZING),
            scenario=SCENARIO_PRESETS["partition-halves"],
        )


def test_cli_run_accepts_shard_workers(capsys):
    code = cli_main(
        [
            "run",
            "--n",
            "32",
            "--m",
            "3",
            "--lam",
            "2",
            "--referee",
            "8",
            "--users",
            "8",
            "--txs",
            "3",
            "--rounds",
            "1",
            "--shard-workers",
            "1",
        ]
    )
    assert code == 0
    assert capsys.readouterr().out
