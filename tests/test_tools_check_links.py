"""tools/check_links.py: relative-link resolution and exit codes."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

import check_links  # noqa: E402


def _tree(tmp_path, readme: str = "", docs: dict[str, str] | None = None):
    (tmp_path / "README.md").write_text(readme)
    if docs:
        (tmp_path / "docs").mkdir(exist_ok=True)
        for name, text in docs.items():
            (tmp_path / "docs" / name).write_text(text)
    return tmp_path


def test_clean_tree_passes(tmp_path, capsys):
    _tree(
        tmp_path,
        readme="[docs](docs/perf.md)",
        docs={"perf.md": "[back](../README.md)"},
    )
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert captured.out == "checked 2 markdown files, 0 broken links\n"
    assert captured.err == ""


def test_broken_relative_link_fails(tmp_path, capsys):
    _tree(tmp_path, readme="see [missing](docs/nope.md) for details")
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "README.md: broken link -> docs/nope.md" in captured.err
    assert "checked 1 markdown files, 1 broken links" in captured.out


def test_links_resolve_against_the_linking_file(tmp_path):
    # docs/a.md -> b.md must resolve inside docs/, not the repo root.
    _tree(tmp_path, docs={"a.md": "[sibling](b.md)", "b.md": "ok"})
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 0
    _tree(tmp_path, docs={"a.md": "[stray](c.md)", "b.md": "ok"})
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 1


def test_external_and_anchor_links_skipped(tmp_path):
    _tree(
        tmp_path,
        readme=(
            "[web](https://example.com/x.md) "
            "[plain](http://example.com) "
            "[mail](mailto:a@b.c) "
            "[anchor](#section)"
        ),
    )
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 0


def test_fragment_is_stripped_before_resolution(tmp_path):
    _tree(
        tmp_path,
        readme="[section](docs/perf.md#gate)",
        docs={"perf.md": "# gate"},
    )
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 0
    _tree(tmp_path, readme="[section](docs/gone.md#gate)", docs={})
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 1


def test_image_links_are_checked(tmp_path, capsys):
    _tree(tmp_path, readme="![plot](plots/missing.png)")
    assert check_links.main([str(tmp_path), str(tmp_path)]) == 1
    assert "plots/missing.png" in capsys.readouterr().err


def test_empty_tree_counts_zero_files(tmp_path, capsys):
    sub = tmp_path / "bare"
    sub.mkdir()
    assert check_links.main([str(sub), str(sub)]) == 0
    assert "checked 0 markdown files" in capsys.readouterr().out


@pytest.mark.parametrize(
    "markdown, broken",
    [
        ('[titled](docs/perf.md "a title")', False),
        ('[titled](docs/nope.md "a title")', True),
    ],
)
def test_titled_links(tmp_path, markdown, broken, capsys):
    _tree(tmp_path, readme=markdown, docs={"perf.md": "ok"})
    assert check_links.main([str(tmp_path), str(tmp_path)]) == (1 if broken else 0)
