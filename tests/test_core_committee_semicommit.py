"""Algorithm 2 (committee configuration) and Algorithm 4 (semi-commitment)."""

from repro.core.committee import run_committee_configuration
from repro.core.sandbox import build_multi_sandbox, build_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.crypto.commitment import semi_commitment
from repro.nodes.behaviors import BadSemiCommitLeader, OfflineNode


def test_single_committee_full_agreement():
    ctx = build_sandbox(committee_size=10, lam=2)
    report = run_committee_configuration(ctx)
    assert report.full_agreement == {0: True}
    assert report.rejected_joins == 0
    expected = {ctx.node(i).identity() for i in ctx.committees[0].members}
    for mid in ctx.committees[0].members:
        assert ctx.node(mid).member_list == expected


def test_multi_committee_agreement_and_isolation():
    ctx = build_multi_sandbox(m=3, committee_size=8, lam=2)
    report = run_committee_configuration(ctx)
    assert all(report.full_agreement.values())
    # member lists never leak across committees
    for committee in ctx.committees:
        expected = {ctx.node(i).identity() for i in committee.members}
        for mid in committee.members:
            assert ctx.node(mid).member_list == expected


def test_forged_ticket_rejected():
    """A node whose ticket belongs to another committee cannot join."""
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2)
    # Give a common member of committee 0 the wrong ticket (committee 1's).
    intruder = ctx.committees[0].members[-1]
    donor = ctx.committees[1].members[-1]
    ctx.node(intruder).ticket = ctx.node(donor).ticket
    report = run_committee_configuration(ctx)
    assert report.rejected_joins > 0
    assert report.full_agreement[0] is False  # the intruder is missing


def test_offline_member_missing_from_lists():
    ctx = build_sandbox(committee_size=8, lam=2, behaviors={7: OfflineNode()})
    ctx.node(7).online = False
    report = run_committee_configuration(ctx)
    leader_list = ctx.node(0).member_list
    assert ctx.node(7).identity() not in leader_list
    assert report.full_agreement[0] is False


def test_config_storage_recorded():
    ctx = build_sandbox(committee_size=8, lam=2)
    run_committee_configuration(ctx)
    assert ctx.metrics.storage_in("config", "key") >= 8
    assert ctx.metrics.storage_in("config", "common") >= 8


# -- Algorithm 4 ----------------------------------------------------------------


def configured(m=3, c=8, behaviors=None, seed=0):
    ctx = build_multi_sandbox(m=m, committee_size=c, lam=2, behaviors=behaviors, seed=seed)
    run_committee_configuration(ctx)
    return ctx


def test_honest_exchange_accepts_all():
    ctx = configured()
    report = run_semi_commitment_exchange(ctx)
    assert sorted(report.accepted) == [0, 1, 2]
    assert report.cheaters_detected == []
    assert report.recoveries == []
    # commitments match the actual member lists
    for committee in ctx.committees:
        expected = semi_commitment(
            ctx.node(committee.leader).member_list
        )
        assert report.accepted[committee.index] == expected
    assert set(ctx.semi_commitments) == {0, 1, 2}
    assert set(ctx.member_lists) == {0, 1, 2}


def test_cheating_leader_detected_and_replaced():
    ctx = configured(behaviors={8: BadSemiCommitLeader()}, seed=1)
    old_leader = ctx.committees[1].leader
    report = run_semi_commitment_exchange(ctx)
    assert 1 in report.cheaters_detected
    assert len(report.recoveries) == 1
    event = report.recoveries[0]
    assert event.succeeded and event.committee == 1
    assert ctx.committees[1].leader != old_leader
    assert old_leader in ctx.expelled_leaders
    # the new leader's commitment was accepted on retry
    assert 1 in report.accepted


def test_cheater_punished_cube_root():
    ctx = configured(behaviors={8: BadSemiCommitLeader()}, seed=1)
    pk = ctx.pk_of(8)
    ctx.reputation[pk] = 8.0
    run_semi_commitment_exchange(ctx)
    assert abs(ctx.reputation[pk] - 2.0) < 1e-12  # cbrt(8) = 2


def test_referee_storage_is_order_mc():
    ctx = configured()
    run_semi_commitment_exchange(ctx)
    # referees store all m member lists: ~ m*c entries
    assert ctx.metrics.storage_in("semicommit", "referee") >= 3 * 8
