"""PVSS: Shamir + Feldman + SCRAPE dual-code verification."""

import pytest

from repro.crypto.field import FIELD, GROUP
from repro.crypto.pvss import (
    PVSSDealing,
    deal,
    feldman_check,
    reconstruct,
    scrape_check,
    verify_dealing,
    verify_revealed_share,
)


def test_deal_shapes(rng):
    dealing, secrets = deal(123, n=7, threshold=4, rng=rng)
    assert len(dealing.coeff_commitments) == 4
    assert len(dealing.share_commitments) == 7
    assert len(secrets.shares) == 7


def test_threshold_out_of_range(rng):
    with pytest.raises(ValueError):
        deal(1, n=5, threshold=6, rng=rng)
    with pytest.raises(ValueError):
        deal(1, n=5, threshold=0, rng=rng)


def test_feldman_check_accepts_real_shares(rng):
    dealing, secrets = deal(99, n=6, threshold=3, rng=rng)
    for i, share in enumerate(secrets.shares, start=1):
        assert feldman_check(dealing, i, share)


def test_feldman_check_rejects_wrong_share(rng):
    dealing, secrets = deal(99, n=6, threshold=3, rng=rng)
    assert not feldman_check(dealing, 1, secrets.shares[0] + 1)
    assert not feldman_check(dealing, 0, secrets.shares[0])  # bad index


def test_scrape_accepts_honest_dealing(rng):
    dealing, _ = deal(5, n=10, threshold=6, rng=rng)
    assert scrape_check(dealing, rng)


def test_scrape_rejects_corrupted_share_commitment(rng):
    dealing, _ = deal(5, n=10, threshold=6, rng=rng)
    bad = list(dealing.share_commitments)
    bad[4] = GROUP.mul(bad[4], GROUP.g)
    corrupted = PVSSDealing(
        n=10,
        threshold=6,
        coeff_commitments=dealing.coeff_commitments,
        share_commitments=tuple(bad),
    )
    assert not verify_dealing(corrupted, rng)


def test_scrape_rejects_swapped_polynomial(rng):
    """Share vector from a different polynomial than committed."""
    dealing_a, _ = deal(1, n=8, threshold=4, rng=rng)
    dealing_b, _ = deal(2, n=8, threshold=4, rng=rng)
    frankenstein = PVSSDealing(
        n=8,
        threshold=4,
        coeff_commitments=dealing_a.coeff_commitments,
        share_commitments=dealing_b.share_commitments,
    )
    assert not verify_dealing(frankenstein, rng)


def test_reconstruct_from_any_threshold_subset(rng):
    secret = 424242
    dealing, secrets = deal(secret, n=9, threshold=5, rng=rng)
    points = list(enumerate(secrets.shares, start=1))
    assert reconstruct(points[:5], 5) == secret
    assert reconstruct(points[4:], 5) == secret
    assert reconstruct([points[0], points[2], points[4], points[6], points[8]], 5) == secret


def test_reconstruct_below_threshold_raises(rng):
    dealing, secrets = deal(7, n=5, threshold=4, rng=rng)
    with pytest.raises(ValueError):
        reconstruct(list(enumerate(secrets.shares, 1))[:3], 4)


def test_below_threshold_subset_learns_nothing(rng):
    """t-1 shares interpolate to a wrong value (perfect secrecy proxy)."""
    secret = 31337
    _, secrets = deal(secret, n=6, threshold=4, rng=rng)
    points = list(enumerate(secrets.shares, 1))[:3]
    # Interpolating a lower-degree polynomial through too few points
    wrong = FIELD.interpolate_at_zero(points)
    assert wrong != secret  # holds except w.p. 1/p


def test_verify_revealed_share(rng):
    dealing, secrets = deal(8, n=5, threshold=3, rng=rng)
    assert verify_revealed_share(dealing, 2, secrets.shares[1])
    assert not verify_revealed_share(dealing, 2, secrets.shares[0])
    assert not verify_revealed_share(dealing, 99, secrets.shares[0])


def test_full_threshold_dealing(rng):
    """n == threshold: dual code is trivial; per-share checks kick in."""
    dealing, secrets = deal(77, n=4, threshold=4, rng=rng)
    assert verify_dealing(dealing, rng)
    assert reconstruct(list(enumerate(secrets.shares, 1)), 4) == 77
