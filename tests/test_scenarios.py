"""Scenario / fault-injection subsystem: events, driver, determinism."""

import pytest

from repro import CycLedger, ProtocolParams
from repro.exp.results import round_row
from repro.scenarios import (
    SCENARIO_PRESETS,
    AdversaryRamp,
    Churn,
    LatencySpike,
    LeaderCrash,
    Partition,
    Scenario,
)


def small_params(seed=0, **overrides) -> ProtocolParams:
    defaults = dict(n=48, m=4, lam=2, referee_size=8, seed=seed,
                    users_per_shard=24, tx_per_committee=6,
                    cross_shard_ratio=0.4)
    defaults.update(overrides)
    return ProtocolParams(**defaults)


# -- event validation --------------------------------------------------------
def test_event_validation():
    with pytest.raises(ValueError):
        Partition(start_round=2, end_round=1, committees="halves")
    with pytest.raises(ValueError):
        Partition(start_round=1, end_round=2)  # neither committees nor nodes
    with pytest.raises(ValueError):
        Partition(start_round=1, end_round=2, committees="thirds")
    with pytest.raises(ValueError):
        LatencySpike(start_round=1, end_round=2, factor=0.5)
    with pytest.raises(ValueError):
        LeaderCrash(round=0, committees=(0,))
    with pytest.raises(ValueError):
        AdversaryRamp(start_round=1, end_round=2,
                      start_fraction=0.0, end_fraction=1.5)
    with pytest.raises(ValueError):
        Churn(start_round=1, end_round=2, offline_fraction=1.0)


def test_ramp_interpolates_and_clamps():
    ramp = AdversaryRamp(start_round=2, end_round=4,
                         start_fraction=0.0, end_fraction=0.3)
    assert ramp.fraction_at(2) == 0.0
    assert ramp.fraction_at(3) == pytest.approx(0.15)
    assert ramp.fraction_at(4) == pytest.approx(0.3)


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
def test_scenario_json_round_trip(name):
    scenario = SCENARIO_PRESETS[name]
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_last_event_round():
    assert SCENARIO_PRESETS["partition-halves"].last_event_round == 3
    assert SCENARIO_PRESETS["leader-crash"].last_event_round == 2
    # Multi-round crashes stay "active" until the crashed node recovers.
    long_crash = Scenario(
        "long", (LeaderCrash(round=2, committees=(0,), duration=3),)
    )
    assert long_crash.last_event_round == 4


# -- acceptance: partition degrades cross-shard packing, then recovers -------
def test_partition_degrades_cross_shard_packing_and_recovers():
    params = small_params(seed=0)
    baseline = CycLedger(params).run(5)
    partitioned = CycLedger(
        params, scenario=SCENARIO_PRESETS["partition-halves"]
    ).run(5)

    window = range(2, 4)  # partition-halves cuts rounds 2-3
    base_window = sum(r.cross_packed for r in baseline if r.round_number in window)
    part_window = sum(
        r.cross_packed for r in partitioned if r.round_number in window
    )
    assert part_window < 0.5 * base_window
    # Degradation is caused by the cut, visibly: packets died at the fabric.
    assert all(r.dropped > 0 for r in partitioned if r.round_number in window)
    # Recovery: after the window the cut is gone and packing resumes.
    post = [r for r in partitioned if r.round_number > 3]
    assert all(r.dropped == 0 for r in post)
    base_post = sum(r.cross_packed for r in baseline if r.round_number > 3)
    assert sum(r.cross_packed for r in post) > 0.5 * base_post


def test_partition_holds_over_roles_instead_of_crashing():
    """Seeds where the cut starves the PoW lottery must degrade (incumbent
    roles held over one round), not abort the run."""
    params = ProtocolParams(n=24, m=2, lam=2, referee_size=6, seed=42,
                            users_per_shard=12, tx_per_committee=4)
    ledger = CycLedger(params, scenario=SCENARIO_PRESETS["partition-halves"])
    reports = ledger.run(4)
    assert any(r.selection.held_over for r in reports)
    assert len(ledger.chain) == 4 and ledger.chain.verify()
    # The lottery resumes once the window closes.
    assert not reports[-1].selection.held_over
    assert reports[-1].block is not None


def test_identical_seeds_give_identical_round_reports():
    params = small_params(seed=7)
    scenario = SCENARIO_PRESETS["partition-halves"]
    a = CycLedger(params, scenario=scenario).run(4)
    b = CycLedger(params, scenario=scenario).run(4)
    assert [round_row(r) for r in a] == [round_row(r) for r in b]
    assert [r.phase_sim_times for r in a] == [r.phase_sim_times for r in b]
    assert [r.recovery_times for r in a] == [r.recovery_times for r in b]


def test_different_scenarios_differ_same_seed():
    params = small_params(seed=7)
    clean = CycLedger(params).run(3)
    churned = CycLedger(params, scenario=SCENARIO_PRESETS["churn"]).run(3)
    assert clean[-1].block.hash != churned[-1].block.hash
    assert [r.messages for r in clean] != [r.messages for r in churned]


# -- individual event behaviours ---------------------------------------------
def test_leader_crash_triggers_recovery_then_heals():
    params = small_params(seed=1)
    ledger = CycLedger(params, scenario=SCENARIO_PRESETS["leader-crash"])
    reports = ledger.run(3)
    assert reports[1].recoveries >= 1
    assert reports[1].recovery_times
    assert all(t > 0 for t in reports[1].recovery_times)
    # The crash window ends with round 2: nothing is forced offline after.
    assert ledger.adversary.forced_offline == set()


def test_churn_forces_fresh_offline_sets_then_recovers():
    params = small_params(seed=2)
    ledger = CycLedger(params, scenario=SCENARIO_PRESETS["churn"])
    offline_per_round = []
    ledger.pipeline.add_phase_hook(
        "config",
        "pre",
        lambda ctx, phase: offline_per_round.append(
            frozenset(ledger.adversary.forced_offline)
        ),
    )
    ledger.run(5)
    assert offline_per_round[0] == frozenset()  # churn starts in round 2
    churning = offline_per_round[1:4]
    assert all(len(s) == int(0.15 * params.n) for s in churning)
    assert len(set(churning)) > 1  # fresh draw each round
    assert offline_per_round[4] == frozenset()  # window closed


def test_adversary_ramp_reaches_target_fraction():
    params = small_params(seed=3)
    ledger = CycLedger(params, scenario=SCENARIO_PRESETS["adversary-ramp"])
    counts = []
    ledger.pipeline.add_round_hook("post", lambda led, rep: counts.append(
        led.adversary.count
    ))
    ledger.run(5)
    assert counts[0] == 0
    assert counts == sorted(counts)  # monotone ramp up
    assert counts[-1] == int(0.25 * params.n)


def test_ramp_retarget_is_reversible():
    ledger = CycLedger(small_params(seed=4))
    adversary = ledger.adversary
    adversary.retarget_fraction(0.25)
    grown = sorted(adversary.corrupted)
    assert len(grown) == int(0.25 * 48)
    adversary.retarget_fraction(0.125)
    shrunk = sorted(adversary.corrupted)
    assert len(shrunk) == int(0.125 * 48)
    assert set(shrunk) <= set(grown)  # most recent corruptions heal first


def test_latency_spike_slows_the_round():
    params = small_params(seed=5)
    baseline = CycLedger(params).run(3)
    spiked = CycLedger(
        params, scenario=SCENARIO_PRESETS["latency-spike"]
    ).run(3)
    # Round 1 is untouched; rounds 2-3 run on 4x slower partial links.
    assert spiked[0].sim_time == baseline[0].sim_time
    assert spiked[1].sim_time > baseline[1].sim_time


def test_explicit_node_partition_and_scenario_attachment():
    """A hand-written scenario (not a preset) attaches the same way."""
    params = small_params(seed=6)
    scenario = Scenario(
        "two-islands",
        (Partition(start_round=1, end_round=1,
                   nodes=(tuple(range(24)), tuple(range(24, 48)))),),
    )
    ledger = CycLedger(params, scenario=scenario)
    report = ledger.run_round()
    assert report.dropped > 0
    assert ledger.scenario_driver is not None
    assert any("partition" in line for line in ledger.scenario_driver.log)


def test_node_partition_keeps_unlisted_referee_with_group_zero():
    """Explicit node groups that omit the referee must not strand it in
    the implicit remainder group (that would cut it off from everyone)."""
    params = small_params(seed=9)
    ledger_probe = CycLedger(params)
    non_referee = [
        nid for nid in range(params.n)
        if ledger_probe.nodes[nid].pk not in set(ledger_probe._next_referee)
    ]
    scenario = Scenario(
        "omit-referee",
        (Partition(start_round=1, end_round=1,
                   nodes=(tuple(non_referee[:20]), tuple(non_referee[20:]))),),
    )
    ledger = CycLedger(params, scenario=scenario)
    report = ledger.run_round()  # must complete: referee reachable by group 0
    assert report.dropped > 0


def test_scenario_bound_pipeline_cannot_be_shared():
    from repro import build_default_pipeline

    pipeline = build_default_pipeline()
    params = small_params(seed=9)
    CycLedger(params, scenario=SCENARIO_PRESETS["churn"], pipeline=pipeline)
    with pytest.raises(ValueError):
        CycLedger(params, scenario=SCENARIO_PRESETS["churn"], pipeline=pipeline)
    with pytest.raises(ValueError):
        # ...even for a scenario-free ledger: the bound driver's hooks
        # would inject the first ledger's faults into it.
        CycLedger(params, pipeline=pipeline)
    # Reverse order: a scenario may not claim a pipeline another ledger
    # already runs on (its faults would fire on that ledger's rounds).
    shared = build_default_pipeline()
    CycLedger(params, pipeline=shared)
    with pytest.raises(ValueError):
        CycLedger(params, scenario=SCENARIO_PRESETS["churn"], pipeline=shared)


def test_out_of_range_committee_index_fails_at_attach():
    params = small_params(seed=9)  # m=4: valid indices are 0-3
    bad_crash = Scenario("bad", (LeaderCrash(round=1, committees=(4,)),))
    with pytest.raises(ValueError, match="committee indices"):
        CycLedger(params, scenario=bad_crash)
    bad_cut = Scenario(
        "bad-cut",
        (Partition(start_round=1, end_round=1, committees=((0,), (5,))),),
    )
    with pytest.raises(ValueError, match="committee indices"):
        CycLedger(params, scenario=bad_cut)
    # Explicit node groups validate too: nonexistent ids would otherwise
    # make the partition a silent no-op.
    bad_nodes = Scenario(
        "bad-nodes",
        (Partition(start_round=1, end_round=1, nodes=((100, 101), (102,))),),
    )
    with pytest.raises(ValueError, match="node ids"):
        CycLedger(params, scenario=bad_nodes)


def test_scenario_rng_isolated_from_protocol_streams():
    """Attaching a scenario must not perturb the fault-free trajectory of
    rounds the scenario does not touch (round 1 here)."""
    params = small_params(seed=8)
    clean = CycLedger(params).run_round()
    with_scenario = CycLedger(
        params, scenario=SCENARIO_PRESETS["partition-halves"]
    ).run_round()
    assert round_row(clean) == round_row(with_scenario)
