"""Topology: channel classes and the connection-burden census."""

import pytest

from repro.net.params import ChannelClass, NetworkParams
from repro.net.topology import (
    build_cycledger_topology,
    cycledger_channel_count,
    full_clique_channels,
)


@pytest.fixture
def channels():
    # Two committees {0..4} keys {0,1} and {5..9} keys {5,6}; referee {10,11}.
    return build_cycledger_topology(
        [({0, 1, 2, 3, 4}, {0, 1}), ({5, 6, 7, 8, 9}, {5, 6})],
        [10, 11],
    )


def test_intra_committee(channels):
    assert channels.classify(2, 3) == ChannelClass.INTRA
    assert channels.classify(0, 4) == ChannelClass.INTRA


def test_referee_internal_is_intra(channels):
    assert channels.classify(10, 11) == ChannelClass.INTRA


def test_key_to_key_cross_committee(channels):
    assert channels.classify(0, 5) == ChannelClass.KEY
    assert channels.classify(1, 6) == ChannelClass.KEY


def test_key_to_referee(channels):
    assert channels.classify(0, 10) == ChannelClass.REFEREE
    assert channels.classify(11, 6) == ChannelClass.REFEREE


def test_common_to_referee_partial(channels):
    # PoW submission / block propagation: partially synchronous only.
    assert channels.classify(3, 10) == ChannelClass.PARTIAL
    assert channels.classify(10, 3) == ChannelClass.PARTIAL


def test_common_cross_committee_no_channel(channels):
    assert channels.classify(2, 7) is None
    assert channels.classify(7, 2) is None


def test_common_to_foreign_key_no_channel(channels):
    # Common members do not hold links to other committees' key members.
    assert channels.classify(2, 5) is None


def test_self_is_local(channels):
    assert channels.classify(3, 3) == ChannelClass.LOCAL


def test_channel_counts(channels):
    # intra: 2 committees of 5 -> 2*10, referee pair -> 1
    assert channels.counts[ChannelClass.INTRA] == 21
    # key clique: 4 keys -> 6 pairs, minus 2 same-committee pairs
    assert channels.counts[ChannelClass.KEY] == 4
    # key-to-referee: 4 keys x 2 referees
    assert channels.counts[ChannelClass.REFEREE] == 8
    assert channels.total_reliable() == 33


def test_overlapping_committees_rejected():
    with pytest.raises(ValueError):
        build_cycledger_topology([({0, 1}, {0}), ({1, 2}, {1})], [])


def test_referee_member_overlap_rejected():
    with pytest.raises(ValueError):
        build_cycledger_topology([({0, 1}, {0})], [1])


def test_key_must_be_member():
    with pytest.raises(ValueError):
        build_cycledger_topology([({0, 1}, {5})], [])


def test_closed_form_matches_constructed():
    n, m, lam, cr = 60, 3, 2, 6
    c = n // m
    committees = []
    nid = 0
    for k in range(m):
        members = set(range(nid, nid + c))
        keys = set(range(nid, nid + lam + 1))
        committees.append((members, keys))
        nid += c
    referee = list(range(nid, nid + cr))
    built = build_cycledger_topology(committees, referee)
    assert built.total_reliable() == cycledger_channel_count(n, m, lam, cr)


def test_light_vs_heavy_burden():
    """Table I's punchline: CycLedger needs far fewer reliable channels."""
    n, m, lam, cr = 2000, 10, 40, 200
    assert cycledger_channel_count(n, m, lam, cr) < full_clique_channels(n + cr) / 5


def test_network_params_validation():
    with pytest.raises(ValueError):
        NetworkParams(delta=0)
    with pytest.raises(ValueError):
        NetworkParams(jitter=1.5)
    with pytest.raises(ValueError):
        NetworkParams(partial_max_stretch=0.5)
    params = NetworkParams()
    with pytest.raises(ValueError):
        params.base_delay("bogus")
