"""Prime field, Miller-Rabin and the Schnorr group."""

import pytest

from repro.crypto.field import FIELD, GROUP, PrimeField, is_prime


def test_known_primes():
    for p in (2, 3, 5, 7, 97, 2**61 - 1):
        assert is_prime(p)


def test_known_composites():
    for n in (0, 1, 4, 91, 561, 2**61 + 1, 341550071728321):
        assert not is_prime(n)


def test_carmichael_numbers_rejected():
    for n in (561, 1105, 1729, 41041, 825265):
        assert not is_prime(n)


def test_field_prime_valid():
    assert is_prime(FIELD.p)


def test_non_prime_field_raises():
    with pytest.raises(ValueError):
        PrimeField(100)


def test_add_sub_mul_inverse():
    f = PrimeField(101)
    assert f.add(100, 5) == 4
    assert f.sub(3, 10) == 94
    assert f.mul(50, 4) == 99
    assert f.mul(7, f.inv(7)) == 1


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        FIELD.inv(0)


def test_poly_eval_horner():
    f = PrimeField(97)
    coeffs = [3, 0, 2]  # 3 + 2x^2
    assert f.poly_eval(coeffs, 5) == (3 + 2 * 25) % 97


def test_random_poly_constant_term(rng):
    coeffs = FIELD.random_poly(4, 42, rng)
    assert coeffs[0] == 42
    assert len(coeffs) == 5
    assert all(0 <= c < FIELD.p for c in coeffs)


def test_lagrange_interpolation_at_zero(rng):
    coeffs = FIELD.random_poly(3, 777, rng)
    points = [(x, FIELD.poly_eval(coeffs, x)) for x in (1, 5, 9, 12)]
    assert FIELD.interpolate_at_zero(points) == 777


def test_interpolation_duplicate_x_raises():
    with pytest.raises(ValueError):
        FIELD.interpolate_at_zero([(1, 2), (1, 3)])


def test_group_order():
    assert (GROUP.q - 1) % GROUP.p == 0
    assert pow(GROUP.g, GROUP.p, GROUP.q) == 1
    assert GROUP.g != 1


def test_group_commit_homomorphism(rng):
    a = int(rng.integers(1, FIELD.p))
    b = int(rng.integers(1, FIELD.p))
    lhs = GROUP.mul(GROUP.commit(a), GROUP.commit(b))
    rhs = GROUP.commit((a + b) % FIELD.p)
    assert lhs == rhs


def test_group_modulus_prime():
    assert is_prime(GROUP.q)
