"""CRHF wrapper: injectivity of the canonical encoding and basic contract."""

import pytest

from repro.crypto.hashing import H, H_int, canonical_bytes, hexdigest


def test_digest_is_32_bytes():
    assert len(H("x")) == 32


def test_deterministic():
    assert H("a", 1, b"z") == H("a", 1, b"z")


def test_different_inputs_different_digests():
    assert H("a") != H("b")
    assert H(1) != H(2)
    assert H(b"") != H("")


def test_type_distinction():
    # "1" (str) vs 1 (int) vs b"1" (bytes) must not collide
    assert len({H("1"), H(1), H(b"1")}) == 3


def test_structure_distinction():
    # H(a, b) != H(ab): concatenation ambiguity is prevented
    assert H("ab") != H("a", "b")
    assert H(("a", "b")) != H(("ab",))
    assert H(("a", ("b", "c"))) != H((("a", "b"), "c"))


def test_bool_is_not_int():
    assert H(True) != H(1)
    assert H(False) != H(0)


def test_none_and_empty():
    assert H(None) != H("")
    assert H(()) != H(None)


def test_set_and_dict_order_independence():
    assert canonical_bytes({1, 2, 3}) == canonical_bytes({3, 1, 2})
    assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})


def test_list_and_tuple_equivalent():
    # Both encode as sequences; protocol code uses them interchangeably.
    assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))


def test_h_int_range():
    value = H_int("x")
    assert 0 <= value < (1 << 256)


def test_hexdigest_matches():
    assert hexdigest("q") == H("q").hex()


def test_unencodable_raises():
    with pytest.raises(TypeError):
        canonical_bytes(object())


def test_negative_and_large_ints():
    assert H(-1) != H(1)
    big = 1 << 300
    assert H(big) != H(big + 1)
