"""Edge cases and failure-injection scenarios across modules."""

import numpy as np

from repro.core.committee import run_committee_configuration
from repro.core.intra import audit_vote_round, first_honest_partial, run_intra_consensus
from repro.core.recovery import Witness, attempt_recovery
from repro.core.sandbox import build_multi_sandbox, build_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.core.voting import VoteRound
from repro.crypto.commitment import semi_commitment
from repro.ledger.workload import WorkloadGenerator
from repro.nodes.behaviors import ContraryVoter, EquivocatingLeader, OfflineNode


def test_unregistered_member_in_claimed_list_detected():
    """Alg. 4 step 2: C_R checks 'all members in any list are registered'."""
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2)
    run_committee_configuration(ctx)
    # Poison the leader's member list with a ghost identity.
    leader = ctx.node(ctx.committees[0].leader)
    leader.member_list.add(("ghost-pk-never-registered", "addr-ghost"))
    report = run_semi_commitment_exchange(ctx)
    assert 0 in report.cheaters_detected
    # committee 1's honest list went through
    assert 1 in report.accepted


def test_recovery_impossible_with_all_malicious_partials():
    """If every partial member is malicious (prob. (1/3)^λ — the §V-C
    failure event), the phase cannot find an accuser and proceeds without
    recovery rather than crashing."""
    behaviors = {0: EquivocatingLeader(), 1: ContraryVoter(), 2: ContraryVoter()}
    ctx = build_sandbox(committee_size=9, lam=2, behaviors=behaviors)
    assert first_honest_partial(ctx, ctx.committees[0]) is None
    wg = WorkloadGenerator(m=1, users_per_shard=16, rng=np.random.default_rng(0))
    ctx.shard_states[0].add_genesis(wg.genesis_tx)
    ctx.mempools[0] = wg.generate_batch(10)
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    report = run_intra_consensus(ctx)
    assert report.recoveries == []  # detected but unprosecutable
    assert ctx.committees[0].leader == 0  # leader survives (this round)


def test_audit_ignores_insecure_partial_set():
    ctx = build_sandbox(committee_size=6, lam=2,
                        behaviors={1: ContraryVoter(), 2: OfflineNode()})
    ctx.node(2).online = False
    round_result = VoteRound(committee=0, session="s")
    round_result.timed_out = True
    assert audit_vote_round(ctx, ctx.committees[0], round_result, "intra") is None


def test_double_recovery_attempt_same_committee():
    """After a successful recovery, the ex-leader cannot be impeached again
    (a second witness against the *old* leader targets a non-leader)."""
    ctx = build_sandbox(committee_size=9, lam=3, behaviors={0: EquivocatingLeader()})
    from repro.core.consensus import InsideConsensus

    out = InsideConsensus(ctx, ctx.committees[0].members, 0, 1, "M", "s").run()
    witness = Witness(
        kind="equivocation", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=out.equivocation,
    )
    first = attempt_recovery(ctx, ctx.committees[0], 1, witness, "r1")
    assert first.succeeded and ctx.committees[0].leader == 1
    # a second prosecution by another partial member with the same witness
    second = attempt_recovery(ctx, ctx.committees[0], 2, witness, "r2")
    # the witness still names the OLD leader; honest members may approve it
    # (it is objectively valid) but the committee's leader is already node 1,
    # so installing the accuser demotes nobody honest: guard the semantics.
    if second.succeeded:
        assert ctx.committees[0].leader == 2
        assert 1 in ctx.expelled_leaders or 0 in ctx.expelled_leaders


def test_workload_multi_input_never_generated():
    """Generator invariant: all generated spends are single-input (keeps
    home-shard routing exact)."""
    wg = WorkloadGenerator(m=3, users_per_shard=16, rng=np.random.default_rng(1))
    batch = wg.generate_batch(60, cross_shard_ratio=0.4, invalid_ratio=0.2)
    for tagged in batch:
        assert len(tagged.tx.inputs) == 1


def test_semicommit_binding_after_recovery_matches_new_list():
    ctx = build_multi_sandbox(m=2, committee_size=8, lam=2)
    run_committee_configuration(ctx)
    report = run_semi_commitment_exchange(ctx)
    for committee in ctx.committees:
        accepted = report.accepted[committee.index]
        members = ctx.member_lists[committee.index]
        assert semi_commitment(members) == accepted


def test_larger_scale_round_smoke():
    """One round at n=240, m=8 (c=29): the simulator and every phase hold up
    at a scale closer to the paper's settings."""
    from repro import CycLedger, ProtocolParams

    params = ProtocolParams(
        n=240, m=8, lam=3, referee_size=8, seed=0,
        users_per_shard=40, tx_per_committee=6, cross_shard_ratio=0.2,
    )
    ledger = CycLedger(params)
    report = ledger.run_round()
    assert report.block is not None
    assert report.packed > 20
    assert report.messages > 50_000  # c² terms dominate
    assert ledger.chain.verify()
