"""Algorithm 5 / vote rounds: voting, tallying, auditing, recovery."""

import numpy as np

from repro.core.committee import run_committee_configuration
from repro.core.intra import run_intra_consensus
from repro.core.sandbox import build_multi_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.ledger.workload import WorkloadGenerator
from repro.nodes.behaviors import (
    CensoringLeader,
    ContraryVoter,
    EquivocatingLeader,
    LazyVoter,
    SilentLeader,
)


def setup(m=3, c=8, behaviors=None, seed=0, invalid=0.15, cross=0.0, capacities=None):
    ctx = build_multi_sandbox(m=m, committee_size=c, lam=2, behaviors=behaviors, seed=seed)
    if capacities:
        for nid, cap in capacities.items():
            ctx.nodes[nid].capacity = cap
    wg = WorkloadGenerator(m=m, users_per_shard=24, rng=np.random.default_rng(seed))
    for state in ctx.shard_states:
        state.add_genesis(wg.genesis_tx)
    batch = wg.generate_batch(70, cross_shard_ratio=cross, invalid_ratio=invalid)
    for k, pool in enumerate(wg.by_home_shard(batch)):
        ctx.mempools[k] = pool
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    return ctx


def tags_of(ctx):
    return {t.tx.txid: t for pool in ctx.mempools for t in pool}


def test_honest_intra_accepts_only_valid():
    ctx = setup()
    report = run_intra_consensus(ctx)
    tags = tags_of(ctx)
    assert report.accepted_by_cr  # every committee reported
    for k, txs in report.accepted_by_cr.items():
        assert txs, f"committee {k} decided nothing"
        for tx in txs:
            assert tags[tx.txid].intended_valid
    # and no valid intra tx in the proposed list was censored
    for k, round_result in report.rounds.items():
        decided = {tx.txid for tx in round_result.reported_txs}
        for txid in round_result.txids:
            if tags[txid].intended_valid:
                assert txid in decided


def test_all_members_replied():
    ctx = setup()
    report = run_intra_consensus(ctx)
    for round_result in report.rounds.values():
        assert round_result.replies == 8
        assert round_result.consensus_success


def test_vote_records_stored_for_reputation():
    ctx = setup()
    run_intra_consensus(ctx)
    assert set(ctx.vote_records) == {0, 1, 2}
    for records in ctx.vote_records.values():
        txids, matrix, decision = records[0]
        assert matrix.shape == (8, len(txids))
        assert decision.shape == (len(txids),)


def test_contrary_minority_outvoted():
    # 3 of 8 contrary voters in committee 0 (ids 2..4; 0 is leader)
    behaviors = {i: ContraryVoter() for i in (3, 4, 5)}
    ctx = setup(behaviors=behaviors, seed=4)
    report = run_intra_consensus(ctx)
    tags = tags_of(ctx)
    for tx in report.accepted_by_cr.get(0, []):
        assert tags[tx.txid].intended_valid


def test_lazy_voters_do_not_block():
    behaviors = {i: LazyVoter() for i in (5, 6)}
    ctx = setup(behaviors=behaviors, seed=5)
    report = run_intra_consensus(ctx)
    assert 0 in report.accepted_by_cr


def test_capacity_limits_cause_unknowns():
    # every member of committee 0 can only judge 2 txs
    caps = {i: 2 for i in range(8)}
    ctx = setup(capacities=caps, seed=6)
    report = run_intra_consensus(ctx)
    round0 = report.rounds[0]
    if len(round0.txids) > 2:
        # columns beyond capacity are all Unknown -> not decided Yes
        assert all(
            round0.decision[i] == -1 for i in range(2, len(round0.txids))
        )
        assert np.all(round0.matrix[:, 2:] == 0)


def test_censoring_leader_detected_and_phase_recovers():
    ctx = setup(behaviors={8: CensoringLeader()}, seed=7)
    report = run_intra_consensus(ctx)
    assert 1 in report.censorship_detected
    assert any(e.committee == 1 and e.succeeded for e in report.recoveries)
    assert 1 in report.retried
    assert 1 in report.accepted_by_cr  # the retry produced a certified set
    assert ctx.committees[1].leader != 8


def test_silent_leader_detected_and_phase_recovers():
    ctx = setup(behaviors={0: SilentLeader()}, seed=8)
    report = run_intra_consensus(ctx)
    assert 0 in report.silence_detected
    assert any(e.committee == 0 and e.succeeded for e in report.recoveries)
    assert 0 in report.accepted_by_cr


def test_equivocating_leader_detected_in_vote_round():
    ctx = setup(behaviors={16: EquivocatingLeader()}, seed=9)
    report = run_intra_consensus(ctx)
    assert 2 in report.equivocation_detected
    assert any(e.committee == 2 and e.succeeded for e in report.recoveries)
    assert 2 in report.accepted_by_cr


def test_empty_mempool_is_fine():
    ctx = setup()
    for k in range(3):
        ctx.mempools[k] = []
    report = run_intra_consensus(ctx)
    for round_result in report.rounds.values():
        assert round_result.txs == []
        assert round_result.consensus_success


def test_tx_budget_respected():
    ctx = setup()
    report = run_intra_consensus(ctx)
    for round_result in report.rounds.values():
        assert len(round_result.txs) <= ctx.params.tx_per_committee
