"""Inter-committee consensus: cross-shard flow, Lemma 6/7 attacks, prefilter."""

import numpy as np

from repro.core.committee import run_committee_configuration
from repro.core.consensus import consensus_digest
from repro.core.inter import dest_shard, run_inter_consensus
from repro.core.intra import run_intra_consensus
from repro.core.sandbox import build_multi_sandbox
from repro.core.semicommit import run_semi_commitment_exchange
from repro.core.tags import Tags
from repro.ledger.workload import WorkloadGenerator
from repro.nodes.behaviors import InterSilentLeader


def setup(m=3, c=8, behaviors=None, seed=0, cross=0.5, invalid=0.1, prefilter=False):
    ctx = build_multi_sandbox(m=m, committee_size=c, lam=2, behaviors=behaviors, seed=seed)
    if prefilter:
        object.__setattr__(ctx.params, "prefilter_cross_shard", True)
    wg = WorkloadGenerator(m=m, users_per_shard=24, rng=np.random.default_rng(seed))
    for state in ctx.shard_states:
        state.add_genesis(wg.genesis_tx)
    batch = wg.generate_batch(80, cross_shard_ratio=cross, invalid_ratio=invalid)
    for k, pool in enumerate(wg.by_home_shard(batch)):
        ctx.mempools[k] = pool
    run_committee_configuration(ctx)
    run_semi_commitment_exchange(ctx)
    return ctx


def tags_of(ctx):
    return {t.tx.txid: t for pool in ctx.mempools for t in pool}


def test_cross_shard_commits_only_valid():
    ctx = setup()
    run_intra_consensus(ctx)
    report = run_inter_consensus(ctx)
    tags = tags_of(ctx)
    assert report.accepted, "no cross-shard pairs committed"
    for txs in report.accepted.values():
        for tx in txs:
            assert tags[tx.txid].intended_valid
            assert tags[tx.txid].cross_shard
    assert report.forged_rejected == 0
    assert not report.recoveries


def test_both_sides_record_votes():
    ctx = setup()
    run_intra_consensus(ctx)
    report = run_inter_consensus(ctx)
    for (i, j), _ in report.accepted.items():
        assert any(True for _ in ctx.vote_records.get(i, []))
        assert any(True for _ in ctx.vote_records.get(j, []))


def test_dest_shard_helper():
    ctx = setup()
    tags = tags_of(ctx)
    for tagged in tags.values():
        dest = dest_shard(tagged.tx, tagged.home_shard, 3)
        if tagged.cross_shard:
            assert dest is not None and dest != tagged.home_shard


def test_inter_silent_leader_lemma7_recovery():
    # committee 1's leader (node 8) honest intra, silent on cross-shard
    ctx = setup(behaviors={8: InterSilentLeader()}, seed=3)
    run_intra_consensus(ctx)
    report = run_inter_consensus(ctx)
    assert report.lemma7_forwards, "partial members never forwarded"
    assert any(
        e.committee == 1 and e.kind == "silence" and e.succeeded
        for e in report.recoveries
    )
    assert ctx.committees[1].leader != 8
    # cross-shard txs INTO committee 1 still committed after recovery
    assert any(j == 1 for (_, j) in report.accepted)


def test_forged_certificate_rejected():
    """Lemma 6: a package without a valid committee-i certificate is dropped
    by both leader j and the partial set of j."""
    ctx = setup(seed=4)
    run_intra_consensus(ctx)
    report = run_inter_consensus(ctx)
    # Craft a forged INTER_SEND from committee 0's leader: self-signed cert.
    from repro.crypto.signatures import sign

    forger = ctx.node(ctx.committees[0].leader)
    fake_txs = tuple(t.tx for t in ctx.mempools[0][:2])
    payload = (tuple(tx.txid for tx in fake_txs), ((0,) * len(fake_txs),))
    fake_cert = tuple(
        sign(forger.keypair, ("CONFIRM", 1, ("VOTEROUND", "fake"), consensus_digest(payload)))
        for _ in range(9)
    )
    before = report.forged_rejected
    receiver = ctx.committees[1]
    forger.on  # noqa: B018 - forger keeps its handlers
    # re-run just the handler path by sending a forged package
    from repro.core.inter import run_inter_consensus as _  # noqa: F401

    # Re-register reception handlers via a fresh inter run is complex; send
    # directly against the live handlers from the finished run instead.
    forger.send(
        receiver.leader,
        Tags.INTER_SEND,
        (0, 1, fake_txs, payload, fake_cert, "fake"),
    )
    ctx.net.run()
    assert report.forged_rejected > before


def test_prefilter_drops_invalid_before_voting():
    ctx_plain = setup(seed=5, invalid=0.4)
    run_intra_consensus(ctx_plain)
    plain = run_inter_consensus(ctx_plain)

    ctx_pref = setup(seed=5, invalid=0.4, prefilter=True)
    run_intra_consensus(ctx_pref)
    pref = run_inter_consensus(ctx_pref)

    assert pref.prefilter_savings > 0
    # prefiltered send rounds vote on fewer transactions
    plain_voted = sum(len(r.txs) for r in plain.send_rounds.values())
    pref_voted = sum(len(r.txs) for r in pref.send_rounds.values())
    assert pref_voted < plain_voted
    # but the committed valid set is preserved
    tags = tags_of(ctx_pref)
    for txs in pref.accepted.values():
        for tx in txs:
            assert tags[tx.txid].intended_valid


def test_no_cross_txs_no_pairs():
    ctx = setup(cross=0.0, seed=6)
    run_intra_consensus(ctx)
    report = run_inter_consensus(ctx)
    assert report.send_rounds == {}
    assert report.accepted == {}
