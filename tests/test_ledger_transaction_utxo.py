"""Transactions, UTXO set and the authentication function V."""

import pytest

from repro.ledger.transaction import (
    Transaction,
    TxInput,
    TxOutput,
    make_transfer,
    shard_of_address,
)
from repro.ledger.transaction import make_coinbase
from repro.ledger.utxo import (
    UTXOSet,
    ValidationResult,
    transaction_fee,
    validate_batch,
    validate_transaction,
)


@pytest.fixture
def funded():
    """A UTXO set holding one 100-coin output for alice."""
    utxos = UTXOSet()
    genesis = make_coinbase([TxOutput("alice", 100)])
    utxos.add((genesis.txid, 0), genesis.outputs[0])
    return utxos, (genesis.txid, 0)


def test_txid_deterministic_and_unique():
    tx1 = Transaction(inputs=(), outputs=(TxOutput("a", 1),), nonce=1)
    tx2 = Transaction(inputs=(), outputs=(TxOutput("a", 1),), nonce=2)
    assert tx1.txid == Transaction(inputs=(), outputs=(TxOutput("a", 1),), nonce=1).txid
    assert tx1.txid != tx2.txid


def test_shard_of_address_stable_and_in_range():
    for m in (1, 3, 16):
        shard = shard_of_address("user-1", m)
        assert 0 <= shard < m
        assert shard == shard_of_address("user-1", m)
    with pytest.raises(ValueError):
        shard_of_address("x", 0)


def test_make_transfer_with_change(funded):
    _, source = funded
    tx = make_transfer(source, 100, "bob", 30, "alice", fee=2)
    assert tx.output_total() == 98
    assert tx.outputs[0] == TxOutput("bob", 30)
    assert tx.outputs[1] == TxOutput("alice", 68)


def test_make_transfer_exact_no_change(funded):
    _, source = funded
    tx = make_transfer(source, 100, "bob", 99, "alice", fee=1)
    assert len(tx.outputs) == 1


def test_make_transfer_insufficient_raises(funded):
    _, source = funded
    with pytest.raises(ValueError):
        make_transfer(source, 100, "bob", 100, "alice", fee=1)


def test_valid_transaction(funded):
    utxos, source = funded
    tx = make_transfer(source, 100, "bob", 50, "alice")
    assert validate_transaction(tx, utxos) is ValidationResult.VALID
    assert bool(validate_transaction(tx, utxos))


def test_missing_input(funded):
    utxos, _ = funded
    phantom = TxInput(b"\x42" * 32, 0)
    tx = Transaction(inputs=(phantom,), outputs=(TxOutput("bob", 1),))
    assert validate_transaction(tx, utxos) is ValidationResult.MISSING_INPUT


def test_duplicate_input(funded):
    utxos, source = funded
    tx = Transaction(
        inputs=(TxInput(*source), TxInput(*source)),
        outputs=(TxOutput("bob", 150),),
    )
    assert validate_transaction(tx, utxos) is ValidationResult.DUPLICATE_INPUT


def test_overspend(funded):
    utxos, source = funded
    tx = Transaction(inputs=(TxInput(*source),), outputs=(TxOutput("bob", 101),))
    assert validate_transaction(tx, utxos) is ValidationResult.OVERSPEND


def test_empty_outputs(funded):
    utxos, source = funded
    tx = Transaction(inputs=(TxInput(*source),), outputs=())
    assert validate_transaction(tx, utxos) is ValidationResult.EMPTY


def test_nonpositive_output(funded):
    utxos, source = funded
    tx = Transaction(inputs=(TxInput(*source),), outputs=(TxOutput("bob", 0),))
    assert validate_transaction(tx, utxos) is ValidationResult.NONPOSITIVE_OUTPUT


def test_user_coinbase_rejected(funded):
    utxos, _ = funded
    tx = make_coinbase([TxOutput("thief", 10)])
    assert validate_transaction(tx, utxos) is ValidationResult.OVERSPEND


def test_apply_and_fee(funded):
    utxos, source = funded
    tx = make_transfer(source, 100, "bob", 40, "alice", fee=3)
    assert transaction_fee(tx, utxos) == 3
    total_before = utxos.total_value()
    utxos.apply_transaction(tx)
    assert source not in utxos
    assert (tx.txid, 0) in utxos
    assert utxos.total_value() == total_before - 3  # the fee left the set


def test_double_spend_after_apply(funded):
    utxos, source = funded
    tx = make_transfer(source, 100, "bob", 40, "alice")
    utxos.apply_transaction(tx)
    again = make_transfer(source, 100, "carol", 10, "alice", nonce=5)
    assert validate_transaction(again, utxos) is ValidationResult.MISSING_INPUT


def test_snapshot_restore(funded):
    utxos, source = funded
    snapshot = utxos.snapshot()
    utxos.apply_transaction(make_transfer(source, 100, "bob", 40, "alice"))
    utxos.restore(snapshot)
    assert source in utxos
    assert len(utxos) == 1


def test_validate_batch_sequential_catches_intra_batch_double_spend(funded):
    utxos, source = funded
    tx1 = make_transfer(source, 100, "bob", 40, "alice", nonce=1)
    tx2 = make_transfer(source, 100, "carol", 40, "alice", nonce=2)
    results = validate_batch([tx1, tx2], utxos)
    assert results[0] is ValidationResult.VALID
    assert results[1] is ValidationResult.MISSING_INPUT
    # non-sequential mode sees both as individually valid
    results_ns = validate_batch([tx1, tx2], utxos, sequential=False)
    assert all(r is ValidationResult.VALID for r in results_ns)
    # and the original set is untouched either way
    assert source in utxos


def test_outpoints_of_address(funded):
    utxos, source = funded
    assert utxos.outpoints_of("alice") == [source]
    assert utxos.outpoints_of("nobody") == []


def test_spend_missing_raises(funded):
    utxos, _ = funded
    with pytest.raises(KeyError):
        utxos.spend((b"\x00" * 32, 7))


def test_add_duplicate_raises(funded):
    utxos, source = funded
    with pytest.raises(ValueError):
        utxos.add(source, TxOutput("x", 1))
