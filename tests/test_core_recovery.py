"""Witness validation, impeachment and Algorithm 6 (Claims 3–4)."""

import numpy as np
import pytest

from repro.core.consensus import EquivocationWitness, InsideConsensus, consensus_digest
from repro.core.recovery import (
    Witness,
    attempt_recovery,
    no_proposal_statement,
    punish_leader,
    validate_witness,
)
from repro.core.sandbox import build_sandbox
from repro.crypto.signatures import sign
from repro.nodes.behaviors import ContraryVoter, EquivocatingLeader, FramingPartialMember


def make_equivocation_ctx():
    ctx = build_sandbox(committee_size=9, lam=2, behaviors={0: EquivocatingLeader()})
    out = InsideConsensus(
        ctx, ctx.committees[0].members, leader=0, sn=1, payload="M", session="x"
    ).run()
    witness = Witness(
        kind="equivocation",
        committee=0,
        leader_pk=ctx.pk_of(0),
        round_number=1,
        evidence=out.equivocation,
    )
    return ctx, witness


def test_equivocation_witness_valid():
    ctx, witness = make_equivocation_ctx()
    assert validate_witness(ctx.pki, witness, 9)


def test_recovery_replaces_leader_claim3():
    ctx, witness = make_equivocation_ctx()
    event = attempt_recovery(ctx, ctx.committees[0], 1, witness, session="r")
    assert event.succeeded
    assert ctx.committees[0].leader == 1
    assert 1 not in ctx.committees[0].partial
    assert 0 in ctx.expelled_leaders
    assert ctx.nodes[1].is_leader and not ctx.nodes[0].is_leader


def test_recovery_records_event():
    ctx, witness = make_equivocation_ctx()
    event = attempt_recovery(ctx, ctx.committees[0], 1, witness, session="r")
    assert ctx.recoveries == [event]
    assert event.kind == "equivocation"
    assert event.old_leader == 0 and event.new_leader == 1


def test_framing_fails_claim4():
    ctx = build_sandbox(committee_size=9, lam=2, behaviors={1: FramingPartialMember()})
    InsideConsensus(
        ctx, ctx.committees[0].members, leader=0, sn=1, payload="M", session="x"
    ).run()
    fake = EquivocationWitness(
        leader_pk=ctx.pk_of(0),
        round_number=1,
        sn=1,
        digest_a=consensus_digest("a"),
        sig_a=sign(ctx.nodes[1].keypair, "junk"),
        digest_b=consensus_digest("b"),
        sig_b=sign(ctx.nodes[1].keypair, "junk2"),
    )
    witness = Witness(
        kind="equivocation", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=fake,
    )
    assert not validate_witness(ctx.pki, witness, 9)
    event = attempt_recovery(ctx, ctx.committees[0], 1, witness, session="r")
    assert not event.succeeded
    assert ctx.committees[0].leader == 0


def test_framing_fails_even_with_colluding_minority():
    """Malicious members approve the fabricated witness, but honest members
    are the majority so the impeachment never reaches > c/2."""
    behaviors = {1: FramingPartialMember()}
    behaviors.update({i: ContraryVoter() for i in (3, 4, 5)})
    ctx = build_sandbox(committee_size=9, lam=2, behaviors=behaviors)
    fake = EquivocationWitness(
        leader_pk=ctx.pk_of(0), round_number=1, sn=1,
        digest_a=consensus_digest("a"), sig_a=sign(ctx.nodes[1].keypair, "j"),
        digest_b=consensus_digest("b"), sig_b=sign(ctx.nodes[1].keypair, "k"),
    )
    witness = Witness(
        kind="equivocation", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=fake,
    )
    event = attempt_recovery(ctx, ctx.committees[0], 1, witness, session="r")
    assert not event.succeeded


def test_accuser_must_be_partial_member():
    ctx, witness = make_equivocation_ctx()
    with pytest.raises(ValueError):
        attempt_recovery(ctx, ctx.committees[0], 5, witness, session="r")


def test_bad_semicommit_witness():
    ctx = build_sandbox(committee_size=6, lam=2)
    leader = ctx.nodes[0]
    member_list = (("pkA", "a"), ("pkB", "b"))
    bad_commitment = b"\x13" * 32  # != H(member_list)
    statement = ("SEMI_COM", 1, bad_commitment, member_list)
    sig = sign(leader.keypair, statement)
    witness = Witness(
        kind="bad_semicommit", committee=0, leader_pk=leader.pk,
        round_number=1, evidence=(sig, bad_commitment, member_list),
    )
    assert validate_witness(ctx.pki, witness, 6)
    # an honest commitment is not a witness
    from repro.crypto.commitment import semi_commitment

    good = semi_commitment(member_list)
    sig2 = sign(leader.keypair, ("SEMI_COM", 1, good, member_list))
    honest = Witness(
        kind="bad_semicommit", committee=0, leader_pk=leader.pk,
        round_number=1, evidence=(sig2, good, member_list),
    )
    assert not validate_witness(ctx.pki, honest, 6)


def test_censor_witness():
    ctx = build_sandbox(committee_size=5, lam=2)
    leader = ctx.nodes[0]
    txids_all = (b"t1", b"t2", b"t3")
    votes = tuple(tuple(row) for row in np.ones((5, 3), dtype=int))  # all Yes
    txids_dec = (b"t1",)  # t2, t3 censored
    sig_dec = sign(leader.keypair, ("INTRA_DEC", 1, 0, txids_dec))
    sig_votes = sign(leader.keypair, ("VLIST", 1, 0, txids_all, votes))
    witness = Witness(
        kind="censor", committee=0, leader_pk=leader.pk, round_number=1,
        evidence=(sig_dec, txids_dec, sig_votes, txids_all, votes),
    )
    assert validate_witness(ctx.pki, witness, 5)
    # complete decided set is not censorship
    sig_dec_full = sign(leader.keypair, ("INTRA_DEC", 1, 0, txids_all))
    complete = Witness(
        kind="censor", committee=0, leader_pk=leader.pk, round_number=1,
        evidence=(sig_dec_full, txids_all, sig_votes, txids_all, votes),
    )
    assert not validate_witness(ctx.pki, complete, 5)


def test_silence_witness_needs_quorum():
    ctx = build_sandbox(committee_size=9, lam=2)
    stmt = no_proposal_statement(1, 0, "intra")
    sigs = tuple(sign(ctx.nodes[i].keypair, stmt) for i in range(5))
    witness = Witness(
        kind="silence", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=("intra", sigs),
    )
    assert validate_witness(ctx.pki, witness, 9)
    minority = Witness(
        kind="silence", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=("intra", sigs[:4]),
    )
    assert not validate_witness(ctx.pki, minority, 9)
    # duplicated signatures do not inflate the quorum
    padded = Witness(
        kind="silence", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=("intra", (sigs[0],) * 9),
    )
    assert not validate_witness(ctx.pki, padded, 9)


def test_unknown_witness_kind_invalid():
    ctx = build_sandbox(committee_size=5, lam=2)
    witness = Witness(
        kind="mystery", committee=0, leader_pk=ctx.pk_of(0),
        round_number=1, evidence=(),
    )
    assert not validate_witness(ctx.pki, witness, 5)


def test_cube_root_punishment():
    ctx = build_sandbox(committee_size=5, lam=2)
    pk = ctx.pk_of(0)
    ctx.reputation[pk] = 27.0
    punish_leader(ctx, 0)
    assert ctx.reputation[pk] == pytest.approx(3.0)
    # negative reputation clamps to zero first
    ctx.reputation[pk] = -5.0
    punish_leader(ctx, 0)
    assert ctx.reputation[pk] == 0.0
