"""Complexity claims, incentive analysis, baselines, metrics machinery."""

import numpy as np
import pytest

from repro.analysis.complexity import TABLE2_CLAIMS, claimed_exponent, table2_rows
from repro.analysis.incentive import expected_score, leader_punishment, reward_shares
from repro.baselines import (
    ALL_MODELS,
    CycLedgerModel,
    ElasticoModel,
    OmniLedgerModel,
    RapidChainModel,
    simulate_leader_stalls,
)
from repro.metrics.counters import MetricsCollector, Roles
from repro.metrics.fitting import fit_power_law, r_squared_loglog, scaling_exponent


# -- complexity claims ---------------------------------------------------------


def test_table2_has_all_rows():
    assert len(TABLE2_CLAIMS) == 19
    assert len(table2_rows()) == 19
    phases = {claim.phase for claim in TABLE2_CLAIMS}
    assert phases == {
        "config", "semicommit", "intra", "inter", "reputation", "selection", "block",
    }


def test_claimed_exponent_linear_sweep():
    # sweep with m fixed, c growing: O(c²) should show exponent ~2 in n
    ns = np.array([64, 128, 256])
    ms = np.array([4, 4, 4])
    cs = ns // ms
    assert claimed_exponent((0, 0, 2), ns, ms, cs) == pytest.approx(2.0)
    assert claimed_exponent((1, 0, 0), ns, ms, cs) == pytest.approx(1.0)
    assert claimed_exponent((0, 1, 0), ns, ms, cs) == pytest.approx(0.0)


def test_render_table():
    rows = table2_rows()
    rendered = {(phase, role): (comm, sto) for phase, role, comm, sto in rows}
    assert rendered[("config", Roles.KEY)] == ("O(c^2)", "O(c^2)")
    assert rendered[("semicommit", Roles.REFEREE)] == ("O(m^2)", "O(m)")
    assert rendered[("config", Roles.REFEREE)] == ("-", "-")


# -- incentive ----------------------------------------------------------------


def test_expected_score_monotone_in_capacity():
    scores = [expected_score(k, 20) for k in range(0, 21, 5)]
    assert scores == sorted(scores)
    assert scores[0] == 0.0
    assert scores[-1] == pytest.approx(1.0)


def test_reward_shares_normalized():
    shares = reward_shares({"a": 1.0, "b": -1.0, "c": 0.0})
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["a"] > shares["c"] > shares["b"]


def test_leader_punishment_cube_root():
    assert leader_punishment(27.0) == pytest.approx(3.0)
    assert leader_punishment(-2.0) == 0.0


# -- baselines ----------------------------------------------------------------


def test_table1_qualitative_rows():
    profiles = {model.name: model for model in ALL_MODELS}
    assert profiles["Elastico"].resiliency == pytest.approx(1 / 4)
    assert profiles["OmniLedger"].resiliency == pytest.approx(1 / 4)
    assert profiles["RapidChain"].resiliency == pytest.approx(1 / 3)
    assert profiles["CycLedger"].resiliency == pytest.approx(1 / 3)
    assert profiles["CycLedger"].leader_robust
    assert profiles["CycLedger"].has_incentives
    assert not any(
        profiles[name].leader_robust for name in ("Elastico", "OmniLedger", "RapidChain")
    )
    assert profiles["CycLedger"].connection_burden == "light"


def test_storage_rows():
    n, m, c = 2000, 10, 200
    assert ElasticoModel().storage(n, m, c) == n
    assert OmniLedgerModel().storage(n, m, c) == pytest.approx(c + np.log(m))
    assert RapidChainModel().storage(n, m, c) == c
    assert CycLedgerModel().storage(n, m, c) == pytest.approx(m * m / n + c)


def test_connection_burden_quantified():
    n, m, c, lam, cr = 2000, 10, 200, 40, 200
    cyc = CycLedgerModel().connection_channels(n, m, c, lam, cr)
    heavy = RapidChainModel().connection_channels(n, m, c, lam, cr)
    assert cyc < heavy / 2


def test_leader_stall_crossover(rng):
    """The headline row: at 1/3 malicious leaders, baselines commit ~44% of
    cross-shard txs ((2/3)²) while CycLedger stays ~100%."""
    rapid = simulate_leader_stalls(RapidChainModel(), 1 / 3, 200, 20, rng)
    cyc = simulate_leader_stalls(CycLedgerModel(), 1 / 3, 200, 20, rng)
    assert abs(rapid.committed_fraction - 4 / 9) < 0.05
    assert cyc.committed_fraction > 0.999


def test_leader_stall_honest_leaders_equal(rng):
    rapid = simulate_leader_stalls(RapidChainModel(), 0.0, 50, 10, rng)
    cyc = simulate_leader_stalls(CycLedgerModel(), 0.0, 50, 10, rng)
    assert rapid.committed_fraction == 1.0 == cyc.committed_fraction


def test_stall_validation(rng):
    with pytest.raises(ValueError):
        simulate_leader_stalls(RapidChainModel(), 1.5, 10, 10, rng)


# -- metrics ---------------------------------------------------------------------


def test_counters_by_phase_and_role():
    metrics = MetricsCollector()
    metrics.set_role(1, Roles.KEY)
    metrics.set_role(2, Roles.COMMON)
    metrics.set_phase("intra")
    metrics.record_send(1, 100)
    metrics.record_send(2, 50)
    metrics.set_phase("block")
    metrics.record_send(1, 10)
    assert metrics.messages_in("intra", Roles.KEY) == 1
    assert metrics.bytes_in("intra", Roles.COMMON) == 50
    assert metrics.messages_in("block", Roles.KEY) == 1
    assert metrics.total_messages() == 3
    assert metrics.phases() == ["intra", "block"]


def test_storage_high_water():
    metrics = MetricsCollector()
    metrics.set_role(1, Roles.REFEREE)
    metrics.record_storage(1, 10)
    metrics.record_storage(1, 5)
    assert metrics.storage_in("setup", Roles.REFEREE) == 10


def test_merge():
    a, b = MetricsCollector(), MetricsCollector()
    a.set_role(1, Roles.KEY)
    b.set_role(1, Roles.KEY)
    a.set_phase("intra"); a.record_send(1, 10)
    b.set_phase("intra"); b.record_send(1, 20); b.record_storage(1, 7)
    a.merge(b)
    assert a.messages_in("intra", Roles.KEY) == 2
    assert a.bytes_in("intra", Roles.KEY) == 30
    assert a.storage_in("intra", Roles.KEY) == 7


def test_unknown_role_rejected():
    with pytest.raises(ValueError):
        MetricsCollector().set_role(1, "king")


def test_fit_power_law_recovers_exponent():
    xs = np.array([10, 20, 40, 80], dtype=float)
    ys = 3.0 * xs**2
    a, b = fit_power_law(xs, ys)
    assert a == pytest.approx(3.0, rel=1e-6)
    assert b == pytest.approx(2.0, abs=1e-9)
    assert scaling_exponent(xs, ys) == pytest.approx(2.0)
    assert r_squared_loglog(xs, ys) == pytest.approx(1.0)


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_power_law([1.0], [2.0])
    with pytest.raises(ValueError):
        fit_power_law([1.0, 2.0], [0.0, 1.0])
