"""Executable multi-protocol backend layer: registry, parity, scenarios."""

from __future__ import annotations

import json

import pytest

from repro.backends import (
    BACKEND_REGISTRY,
    LedgerBackend,
    backend_names,
    create_backend,
)
from repro.cli import main as cli_main
from repro.core.config import ProtocolParams
from repro.exp import (
    ExperimentSpec,
    Runner,
    backend_compare_spec,
    derive_point_seed,
    run_point,
    run_sweep,
)
from repro.nodes.adversary import AdversaryConfig
from repro.scenarios import SCENARIO_PRESETS

ALL_BACKENDS = ("cycledger", "rapidchain", "omniledger_sim")

SMALL = dict(
    n=24, m=2, lam=2, referee_size=6, users_per_shard=12,
    tx_per_committee=4, cross_shard_ratio=0.3, invalid_ratio=0.1,
)

BACKEND_SPEC = ExperimentSpec(
    name="backend-parity",
    rounds=2,
    seeds=(0,),
    base=SMALL,
    backend_grid=ALL_BACKENDS,
)


# -- registry ----------------------------------------------------------------
def test_registry_contains_all_protocols():
    assert set(ALL_BACKENDS) <= set(backend_names())
    for info in BACKEND_REGISTRY.values():
        assert info.description


def test_create_backend_unknown_name_fails_fast():
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("no-such-protocol", ProtocolParams(**SMALL))


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_satisfies_contract(name):
    ledger = create_backend(name, ProtocolParams(seed=1, **SMALL))
    assert isinstance(ledger, LedgerBackend)
    reports = ledger.run(2)
    assert len(ledger.chain) >= 1 and ledger.chain.verify()
    assert ledger.total_packed() > 0
    for report in reports:
        # The flat report contract round_row() serializes.
        for attr in (
            "round_number", "packed", "cross_packed", "recoveries",
            "messages", "bytes_sent", "sim_time", "dropped",
            "intra_accepted", "inter_accepted", "inter_voted",
            "prefilter_savings", "intra_elapsed", "inter_elapsed",
            "blockgen_elapsed", "blockgen_subblocks", "blockgen_width",
        ):
            assert hasattr(report, attr), attr


@pytest.mark.parametrize("name", ("rapidchain", "omniledger_sim"))
def test_backend_runs_are_reproducible(name):
    def one_run():
        ledger = create_backend(name, ProtocolParams(seed=5, **SMALL))
        reports = ledger.run(3)
        return [
            (r.packed, r.cross_packed, r.messages, r.bytes_sent, r.sim_time,
             r.block.hash.hex() if r.block else None)
            for r in reports
        ]

    assert one_run() == one_run()


# -- spec axis ---------------------------------------------------------------
def test_backend_axis_is_seed_paired():
    points = BACKEND_SPEC.expand()
    assert [p.backend for p in points] == list(ALL_BACKENDS)
    # All arms share one protocol seed (paired comparison) but have
    # distinct cache keys via the descriptor.
    expected = derive_point_seed(dict(points[0].params), None, 0, 2)
    assert {p.derived_seed for p in points} == {expected}
    assert len({p.key for p in points}) == len(points)
    assert all(p.descriptor()["backend"] == p.backend for p in points)


def test_spec_rejects_unknown_backend_at_validation_time():
    with pytest.raises(ValueError, match="unknown backend"):
        ExperimentSpec(name="bad", backend="no-such-protocol")
    with pytest.raises(ValueError, match="unknown backend"):
        ExperimentSpec(name="bad", backend_grid=("cycledger", "typo"))
    with pytest.raises(ValueError, match="not both"):
        ExperimentSpec(
            name="bad", backend="rapidchain", backend_grid=("cycledger",)
        )


def test_backend_parity_serial_parallel_byte_identical():
    serial = Runner(BACKEND_SPEC, workers=1).run()
    parallel = Runner(BACKEND_SPEC, workers=3).run()
    assert parallel.workers >= 2
    assert serial.json_bytes() == parallel.json_bytes()
    # every backend produced a populated, distinguishable record
    by_backend = {r.point["backend"]: r for r in serial.results}
    assert set(by_backend) == set(ALL_BACKENDS)
    for name, result in by_backend.items():
        assert result.totals["packed"] > 0, name
        assert result.chain["valid"], name


def test_backend_point_runs_and_caches(tmp_path):
    cache = str(tmp_path / "cache")
    first = Runner(BACKEND_SPEC, workers=1, cache_dir=cache).run()
    assert first.executed == len(ALL_BACKENDS)
    second = Runner(BACKEND_SPEC, workers=1, cache_dir=cache).run()
    assert second.executed == 0 and second.from_cache == len(ALL_BACKENDS)
    assert second.json_bytes() == first.json_bytes()


def test_backend_column_in_csv(tmp_path):
    outcome = run_sweep(BACKEND_SPEC, workers=1)
    csv_path = tmp_path / "results.csv"
    outcome.write_csv(str(csv_path))
    header, *rows = csv_path.read_text().strip().splitlines()
    columns = header.split(",")
    assert "backend" in columns
    backend_col = columns.index("backend")
    assert {row.split(",")[backend_col] for row in rows} == set(ALL_BACKENDS)


def test_outcome_find_by_backend():
    outcome = run_sweep(BACKEND_SPEC, workers=1)
    result = outcome.one(backend="rapidchain")
    assert result.point["backend"] == "rapidchain"


def test_backend_compare_preset_expands():
    points = backend_compare_spec().expand()
    assert {p.backend for p in points} == set(ALL_BACKENDS)
    # adversary arms ride along: 2 fractions x 3 backends x 1 seed
    assert len(points) == 6


# -- scenarios against rival backends ---------------------------------------
def test_partition_scenario_degrades_rapidchain_then_recovers():
    scenario = SCENARIO_PRESETS["partition-halves"]
    rounds = scenario.last_event_round + 1
    params = ProtocolParams(seed=0, **SMALL)
    faulted = create_backend("rapidchain", params, scenario=scenario).run(rounds)
    clean = create_backend("rapidchain", params).run(rounds)
    dropped = [r.dropped for r in faulted]
    assert any(d > 0 for d in dropped)
    assert dropped[-1] == 0  # the cut heals
    assert all(r.dropped == 0 for r in clean)
    # Seed pairing: the fault-free arm packs at least as much in every
    # round, strictly more in some partitioned round.
    assert all(c.packed >= f.packed for c, f in zip(clean, faulted))
    assert sum(c.packed for c in clean) > sum(f.packed for f in faulted)


def test_scenario_axis_runs_on_rival_backend_via_engine():
    spec = ExperimentSpec(
        name="rival-scenario",
        rounds=4,
        seeds=(0,),
        base=SMALL,
        backend="rapidchain",
        scenario_grid=(None, "partition-halves"),
    )
    outcome = run_sweep(spec, workers=1)
    clean = outcome.one(scenario=None)
    cut = outcome.one(scenario="partition-halves")
    assert clean.totals["dropped"] == 0
    assert cut.totals["dropped"] > 0


def test_adversary_stalls_rival_cross_shard_but_not_cycledger():
    """The executable Table I dishonest-leader row: under a ~1/3 adversary
    *both* recovery-free rivals lose cross-shard throughput CycLedger
    keeps.  Run at m=4 scale — with only two committees the lottery too
    often draws zero corrupted leaders and the contrast drowns in noise."""
    params = dict(
        n=48, m=4, lam=2, referee_size=8, users_per_shard=24,
        tx_per_committee=6, cross_shard_ratio=0.3, invalid_ratio=0.1,
    )
    adversary = AdversaryConfig(fraction=0.33)
    totals = {}
    for name in ALL_BACKENDS:
        ledger = create_backend(
            name, ProtocolParams(seed=2, **params), adversary=adversary
        )
        reports = ledger.run(4)
        totals[name] = sum(r.cross_packed for r in reports)
    assert totals["cycledger"] > totals["rapidchain"]
    assert totals["cycledger"] > totals["omniledger_sim"]


def test_run_point_resolves_backend():
    point = BACKEND_SPEC.expand()[1]
    assert point.backend == "rapidchain"
    result = run_point(point)
    assert result.point["backend"] == "rapidchain"
    assert result.totals["packed"] > 0
    assert result.totals["recoveries"] == 0  # rivals have no recovery


# -- CLI ---------------------------------------------------------------------
def test_cli_backends_lists_registry(capsys):
    assert cli_main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ALL_BACKENDS:
        assert name in out


def test_cli_backends_run(capsys):
    code = cli_main([
        "backends", "--run", "rapidchain", "--n", "24", "--m", "2",
        "--referee", "6", "--users", "12", "--txs", "4", "--rounds", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend 'rapidchain'" in out and "valid=True" in out


def test_cli_backends_run_unknown_fails(capsys):
    with pytest.raises(SystemExit):
        cli_main(["backends", "--run", "nope"])


def test_cli_sweep_backend_axis(tmp_path, capsys):
    out = tmp_path / "results.json"
    csv = tmp_path / "results.csv"
    code = cli_main([
        "sweep", "--backends", "cycledger,rapidchain,omniledger_sim",
        "--n", "24", "--m", "2", "--referee", "6", "--users", "12",
        "--txs", "4", "--rounds", "2", "--serial",
        "--out", str(out), "--csv", str(csv),
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    assert len(payload["results"]) == 3
    assert payload["spec"]["backend_grid"] == list(ALL_BACKENDS)
    assert "backend" in csv.read_text().splitlines()[0].split(",")


def test_cli_sweep_unknown_backend_fails_before_running(capsys):
    with pytest.raises(SystemExit, match="unknown backend"):
        cli_main(["sweep", "--backend", "no-such-protocol"])
