#!/usr/bin/env python
"""Security study: how big do committees and partial sets need to be?

Reproduces the analysis behind Fig. 5 and §V interactively: plots the exact
committee-failure probability against the paper's bounds, finds the minimum
committee size for a target security level, and sizes the partial set.

Run:  python examples/security_study.py
"""

import numpy as np

from repro.analysis.plotting import ascii_bars, ascii_plot
from repro.analysis.security import (
    committee_failure_exact,
    committee_failure_kl_bound,
    committee_failure_simple_bound,
    minimum_committee_size,
    partial_set_failure,
    union_bound,
)

N, T, M = 2000, 666, 10  # Fig. 5's population, one-third malicious


def main(c_max: int = 300) -> None:
    """Run the committee-sizing study up to committee size ``c_max``."""
    cs = np.arange(20, c_max + 1, 10)
    print(ascii_plot(
        cs,
        {
            "exact tail": committee_failure_exact(N, T, cs),
            "KL bound (Eq.3)": committee_failure_kl_bound(N, T, cs),
            "e^{-c/12} (Eq.4)": committee_failure_simple_bound(cs),
        },
        logy=True,
        title=f"Fig. 5 reproduction: P[committee >= half malicious], "
              f"n={N}, t={T}",
    ))

    print("\npaper anchor check at c = 240:")
    exact240 = float(committee_failure_exact(N, T, 240))
    eq4 = float(committee_failure_simple_bound(240))
    print(f"  exact tail       : {exact240:.3e}")
    print(f"  e^(-240/12)      : {eq4:.3e}   <- the paper's '2.1e-9'")
    print(f"  m=20 union bound : {float(union_bound(exact240, 20)):.3e}")

    print("\nminimum committee size for target per-committee failure:")
    for target in (1e-3, 1e-6, 1e-9):
        c_needed = minimum_committee_size(N, T, target)
        print(f"  target {target:.0e}  ->  c >= {c_needed}")

    print("\npartial-set sizing ((1/3)^λ, m=10 union bound):")
    lams = [10, 20, 30, 40]
    per_set = [float(partial_set_failure(lam)) for lam in lams]
    print(ascii_bars(
        [f"λ={lam}" for lam in lams],
        [-np.log10(p) for p in per_set],
        title="security level in -log10(failure probability)",
    ))
    print(f"\nλ=40 (the paper's choice): per-set {per_set[-1]:.2e}, "
          f"any-of-{M} {float(union_bound(per_set[-1], M)):.2e}")


if __name__ == "__main__":
    main()
