#!/usr/bin/env python
"""Reputation economics: capacity, scores, and the fee market.

Models a heterogeneous population — strong validators, mid-tier nodes,
barely-online stragglers and a clique of contrary voters — and traces how
the cosine scoring (Eq. 1), the g(x) map (Eq. 2) and proportional fee
distribution (§IV-G) split the revenue between them over several rounds.

Run:  python examples/reputation_economics.py
"""

import numpy as np

from repro import AdversaryConfig, CycLedger, ProtocolParams
from repro.core.reputation import g


def capacity_profile(node_id: int, rng: np.random.Generator) -> int:
    tier = node_id % 10
    if tier < 6:
        return 10_000  # strong validator
    if tier < 8:
        return 5  # mid-tier
    return 1  # straggler: judges one transaction per round


def tier_name(capacity: int) -> str:
    return {10_000: "strong", 5: "mid", 1: "straggler"}[capacity]


def main(rounds: int = 4, **param_overrides) -> None:
    """Run the reputation-economics study; ``param_overrides`` replace any
    :class:`ProtocolParams` field (used by the example tests)."""
    defaults = dict(
        n=64,
        m=4,
        lam=3,
        referee_size=8,
        seed=11,
        users_per_shard=48,
        tx_per_committee=10,
        invalid_ratio=0.15,
    )
    defaults.update(param_overrides)
    params = ProtocolParams(**defaults)
    adversary = AdversaryConfig(fraction=0.15, voter_strategy="contrary_voter")
    ledger = CycLedger(params, adversary=adversary, capacity_fn=capacity_profile)

    fees_total = 0
    for report in ledger.run(rounds=rounds):
        fees_total += report.blockgen.total_fees

    buckets: dict[str, list[tuple[float, float]]] = {}
    for node in ledger.nodes.values():
        if ledger.adversary.is_corrupted(node.node_id):
            label = "contrary voter"
        else:
            label = tier_name(node.capacity)
        buckets.setdefault(label, []).append(
            (ledger.reputation[node.pk], ledger.rewards.get(node.pk, 0.0))
        )

    print(f"{fees_total} units of transaction fees distributed over "
          f"{rounds} rounds\n")
    print(f"{'group':>15} {'n':>3} {'mean rep':>9} {'g(rep)':>7} "
          f"{'mean reward':>11} {'share/node':>10}")
    total_reward = sum(ledger.rewards.values())
    for label in ("strong", "mid", "straggler", "contrary voter"):
        entries = buckets.get(label, [])
        if not entries:
            continue
        reps = np.array([r for r, _ in entries])
        rewards = np.array([w for _, w in entries])
        share = rewards.mean() / total_reward if total_reward else 0.0
        print(f"{label:>15} {len(entries):>3} {reps.mean():>+9.3f} "
              f"{float(np.mean(g(reps))):>7.3f} {rewards.mean():>11.3f} "
              f"{share:>10.2%}")

    print("\ntakeaways (§VII):")
    print(" * reward ordering follows honest computing power;")
    print(" * stragglers (rep ~ 0, g(0)=1) still earn a little;")
    print(" * contrary voters sink below everyone — doing nothing beats "
          "doing wrong.")


if __name__ == "__main__":
    main()
