#!/usr/bin/env python
"""Quickstart: run a small CycLedger deployment for a few rounds.

Builds a 64-node network (4 committees of 14, referee committee of 8,
partial sets of 3), feeds it a mixed intra/cross-shard workload with a few
invalid transactions, and prints what each round produced.

Run:  python examples/quickstart.py
"""

from repro import CycLedger, ProtocolParams


def main(rounds: int = 5, **param_overrides) -> None:
    """Run the quickstart deployment.

    ``param_overrides`` replace any :class:`ProtocolParams` field (the test
    suite runs every example at small n with a fixed seed this way).
    """
    defaults = dict(
        n=64,
        m=4,
        lam=3,
        referee_size=8,
        seed=2024,
        users_per_shard=32,
        tx_per_committee=10,
        cross_shard_ratio=0.25,
        invalid_ratio=0.10,
    )
    defaults.update(param_overrides)
    params = ProtocolParams(**defaults)
    ledger = CycLedger(params)
    print(
        f"CycLedger: n={params.n}, m={params.m} committees of "
        f"c={params.committee_size}, lambda={params.lam}, "
        f"|C_R|={params.referee_size}"
    )
    print(f"{'round':>5} {'submitted':>9} {'packed':>6} {'cross':>5} "
          f"{'fees':>5} {'msgs':>7} {'sim time':>8}")
    for report in ledger.run(rounds=rounds):
        print(
            f"{report.round_number:>5} {report.submitted:>9} "
            f"{report.packed:>6} {report.cross_packed:>5} "
            f"{report.blockgen.total_fees:>5} {report.messages:>7} "
            f"{report.sim_time:>8.1f}"
        )

    print(f"\nchain: {len(ledger.chain)} blocks, "
          f"{ledger.total_packed()} transactions, "
          f"links valid: {ledger.chain.verify()}")
    head = ledger.chain.head
    print(f"head block: {head!r}")
    print(f"next-round leaders (by reputation): "
          f"{[pk[:8] for pk in head.leaders]}")
    top = sorted(ledger.reputation.items(), key=lambda kv: -kv[1])[:5]
    print("top reputation:")
    for pk, rep in top:
        print(f"  {pk[:12]}…  {rep:+.3f}")


if __name__ == "__main__":
    main()
