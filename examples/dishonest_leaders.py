#!/usr/bin/env python
"""Dishonest leaders: detection, impeachment and leader re-selection.

The scenario Table I's "High Efficiency w.r.t Dishonest Leaders" row is
about: a third of the nodes are corrupted; any of them that becomes a
committee leader equivocates inside Algorithm 3.  The partial set catches
the leader-signed contradiction, the committee votes the impeachment, the
referee committee confirms it (Algorithm 6), the accusing partial member
takes over, and the round still produces a block.

Run:  python examples/dishonest_leaders.py
"""

import numpy as np

from repro import AdversaryConfig, CycLedger, ProtocolParams


def main(rounds: int = 4, **param_overrides) -> None:
    """Run the dishonest-leader scenario; ``param_overrides`` replace any
    :class:`ProtocolParams` field (used by the example tests)."""
    defaults = dict(
        n=48,
        m=3,
        lam=2,
        referee_size=6,
        seed=1,  # a seed where corrupted nodes do become leaders
        users_per_shard=32,
        tx_per_committee=8,
        cross_shard_ratio=0.25,
    )
    defaults.update(param_overrides)
    params = ProtocolParams(**defaults)
    adversary = AdversaryConfig(
        fraction=0.30,
        leader_strategy="equivocating_leader",
        voter_strategy="contrary_voter",
    )
    ledger = CycLedger(params, adversary=adversary)
    print(f"adversary controls {ledger.adversary.count}/{params.n} nodes "
          f"(< 1/3): corrupted leaders equivocate, corrupted members vote "
          f"contrarily\n")

    for report in ledger.run(rounds=rounds):
        flags = []
        if report.intra.equivocation_detected:
            flags.append(f"equivocation in C{report.intra.equivocation_detected}")
        if report.intra.censorship_detected:
            flags.append(f"censorship in C{report.intra.censorship_detected}")
        if report.intra.silence_detected:
            flags.append(f"silence in C{report.intra.silence_detected}")
        print(f"round {report.round_number}: packed {report.packed:>3}, "
              f"recoveries {report.recoveries}, "
              f"block {'OK' if report.block else 'VOID'}"
              + (f"  [{'; '.join(flags)}]" if flags else ""))

    print(f"\nchain grew to {len(ledger.chain)} blocks despite the attack; "
          f"links valid: {ledger.chain.verify()}")

    grouped = ledger.reputation_by_behavior()
    print("\nreputation by behaviour (the incentive layer at work):")
    for name, values in sorted(grouped.items()):
        print(f"  {name:22s} mean {np.mean(values):+7.3f}   n={len(values)}")
    print("\nfaulty ex-leaders also took the cube-root punishment (§VII-B).")


if __name__ == "__main__":
    main()
