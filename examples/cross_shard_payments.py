#!/usr/bin/env python
"""Cross-shard payments: the inter-committee consensus path in detail.

Drives a cross-shard-heavy workload and shows, per committee pair (i, j),
how many transactions the sending committee certified, how many the
receiving committee accepted, and the end-to-end phase latencies — the
lifecycle of Fig. 2 step (3b).

Run:  python examples/cross_shard_payments.py
"""

from collections import Counter

from repro import CycLedger, ProtocolParams


def main(rounds: int = 3, **param_overrides) -> None:
    """Run the cross-shard walkthrough; ``param_overrides`` replace any
    :class:`ProtocolParams` field (used by the example tests)."""
    defaults = dict(
        n=48,
        m=3,
        lam=2,
        referee_size=6,
        seed=7,
        users_per_shard=48,
        tx_per_committee=10,
        cross_shard_ratio=0.6,  # cross-shard heavy
        invalid_ratio=0.1,
    )
    defaults.update(param_overrides)
    params = ProtocolParams(**defaults)
    ledger = CycLedger(params)
    print("cross-shard heavy workload (60% of transactions leave their shard)\n")

    totals: Counter = Counter()
    for report in ledger.run(rounds=rounds):
        inter = report.inter
        print(f"round {report.round_number}: "
              f"{report.submitted} submitted, {report.packed} packed "
              f"({report.cross_packed} cross-shard), "
              f"inter-phase {inter.elapsed:.1f} sim-t")
        for (i, j), round_result in sorted(inter.send_rounds.items()):
            accepted = len(inter.accepted.get((i, j), []))
            certified = len(round_result.reported_txs)
            print(f"    C{i} -> C{j}: proposed {len(round_result.txs):>2}, "
                  f"certified {certified:>2}, accepted by C{j} {accepted:>2}")
            totals["proposed"] += len(round_result.txs)
            totals["certified"] += certified
            totals["accepted"] += accepted

    print(f"\ntotals: proposed {totals['proposed']}, "
          f"certified by sending committees {totals['certified']}, "
          f"accepted by receiving committees {totals['accepted']}")
    print("every accepted transaction carries BOTH committees' certificates,")
    print("each anchored to a semi-committed member list held by C_R.")


if __name__ == "__main__":
    main()
